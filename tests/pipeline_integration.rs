//! Cross-crate integration tests: the full ZeroED pipeline against generated
//! benchmark datasets and the baselines, exercised through the umbrella crate.

use zeroed::baselines::{Baseline, BaselineInput, DBoost, Katara, Nadeef};
use zeroed::prelude::*;

fn dataset(spec: DatasetSpec, rows: usize, seed: u64) -> zeroed::datagen::GeneratedDataset {
    generate(
        spec,
        &GenerateOptions {
            n_rows: rows,
            seed,
            ..Default::default()
        },
    )
}

fn oracle_llm(ds: &zeroed::datagen::GeneratedDataset, seed: u64) -> SimLlm {
    let types: Vec<_> = ds
        .injected
        .iter()
        .map(|e| ((e.row, e.col), e.error_type))
        .collect();
    SimLlm::default_model(seed)
        .with_oracle(ds.mask.clone())
        .with_error_types(types)
}

#[test]
fn zeroed_beats_criteria_free_baselines_on_rayyan() {
    let ds = dataset(DatasetSpec::Rayyan, 300, 5);
    let llm = oracle_llm(&ds, 5);
    let config = ZeroEdConfig {
        label_rate: 0.08,
        ..ZeroEdConfig::default()
    };
    let zeroed_f1 = ZeroEd::new(config)
        .detect(&ds.dirty, &llm)
        .mask
        .score_against(&ds.mask)
        .unwrap()
        .f1;

    let input = BaselineInput {
        dirty: &ds.dirty,
        metadata: &ds.metadata,
        labeled: &[],
    };
    let dboost_f1 = DBoost::default()
        .detect(&input)
        .score_against(&ds.mask)
        .unwrap()
        .f1;
    let katara_f1 = Katara
        .detect(&input)
        .score_against(&ds.mask)
        .unwrap()
        .f1;

    assert!(
        zeroed_f1 > dboost_f1,
        "ZeroED {zeroed_f1:.3} should beat dBoost {dboost_f1:.3} on Rayyan"
    );
    assert!(
        zeroed_f1 > katara_f1,
        "ZeroED {zeroed_f1:.3} should beat KATARA {katara_f1:.3}"
    );
    assert!(zeroed_f1 > 0.5, "ZeroED F1 too low: {zeroed_f1:.3}");
}

#[test]
fn zeroed_works_across_all_comparison_datasets() {
    for spec in DatasetSpec::COMPARISON {
        let ds = dataset(spec, 200, 9);
        let llm = oracle_llm(&ds, 9);
        let outcome = ZeroEd::new(ZeroEdConfig {
            label_rate: 0.1,
            ..ZeroEdConfig::fast()
        })
        .detect(&ds.dirty, &llm);
        let report = outcome.mask.score_against(&ds.mask).unwrap();
        assert!(
            report.f1 > 0.25,
            "{}: unexpectedly low F1 {report}",
            spec.name()
        );
        assert!(
            outcome.stats.llm_labeled_cells < ds.dirty.n_cells(),
            "{}: ZeroED must not label every cell with the LLM",
            spec.name()
        );
    }
}

#[test]
fn guideline_and_criteria_ablations_do_not_improve_f1_on_average() {
    // The paper's Table IV shows every ablation losing F1 on average across
    // datasets. With the simulated LLM the gap is smaller but the direction
    // should hold when averaged over a couple of datasets.
    let specs = [DatasetSpec::Beers, DatasetSpec::Flights];
    let mut full = 0.0;
    let mut no_guid = 0.0;
    let mut no_crit = 0.0;
    for (i, &spec) in specs.iter().enumerate() {
        let ds = dataset(spec, 250, 20 + i as u64);
        let llm = oracle_llm(&ds, 20 + i as u64);
        let base = ZeroEdConfig {
            label_rate: 0.08,
            ..ZeroEdConfig::fast()
        };
        let run = |config: ZeroEdConfig| {
            ZeroEd::new(config)
                .detect(&ds.dirty, &llm)
                .mask
                .score_against(&ds.mask)
                .unwrap()
                .f1
        };
        full += run(base.clone());
        no_guid += run(base.clone().without_guidelines());
        no_crit += run(base.clone().without_criteria());
    }
    assert!(
        full + 0.08 >= no_guid,
        "removing guidelines should not clearly help: full {full:.3} vs {no_guid:.3}"
    );
    assert!(
        full + 0.08 >= no_crit,
        "removing criteria should not clearly help: full {full:.3} vs {no_crit:.3}"
    );
}

#[test]
fn nadeef_finds_rule_violations_it_was_given_rules_for() {
    let ds = dataset(DatasetSpec::Hospital, 250, 3);
    let input = BaselineInput {
        dirty: &ds.dirty,
        metadata: &ds.metadata,
        labeled: &[],
    };
    let report = Nadeef::default()
        .detect(&input)
        .score_against(&ds.mask)
        .unwrap();
    // The default NADEEF only receives a small rule budget (as in the paper),
    // so recall is limited — but it must catch at least some true violations.
    assert!(report.tp > 0, "NADEEF should catch some violations: {report}");
    let full = Nadeef::with_all_rules()
        .detect(&input)
        .score_against(&ds.mask)
        .unwrap();
    assert!(full.recall >= report.recall, "more rules cannot reduce recall");
}

#[test]
fn token_ledger_is_monotone_across_pipeline_stages() {
    let ds = dataset(DatasetSpec::Rayyan, 150, 8);
    let llm = oracle_llm(&ds, 8);
    let before = llm.ledger().usage();
    assert_eq!(before.requests, 0);
    let _ = ZeroEd::new(ZeroEdConfig::fast()).detect(&ds.dirty, &llm);
    let after = llm.ledger().usage();
    assert!(after.requests > 0);
    assert!(after.input_tokens > 0);
    assert!(after.output_tokens > 0);
}

#[test]
fn detection_is_deterministic_for_a_fixed_seed() {
    let ds = dataset(DatasetSpec::Beers, 150, 4);
    let run = || {
        let llm = oracle_llm(&ds, 4);
        ZeroEd::new(ZeroEdConfig {
            seed: 11,
            ..ZeroEdConfig::fast()
        })
        .detect(&ds.dirty, &llm)
        .mask
    };
    assert_eq!(run(), run());
}
