//! Property-based tests (proptest) over the core data structures and
//! invariants that the pipeline relies on.

use proptest::prelude::*;
use zeroed::criteria::{Check, CriteriaSet, Criterion};
use zeroed::features::{generalize, normalized_mutual_information, HashEmbedder, Level};
use zeroed::ml::{Mlp, MlpConfig, StandardScaler};
use zeroed::prelude::*;
use zeroed::table::csv::{parse_csv, to_csv};
use zeroed::table::value::edit_distance;

fn cell_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,24}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSV serialisation round-trips arbitrary printable cell values.
    #[test]
    fn csv_round_trip(rows in proptest::collection::vec(
        proptest::collection::vec(cell_value(), 3),
        1..12,
    )) {
        let table = Table::new(
            "prop",
            vec!["a".into(), "b".into(), "c".into()],
            rows,
        ).unwrap();
        let text = to_csv(&table);
        let back = parse_csv("prop", &text).unwrap();
        prop_assert_eq!(table, back);
    }

    /// Pattern generalisation is deterministic, and values with identical
    /// character-class structure share a pattern.
    #[test]
    fn pattern_generalisation_is_stable(value in cell_value()) {
        for level in Level::ALL {
            let a = generalize(&value, level);
            let b = generalize(&value, level);
            prop_assert_eq!(a, b);
        }
        let upper = value.to_uppercase();
        // L2 ignores case, so a case change never alters the L2 pattern.
        prop_assert_eq!(generalize(&value, Level::L2), generalize(&upper, Level::L2));
    }

    /// Embeddings are unit-length (or zero for missing values) and identical
    /// strings embed identically.
    #[test]
    fn embeddings_are_normalised(value in cell_value()) {
        let embedder = HashEmbedder::new(16);
        let v = embedder.embed(&value);
        prop_assert_eq!(v.len(), 16);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm < 1.0 + 1e-4);
        prop_assert!(norm.abs() < 1e-6 || (norm - 1.0).abs() < 1e-4);
        prop_assert_eq!(embedder.embed(&value), v);
    }

    /// NMI is symmetric and bounded in [0, 1]; a column is maximally
    /// informative about itself whenever it is not constant.
    #[test]
    fn nmi_symmetry_and_bounds(values in proptest::collection::vec(0u8..5, 10..80)) {
        let xs: Vec<String> = values.iter().map(|v| format!("x{v}")).collect();
        let ys: Vec<String> = values.iter().map(|v| format!("y{}", v % 3)).collect();
        let xr: Vec<&str> = xs.iter().map(|s| s.as_str()).collect();
        let yr: Vec<&str> = ys.iter().map(|s| s.as_str()).collect();
        let ab = normalized_mutual_information(&xr, &yr);
        let ba = normalized_mutual_information(&yr, &xr);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&ab));
        let distinct: std::collections::HashSet<&u8> = values.iter().collect();
        if distinct.len() > 1 {
            let self_nmi = normalized_mutual_information(&xr, &xr);
            prop_assert!((self_nmi - 1.0).abs() < 1e-9);
        }
    }

    /// Edit distance is a metric-ish: symmetric, zero iff equal, bounded by the
    /// longer string length.
    #[test]
    fn edit_distance_properties(a in cell_value(), b in cell_value()) {
        let d_ab = edit_distance(&a, &b);
        let d_ba = edit_distance(&b, &a);
        prop_assert_eq!(d_ab, d_ba);
        prop_assert_eq!(d_ab == 0, a == b);
        prop_assert!(d_ab <= a.chars().count().max(b.chars().count()));
    }

    /// Error masks computed by diff always agree with manual comparison and the
    /// error count never exceeds the number of cells.
    #[test]
    fn error_mask_diff_is_consistent(
        values in proptest::collection::vec(cell_value(), 4..40),
        flips in proptest::collection::vec(any::<bool>(), 4..40),
    ) {
        let n = values.len().min(flips.len());
        let clean_rows: Vec<Vec<String>> = values[..n].iter().map(|v| vec![v.clone()]).collect();
        let clean = Table::new("c", vec!["v".into()], clean_rows).unwrap();
        let mut dirty = clean.clone();
        let mut expected = 0;
        for (i, &flip) in flips[..n].iter().enumerate() {
            if flip {
                let new_value = format!("{}~corrupt", clean.cell(i, 0));
                dirty.set(i, 0, new_value).unwrap();
                expected += 1;
            }
        }
        let mask = ErrorMask::diff(&dirty, &clean).unwrap();
        prop_assert_eq!(mask.error_count(), expected);
        prop_assert!(mask.error_rate() <= 1.0);
    }

    /// The criteria executor is total: it never panics on arbitrary values and
    /// always returns one verdict per criterion.
    #[test]
    fn criteria_executor_is_total(value in cell_value(), other in cell_value()) {
        let table = Table::new(
            "t",
            vec!["a".into(), "b".into()],
            vec![vec![value, other]],
        ).unwrap();
        let set = CriteriaSet {
            column: 0,
            criteria: vec![
                Criterion::new("nm", "", Check::NotMissing),
                Criterion::new("len", "", Check::LengthRange { min: 1, max: 10 }),
                Criterion::new("num", "", Check::NumericRange { min: 0.0, max: 100.0 }),
                Criterion::new("tok", "", Check::TokenCountRange { min: 1, max: 5 }),
                Criterion::new("charset", "", Check::Charset {
                    letters: true,
                    digits: true,
                    whitespace: true,
                    symbols: vec!['-', '.'],
                }),
            ],
        };
        let verdicts = set.evaluate_cell(&table, 0);
        prop_assert_eq!(verdicts.len(), 5);
    }

    /// Detection metrics satisfy their algebraic identities.
    #[test]
    fn detection_report_identities(tp in 0usize..50, fp in 0usize..50, fn_ in 0usize..50, tn in 0usize..50) {
        let r = DetectionReport::from_counts(tp, fp, fn_, tn);
        prop_assert_eq!(r.total_cells(), tp + fp + fn_ + tn);
        prop_assert!((0.0..=1.0).contains(&r.precision));
        prop_assert!((0.0..=1.0).contains(&r.recall));
        prop_assert!((0.0..=1.0).contains(&r.f1));
        if r.precision > 0.0 && r.recall > 0.0 {
            let expected = 2.0 * r.precision * r.recall / (r.precision + r.recall);
            prop_assert!((r.f1 - expected).abs() < 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The error injector never corrupts more cells than requested, never
    /// changes the table shape, and its mask always equals the dirty/clean diff.
    #[test]
    fn injector_respects_budget(seed in 0u64..500, rate in 0.0f64..0.15) {
        let ds = generate(
            DatasetSpec::Beers,
            &GenerateOptions {
                n_rows: 120,
                seed,
                error_spec: Some(ErrorSpec::new(rate / 5.0, rate / 5.0, rate / 5.0, rate / 5.0, rate / 5.0)),
            },
        );
        prop_assert_eq!(ds.dirty.n_rows(), ds.clean.n_rows());
        prop_assert_eq!(ds.dirty.n_cols(), ds.clean.n_cols());
        let budget = (rate * ds.dirty.n_cells() as f64).ceil() as usize + 5;
        prop_assert!(ds.mask.error_count() <= budget);
        let diff = ErrorMask::diff(&ds.dirty, &ds.clean).unwrap();
        prop_assert_eq!(diff, ds.mask.clone());
    }

    /// Standardised features keep their dimensionality and the MLP always
    /// outputs probabilities in [0, 1].
    #[test]
    fn scaler_and_mlp_are_well_behaved(rows in proptest::collection::vec(
        proptest::collection::vec(-100.0f32..100.0, 4),
        8..40,
    )) {
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let scaler = StandardScaler::fit(&refs);
        for row in &refs {
            prop_assert_eq!(scaler.transform(row).len(), 4);
        }
        let labels: Vec<f32> = rows.iter().map(|r| if r[0] > 0.0 { 1.0 } else { 0.0 }).collect();
        let mlp = Mlp::fit(&refs, &labels, &MlpConfig { epochs: 3, hidden: 8, ..MlpConfig::default() });
        for row in &refs {
            let p = mlp.predict_proba(row);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}
