//! Property-based tests over the core data structures and invariants that the
//! pipeline relies on.
//!
//! The build environment is offline, so instead of `proptest` these use a
//! small hand-rolled generator loop: each property runs over a fixed number of
//! seeded random cases (deterministic across runs) drawn from the same
//! distributions the original proptest strategies described.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use zeroed::criteria::{Check, CriteriaSet, Criterion};
use zeroed::features::{generalize, normalized_mutual_information, HashEmbedder, Level};
use zeroed::ml::{Mlp, MlpConfig, StandardScaler};
use zeroed::prelude::*;
use zeroed::table::csv::{parse_csv, to_csv};
use zeroed::table::value::edit_distance;

/// A random printable-ASCII cell value of length 0..=24 (mirrors the original
/// `[ -~]{0,24}` strategy).
fn cell_value(rng: &mut ChaCha8Rng) -> String {
    let len = rng.gen_range(0..=24usize);
    (0..len)
        .map(|_| char::from(rng.gen_range(0x20u8..=0x7e)))
        .collect()
}

/// CSV serialisation round-trips arbitrary printable cell values.
#[test]
fn csv_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC5F);
    for _case in 0..64 {
        let n_rows = rng.gen_range(1..12usize);
        let rows: Vec<Vec<String>> = (0..n_rows)
            .map(|_| (0..3).map(|_| cell_value(&mut rng)).collect())
            .collect();
        let table = Table::new("prop", vec!["a".into(), "b".into(), "c".into()], rows).unwrap();
        let text = to_csv(&table);
        let back = parse_csv("prop", &text).unwrap();
        assert_eq!(table, back);
    }
}

/// Pattern generalisation is deterministic, and values with identical
/// character-class structure share a pattern.
#[test]
fn pattern_generalisation_is_stable() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9A7);
    for _case in 0..64 {
        let value = cell_value(&mut rng);
        for level in Level::ALL {
            assert_eq!(generalize(&value, level), generalize(&value, level));
        }
        // L2 ignores case, so a case change never alters the L2 pattern.
        let upper = value.to_uppercase();
        assert_eq!(
            generalize(&value, Level::L2),
            generalize(&upper, Level::L2),
            "value {value:?}"
        );
    }
}

/// Embeddings are unit-length (or zero for missing values) and identical
/// strings embed identically.
#[test]
fn embeddings_are_normalised() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xE3B);
    let embedder = HashEmbedder::new(16);
    for _case in 0..64 {
        let value = cell_value(&mut rng);
        let v = embedder.embed(&value);
        assert_eq!(v.len(), 16);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(norm < 1.0 + 1e-4, "norm {norm} for {value:?}");
        assert!(
            norm.abs() < 1e-6 || (norm - 1.0).abs() < 1e-4,
            "norm {norm} for {value:?}"
        );
        assert_eq!(embedder.embed(&value), v);
    }
}

/// NMI is symmetric and bounded in [0, 1]; a column is maximally informative
/// about itself whenever it is not constant.
#[test]
fn nmi_symmetry_and_bounds() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x217);
    for _case in 0..64 {
        let n = rng.gen_range(10..80usize);
        let values: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..5)).collect();
        let xs: Vec<String> = values.iter().map(|v| format!("x{v}")).collect();
        let ys: Vec<String> = values.iter().map(|v| format!("y{}", v % 3)).collect();
        let xr: Vec<&str> = xs.iter().map(|s| s.as_str()).collect();
        let yr: Vec<&str> = ys.iter().map(|s| s.as_str()).collect();
        let ab = normalized_mutual_information(&xr, &yr);
        let ba = normalized_mutual_information(&yr, &xr);
        assert!((ab - ba).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&ab));
        let distinct: std::collections::HashSet<&u8> = values.iter().collect();
        if distinct.len() > 1 {
            let self_nmi = normalized_mutual_information(&xr, &xr);
            assert!((self_nmi - 1.0).abs() < 1e-9);
        }
    }
}

/// Edit distance is metric-ish: symmetric, zero iff equal, bounded by the
/// longer string length.
#[test]
fn edit_distance_properties() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xED1);
    for _case in 0..64 {
        let a = cell_value(&mut rng);
        let b = cell_value(&mut rng);
        let d_ab = edit_distance(&a, &b);
        let d_ba = edit_distance(&b, &a);
        assert_eq!(d_ab, d_ba);
        assert_eq!(d_ab == 0, a == b);
        assert!(d_ab <= a.chars().count().max(b.chars().count()));
    }
}

/// Error masks computed by diff always agree with manual comparison and the
/// error count never exceeds the number of cells.
#[test]
fn error_mask_diff_is_consistent() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD1F);
    for _case in 0..64 {
        let n = rng.gen_range(4..40usize);
        let values: Vec<String> = (0..n).map(|_| cell_value(&mut rng)).collect();
        let flips: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let clean_rows: Vec<Vec<String>> = values.iter().map(|v| vec![v.clone()]).collect();
        let clean = Table::new("c", vec!["v".into()], clean_rows).unwrap();
        let mut dirty = clean.clone();
        let mut expected = 0;
        for (i, &flip) in flips.iter().enumerate() {
            if flip {
                let new_value = format!("{}~corrupt", clean.cell(i, 0));
                dirty.set(i, 0, new_value).unwrap();
                expected += 1;
            }
        }
        let mask = ErrorMask::diff(&dirty, &clean).unwrap();
        assert_eq!(mask.error_count(), expected);
        assert!(mask.error_rate() <= 1.0);
    }
}

/// The criteria executor is total: it never panics on arbitrary values and
/// always returns one verdict per criterion.
#[test]
fn criteria_executor_is_total() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC21);
    for _case in 0..64 {
        let value = cell_value(&mut rng);
        let other = cell_value(&mut rng);
        let table = Table::new("t", vec!["a".into(), "b".into()], vec![vec![value, other]]).unwrap();
        let set = CriteriaSet {
            column: 0,
            criteria: vec![
                Criterion::new("nm", "", Check::NotMissing),
                Criterion::new("len", "", Check::LengthRange { min: 1, max: 10 }),
                Criterion::new(
                    "num",
                    "",
                    Check::NumericRange {
                        min: 0.0,
                        max: 100.0,
                    },
                ),
                Criterion::new("tok", "", Check::TokenCountRange { min: 1, max: 5 }),
                Criterion::new(
                    "charset",
                    "",
                    Check::Charset {
                        letters: true,
                        digits: true,
                        whitespace: true,
                        symbols: vec!['-', '.'],
                    },
                ),
            ],
        };
        let verdicts = set.evaluate_cell(&table, 0);
        assert_eq!(verdicts.len(), 5);
    }
}

/// Detection metrics satisfy their algebraic identities.
#[test]
fn detection_report_identities() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xDE7);
    for _case in 0..64 {
        let tp = rng.gen_range(0usize..50);
        let fp = rng.gen_range(0usize..50);
        let fn_ = rng.gen_range(0usize..50);
        let tn = rng.gen_range(0usize..50);
        let r = DetectionReport::from_counts(tp, fp, fn_, tn);
        assert_eq!(r.total_cells(), tp + fp + fn_ + tn);
        assert!((0.0..=1.0).contains(&r.precision));
        assert!((0.0..=1.0).contains(&r.recall));
        assert!((0.0..=1.0).contains(&r.f1));
        if r.precision > 0.0 && r.recall > 0.0 {
            let expected = 2.0 * r.precision * r.recall / (r.precision + r.recall);
            assert!((r.f1 - expected).abs() < 1e-9);
        }
    }
}

/// The error injector never corrupts more cells than requested, never changes
/// the table shape, and its mask always equals the dirty/clean diff.
#[test]
fn injector_respects_budget() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x1B9);
    for _case in 0..16 {
        let seed = rng.gen_range(0u64..500);
        let rate = rng.gen_range(0.0f64..0.15);
        let ds = generate(
            DatasetSpec::Beers,
            &GenerateOptions {
                n_rows: 120,
                seed,
                error_spec: Some(ErrorSpec::new(
                    rate / 5.0,
                    rate / 5.0,
                    rate / 5.0,
                    rate / 5.0,
                    rate / 5.0,
                )),
            },
        );
        assert_eq!(ds.dirty.n_rows(), ds.clean.n_rows());
        assert_eq!(ds.dirty.n_cols(), ds.clean.n_cols());
        let budget = (rate * ds.dirty.n_cells() as f64).ceil() as usize + 5;
        assert!(ds.mask.error_count() <= budget);
        let diff = ErrorMask::diff(&ds.dirty, &ds.clean).unwrap();
        assert_eq!(diff, ds.mask);
    }
}

/// Standardised features keep their dimensionality and the MLP always outputs
/// probabilities in [0, 1].
#[test]
fn scaler_and_mlp_are_well_behaved() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5CA);
    for _case in 0..16 {
        let n = rng.gen_range(8..40usize);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..4).map(|_| rng.gen_range(-100.0f32..100.0)).collect())
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let scaler = StandardScaler::fit(&refs);
        for row in &refs {
            assert_eq!(scaler.transform(row).len(), 4);
        }
        let labels: Vec<f32> = rows
            .iter()
            .map(|r| if r[0] > 0.0 { 1.0 } else { 0.0 })
            .collect();
        let mlp = Mlp::fit(
            &refs,
            &labels,
            &MlpConfig {
                epochs: 3,
                hidden: 8,
                ..MlpConfig::default()
            },
        );
        for row in &refs {
            let p = mlp.predict_proba(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
