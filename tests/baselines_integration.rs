//! Integration tests for the baselines and the experiment-harness invariants
//! that the paper's comparative claims rest on.

use zeroed::baselines::{ActiveClean, Baseline, BaselineInput, DBoost, FmEd, LabeledTuple, Raha};
use zeroed::prelude::*;

fn dataset(spec: DatasetSpec, rows: usize, seed: u64) -> zeroed::datagen::GeneratedDataset {
    generate(
        spec,
        &GenerateOptions {
            n_rows: rows,
            seed,
            ..Default::default()
        },
    )
}

#[test]
fn dboost_excels_on_outlier_only_data() {
    let ds = generate(
        DatasetSpec::Beers,
        &GenerateOptions {
            n_rows: 300,
            seed: 6,
            error_spec: Some(ErrorSpec::only(ErrorType::Outlier, 0.03)),
        },
    );
    let input = BaselineInput {
        dirty: &ds.dirty,
        metadata: &ds.metadata,
        labeled: &[],
    };
    let report = DBoost::default()
        .detect(&input)
        .score_against(&ds.mask)
        .unwrap();
    // The injector also produces mild distortions (e.g. scaling a value down)
    // that sit inside the 3-sigma band, so recall is well below 1, but dBoost
    // should still catch a solid share with decent precision.
    assert!(
        report.recall > 0.25 && report.precision > 0.5,
        "dBoost should catch a good share of numeric outliers: {report}"
    );
}

#[test]
fn dboost_misses_missing_values_by_design() {
    let ds = generate(
        DatasetSpec::Beers,
        &GenerateOptions {
            n_rows: 300,
            seed: 6,
            error_spec: Some(ErrorSpec::only(ErrorType::MissingValue, 0.03)),
        },
    );
    let input = BaselineInput {
        dirty: &ds.dirty,
        metadata: &ds.metadata,
        labeled: &[],
    };
    let report = DBoost::default()
        .detect(&input)
        .score_against(&ds.mask)
        .unwrap();
    // Missing values in an otherwise clean column look like a rare pattern, so
    // recall is not exactly zero, but precision-oriented detection of MVs is
    // not its strength (Table I marks it ✗).
    assert!(report.f1 < 0.9, "dBoost should not be an MV specialist: {report}");
}

#[test]
fn raha_improves_with_more_labeled_tuples_on_average() {
    let specs = [DatasetSpec::Hospital, DatasetSpec::Beers];
    let mut few_total = 0.0;
    let mut many_total = 0.0;
    for (i, &spec) in specs.iter().enumerate() {
        let ds = dataset(spec, 300, 30 + i as u64);
        // Stride-labelled tuples, like the harness.
        let rows_few: Vec<usize> = (0..ds.dirty.n_rows()).step_by(ds.dirty.n_rows() / 2).collect();
        let rows_many: Vec<usize> = (0..ds.dirty.n_rows()).step_by(ds.dirty.n_rows() / 30).collect();
        let few = LabeledTuple::from_mask(&ds.mask, &rows_few);
        let many = LabeledTuple::from_mask(&ds.mask, &rows_many);
        let f1 = |labeled: &[LabeledTuple]| {
            Raha::default()
                .detect(&BaselineInput {
                    dirty: &ds.dirty,
                    metadata: &ds.metadata,
                    labeled,
                })
                .score_against(&ds.mask)
                .unwrap()
                .f1
        };
        few_total += f1(&few);
        many_total += f1(&many);
    }
    assert!(
        many_total + 0.05 >= few_total,
        "more labels should not hurt Raha: few {few_total:.3} vs many {many_total:.3}"
    );
}

#[test]
fn activeclean_has_high_recall_low_precision_profile() {
    let ds = dataset(DatasetSpec::Flights, 300, 12);
    let rows: Vec<usize> = (0..ds.dirty.n_rows()).step_by(10).collect();
    let labeled = LabeledTuple::from_mask(&ds.mask, &rows);
    let report = ActiveClean::default()
        .detect(&BaselineInput {
            dirty: &ds.dirty,
            metadata: &ds.metadata,
            labeled: &labeled,
        })
        .score_against(&ds.mask)
        .unwrap();
    // Record-level flagging yields recall >= precision on error-dense data.
    assert!(
        report.recall >= report.precision,
        "ActiveClean should be recall-heavy: {report}"
    );
}

#[test]
fn fm_ed_spends_more_input_tokens_than_zeroed() {
    // The gap grows with table size (FM_ED prompts every tuple); 600 rows is
    // already enough for the ordering to be unambiguous.
    let ds = dataset(DatasetSpec::Rayyan, 600, 14);
    let types: Vec<_> = ds
        .injected
        .iter()
        .map(|e| ((e.row, e.col), e.error_type))
        .collect();

    let fm_llm = SimLlm::default_model(1)
        .with_oracle(ds.mask.clone())
        .with_error_types(types.clone());
    let _ = FmEd::new(&fm_llm).detect(&BaselineInput {
        dirty: &ds.dirty,
        metadata: &ds.metadata,
        labeled: &[],
    });
    let fm_usage = fm_llm.ledger().usage();

    let zeroed_llm = SimLlm::default_model(1)
        .with_oracle(ds.mask.clone())
        .with_error_types(types);
    let _ = ZeroEd::new(ZeroEdConfig::fast()).detect(&ds.dirty, &zeroed_llm);
    let zeroed_usage = zeroed_llm.ledger().usage();

    assert!(
        fm_usage.input_tokens > zeroed_usage.input_tokens,
        "FM_ED input tokens {} should exceed ZeroED's {}",
        fm_usage.input_tokens,
        zeroed_usage.input_tokens
    );
    // And ZeroED's output share is higher: it asks for reasoning artefacts,
    // not just yes/no verdicts.
    let fm_ratio = fm_usage.output_tokens as f64 / fm_usage.total().max(1) as f64;
    let zeroed_ratio = zeroed_usage.output_tokens as f64 / zeroed_usage.total().max(1) as f64;
    assert!(
        zeroed_ratio > fm_ratio,
        "ZeroED output share {zeroed_ratio:.3} should exceed FM_ED's {fm_ratio:.3}"
    );
}
