//! Persistence operations: sharded cross-process warm starts, TTL/GC and
//! read-only store inspection.
//!
//! ```text
//! cargo run --release --example persistent_store
//! ```
//!
//! Three detectors ("processes") share one sharded store root concurrently,
//! then a fresh detector warm-starts from the merged writer slots with zero
//! LLM requests, and the store is inspected the way `zeroed-store-tool`
//! would — without taking any locks.

use zeroed::prelude::*;
use zeroed::runtime::StoreConfig;

fn main() {
    let dir = std::env::temp_dir().join(format!("zeroed-example-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let ds = generate(
        DatasetSpec::Hospital,
        &GenerateOptions {
            n_rows: 400,
            seed: 7,
            error_spec: None,
        },
    );
    // Shard the key space 4 ways so concurrent detector processes can write
    // one store root without contending on a single lock; expire records
    // after a week so stale experiment bins reclaim themselves.
    let config = ZeroEdConfig::fast().with_store(
        StoreConfig::new(dir.to_str().unwrap())
            .with_shards(4)
            .with_ttl_secs(7 * 24 * 3600),
    );

    // Three concurrent writers, disjoint workloads (distinct LLM seeds).
    // Constructed up front so all three hold their writer slots at once.
    println!("cold: 3 concurrent detectors writing one sharded store root …");
    let detectors: Vec<ZeroEd> = (0..3).map(|_| ZeroEd::new(config.clone())).collect();
    let cold_masks: Vec<ErrorMask> = std::thread::scope(|scope| {
        let handles: Vec<_> = detectors
            .into_iter()
            .enumerate()
            .map(|(w, detector)| {
                let w = w as u64;
                let ds = &ds;
                scope.spawn(move || {
                    let llm = SimLlm::default_model(w).with_oracle(ds.mask.clone());
                    let outcome = detector.detect(&ds.dirty, &llm);
                    println!(
                        "  writer {w}: {} responses persisted across {} shards",
                        outcome.stats.store_persisted_records, outcome.stats.store_shards
                    );
                    outcome.mask
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // A fresh detector merges every writer slot and replays all three
    // workloads without a single model call.
    println!("warm: fresh detector reopening the store …");
    let warm_detector = ZeroEd::new(config);
    for (w, cold_mask) in cold_masks.iter().enumerate() {
        let llm = SimLlm::default_model(w as u64).with_oracle(ds.mask.clone());
        let outcome = warm_detector.detect(&ds.dirty, &llm);
        assert_eq!(&outcome.mask, cold_mask, "bit-identical replay");
        assert_eq!(llm.ledger().usage().requests, 0, "zero LLM requests");
        println!(
            "  workload {w}: mask identical, 0 LLM requests, {} tokens saved",
            outcome.stats.cache_tokens_saved
        );
    }
    drop(warm_detector);

    // Inspect the store read-only — what `zeroed-store-tool stat` prints.
    let report = zeroed::store::inspect(&dir).expect("store readable");
    println!(
        "store: {} shards, {} writer dirs, {} live records, {} bytes",
        report.shard_count,
        report.units.len(),
        report.live.len(),
        report.total_file_bytes
    );
    for (kind, count) in report.kind_counts() {
        println!("  kind {kind:<10} {count}");
    }
    assert!(zeroed::store::verify(&dir).expect("verify runs").is_empty());
    println!("verify: every header and record checksum intact");

    let _ = std::fs::remove_dir_all(&dir);
}
