//! Benchmark walk-through: generate the Flights dataset, run ZeroED and two
//! baselines, and compare their precision/recall/F1 against the ground truth.
//!
//! ```text
//! cargo run --release --example flights_cleaning
//! ```
//!
//! Flights is the paper's canonical example of rule-violation-heavy data:
//! several booking websites report the same flight with conflicting times, so
//! cross-attribute context is essential. The example shows why the per-tuple
//! LLM baseline (FM_ED) and the purely statistical baseline (dBoost) trail
//! ZeroED there.

use zeroed::baselines::{Baseline, BaselineInput, DBoost, FmEd};
use zeroed::prelude::*;

fn score(name: &str, mask: &ErrorMask, truth: &ErrorMask) {
    let report = mask.score_against(truth).expect("same shape");
    println!(
        "{name:<8}  precision {:.3}  recall {:.3}  F1 {:.3}",
        report.precision, report.recall, report.f1
    );
}

fn main() {
    // Generate a Flights benchmark instance with the paper's error profile.
    let ds = generate(
        DatasetSpec::Flights,
        &GenerateOptions {
            n_rows: 800,
            seed: 11,
            ..Default::default()
        },
    );
    println!(
        "Flights: {} tuples x {} attributes, {:.1}% erroneous cells\n",
        ds.dirty.n_rows(),
        ds.dirty.n_cols(),
        ds.mask.error_rate() * 100.0
    );

    // The simulated LLM is calibrated with the ground truth (as the experiment
    // harness does); swap in your own `LlmClient` for real deployments.
    let types: Vec<_> = ds
        .injected
        .iter()
        .map(|e| ((e.row, e.col), e.error_type))
        .collect();
    let llm = SimLlm::default_model(3)
        .with_oracle(ds.mask.clone())
        .with_error_types(types);

    // ZeroED.
    let outcome = ZeroEd::new(ZeroEdConfig::default()).detect(&ds.dirty, &llm);
    score("ZeroED", &outcome.mask, &ds.mask);

    // FM_ED: per-tuple LLM prompting.
    let fm_mask = FmEd::new(&llm).detect(&BaselineInput {
        dirty: &ds.dirty,
        metadata: &ds.metadata,
        labeled: &[],
    });
    score("FM_ED", &fm_mask, &ds.mask);

    // dBoost: statistical outliers only.
    let dboost_mask = DBoost::default().detect(&BaselineInput {
        dirty: &ds.dirty,
        metadata: &ds.metadata,
        labeled: &[],
    });
    score("dBoost", &dboost_mask, &ds.mask);

    println!(
        "\nLLM token usage across both LLM-based methods: {} input / {} output",
        llm.ledger().usage().input_tokens,
        llm.ledger().usage().output_tokens
    );
}
