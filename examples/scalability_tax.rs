//! Scalability on the synthetic Tax dataset: runtime and token cost of ZeroED
//! vs the per-tuple FM_ED baseline as the table grows (the paper's Fig. 7b /
//! Fig. 8b shape at laptop scale).
//!
//! ```text
//! cargo run --release --example scalability_tax
//! ```

use std::time::Instant;
use zeroed::baselines::{Baseline, BaselineInput, FmEd};
use zeroed::prelude::*;

fn main() {
    let sizes = [1_000usize, 2_000, 4_000];
    println!("size      method   runtime(s)   input tokens   output tokens   F1");
    for &size in &sizes {
        let ds = generate(
            DatasetSpec::Tax,
            &GenerateOptions {
                n_rows: size,
                seed: 17,
                ..Default::default()
            },
        );
        let types: Vec<_> = ds
            .injected
            .iter()
            .map(|e| ((e.row, e.col), e.error_type))
            .collect();

        // ZeroED.
        let llm = SimLlm::default_model(2)
            .with_oracle(ds.mask.clone())
            .with_error_types(types.clone());
        let start = Instant::now();
        let outcome = ZeroEd::new(ZeroEdConfig::default()).detect(&ds.dirty, &llm);
        let elapsed = start.elapsed();
        let usage = llm.ledger().usage();
        let f1 = outcome.mask.score_against(&ds.mask).unwrap().f1;
        println!(
            "{size:<9} ZeroED   {:<12.2} {:<14} {:<15} {f1:.3}",
            elapsed.as_secs_f64(),
            usage.input_tokens,
            usage.output_tokens
        );

        // FM_ED.
        let llm = SimLlm::default_model(2)
            .with_oracle(ds.mask.clone())
            .with_error_types(types);
        let start = Instant::now();
        let mask = FmEd::new(&llm).detect(&BaselineInput {
            dirty: &ds.dirty,
            metadata: &ds.metadata,
            labeled: &[],
        });
        let elapsed = start.elapsed();
        let usage = llm.ledger().usage();
        let f1 = mask.score_against(&ds.mask).unwrap().f1;
        println!(
            "{size:<9} FM_ED    {:<12.2} {:<14} {:<15} {f1:.3}",
            elapsed.as_secs_f64(),
            usage.input_tokens,
            usage.output_tokens
        );
    }
    println!("\nZeroED's token cost grows with the number of clusters (bounded), while FM_ED's grows linearly with the table.");
}
