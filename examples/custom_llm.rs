//! Plugging a custom LLM into ZeroED.
//!
//! ```text
//! cargo run --release --example custom_llm
//! ```
//!
//! The pipeline only talks to the `LlmClient` trait, so swapping the simulated
//! model for a served one (vLLM, an HTTP API, ...) means implementing that
//! trait. This example implements a tiny rule-of-thumb "LLM" from scratch —
//! it answers every request with simple heuristics — and runs the full
//! pipeline against it, demonstrating exactly which methods a real client has
//! to provide and how token accounting works.

use zeroed::criteria::{Check, CriteriaSet, Criterion};
use zeroed::llm::{
    count_tokens, AttributeContext, DistributionAnalysis, ErrorTypeGuide, Guideline, LlmClient,
    TokenLedger,
};
use zeroed::prelude::*;

/// A minimal hand-rolled "LLM": flags missing values and values it has never
/// seen more than once, and produces one not-missing criterion per attribute.
struct RuleOfThumbLlm {
    ledger: TokenLedger,
}

impl RuleOfThumbLlm {
    fn new() -> Self {
        Self {
            ledger: TokenLedger::new(),
        }
    }

    fn charge(&self, prompt: &str, response: &str) {
        self.ledger
            .record_counts(count_tokens(prompt), count_tokens(response));
    }
}

impl LlmClient for RuleOfThumbLlm {
    fn name(&self) -> &str {
        "rule-of-thumb"
    }

    fn ledger(&self) -> &TokenLedger {
        &self.ledger
    }

    fn generate_criteria(&self, ctx: &AttributeContext<'_>) -> CriteriaSet {
        self.charge("generate criteria", "one criterion");
        let mut set = CriteriaSet::new(ctx.column);
        set.criteria.push(Criterion::new(
            format!("is_clean_{}_not_missing", ctx.column_name()),
            "values should be present",
            Check::NotMissing,
        ));
        set
    }

    fn analyze_distribution(&self, ctx: &AttributeContext<'_>) -> DistributionAnalysis {
        self.charge("analyze distribution", "summary");
        DistributionAnalysis {
            column: ctx.column_name().to_string(),
            total_records: ctx.table.n_rows(),
            distinct_values: 0,
            missing_ratio: 0.0,
            frequent_values: vec![],
            rare_values: vec![],
            frequent_patterns: vec![],
            numeric_summary: None,
            findings: vec!["no analysis performed by this toy client".into()],
        }
    }

    fn generate_guideline(
        &self,
        ctx: &AttributeContext<'_>,
        _analysis: &DistributionAnalysis,
    ) -> Guideline {
        self.charge("generate guideline", "guideline");
        Guideline {
            column: ctx.column_name().to_string(),
            explanation: "flag empty values and one-off strings".into(),
            error_types: vec![ErrorTypeGuide {
                error_type: ErrorType::MissingValue,
                examples: vec![String::new()],
                causes: "blank fields".into(),
                detection: "value is empty".into(),
            }],
        }
    }

    fn label_batch(
        &self,
        ctx: &AttributeContext<'_>,
        _guideline: Option<&Guideline>,
        rows: &[usize],
    ) -> Vec<bool> {
        self.charge("label batch", "labels");
        rows.iter()
            .map(|&row| {
                let v = ctx.table.cell(row, ctx.column);
                let occurrences = ctx
                    .table
                    .column_refs(ctx.column)
                    .iter()
                    .filter(|x| **x == v)
                    .count();
                v.trim().is_empty() || occurrences <= 1
            })
            .collect()
    }

    fn refine_criteria(
        &self,
        _ctx: &AttributeContext<'_>,
        _clean_examples: &[String],
        _error_examples: &[String],
        existing: &CriteriaSet,
    ) -> CriteriaSet {
        self.charge("refine criteria", "unchanged");
        existing.clone()
    }

    fn augment_errors(
        &self,
        _ctx: &AttributeContext<'_>,
        clean_examples: &[String],
        count: usize,
    ) -> Vec<String> {
        self.charge("augment errors", "errors");
        (0..count)
            .map(|i| format!("{}x", clean_examples[i % clean_examples.len()]))
            .collect()
    }

    fn detect_tuple(&self, table: &Table, row: usize) -> Vec<bool> {
        self.charge("detect tuple", "flags");
        (0..table.n_cols())
            .map(|col| table.cell(row, col).trim().is_empty())
            .collect()
    }
}

fn main() {
    let ds = generate(
        DatasetSpec::Hospital,
        &GenerateOptions {
            n_rows: 300,
            seed: 4,
            ..Default::default()
        },
    );

    let custom = RuleOfThumbLlm::new();
    let outcome = ZeroEd::new(ZeroEdConfig::fast()).detect(&ds.dirty, &custom);
    let report = outcome.mask.score_against(&ds.mask).unwrap();
    println!(
        "rule-of-thumb client: precision {:.3}, recall {:.3}, F1 {:.3}",
        report.precision, report.recall, report.f1
    );

    let simulated = SimLlm::default_model(4).with_oracle(ds.mask.clone());
    let outcome = ZeroEd::new(ZeroEdConfig::fast()).detect(&ds.dirty, &simulated);
    let report = outcome.mask.score_against(&ds.mask).unwrap();
    println!(
        "simulated Qwen2.5-72b:  precision {:.3}, recall {:.3}, F1 {:.3}",
        report.precision, report.recall, report.f1
    );
    println!(
        "\ncustom client token usage: {:?}",
        custom.ledger().usage()
    );
}
