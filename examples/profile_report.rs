//! Stage-profile walk-through: run one detection and print the hierarchical
//! wall-time breakdown the `zeroed-obs` profiler recorded.
//!
//! ```text
//! cargo run --release --example profile_report
//! ```
//!
//! Every `ZeroEd::detect` run carries a `StageProfile` tree in
//! `PipelineStats::stage_profile`: the five pipeline steps as sequential
//! spans (with sub-stages like NMI correlation and criteria generation under
//! `features`), plus grafted *parallel* distribution nodes — per-attribute
//! task latencies, the scheduler's queue-wait/execute split, the repair
//! ladder's validate/salvage/re-ask timing and the response cache's lock
//! holds. Parallel nodes (marked `∥` in the table) accumulate CPU-time
//! across workers, so their percentages can exceed 100 — that gap *is* the
//! speedup the worker pool bought.

use zeroed::prelude::*;

fn main() {
    let ds = generate(
        DatasetSpec::Hospital,
        &GenerateOptions {
            n_rows: 2_000,
            seed: 7,
            ..Default::default()
        },
    );
    let llm = SimLlm::default_model(1)
        .with_oracle(ds.mask.clone())
        .with_latency_scale(1.0);
    let detector = ZeroEd::new(ZeroEdConfig::fast());
    let outcome = detector.detect(&ds.dirty, &llm);

    let profile = outcome
        .stats
        .stage_profile
        .as_ref()
        .expect("a non-empty run always carries a stage profile");

    println!(
        "hospital @ {} rows × {} cols — {} scheduler tasks, {} LLM requests\n",
        ds.dirty.n_rows(),
        ds.dirty.n_cols(),
        outcome.stats.runtime_tasks,
        llm.ledger().usage().requests,
    );
    print!("{}", profile.render_table());

    // The tree is plain data: walk it to answer "where did the wall go?".
    let covered = profile.coverage() * 100.0;
    println!("\ntop-level stages cover {covered:.1}% of the run's wall time");
    if let Some(execute) = profile.find("runtime/execute") {
        if let Some(q) = &execute.quantiles {
            println!(
                "scheduler task latency: p50 {:.1} ms, p99 {:.1} ms over {} tasks",
                q.p50_nanos as f64 / 1e6,
                q.p99_nanos as f64 / 1e6,
                execute.count,
            );
        }
    }
    assert!(profile.accounting_ok(), "child spans must not overflow their parent");
}
