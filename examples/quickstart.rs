//! Quickstart: detect errors in a small dirty table with ZeroED.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This example uses the simulated LLM in *zero-knowledge* mode (no oracle):
//! every label comes purely from the model's heuristic reasoning over the
//! generated criteria and guidelines, which is how you would run ZeroED on
//! your own data after plugging in a real `LlmClient` implementation.

use zeroed::prelude::*;

fn main() {
    // Build a small dirty table by hand: city → state should be consistent,
    // salaries are five-digit numbers, and a few cells are corrupted.
    let mut rows: Vec<Vec<String>> = (0..200)
        .map(|i| {
            let city = ["Boston", "Denver", "Phoenix", "Chicago"][i % 4];
            let state = ["MA", "CO", "AZ", "IL"][i % 4];
            let salary = format!("{}", 52_000 + (i % 9) * 1_000);
            vec![city.to_string(), state.to_string(), salary]
        })
        .collect();
    rows[7][1] = "CO".into(); // rule violation: Boston paired with CO
    rows[23][2] = "".into(); // missing value
    rows[41][2] = "5800000".into(); // outlier
    rows[77][0] = "Bostn".into(); // typo
    let dirty = Table::new(
        "salaries",
        vec!["city".into(), "state".into(), "salary".into()],
        rows,
    )
    .expect("rows match the schema");

    // The simulated LLM (Qwen2.5-72B profile) with no ground-truth oracle:
    // its labels come from profiling-based reasoning only.
    let llm = SimLlm::default_model(7);

    // Run the pipeline with a slightly higher label rate since the table is tiny.
    let config = ZeroEdConfig {
        label_rate: 0.10,
        ..ZeroEdConfig::default()
    };
    let outcome = ZeroEd::new(config).detect(&dirty, &llm);

    println!("ZeroED flagged {} of {} cells as errors:", outcome.mask.error_count(), dirty.n_cells());
    for cell in outcome.mask.iter_errors() {
        println!(
            "  row {:>3}  {:<8} = {:?}",
            cell.row,
            dirty.columns()[cell.col],
            dirty.cell(cell.row, cell.col)
        );
    }
    println!("\nPipeline statistics: {:?}", outcome.stats);
    println!(
        "LLM usage: {} requests, {} input tokens, {} output tokens",
        llm.ledger().usage().requests,
        llm.ledger().usage().input_tokens,
        llm.ledger().usage().output_tokens
    );
    println!("Total runtime: {:.2?}", outcome.timings.total());
}
