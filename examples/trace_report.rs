//! Flight-recorder walk-through: run one detection with per-request tracing
//! and render what the recorder saw — an event census, an ASCII waterfall of
//! the slowest request, and a Chrome trace-event file for Perfetto.
//!
//! ```text
//! cargo run --release --example trace_report
//! ```
//!
//! Every `ZeroEd::detect` run journals typed events (scheduler
//! submit/queue/execute, cache hit/miss/publish, repair ladder outcomes,
//! store writes) into a bounded ring keyed by deterministic per-request
//! trace ids, and freezes the journal into `PipelineStats::trace`. The
//! summary's per-kind counts are exact even when the ring overflows; the
//! surviving events power the exemplars and the exporters used below. The
//! written JSON loads directly in <https://ui.perfetto.dev> or
//! `chrome://tracing`.

use zeroed::obs::{chrome_trace_json, EventKind};
use zeroed::prelude::*;

fn main() {
    let ds = generate(
        DatasetSpec::Hospital,
        &GenerateOptions {
            n_rows: 2_000,
            seed: 7,
            ..Default::default()
        },
    );
    let llm = SimLlm::default_model(1)
        .with_oracle(ds.mask.clone())
        .with_latency_scale(1.0);
    let detector = ZeroEd::new(ZeroEdConfig::fast());
    let outcome = detector.detect(&ds.dirty, &llm);

    let trace = outcome
        .stats
        .trace
        .as_ref()
        .expect("every run carries a trace summary");
    trace.verify().expect("the journal must be causally consistent");

    // 1. The census: exact per-kind counts, independent of ring capacity.
    println!(
        "flight recorder: {} events recorded, {} dropped from the ring\n",
        trace.recorded(),
        trace.dropped_events,
    );
    for kind in EventKind::ALL {
        let n = trace.count(kind);
        if n > 0 {
            println!("  {:<18} {:>6}", kind.name(), n);
        }
    }

    // 2. The waterfall: the slowest request-rooted trace, event by event.
    let slowest = trace
        .exemplars
        .iter()
        .max_by_key(|e| e.span_nanos())
        .expect("a traced run always yields exemplars");
    let span = slowest.span_nanos().max(1);
    const WIDTH: usize = 48;
    println!(
        "\nslowest request {:#018x} — {:.3} ms, {} events",
        slowest.trace.raw(),
        span as f64 / 1e6,
        slowest.events.len(),
    );
    println!("  {:>10}  {:<width$}  event", "offset", "", width = WIDTH);
    for ev in &slowest.events {
        let offset = ev.t_nanos - slowest.begin_nanos;
        let col = (offset as usize * (WIDTH - 1)) / span as usize;
        let mut lane = vec![b'-'; WIDTH];
        lane[col] = b'*';
        println!(
            "  {:>8.3}ms  {}  {} (arg {})",
            offset as f64 / 1e6,
            String::from_utf8(lane).unwrap(),
            ev.kind.name(),
            ev.arg,
        );
    }

    // 3. The Chrome export: queue/execute/compute spans plus instants.
    let chrome = chrome_trace_json(&trace.events);
    let path = std::env::temp_dir().join("zeroed_trace_report.json");
    std::fs::write(&path, &chrome).expect("write chrome trace");
    println!(
        "\nwrote {} ({} bytes) — open it in https://ui.perfetto.dev",
        path.display(),
        chrome.len(),
    );
}
