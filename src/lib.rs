//! # zeroed
//!
//! Umbrella crate for the ZeroED reproduction: hybrid zero-shot error
//! detection for tabular data through (simulated) LLM reasoning.
//!
//! This crate re-exports the workspace's public surface so applications can
//! depend on a single crate:
//!
//! * [`table`] — tabular data model, CSV I/O, error masks, metrics;
//! * [`datagen`] — benchmark dataset generators and BART-style error injection;
//! * [`features`] — statistical/semantic/criteria feature representation;
//! * [`cluster`] — k-means, agglomerative clustering and random sampling;
//! * [`ml`] — the MLP detector and logistic regression;
//! * [`criteria`] — the executable error-checking criteria DSL;
//! * [`llm`] — the `LlmClient` abstraction, prompt templates, token ledger and
//!   the simulated LLM;
//! * [`obs`] — the always-on observability layer (hierarchical stage
//!   profiler, counters/gauges, latency histograms with exact quantiles);
//! * [`runtime`] — the concurrent LLM orchestration runtime (worker-pool
//!   scheduler, request-dedup response cache, and the multi-backend router
//!   with hedged requests and circuit breaking);
//! * [`store`] — the crash-safe on-disk response store (sharded writers,
//!   TTL/GC, read-only inspection) behind cross-process warm starts;
//! * [`baselines`] — dBoost, NADEEF, KATARA, Raha, ActiveClean and FM_ED;
//! * [`core`] — the ZeroED pipeline itself.
//!
//! See `examples/quickstart.rs` for a five-minute tour,
//! `examples/persistent_store.rs` for the sharded-persistence operations
//! tour, and ARCHITECTURE.md for the crate map and serving-stack overview.
//!
//! ```
//! use zeroed::prelude::*;
//!
//! let ds = generate(DatasetSpec::Beers, &GenerateOptions { n_rows: 120, seed: 1, ..Default::default() });
//! let llm = SimLlm::default_model(1).with_oracle(ds.mask.clone());
//! let outcome = ZeroEd::new(ZeroEdConfig::fast()).detect(&ds.dirty, &llm);
//! let report = outcome.mask.score_against(&ds.mask).unwrap();
//! assert!(report.f1 >= 0.0);
//! ```

pub use zeroed_baselines as baselines;
pub use zeroed_cluster as cluster;
pub use zeroed_core as core;
pub use zeroed_criteria as criteria;
pub use zeroed_datagen as datagen;
pub use zeroed_features as features;
pub use zeroed_llm as llm;
pub use zeroed_ml as ml;
pub use zeroed_obs as obs;
pub use zeroed_runtime as runtime;
pub use zeroed_store as store;
pub use zeroed_table as table;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use zeroed_baselines::{Baseline, BaselineInput, LabeledTuple};
    pub use zeroed_core::{DetectionOutcome, ZeroEd, ZeroEdConfig};
    pub use zeroed_datagen::{generate, DatasetSpec, ErrorSpec, GenerateOptions};
    pub use zeroed_llm::{FaultSchedule, LlmClient, LlmProfile, SimLlm};
    pub use zeroed_runtime::{RouterConfig, RouterLlm};
    pub use zeroed_table::{DetectionReport, ErrorMask, ErrorType, Table};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_round_trip() {
        let ds = generate(
            DatasetSpec::Flights,
            &GenerateOptions {
                n_rows: 60,
                seed: 2,
                ..Default::default()
            },
        );
        assert_eq!(ds.dirty.n_rows(), 60);
        let llm = SimLlm::default_model(2);
        assert_eq!(llm.name(), "Qwen2.5-72b");
    }
}
