//! Offline stand-in for the `serde` facade.
//!
//! Provides the `Serialize` / `Deserialize` names (marker traits plus no-op
//! derive macros) so the workspace's `#[derive(Serialize, Deserialize)]`
//! annotations compile without the real dependency. No serialisation behaviour
//! is implemented — none of the workspace code performs serde-based I/O.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching the name of `serde::Serialize`.
pub trait Serialize {}

/// Marker trait matching the name of `serde::Deserialize`.
pub trait Deserialize<'de> {}
