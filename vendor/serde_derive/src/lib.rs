//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace is built offline, so the real `serde_derive` cannot be
//! fetched. Nothing in the workspace actually serialises data through serde
//! (JSON emission is hand-rolled in `zeroed-bench`), so the derives only need
//! to exist, not to generate impls.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
