//! Offline stand-in for `rayon`: a minimal data-parallel iterator API backed
//! by `std::thread::scope`.
//!
//! Only the surface the workspace uses is provided:
//!
//! * `(0..n).into_par_iter().map(f).collect::<Vec<_>>()`
//! * `vec.into_par_iter()` / `slice.par_iter()`
//! * `slice.par_chunks_mut(n)` (used by the zero-copy feature assembly)
//! * `enumerate`, `map`, `for_each`, `collect`
//!
//! Work is split into one contiguous chunk per available core and executed on
//! scoped threads, preserving input order in the output. Closures must be
//! `Sync` (shared by reference across workers), mirroring rayon's bounds, so
//! call sites stay source-compatible with the real crate.

use std::ops::Range;
use std::thread;

/// Number of worker threads to use (available parallelism, at least 1).
fn n_workers() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over `items` on scoped worker threads, preserving order.
fn run_par_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = n_workers().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Split into `workers` contiguous chunks (first chunks one longer when the
    // division is uneven) so output order can be restored by concatenation.
    let base = n / workers;
    let extra = n % workers;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items.into_iter();
    for w in 0..workers {
        let take = base + usize::from(w < extra);
        chunks.push(items.by_ref().take(take).collect());
    }
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// An eagerly materialised parallel iterator.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Lazily maps each item; executed in parallel by `collect`/`for_each`.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, U, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Applies `f` to every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_par_map(self.items, &|item| f(item));
    }

    /// Collects the items (already materialised) into `C`.
    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_par_vec(self.items)
    }
}

/// The result of [`ParIter::map`]: items plus the pending mapping.
pub struct ParMap<T: Send, U: Send, F: Fn(T) -> U + Sync> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, U, F> {
    /// Runs the map in parallel and collects into `C`.
    pub fn collect<C: FromParallelIterator<U>>(self) -> C {
        C::from_par_vec(run_par_map(self.items, &self.f))
    }

    /// Runs the map in parallel, discarding results.
    pub fn for_each<G: Fn(U) + Sync>(self, g: G) {
        let f = &self.f;
        run_par_map(self.items, &|item| g(f(item)));
    }
}

/// Collection types a parallel iterator can collect into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from the ordered result vector.
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_iter` over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut` over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable chunks of length `chunk_size`
    /// (the final chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size.max(1)).collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![1u32, 2, 3, 4];
        let out: Vec<u32> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn chunks_mut_are_disjoint_and_ordered() {
        let mut data = vec![0usize; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(ci, chunk)| {
            for x in chunk.iter_mut() {
                *x = ci;
            }
        });
        assert_eq!(data, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }
}
