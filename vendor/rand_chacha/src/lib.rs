//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator.
//!
//! Implements the ChaCha quarter-round construction (D. J. Bernstein) with 8
//! rounds over the standard 16-word state, keyed from a 64-bit seed expanded
//! with SplitMix64. Deterministic across platforms and runs — the only
//! property the workspace relies on (dataset generation, k-means seeding, MLP
//! initialisation, simulated-LLM noise). The stream is *not* byte-compatible
//! with the upstream crate; all seeds in this repository are self-consistent.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, 64-bit block counter.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (8 words) + nonce (2 words) retained to rebuild each block.
    key: [u32; 8],
    nonce: [u32; 2],
    counter: u64,
    /// Buffered keystream block and read position.
    block: [u32; 16],
    pos: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];
        let initial = state;
        for _ in 0..4 {
            // One double round = column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.block = state;
        self.pos = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = splitmix64(&mut sm);
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        let nonce_word = splitmix64(&mut sm);
        let mut rng = Self {
            key,
            nonce: [nonce_word as u32, (nonce_word >> 32) as u32],
            counter: 0,
            block: [0; 16],
            pos: 16,
        };
        rng.refill();
        rng.pos = 0;
        rng.counter = 1;
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.pos >= 16 {
            self.refill();
        }
        let word = self.block[self.pos];
        self.pos += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn roughly_uniform_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u32().count_ones();
        }
        // 32,000 bits; expect ~16,000 ones.
        assert!((14_500..17_500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
