//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync` with
//! parking_lot's non-poisoning API shape (`lock()` returns the guard
//! directly). Performance characteristics of the real crate are not needed —
//! the workspace only guards small caches and counters.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's panic-free `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
