//! Offline stand-in for the `rand` facade.
//!
//! Implements the small API surface the workspace uses — `Rng::{gen,
//! gen_range, gen_bool}` and `SeedableRng::seed_from_u64` — over a simple
//! `RngCore` trait. The concrete deterministic generator lives in the sibling
//! `rand_chacha` stub. Distributions are uniform; integer ranges use the
//! widening-multiply method (bias < 2^-64, irrelevant for simulation and
//! test-data generation).

use std::ops::{Range, RangeInclusive};

/// Core random source: 32/64-bit output blocks.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full bit range / unit interval.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over half-open / closed intervals. The single
/// blanket [`SampleRange`] impl below (mirroring upstream rand's structure) is
/// what lets integer-literal ranges infer their type from the call site.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Uniform integer in `[0, span)` via the widening-multiply method.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                if span == 0 || span > u64::MAX as u128 {
                    // Full 64-bit domain (only reachable for u64/i64/usize).
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                lo + <$t as Standard>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over its standard domain).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Sequence helpers (`rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                return None;
            }
            let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
            self.get(i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weyl sequence: uniform enough for the range logic.
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a: usize = rng.gen_range(0..17);
            assert!(a < 17);
            let b: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&b));
            let c: u8 = rng.gen_range(0..=3);
            assert!(c <= 3);
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = Counter(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
