//! Offline stand-in for `criterion`: wall-clock micro-benchmarking with the
//! same macro/API shape the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, `bench_function`, `benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `black_box`).
//!
//! Each benchmark is warmed up once, then timed adaptively: a single
//! invocation if it already exceeds the per-bench time budget, otherwise
//! enough invocations to fill the budget (default 200 ms, override with the
//! `BENCH_BUDGET_MS` environment variable). Results are printed as
//! `bench: <id> ... <mean>` lines and, when `BENCH_JSON_OUT` is set, appended
//! to that path as JSON lines `{"id": ..., "mean_ns": ..., "iters": ...}` so
//! harnesses (e.g. the `BENCH_features.json` emitter) can scrape timings.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

fn budget() -> Duration {
    let ms = std::env::var("BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also primes caches and lazy statics).
        black_box(routine());
        let budget = budget();
        let t0 = Instant::now();
        black_box(routine());
        let first = t0.elapsed();
        if first >= budget {
            self.mean_ns = first.as_nanos() as f64;
            self.iters = 1;
            return;
        }
        let n = ((budget.as_nanos() / first.as_nanos().max(1)) as u64).clamp(1, 1_000);
        let t1 = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        let total = t1.elapsed();
        self.mean_ns = total.as_nanos() as f64 / n as f64;
        self.iters = n;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn report(id: &str, b: &Bencher) {
    println!(
        "bench: {id:<48} {:>12}/iter ({} iters)",
        format_ns(b.mean_ns),
        b.iters
    );
    if let Ok(path) = std::env::var("BENCH_JSON_OUT") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}",
                id.replace('"', "'"),
                b.mean_ns,
                b.iters
            );
        }
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs and reports a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(id, &b);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes samples adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
