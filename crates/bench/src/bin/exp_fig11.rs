//! Fig. 11 — performance per error type: every method on Beers variants that
//! contain a single error type (T, MV, PV, RV, O) or a mix (ME).

use zeroed_bench::{format_table, parse_args, run_method, Method, Row};
use zeroed_core::ZeroEdConfig;
use zeroed_datagen::{generate, DatasetSpec, ErrorSpec, GenerateOptions};
use zeroed_llm::LlmProfile;
use zeroed_table::ErrorType;

fn main() {
    let args = parse_args(std::env::args().skip(1));
    println!("== Fig. 11: F1 per error type on Beers ==");
    println!("(rows: {}; single run per point)\n", args.rows);
    let scenarios: Vec<(&str, ErrorSpec)> = vec![
        ("T", ErrorSpec::only(ErrorType::Typo, 0.024)),
        ("MV", ErrorSpec::only(ErrorType::MissingValue, 0.009)),
        ("PV", ErrorSpec::only(ErrorType::PatternViolation, 0.055)),
        ("RV", ErrorSpec::only(ErrorType::RuleViolation, 0.011)),
        ("O", ErrorSpec::only(ErrorType::Outlier, 0.011)),
        ("ME", ErrorSpec::new(0.005, 0.005, 0.005, 0.005, 0.005)),
    ];
    let methods = Method::paper_lineup(ZeroEdConfig::default());
    let header: Vec<String> = scenarios.iter().map(|(n, _)| n.to_string()).collect();

    let datasets: Vec<_> = scenarios
        .iter()
        .map(|(_, spec)| {
            generate(
                DatasetSpec::Beers,
                &GenerateOptions {
                    n_rows: args.rows,
                    seed: args.base_seed,
                    error_spec: Some(spec.clone()),
                },
            )
        })
        .collect();

    let mut rows = Vec::new();
    for method in &methods {
        let mut cells = Vec::new();
        for ds in &datasets {
            let result = run_method(method, ds, LlmProfile::qwen_72b(), args.base_seed);
            cells.push(format!("{:.3}", result.report.f1));
        }
        rows.push(Row::new(method.name(), cells));
        eprintln!("finished {}", method.name());
    }
    println!("{}", format_table("Method", &header, &rows));
}
