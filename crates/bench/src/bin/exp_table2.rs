//! Table II — dataset statistics: tuples, attributes, overall error rate and
//! per-type error rates of every generated benchmark dataset.

use zeroed_bench::{format_table, parse_args, Row};
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
use zeroed_table::ErrorType;

fn main() {
    let args = parse_args(std::env::args().skip(1));
    println!("== Table II: evaluation dataset statistics ==");
    println!("(rows per dataset: {}; 0 = paper size)\n", args.rows);

    let header: Vec<String> = vec![
        "#Tuples".into(),
        "#A.".into(),
        "Err.(%)".into(),
        "MV(%)".into(),
        "PV(%)".into(),
        "T(%)".into(),
        "O(%)".into(),
        "RV(%)".into(),
    ];
    let mut rows = Vec::new();
    for spec in DatasetSpec::ALL {
        // Cap Tax so the statistics table itself stays fast; scalability runs
        // use exp_fig7/exp_fig8.
        let n_rows = if spec == DatasetSpec::Tax && args.rows == 0 {
            5_000
        } else {
            args.rows
        };
        let ds = generate(
            spec,
            &GenerateOptions {
                n_rows,
                seed: args.base_seed,
                error_spec: None,
            },
        );
        let profile = ds.error_profile();
        let cells = ds.dirty.n_cells();
        let pct = |ty: ErrorType| format!("{:.2}", profile.rate(ty, cells) * 100.0);
        rows.push(Row::new(
            spec.name(),
            vec![
                ds.dirty.n_rows().to_string(),
                ds.dirty.n_cols().to_string(),
                format!("{:.2}", profile.error_rate * 100.0),
                pct(ErrorType::MissingValue),
                pct(ErrorType::PatternViolation),
                pct(ErrorType::Typo),
                pct(ErrorType::Outlier),
                pct(ErrorType::RuleViolation),
            ],
        ));
    }
    println!("{}", format_table("Name", &header, &rows));
}
