//! `bench_check` — the perf-ledger regression gate.
//!
//! Diffs the stage breakdowns of two `BENCH_runtime.json` ledgers — the
//! committed baseline and a freshly generated candidate — and classifies
//! every stage's drift:
//!
//! * **OK** — the stage's share of root wall-time moved less than ±30%
//!   (ratio within `[1/1.3, 1.3]`).
//! * **WARN** — the share moved more than ±30% but less than 2x either way,
//!   or a stage carrying ≥1% of the wall appears in only one ledger.
//! * **FAIL** — the share more than doubled or more than halved
//!   (`ratio > 2` or `< 0.5`); the gate exits non-zero.
//!
//! Shares (stage wall ÷ root wall within the same run block) are compared
//! rather than absolute milliseconds so the gate is meaningful across
//! machines and row counts: a stage that regresses relative to its
//! neighbours is flagged even if the whole run got faster. Stages below 1%
//! share in *both* ledgers are skipped — their timing is noise. Parallel
//! stages report CPU-sum wall, so shares can legitimately exceed 100%;
//! ratios are still comparable because both sides measure the same way.
//!
//! ```text
//! cargo run --release -p zeroed-bench --bin bench_check -- /tmp/BENCH_fresh.json
//! cargo run --release -p zeroed-bench --bin bench_check -- baseline.json fresh.json
//! ```
//!
//! With one path the committed `BENCH_runtime.json` in the working directory
//! is the baseline. Run blocks are matched by their `dataset` name across
//! the `runs` and `shapes` sections; a dataset present in only one ledger is
//! reported and skipped (the quick and full ledgers legitimately cover
//! different sets).

use std::collections::BTreeMap;
use std::process::ExitCode;
use zeroed_bench::minijson::Json;

/// Share of a run's root wall below which a stage is treated as noise.
const NOISE_SHARE: f64 = 0.01;
/// OK band: the fresh/baseline share ratio may move ±30%.
const WARN_RATIO: f64 = 1.3;
/// FAIL band: a doubling or halving of the share is a hard regression.
const FAIL_RATIO: f64 = 2.0;

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Verdict {
    Ok,
    Warn,
    Fail,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
        }
    }
}

/// One run block's stages, flattened to `path -> share of root wall`.
struct FlatRun {
    dataset: String,
    stages: BTreeMap<String, f64>,
}

fn flatten_stage(node: &Json, prefix: &str, root_wall: f64, out: &mut BTreeMap<String, f64>) {
    let name = node.get("name").and_then(Json::as_str).unwrap_or("?");
    let wall = node.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
    let path = if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}/{name}")
    };
    if root_wall > 0.0 {
        out.insert(path.clone(), wall / root_wall);
    }
    if let Some(children) = node.get("children").and_then(Json::as_arr) {
        for child in children {
            flatten_stage(child, &path, root_wall, out);
        }
    }
}

/// Walks the whole ledger collecting every object that carries both a
/// `dataset` name and a `stage_breakdown` tree (the `runs` and `shapes`
/// sections), so the gate covers new sections automatically.
fn collect_runs(doc: &Json, out: &mut Vec<FlatRun>) {
    match doc {
        Json::Obj(members) => {
            if let (Some(dataset), Some(breakdown)) = (
                doc.get("dataset").and_then(Json::as_str),
                doc.get("stage_breakdown"),
            ) {
                let root_wall = breakdown.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
                let mut stages = BTreeMap::new();
                flatten_stage(breakdown, "", root_wall, &mut stages);
                out.push(FlatRun {
                    dataset: dataset.to_string(),
                    stages,
                });
            }
            for (_, v) in members {
                collect_runs(v, out);
            }
        }
        Json::Arr(items) => {
            for v in items {
                collect_runs(v, out);
            }
        }
        _ => {}
    }
}

fn load_ledger(path: &str) -> Result<Vec<FlatRun>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut runs = Vec::new();
    collect_runs(&doc, &mut runs);
    if runs.is_empty() {
        return Err(format!("{path}: no dataset blocks with a stage_breakdown"));
    }
    Ok(runs)
}

fn classify(base: Option<f64>, fresh: Option<f64>) -> (Verdict, f64, String) {
    match (base, fresh) {
        (Some(b), Some(f)) => {
            let ratio = if b > 0.0 { f / b } else { f64::INFINITY };
            let verdict = if !(1.0 / FAIL_RATIO..=FAIL_RATIO).contains(&ratio) {
                Verdict::Fail
            } else if !(1.0 / WARN_RATIO..=WARN_RATIO).contains(&ratio) {
                Verdict::Warn
            } else {
                Verdict::Ok
            };
            (verdict, ratio, String::new())
        }
        // A stage carrying real weight in only one ledger is suspicious but
        // not a hard failure: renames and new instrumentation land here.
        (Some(_), None) => (Verdict::Warn, 0.0, "stage missing from fresh ledger".into()),
        (None, Some(_)) => (Verdict::Warn, f64::INFINITY, "stage new in fresh ledger".into()),
        (None, None) => unreachable!("stage came from the union of both ledgers"),
    }
}

fn pct(share: Option<f64>) -> String {
    match share {
        Some(s) => format!("{:6.2}%", s * 100.0),
        None => "     --".into(),
    }
}

fn check_dataset(base: &FlatRun, fresh: &FlatRun) -> Verdict {
    println!("\n== {} ==", base.dataset);
    println!(
        "{:<44} {:>8} {:>8} {:>7}  {}",
        "stage", "base", "fresh", "ratio", "verdict"
    );
    let mut worst = Verdict::Ok;
    let mut paths: Vec<&String> = base.stages.keys().chain(fresh.stages.keys()).collect();
    paths.sort();
    paths.dedup();
    for path in paths {
        let b = base.stages.get(path).copied();
        let f = fresh.stages.get(path).copied();
        // Noise floor: ignore stages that are tiny on both sides.
        if b.unwrap_or(0.0) < NOISE_SHARE && f.unwrap_or(0.0) < NOISE_SHARE {
            continue;
        }
        let (verdict, ratio, note) = classify(b, f);
        worst = worst.max(verdict);
        let ratio_text = if ratio.is_finite() {
            format!("{ratio:6.2}x")
        } else {
            "    inf".into()
        };
        let suffix = if note.is_empty() {
            String::new()
        } else {
            format!("  ({note})")
        };
        println!(
            "{:<44} {} {} {}  {}{}",
            path,
            pct(b),
            pct(f),
            ratio_text,
            verdict.label(),
            suffix
        );
    }
    worst
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, fresh_path) = match args.as_slice() {
        [fresh] => ("BENCH_runtime.json".to_string(), fresh.clone()),
        [baseline, fresh] => (baseline.clone(), fresh.clone()),
        _ => {
            eprintln!("usage: bench_check [<baseline.json>] <fresh.json>");
            return ExitCode::from(2);
        }
    };

    let (baseline, fresh) = match (load_ledger(&baseline_path), load_ledger(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench_check: {err}");
            }
            return ExitCode::from(2);
        }
    };

    println!("bench_check: {baseline_path} (baseline) vs {fresh_path} (fresh)");
    let mut worst = Verdict::Ok;
    let mut compared = 0usize;
    for base_run in &baseline {
        match fresh.iter().find(|r| r.dataset == base_run.dataset) {
            Some(fresh_run) => {
                compared += 1;
                worst = worst.max(check_dataset(base_run, fresh_run));
            }
            None => println!(
                "\n== {} == only in baseline ledger; skipped",
                base_run.dataset
            ),
        }
    }
    for fresh_run in &fresh {
        if !baseline.iter().any(|r| r.dataset == fresh_run.dataset) {
            println!(
                "\n== {} == only in fresh ledger; skipped",
                fresh_run.dataset
            );
        }
    }
    if compared == 0 {
        eprintln!("bench_check: the ledgers share no datasets");
        return ExitCode::from(2);
    }

    println!(
        "\nbench_check: {} ({} dataset{} compared)",
        worst.label(),
        compared,
        if compared == 1 { "" } else { "s" }
    );
    match worst {
        Verdict::Fail => ExitCode::FAILURE,
        _ => ExitCode::SUCCESS,
    }
}
