//! `BENCH_runtime.json` emitter: LLM-orchestration wall-times for the three
//! runtime execution modes.
//!
//! Runs full `ZeroEd::detect` sweeps on the hospital and flights generators
//! (50k rows by default; `--quick` drops to 5k for CI smoke runs) with the
//! simulated serving-latency model enabled, through:
//!
//! 1. **sequential** — the seed path: every LLM call blocks the pipeline;
//! 2. **concurrent** — per-attribute fan-out on the `zeroed-runtime`
//!    scheduler, no cache;
//! 3. **concurrent+cache (cold)** — same, with the request-dedup cache on;
//! 4. **concurrent+cache (warm)** — a second detection against the same
//!    detector: every request replays from the cache (the re-run /
//!    repeated-workload scenario).
//!
//! The worker budget is fixed (default 16, `--workers N`) rather than derived
//! from host cores: LLM calls are latency-bound, not CPU-bound, so the pool
//! models a request-concurrency budget against a serving backend — sleeps
//! overlap regardless of core count. The headline metric is the *LLM-stage*
//! wall-time (labelling + training-data construction, the two stages whose
//! wall-clock is dominated by model calls); totals and the serial model cost
//! (`TokenLedger::sim_cost`) are reported alongside. Every mode must produce
//! a bit-identical mask — the emitter asserts it before writing the ledger.
//!
//! `--router` adds the multi-backend hedging experiment: detection against a
//! single backend stuck with a latency slow-tail versus a two-backend router
//! that hedges slow requests onto a healthy replica. The section reports
//! per-request p50/p99 latency for both arms and asserts that hedging
//! recovers the tail (p99 at least 1.5x better) without changing the mask.
//!
//! `--persist` adds the cross-process warm-start experiment: a cold detection
//! writes every response through to an on-disk `zeroed-store`, the detector
//! (and the store's writer) is dropped — the "process" exits — and a fresh
//! detector re-opens the directory and re-runs detection. The section reports
//! cold vs warm wall-times and asserts the warm run issues **zero** LLM
//! requests with a bit-identical mask. It also runs the sharded-concurrent-
//! writers experiment: K detectors (distinct `ShardedStore` handles, each
//! claiming its own writer slot per shard) persist disjoint workloads into
//! one sharded root *simultaneously*, and a fresh detector warm-starts all K
//! workloads from the merged slots with zero LLM requests.
//!
//! `--mangle` adds the degradation experiment: the same workload under a
//! seeded content-corruption schedule. It asserts the mask is bit-identical
//! between a sequential mangled oracle and a concurrent+cache run, that the
//! per-stage repair accounting reconciles exactly (`mangled == repaired +
//! reasked + defaulted`, with the totals equal to the simulator's corruption
//! count), and that a warm re-run replays the *repaired* responses with zero
//! LLM requests. The section reports per-stage counters, the re-ask ledger
//! line, and the LLM-stage overhead versus a healthy run.
//!
//! `--shapes` adds the workload-shape sweep: the three synthetic shapes from
//! `zeroed_datagen::WORKLOADS` (wide, high-distinct, mixed-schema), each run
//! sequential vs concurrent+cache with a per-shape `stage_breakdown`, so
//! scaling work can see which stage dominates under which table shape.
//!
//! `--trace` adds the flight-recorder conformance sweep: every headline mode
//! re-checks the per-request trace journal (causality invariants + exact
//! count reconciliation against the cache / scheduler / router / repair /
//! store counters — zero tolerance), and a dedicated section sweeps
//! {sequential, concurrent+cache cold/warm, routed-with-faults, mangled} on
//! hospital + flights, validates both exporters structurally (line-exact
//! JSONL; Chrome entries all complete spans or instants) and bounds the
//! recorder's overhead under the same <2% budget as the profiler.
//!
//! Every invocation — `--quick` included — additionally runs the criteria-VM
//! experiment: the compiled bytecode engine against the AST specification
//! oracle on hospital criteria, feature matrices and Algorithm-1 verification
//! outputs asserted identical before the `criteria_vm` ledger block records
//! the speedups.
//!
//! Every detection run carries a hierarchical stage profile
//! (`PipelineStats::stage_profile`, built by `zeroed-obs`). The emitter
//! asserts the accounting invariant on **every** run — including `--quick` —
//! before writing the ledger: sequential child spans sum to at most their
//! parent's wall, top-level stages cover ≥90% of the run's total wall (no
//! untracked time silently appearing), and the estimated profiler overhead
//! stays under 2% of the run. Each dataset block embeds the cold cached
//! run's tree as `stage_breakdown`. The full-size hospital sequential run
//! additionally asserts the non-LLM wall stays torn down: the `sampling` +
//! `detector` spans together must cover < 50% of the detect wall (see
//! `assert_non_llm_wall` for the scoping rationale and `ARCHITECTURE.md`,
//! "The non-LLM wall").
//!
//! ```text
//! cargo run --release -p zeroed-bench --bin bench_runtime -- --router --persist --mangle --shapes
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use zeroed_core::{
    DetectionOutcome, RouterConfig, RouterLlm, RuntimeConfig, StageRepair, StoreConfig, ZeroEd,
    ZeroEdConfig,
};
use zeroed_criteria::verify;
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
use zeroed_llm::{FaultSchedule, LlmClient, LlmProfile, MangleSchedule, SimLlm};
use zeroed_obs::{
    chrome_trace_json, journal_jsonl, EventKind, Profiler, StageProfile, TraceId, TraceRecorder,
    TraceSummary,
};

const LATENCY_SCALE: f64 = 1.0;

struct ModeResult {
    label: &'static str,
    total_ms: f64,
    llm_stage_ms: f64,
    requests: usize,
    tokens: usize,
    sim_cost_ms: f64,
    cache_hits: usize,
    cache_misses: usize,
    tokens_saved: usize,
    outcome: DetectionOutcome,
}

fn run_mode(
    label: &'static str,
    detector: &ZeroEd,
    ds: &zeroed_datagen::GeneratedDataset,
    seed: u64,
) -> ModeResult {
    let llm = zeroed_bench::simulated_llm(ds, LlmProfile::qwen_72b(), seed)
        .with_latency_scale(LATENCY_SCALE);
    run_mode_with(label, detector, ds, &llm)
}

/// Like [`run_mode`] but against a caller-built simulator (e.g. one with a
/// mangle schedule attached).
fn run_mode_with(
    label: &'static str,
    detector: &ZeroEd,
    ds: &zeroed_datagen::GeneratedDataset,
    llm: &SimLlm,
) -> ModeResult {
    let t = Instant::now();
    let outcome = detector.detect(&ds.dirty, llm);
    let total_ms = t.elapsed().as_secs_f64() * 1e3;
    let usage = llm.ledger().usage();
    let timings = &outcome.timings;
    ModeResult {
        label,
        total_ms,
        llm_stage_ms: (timings.labeling + timings.training_data).as_secs_f64() * 1e3,
        requests: usage.requests,
        tokens: usage.total(),
        sim_cost_ms: llm.ledger().sim_cost().as_secs_f64() * 1e3,
        cache_hits: outcome.stats.cache_hits,
        cache_misses: outcome.stats.cache_misses,
        tokens_saved: outcome.stats.cache_tokens_saved,
        outcome,
    }
}

fn mode_json(r: &ModeResult) -> String {
    format!(
        "{{\"mode\": \"{}\", \"total_ms\": {:.1}, \"llm_stage_ms\": {:.1}, \
         \"requests\": {}, \"tokens\": {}, \"llm_serial_cost_ms\": {:.1}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"cache_tokens_saved\": {}}}",
        r.label,
        r.total_ms,
        r.llm_stage_ms,
        r.requests,
        r.tokens,
        r.sim_cost_ms,
        r.cache_hits,
        r.cache_misses,
        r.tokens_saved,
    )
}

fn json_mode(json: &mut String, r: &ModeResult, last: bool) {
    let _ = write!(json, "      {}", mode_json(r));
    json.push_str(if last { "\n" } else { ",\n" });
}

/// The stage profile a detection run must carry (only the degenerate
/// empty-table early return omits it).
fn profile_of(r: &ModeResult) -> &StageProfile {
    r.outcome
        .stats
        .stage_profile
        .as_ref()
        .expect("a benchmark run must carry a stage profile")
}

/// The accounting invariant, asserted on every run including `--quick`:
/// sequential child spans sum to at most their parent's wall, and the
/// top-level stages cover at least 90% of the run's total wall — untracked
/// time cannot silently appear.
fn assert_profile(dataset: &str, r: &ModeResult) {
    let p = profile_of(r);
    assert!(
        p.accounting_ok(),
        "{dataset}/{}: child spans overflow their parent\n{}",
        r.label,
        p.render_table()
    );
    let coverage = p.coverage();
    assert!(
        coverage >= 0.90,
        "{dataset}/{}: top-level stages cover only {:.1}% of total wall\n{}",
        r.label,
        coverage * 100.0,
        p.render_table()
    );
}

/// The non-LLM wall guard, asserted on the full-size (50k-row) **hospital
/// sequential** run: the `sampling` + `detector` top-level spans together
/// must cover less than 90% of the run's **non-LLM wall** (the detect wall
/// minus the two spans dominated by simulated LLM latency, `criteria_llm`
/// and `labeling`). Before the dedup-clustering and batched-MLP fast paths
/// these two stages exceeded the rest of the local work combined (~101% of
/// the non-LLM wall: 31.2 s + 32.1 s against ~62.5 s of a 66.1 s hospital
/// run); after them they sit at ~75%. This assertion keeps that wall torn
/// down.
///
/// The denominator deliberately excludes the LLM-latency spans: simulated
/// latency is fixed *wall-clock* time, so a share of the total wall would
/// encode the ledger-generation host's CPU speed — on a slower or noisier
/// machine every CPU-bound stage grows while the LLM sleeps don't, and an
/// unchanged binary flips the gate (measured 51.7%→58.9% of total wall for
/// the same code across runs of this 1-CPU box, vs a stable 74–76% of the
/// non-LLM wall). CPU-over-CPU cancels host speed.
///
/// Scope, deliberately narrow:
/// * the *sequential* mode is the seed execution the paper describes; the
///   cached modes skip LLM work entirely, so its stage walls are the
///   cleanest per-stage measurement;
/// * *hospital* is the dataset whose profile defined the wall. Flights
///   featurises almost for free (its per-distinct feature blocks are tiny),
///   so sampling + detector are structurally its largest spans at any
///   implementation and a ratio guard carries no signal there.
/// * `--quick` runs skip it — at 5k rows fixed per-run costs dominate.
fn assert_non_llm_wall(dataset: &str, r: &ModeResult) {
    let p = profile_of(r);
    let span_nanos = |name: &str| p.child(name).map_or(0, |c| c.wall_nanos);
    let hot = span_nanos("sampling") + span_nanos("detector");
    let llm_wall = p.find("features/criteria_llm").map_or(0, |c| c.wall_nanos)
        + span_nanos("labeling");
    let non_llm = p.wall_nanos.saturating_sub(llm_wall).max(1);
    let frac = hot as f64 / non_llm as f64;
    assert!(
        frac < 0.90,
        "{dataset}/{}: sampling+detector cover {:.1}% of the non-LLM wall (must stay < 90%)\n{}",
        r.label,
        frac * 100.0,
        p.render_table()
    );
}

/// Spans recorded across the whole tree (the profiler work this run paid
/// for).
fn profile_records(p: &StageProfile) -> u64 {
    p.count + p.children.iter().map(profile_records).sum::<u64>()
}

/// Estimated profiler overhead as a percentage of the run's wall time:
/// a micro-measured per-record span cost scaled by the number of spans the
/// run actually recorded. Asserted < 2% on every run.
fn profiler_overhead_pct(r: &ModeResult) -> f64 {
    const SAMPLES: u64 = 50_000;
    let probe = Profiler::new("overhead-probe");
    let span = probe.root().child_dist("record");
    let t = Instant::now();
    for i in 0..SAMPLES {
        span.record(Duration::from_nanos(i));
    }
    let per_record = t.elapsed().as_secs_f64() / SAMPLES as f64;
    let records = profile_records(profile_of(r));
    per_record * records as f64 / (r.total_ms / 1e3).max(1e-9) * 100.0
}

/// The `--trace` reconciliation, zero tolerance: the flight recorder's
/// journal must verify causally (every task submitted/started/ended exactly
/// once, every miss published exactly once, every hedge resolved exactly
/// once, the repair ladder balanced) AND its per-kind counts must equal the
/// independently maintained cache / scheduler / router / repair / store
/// counters in [`zeroed_core::PipelineStats`] — not approximately, exactly.
fn assert_trace(label: &str, stats: &zeroed_core::PipelineStats) -> TraceSummary {
    let trace = stats
        .trace
        .clone()
        .unwrap_or_else(|| panic!("{label}: run must publish a trace summary"));
    assert_eq!(trace.dropped_events, 0, "{label}: the ring must not evict");
    if let Err(why) = trace.verify() {
        panic!("{label}: trace causality check failed: {why}");
    }
    let eq = |kind: EventKind, want: usize, what: &str| {
        assert_eq!(
            trace.count(kind),
            want as u64,
            "{label}: journaled {what} must equal the pipeline counter exactly"
        );
    };
    eq(EventKind::TaskSubmit, stats.runtime_tasks, "task submits");
    eq(EventKind::TaskStart, stats.runtime_tasks, "task starts");
    eq(EventKind::TaskEnd, stats.runtime_tasks, "task ends");
    eq(EventKind::CacheHit, stats.cache_hits, "cache hits");
    eq(EventKind::CacheMiss, stats.cache_misses, "cache misses");
    eq(EventKind::CacheCoalesced, stats.cache_coalesced, "coalesced hits");
    eq(EventKind::CachePublish, stats.cache_misses, "publishes");
    eq(EventKind::RouterDone, stats.router_requests, "routed requests");
    eq(EventKind::RouterPrimary, stats.router_requests, "primary picks");
    eq(EventKind::RouterFailover, stats.router_failovers, "failovers");
    eq(EventKind::HedgeFired, stats.router_hedges_fired, "hedges fired");
    eq(EventKind::HedgeWon, stats.router_hedges_won, "hedges won");
    eq(EventKind::BreakerTrip, stats.router_breaker_trips, "breaker trips");
    let (salvaged, reasked, defaulted) = stats.repair.total_handled();
    eq(EventKind::RepairMangled, stats.repair.total_mangled(), "mangled responses");
    eq(EventKind::RepairSalvaged, salvaged, "salvaged responses");
    eq(EventKind::RepairReasked, reasked, "re-asks");
    eq(EventKind::RepairDefaulted, defaulted, "defaults");
    eq(EventKind::StorePersist, stats.store_persisted_records, "store persists");
    trace
}

/// Micro-measured cost of one `TraceRecorder::emit` (counter bump + ring
/// append under the short lock), used to bound the flight recorder's share
/// of a run's wall time.
fn emit_cost_nanos() -> f64 {
    const SAMPLES: u64 = 200_000;
    let recorder = TraceRecorder::new(1);
    let t = Instant::now();
    for i in 0..SAMPLES {
        recorder.emit(TraceId::from_key(i as u128, 1), EventKind::CacheHit, i);
    }
    t.elapsed().as_secs_f64() * 1e9 / SAMPLES as f64
}

/// Estimated flight-recorder overhead as a percentage of the run's wall:
/// per-emit cost scaled by what the run actually journaled. Shares the
/// profiler's <2% budget.
fn trace_overhead_pct(per_emit_nanos: f64, trace: &TraceSummary, total_ms: f64) -> f64 {
    per_emit_nanos * trace.recorded() as f64 / (total_ms * 1e6).max(1e-9) * 100.0
}

/// One arm of the router experiment.
struct RouterArm {
    p50_ms: f64,
    p99_ms: f64,
    requests: u64,
    hedges_fired: u64,
    hedges_won: u64,
    hedge_waste_tokens: u64,
    breaker_trips: u64,
    backends: Vec<(String, u64, u64)>, // (name, requests, useful tokens)
}

/// The `--router` experiment: detection against a single backend stuck with a
/// latency slow-tail, versus a two-backend router hedging slow requests onto
/// a healthy replica. Capped at 5k rows — request count (and therefore the
/// latency sample size) depends on columns, not rows.
fn router_section(rows: usize, workers: usize) -> String {
    const SLOW_RATE: f64 = 0.15;
    const SLOW_MS: f64 = 250.0;
    const DEADLINE_MS: f64 = 25.0;
    let rows = rows.min(5_000).max(1);
    eprintln!("router experiment: hospital @ {rows} rows ...");
    let ds = generate(
        DatasetSpec::Hospital,
        &GenerateOptions {
            n_rows: rows,
            seed: 7,
            error_spec: None,
        },
    );
    let config = ZeroEdConfig::fast();

    // Sequential single-client oracle: the mask every routed arm must match.
    // Latency simulation is off — only the mask matters here.
    let seq_llm = zeroed_bench::simulated_llm(&ds, LlmProfile::qwen_72b(), 1);
    let oracle = ZeroEd::new(config.clone().sequential_runtime()).detect(&ds.dirty, &seq_llm);

    let slow = FaultSchedule::slow_tail(11, SLOW_RATE, SLOW_MS);
    let runtime = RuntimeConfig {
        workers,
        ..RuntimeConfig::default()
    };
    let run_arm = |label: &str, schedules: &[FaultSchedule], hedge: bool| -> RouterArm {
        eprintln!("  router arm: {label} ({} backends, hedge={hedge}) ...", schedules.len());
        let sims: Vec<_> = schedules
            .iter()
            .map(|s| {
                zeroed_bench::simulated_llm(&ds, LlmProfile::qwen_72b(), 1)
                    .with_latency_scale(LATENCY_SCALE)
                    .with_faults(*s)
            })
            .collect();
        let clients: Vec<&dyn LlmClient> = sims.iter().map(|s| s as &dyn LlmClient).collect();
        let mut rc = RouterConfig::for_backends(clients.len());
        rc.hedge.enabled = hedge;
        // p90 deadline: below the slow-tail fraction's complement, so the
        // deadline tracks healthy latency instead of chasing hedged samples.
        rc.hedge.percentile = 0.90;
        rc.hedge.min_deadline_ms = DEADLINE_MS;
        rc.latency_scale = LATENCY_SCALE;
        let detector =
            ZeroEd::new(config.clone().with_runtime(runtime.clone()).with_router(rc));
        let router = RouterLlm::from_runtime(&detector.config().runtime, clients);
        let outcome = detector.detect_routed(&ds.dirty, &router);
        assert_eq!(
            oracle.mask, outcome.mask,
            "router arm '{label}': mask diverged from the sequential oracle"
        );
        let stats = router.stats();
        RouterArm {
            p50_ms: router.latency_quantile(0.50).as_secs_f64() * 1e3,
            p99_ms: router.latency_quantile(0.99).as_secs_f64() * 1e3,
            requests: stats.requests,
            hedges_fired: stats.hedges_fired,
            hedges_won: stats.hedges_won_by_hedge,
            hedge_waste_tokens: stats.hedge_waste_tokens,
            breaker_trips: stats.breaker_trips,
            backends: stats
                .backends
                .iter()
                .map(|b| (b.name.clone(), b.requests, b.tokens()))
                .collect(),
        }
    };

    // Arm 1: the slow-tail backend on its own — every request eats the tail.
    let single = run_arm("single_slow_tail", &[slow], false);
    // Arm 2: same slow-tail primary, healthy replica, hedging on.
    let hedged = run_arm(
        "hedged_two_backends",
        &[slow, FaultSchedule::healthy(12)],
        true,
    );

    let p99_speedup = single.p99_ms / hedged.p99_ms.max(1e-9);
    eprintln!(
        "  router p99: single slow-tail {:.0} ms | hedged {:.0} ms ({:.1}x, {} hedges fired, {} won)",
        single.p99_ms, hedged.p99_ms, p99_speedup, hedged.hedges_fired, hedged.hedges_won,
    );
    assert!(
        hedged.p99_ms <= single.p99_ms,
        "hedged p99 ({:.1} ms) must not exceed the single slow-tail backend's ({:.1} ms)",
        hedged.p99_ms,
        single.p99_ms
    );
    assert!(
        p99_speedup >= 1.5,
        "hedging must recover at least 1.5x p99 vs a single slow-tail backend, got {p99_speedup:.2}x"
    );

    let arm_json = |arm: &RouterArm| -> String {
        let backends: Vec<String> = arm
            .backends
            .iter()
            .map(|(name, requests, tokens)| {
                format!("{{\"name\": \"{name}\", \"requests\": {requests}, \"tokens\": {tokens}}}")
            })
            .collect();
        format!(
            "{{\"p50_ms\": {:.1}, \"p99_ms\": {:.1}, \"requests\": {}, \
             \"hedges_fired\": {}, \"hedges_won\": {}, \"hedge_waste_tokens\": {}, \
             \"breaker_trips\": {}, \"backends\": [{}]}}",
            arm.p50_ms,
            arm.p99_ms,
            arm.requests,
            arm.hedges_fired,
            arm.hedges_won,
            arm.hedge_waste_tokens,
            arm.breaker_trips,
            backends.join(", "),
        )
    };
    let mut block = String::new();
    let _ = writeln!(
        block,
        "    \"dataset\": \"hospital\", \"rows\": {rows}, \"workers\": {workers},"
    );
    let _ = writeln!(
        block,
        "    \"slow_tail_rate\": {SLOW_RATE}, \"slow_tail_ms\": {SLOW_MS}, \
         \"hedge_deadline_floor_ms\": {DEADLINE_MS}, \"hedge_percentile\": 0.90,"
    );
    let _ = writeln!(block, "    \"p99_speedup\": {p99_speedup:.2}, \"masks_identical\": true,");
    let _ = writeln!(block, "    \"single_slow_tail\": {},", arm_json(&single));
    let _ = write!(block, "    \"hedged\": {}", arm_json(&hedged));
    block
}

/// The `--persist` experiment: cold run writing through to the on-disk
/// response store, then a *fresh* detector (new cache, new store handles — a
/// second process as far as the store is concerned) warm-starting from the
/// directory. Asserts the warm run issues zero LLM requests and reproduces
/// the cold mask bit-identically.
fn persist_section(rows: usize, workers: usize) -> String {
    eprintln!("persistence experiment: hospital @ {rows} rows ...");
    let ds = generate(
        DatasetSpec::Hospital,
        &GenerateOptions {
            n_rows: rows,
            seed: 7,
            error_spec: None,
        },
    );
    let store_dir = std::env::temp_dir().join(format!("zeroed-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let config = ZeroEdConfig::fast()
        .with_runtime(RuntimeConfig {
            workers,
            ..RuntimeConfig::default()
        })
        .with_store_dir(store_dir.to_str().expect("utf-8 temp path"));

    eprintln!("  cold (write-through) ...");
    let cold = {
        let detector = ZeroEd::new(config.clone());
        run_mode("persist_cold", &detector, &ds, 1)
        // ← detector drop: queue drained, store synced, handles closed.
    };
    let persisted_records = cold.outcome.stats.store_persisted_records;
    let persisted_bytes = cold.outcome.stats.store_persisted_bytes;
    assert_eq!(
        persisted_records, cold.cache_misses,
        "every cold miss must be persisted"
    );

    eprintln!("  warm (fresh detector, reopened store) ...");
    let warm_detector = ZeroEd::new(config);
    let warm = run_mode("persist_warm_cross_process", &warm_detector, &ds, 1);
    assert_eq!(cold.outcome.mask, warm.outcome.mask, "persisted warm mask diverged");
    assert_eq!(
        warm.requests, 0,
        "cross-process warm run must issue zero LLM requests"
    );
    assert_eq!(warm.outcome.stats.cache_misses, 0);
    assert_eq!(
        warm.outcome.stats.store_hits, warm.outcome.stats.cache_hits,
        "every warm hit must come from the persisted store"
    );
    let preloaded = warm.outcome.stats.store_preloaded_records;
    assert_eq!(preloaded, persisted_records, "preload must replay the whole store");
    drop(warm_detector);
    let _ = std::fs::remove_dir_all(&store_dir);

    let llm_stage_speedup = cold.llm_stage_ms / warm.llm_stage_ms.max(1e-9);
    let total_speedup = cold.total_ms / warm.total_ms.max(1e-9);
    eprintln!(
        "  cold {:.0} ms | warm {:.0} ms total ({total_speedup:.1}x, llm-stage {llm_stage_speedup:.1}x, \
         {} records / {} bytes persisted, {} tokens saved warm)",
        cold.total_ms, warm.total_ms, persisted_records, persisted_bytes, warm.tokens_saved,
    );

    let mut block = String::new();
    let _ = writeln!(
        block,
        "    \"dataset\": \"hospital\", \"rows\": {rows}, \"workers\": {workers}, \
         \"masks_identical\": true, \"warm_llm_requests\": 0,"
    );
    let _ = writeln!(
        block,
        "    \"persisted_records\": {persisted_records}, \"persisted_bytes\": {persisted_bytes}, \
         \"preloaded_records\": {preloaded},"
    );
    let _ = writeln!(
        block,
        "    \"speedup_total_warm\": {total_speedup:.2}, \
         \"speedup_llm_stage_warm\": {llm_stage_speedup:.2},"
    );
    let _ = writeln!(
        block,
        "    \"cold\": {},\n    \"warm\": {},",
        mode_json(&cold),
        mode_json(&warm)
    );
    let _ = write!(block, "    \"sharded_concurrent_writers\": {}", sharded_section(rows, workers));
    block
}

/// The sharded-concurrent-writers experiment: K detectors — each a distinct
/// `ShardedStore` handle holding its own writer slot per shard — persist
/// *disjoint* workloads (distinct simulator seeds, hence disjoint request
/// keys) into one sharded store root at the same time. A single fresh
/// detector then reopens the root and must replay every writer's workload
/// with zero LLM requests: the proof that the preload merges records across
/// all writer slots and that concurrent appends never contended or clobbered.
fn sharded_section(rows: usize, workers: usize) -> String {
    const WRITERS: u64 = 3;
    const SHARDS: usize = 4;
    eprintln!("  sharded writers: {WRITERS} concurrent detectors, {SHARDS} shards ...");
    let ds = generate(
        DatasetSpec::Hospital,
        &GenerateOptions {
            n_rows: rows,
            seed: 7,
            error_spec: None,
        },
    );
    let store_dir =
        std::env::temp_dir().join(format!("zeroed-bench-sharded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let config = ZeroEdConfig::fast()
        .with_runtime(RuntimeConfig {
            workers,
            ..RuntimeConfig::default()
        })
        .with_store(
            StoreConfig::new(store_dir.to_str().expect("utf-8 temp path")).with_shards(SHARDS),
        );

    // Claim every writer's slots before any detection starts, so the
    // writers genuinely coexist (a fast writer finishing early must not free
    // slots a slow one would then reclaim instead of adding its own).
    let detectors: Vec<ZeroEd> = (0..WRITERS).map(|_| ZeroEd::new(config.clone())).collect();
    let t = Instant::now();
    let cold: Vec<ModeResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = detectors
            .into_iter()
            .enumerate()
            .map(|(w, detector)| {
                let ds = &ds;
                scope.spawn(move || {
                    run_mode("sharded_cold_writer", &detector, ds, 1 + w as u64)
                    // ← detector drop inside the thread: this writer's slots
                    //   are drained, synced and unlocked.
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let cold_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let persisted_total: usize = cold
        .iter()
        .map(|r| r.outcome.stats.store_persisted_records)
        .sum();
    for r in &cold {
        assert_eq!(
            r.outcome.stats.store_persisted_records, r.cache_misses,
            "sharded writer: every miss must be written through"
        );
    }

    // One fresh handle replays all K workloads from the merged slots.
    let warm_detector = ZeroEd::new(config);
    let t = Instant::now();
    for (w, cold_result) in cold.iter().enumerate() {
        let warm = run_mode("sharded_warm", &warm_detector, &ds, 1 + w as u64);
        assert_eq!(
            cold_result.outcome.mask, warm.outcome.mask,
            "sharded warm mask diverged for writer {w}"
        );
        assert_eq!(
            warm.requests, 0,
            "sharded warm run must issue zero LLM requests (writer {w})"
        );
    }
    let warm_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let preloaded = warm_detector
        .store()
        .expect("store configured")
        .store()
        .load_live()
        .expect("live records readable")
        .len();
    assert_eq!(
        preloaded, persisted_total,
        "the merged preload must cover all writers' disjoint records"
    );
    drop(warm_detector);
    let _ = std::fs::remove_dir_all(&store_dir);

    eprintln!(
        "  sharded: {WRITERS} writers cold {cold_wall_ms:.0} ms | warm replay of all \
         {WRITERS} workloads {warm_wall_ms:.0} ms | {persisted_total} records merged, 0 warm requests",
    );
    format!(
        "{{\"writers\": {WRITERS}, \"shards\": {SHARDS}, \"rows\": {rows}, \
         \"cold_concurrent_wall_ms\": {cold_wall_ms:.1}, \"warm_all_workloads_wall_ms\": {warm_wall_ms:.1}, \
         \"persisted_records_total\": {persisted_total}, \"preloaded_records\": {preloaded}, \
         \"warm_llm_requests\": 0, \"masks_identical\": true}}"
    )
}

/// The `--mangle` experiment: the same detection workload under a seeded
/// content-corruption schedule. A sequential mangled run is the oracle; a
/// concurrent+cache run under the *same* schedule must produce a bit-identical
/// mask with identical per-stage repair counters, and a warm re-run against
/// the same detector must replay the *repaired* responses with zero LLM
/// requests. A healthy (unmangled) cached run alongside gives the repair
/// overhead. Capped at 3k rows — repair work scales with request count, which
/// depends on columns, not rows.
fn mangle_section(rows: usize, workers: usize) -> String {
    const MANGLE_SEED: u64 = 29;
    const MANGLE_RATE: f64 = 0.4;
    let rows = rows.min(3_000).max(1);
    eprintln!("mangling experiment: hospital @ {rows} rows, rate {MANGLE_RATE} ...");
    let ds = generate(
        DatasetSpec::Hospital,
        &GenerateOptions {
            n_rows: rows,
            seed: 7,
            error_spec: None,
        },
    );
    let schedule = MangleSchedule::uniform(MANGLE_SEED, MANGLE_RATE);
    let config = ZeroEdConfig::fast();
    let cached = RuntimeConfig {
        workers,
        ..RuntimeConfig::default()
    };

    let mangled_llm = |label: &str| {
        eprintln!("  mangled {label} ...");
        zeroed_bench::simulated_llm(&ds, LlmProfile::qwen_72b(), 1)
            .with_latency_scale(LATENCY_SCALE)
            .with_mangling(schedule)
    };

    // Healthy baseline: same workload, same runtime, no corruption.
    eprintln!("  healthy baseline ...");
    let healthy_detector = ZeroEd::new(config.clone().with_runtime(cached.clone()));
    let healthy = run_mode("mangle_healthy_baseline", &healthy_detector, &ds, 1);

    // Sequential mangled oracle: the mask and counters every arm must match.
    let seq_llm = mangled_llm("sequential oracle");
    let seq_detector = ZeroEd::new(config.clone().sequential_runtime());
    let t = Instant::now();
    let seq = seq_detector.detect(&ds.dirty, &seq_llm);
    let seq_ms = t.elapsed().as_secs_f64() * 1e3;
    let repair = seq.stats.repair;
    assert!(repair.reconciles(), "sequential: {repair:?} does not reconcile");
    assert_eq!(
        repair.total_mangled(),
        seq_llm.mangled_responses(),
        "sequential: every simulator corruption must land in a repair bucket"
    );
    assert!(repair.total_mangled() > 0, "rate {MANGLE_RATE} must corrupt something");

    // Concurrent+cache under the same schedule: identical mask, identical
    // per-stage accounting (the corruption draw is salt-keyed, not
    // order-keyed), and the cache absorbs the repaired responses.
    let conc_llm = mangled_llm("concurrent+cache cold");
    let conc_detector = ZeroEd::new(config.clone().with_runtime(cached));
    let conc = run_mode_with("mangle_concurrent_cached_cold", &conc_detector, &ds, &conc_llm);
    assert_eq!(seq.mask, conc.outcome.mask, "mangled concurrent mask diverged");
    assert_eq!(
        conc.outcome.stats.repair, repair,
        "per-stage repair counters must not depend on the execution mode"
    );
    assert_eq!(
        conc.outcome.stats.repair.total_mangled(),
        conc_llm.mangled_responses(),
        "concurrent: every simulator corruption must land in a repair bucket"
    );

    // Warm re-run: the cache holds *repaired* responses, so nothing is
    // re-fetched, re-corrupted or re-repaired.
    let warm_llm = mangled_llm("warm re-run");
    let warm = run_mode_with("mangle_warm_rerun", &conc_detector, &ds, &warm_llm);
    assert_eq!(seq.mask, warm.outcome.mask, "mangled warm mask diverged");
    assert_eq!(warm.requests, 0, "warm run must issue zero LLM requests");
    assert_eq!(warm_llm.mangled_responses(), 0, "the simulator is never consulted warm");
    assert_eq!(
        warm.outcome.stats.repair.total_mangled(),
        0,
        "cached responses are already repaired"
    );

    // Re-ask attempts bill on the ledger's distinct re-ask line: with the
    // default budget of 1, one attempt per re-asked and per defaulted request.
    let (repaired, reasked, defaulted) = repair.total_handled();
    let reask_usage = seq_llm.ledger().reask_usage();
    assert_eq!(
        reask_usage.requests,
        reasked + defaulted,
        "re-ask attempts must be billed on the distinct ledger line"
    );

    let overhead = conc.llm_stage_ms / healthy.llm_stage_ms.max(1e-9);
    eprintln!(
        "  mangled: {} corrupted -> {repaired} repaired / {reasked} re-asked / {defaulted} \
         defaulted | llm-stage {:.0} ms vs healthy {:.0} ms ({overhead:.2}x) | warm 0 requests",
        repair.total_mangled(),
        conc.llm_stage_ms,
        healthy.llm_stage_ms,
    );

    let stage_json = |name: &str, s: StageRepair| -> String {
        format!(
            "{{\"stage\": \"{name}\", \"mangled\": {}, \"repaired\": {}, \"reasked\": {}, \
             \"defaulted\": {}}}",
            s.mangled, s.repaired, s.reasked, s.defaulted
        )
    };
    let stages = [
        ("criteria", repair.criteria),
        ("analysis", repair.analysis),
        ("guideline", repair.guideline),
        ("labels", repair.labels),
        ("augment", repair.augment),
    ]
    .map(|(name, s)| format!("      {}", stage_json(name, s)));

    let mut block = String::new();
    let _ = writeln!(
        block,
        "    \"dataset\": \"hospital\", \"rows\": {rows}, \"workers\": {workers},"
    );
    let _ = writeln!(
        block,
        "    \"mangle_seed\": {MANGLE_SEED}, \"mangle_rate\": {MANGLE_RATE}, \"reask_budget\": {},",
        ZeroEdConfig::default().reask_budget
    );
    let _ = writeln!(
        block,
        "    \"masks_identical\": true, \"accounting_reconciles\": true, \
         \"warm_llm_requests\": 0,"
    );
    let _ = writeln!(
        block,
        "    \"total_mangled\": {}, \"repaired\": {repaired}, \"reasked\": {reasked}, \
         \"defaulted\": {defaulted},",
        repair.total_mangled()
    );
    let _ = writeln!(
        block,
        "    \"reask_line\": {{\"requests\": {}, \"tokens\": {}}},",
        reask_usage.requests,
        reask_usage.total()
    );
    let _ = writeln!(
        block,
        "    \"llm_stage_overhead_vs_healthy\": {overhead:.2}, \"sequential_mangled_ms\": {seq_ms:.1},"
    );
    let _ = writeln!(block, "    \"stages\": [");
    let _ = writeln!(block, "{}", stages.join(",\n"));
    let _ = writeln!(block, "    ],");
    let _ = writeln!(block, "    \"healthy\": {},", mode_json(&healthy));
    let _ = writeln!(block, "    \"mangled_cold\": {},", mode_json(&conc));
    let _ = write!(block, "    \"mangled_warm\": {}", mode_json(&warm));
    block
}

/// The `--shapes` sweep: the three synthetic workload shapes
/// (`zeroed_datagen::WORKLOADS`), each run sequential vs concurrent+cache
/// with mask identity asserted and the cold run's stage breakdown recorded.
/// Capped at 10k rows — the shapes stress column count and value
/// distributions, not row volume.
fn shapes_section(rows: usize, workers: usize) -> String {
    let rows = rows.min(10_000).max(1);
    let cached = RuntimeConfig {
        workers,
        ..RuntimeConfig::default()
    };
    let mut blocks = Vec::new();
    for spec in DatasetSpec::WORKLOADS {
        let name = spec.name().to_ascii_lowercase();
        eprintln!("workload shape {name} @ {rows} rows ...");
        let ds = generate(
            spec,
            &GenerateOptions {
                n_rows: rows,
                seed: 7,
                error_spec: None,
            },
        );
        let config = ZeroEdConfig::fast();
        let seq_detector = ZeroEd::new(config.clone().sequential_runtime());
        let seq = run_mode("sequential", &seq_detector, &ds, 1);
        let cold_detector = ZeroEd::new(config.with_runtime(cached.clone()));
        let cold = run_mode("concurrent_cached_cold", &cold_detector, &ds, 1);
        assert_eq!(
            seq.outcome.mask, cold.outcome.mask,
            "{name}: shape mask diverged from the sequential oracle"
        );
        assert_profile(&name, &seq);
        assert_profile(&name, &cold);
        let overhead = profiler_overhead_pct(&cold);
        assert!(overhead < 2.0, "{name}: profiler overhead {overhead:.3}% >= 2%");
        eprintln!(
            "  {name}: seq llm-stage {:.0} ms | cached cold {:.0} ms | coverage {:.1}% | overhead {overhead:.3}%",
            seq.llm_stage_ms,
            cold.llm_stage_ms,
            profile_of(&cold).coverage() * 100.0,
        );
        let mut block = String::new();
        let _ = writeln!(
            block,
            "    {{\"dataset\": \"{name}\", \"rows\": {}, \"cols\": {}, \"workers\": {workers},",
            ds.dirty.n_rows(),
            ds.dirty.n_cols(),
        );
        let _ = writeln!(
            block,
            "     \"masks_identical\": true, \"profiler_overhead_pct\": {overhead:.3}, \"modes\": ["
        );
        json_mode(&mut block, &seq, false);
        json_mode(&mut block, &cold, true);
        let _ = writeln!(block, "     ],");
        let _ = write!(block, "     \"stage_breakdown\": {}}}", profile_of(&cold).to_json());
        blocks.push(block);
    }
    blocks.join(",\n")
}

/// The `--trace` experiment: the per-request flight recorder swept across
/// the execution-mode matrix on hospital + flights. Every leg re-runs the
/// zero-tolerance reconciliation ([`assert_trace`]); the routed leg
/// additionally pits the journal against the [`RouterLlm`]'s own stats
/// deltas, the mangled leg against the simulator's corruption count, and the
/// cold cached leg's journal is pushed through both exporters with
/// structural validation (JSONL line-exactness; Chrome entries all complete
/// spans or instants that Perfetto will load). Capped at 5k rows — event
/// volume scales with request count, which depends on columns, not rows.
fn trace_section(rows: usize, workers: usize) -> String {
    let rows = rows.min(5_000).max(1);
    let per_emit_nanos = emit_cost_nanos();
    let cached = RuntimeConfig {
        workers,
        ..RuntimeConfig::default()
    };
    let mut blocks = Vec::new();
    for (spec, name) in [
        (DatasetSpec::Hospital, "hospital"),
        (DatasetSpec::Flights, "flights"),
    ] {
        eprintln!("trace experiment: {name} @ {rows} rows ...");
        let ds = generate(
            spec,
            &GenerateOptions {
                n_rows: rows,
                seed: 7,
                error_spec: None,
            },
        );
        let config = ZeroEdConfig::fast();
        let mut runs: Vec<(String, TraceSummary, f64)> = Vec::new();

        eprintln!("  trace: sequential ...");
        let seq_detector = ZeroEd::new(config.clone().sequential_runtime());
        let seq = run_mode("sequential", &seq_detector, &ds, 1);
        runs.push((
            "sequential".into(),
            assert_trace(&format!("{name}/trace sequential"), &seq.outcome.stats),
            seq.total_ms,
        ));

        eprintln!("  trace: concurrent+cache cold ...");
        let cached_detector = ZeroEd::new(config.clone().with_runtime(cached.clone()));
        let cold = run_mode("concurrent_cached_cold", &cached_detector, &ds, 1);
        let cold_trace = assert_trace(&format!("{name}/trace cold"), &cold.outcome.stats);
        assert!(
            !cold_trace.exemplars.is_empty(),
            "{name}: a cold cached run must yield request-rooted exemplars"
        );

        eprintln!("  trace: concurrent+cache warm ...");
        let warm = run_mode("concurrent_cached_warm", &cached_detector, &ds, 1);
        runs.push((
            "concurrent_cached_warm".into(),
            assert_trace(&format!("{name}/trace warm"), &warm.outcome.stats),
            warm.total_ms,
        ));

        eprintln!("  trace: routed (slow-tail primary, hedging) ...");
        let primary = zeroed_bench::simulated_llm(&ds, LlmProfile::qwen_72b(), 1)
            .with_latency_scale(LATENCY_SCALE)
            .with_faults(FaultSchedule {
                error_rate: 0.1,
                ..FaultSchedule::slow_tail(11, 0.1, 50.0)
            });
        let replica = zeroed_bench::simulated_llm(&ds, LlmProfile::qwen_72b(), 1)
            .with_latency_scale(LATENCY_SCALE);
        let clients: Vec<&dyn LlmClient> = vec![&primary, &replica];
        let routed_detector = ZeroEd::new(
            config
                .clone()
                .with_runtime(cached.clone())
                .with_router(RouterConfig::for_backends(2)),
        );
        let router = RouterLlm::from_runtime(&routed_detector.config().runtime, clients);
        let routed = routed_detector.detect_routed(&ds.dirty, &router);
        assert_eq!(seq.outcome.mask, routed.mask, "{name}: routed trace leg mask diverged");
        // The journal counts reconcile against the router's *stats deltas*
        // (folded into PipelineStats by detect_routed) — the router keeps its
        // counters independently of the recorder.
        let routed_trace = assert_trace(&format!("{name}/trace routed"), &routed.stats);
        assert!(routed.stats.router_requests > 0);
        assert!(
            routed.stats.router_failovers > 0,
            "{name}: the faulty primary must force failovers"
        );
        runs.push(("routed_faulty_primary".into(), routed_trace, 0.0));

        eprintln!("  trace: mangled concurrent+cache ...");
        let mangle_llm = zeroed_bench::simulated_llm(&ds, LlmProfile::qwen_72b(), 1)
            .with_latency_scale(LATENCY_SCALE)
            .with_mangling(MangleSchedule::uniform(29, 0.4));
        let mangle_detector = ZeroEd::new(config.clone().with_runtime(cached.clone()));
        let mangled =
            run_mode_with("mangle_concurrent_cached", &mangle_detector, &ds, &mangle_llm);
        // No mask assert here: corruption legitimately degrades labels, and
        // mask invariance *under the same schedule* is the `--mangle`
        // section's job. This leg checks that the degradation ledger and
        // the journal agree while the pipeline is actively repairing.
        let mangled_trace = assert_trace(&format!("{name}/trace mangled"), &mangled.outcome.stats);
        assert_eq!(
            mangled_trace.count(EventKind::RepairMangled),
            mangle_llm.mangled_responses() as u64,
            "{name}: the journal must agree with the simulator's corruption count"
        );
        runs.push(("mangled_concurrent_cached".into(), mangled_trace, mangled.total_ms));

        // Exporter validation on the cold journal. JSONL: one line per
        // surviving event, no more, no less. Chrome: a well-formed JSON
        // array where every entry is a complete span ("X") or an instant
        // ("i") — the two phase types Perfetto needs no clock sync for.
        let journal = journal_jsonl(&cold_trace.events);
        assert_eq!(
            journal.lines().count(),
            cold_trace.events.len(),
            "{name}: JSONL journal must be line-exact"
        );
        let chrome = chrome_trace_json(&cold_trace.events);
        assert!(chrome.starts_with("[\n") && chrome.ends_with("\n]\n"));
        let entries: Vec<&str> = chrome
            .lines()
            .filter(|l| l.starts_with('{'))
            .collect();
        let spans = entries.iter().filter(|l| l.contains("\"ph\": \"X\"")).count();
        let instants = entries.iter().filter(|l| l.contains("\"ph\": \"i\"")).count();
        assert_eq!(
            spans + instants,
            entries.len(),
            "{name}: every Chrome entry must be a complete span or an instant"
        );
        assert!(spans > 0, "{name}: a cold run must reconstruct task/cache spans");
        // One complete span per matched pair: queue + execute per task,
        // compute per publish.
        assert_eq!(
            spans as u64,
            2 * cold_trace.count(EventKind::TaskStart)
                + cold_trace.count(EventKind::CachePublish),
            "{name}: span count must match the pairing rules exactly"
        );

        // Flight-recorder overhead shares the profiler's <2% budget.
        let overhead = trace_overhead_pct(per_emit_nanos, &cold_trace, cold.total_ms);
        assert!(
            overhead < 2.0,
            "{name}: flight-recorder overhead {overhead:.3}% >= 2%"
        );
        let slowest_ns = cold_trace
            .exemplars
            .first()
            .map_or(0, |e| e.end_nanos - e.begin_nanos);
        eprintln!(
            "  trace: {} events cold ({} spans, {} instants in Chrome export), \
             slowest request {:.2} ms, overhead {overhead:.4}%",
            cold_trace.recorded(),
            spans,
            instants,
            slowest_ns as f64 / 1e6,
        );

        runs.insert(1, ("concurrent_cached_cold".into(), cold_trace, cold.total_ms));
        let run_jsons: Vec<String> = runs
            .iter()
            .map(|(mode, trace, _)| {
                let counts: Vec<String> = EventKind::ALL
                    .iter()
                    .filter(|k| trace.count(**k) > 0)
                    .map(|k| format!("\"{}\": {}", k.name(), trace.count(*k)))
                    .collect();
                format!(
                    "      {{\"mode\": \"{mode}\", \"events\": {}, \"dropped\": {}, \
                     \"exemplars\": {}, \"counts\": {{{}}}}}",
                    trace.recorded(),
                    trace.dropped_events,
                    trace.exemplars.len(),
                    counts.join(", "),
                )
            })
            .collect();
        let mut block = String::new();
        let _ = writeln!(
            block,
            "    {{\"dataset\": \"{name}\", \"rows\": {rows}, \"workers\": {workers}, \
             \"causality_verified\": true, \"reconciled_exactly\": true,"
        );
        let _ = writeln!(
            block,
            "     \"recorder_overhead_pct\": {overhead:.4}, \
             \"chrome_spans\": {spans}, \"chrome_instants\": {instants}, \
             \"slowest_request_ns\": {slowest_ns},"
        );
        let _ = writeln!(block, "     \"runs\": [");
        let _ = writeln!(block, "{}", run_jsons.join(",\n"));
        let _ = write!(block, "     ]}}");
        blocks.push(block);
    }
    format!(
        "    \"per_emit_nanos\": {per_emit_nanos:.1},\n    \"datasets\": [\n{}\n    ]",
        blocks.join(",\n")
    )
}

/// The criteria-VM experiment, emitted on **every** run (`--quick` included):
/// the compiled bytecode engine (`zeroed-criteria::{compile, vm}`) against
/// the AST specification oracle (`verify::oracle`) on the hospital table's
/// simulator-derived criteria. Times the full-table feature extraction
/// (`criteria_features`) and the Algorithm-1 verification pair
/// (`filter_criteria` + `filter_rows`) on both engines, asserting the
/// outputs identical — feature matrices cell-for-cell, surviving criteria
/// and row sets exactly — before any speedup is reported.
fn criteria_section(rows: usize) -> String {
    eprintln!("criteria VM experiment: hospital @ {rows} rows ...");
    let ds = generate(
        DatasetSpec::Hospital,
        &GenerateOptions {
            n_rows: rows,
            seed: 7,
            error_spec: None,
        },
    );
    let table = &ds.dirty;
    let config = ZeroEdConfig::fast();
    // Criteria come from the same simulator the pipeline uses; latency
    // sleeps are disabled because only the evaluation engines are timed.
    let llm = SimLlm::default_model(7).with_latency_scale(0.0);
    let correlated = zeroed_core::pipeline::features::compute_correlated(table, &config);
    let criteria =
        zeroed_core::pipeline::features::generate_criteria(table, &correlated, &config, &llm);
    let sets: Vec<&zeroed_criteria::CriteriaSet> = criteria.iter().flatten().collect();
    let n_criteria: usize = sets.iter().map(|s| s.criteria.len()).sum();
    let dict = table.intern();

    // Full-table feature extraction (the per-cell f_cri blocks).
    let t = Instant::now();
    let oracle_features: Vec<Vec<Vec<f32>>> = sets
        .iter()
        .map(|set| verify::oracle::criteria_features(set, table))
        .collect();
    let features_oracle_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let compiled_features: Vec<Vec<Vec<f32>>> = sets
        .iter()
        .map(|set| verify::criteria_features_dict(set, &dict))
        .collect();
    let features_compiled_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        oracle_features, compiled_features,
        "criteria VM: feature matrices diverged from the AST oracle"
    );

    // Algorithm-1 mutual verification: criterion accuracies over the check
    // rows, then row pass rates over the survivors (threshold 0.5, the
    // paper's value; check rows = first 500, as in training_data).
    let check_rows: Vec<usize> = (0..table.n_rows().min(500)).collect();
    let threshold = 0.5;
    let t = Instant::now();
    let oracle_verified: Vec<_> = sets
        .iter()
        .map(|set| {
            let kept = verify::oracle::filter_criteria(set, table, &check_rows, threshold);
            let rows = verify::oracle::filter_rows(&kept, table, &check_rows, threshold);
            (kept, rows)
        })
        .collect();
    let verify_oracle_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let compiled_verified: Vec<_> = sets
        .iter()
        .map(|set| {
            let kept = verify::filter_criteria_dict(set, &dict, &check_rows, threshold);
            let rows = verify::filter_rows_dict(&kept, &dict, &check_rows, threshold);
            (kept, rows)
        })
        .collect();
    let verify_compiled_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        oracle_verified, compiled_verified,
        "criteria VM: Algorithm-1 verification diverged from the AST oracle"
    );

    let features_speedup = features_oracle_ms / features_compiled_ms.max(1e-9);
    let verify_speedup = verify_oracle_ms / verify_compiled_ms.max(1e-9);
    eprintln!(
        "  criteria_features: oracle {features_oracle_ms:.1} ms | compiled \
         {features_compiled_ms:.1} ms ({features_speedup:.1}x) | verify: oracle \
         {verify_oracle_ms:.1} ms | compiled {verify_compiled_ms:.1} ms ({verify_speedup:.1}x)"
    );

    let mut block = String::new();
    let _ = writeln!(
        block,
        "    \"dataset\": \"hospital\", \"rows\": {}, \"cols\": {}, \
         \"criteria_total\": {n_criteria},",
        table.n_rows(),
        table.n_cols(),
    );
    let _ = writeln!(
        block,
        "    \"bytecode_version\": {}, \"outputs_identical\": true,",
        zeroed_criteria::BYTECODE_VERSION
    );
    let _ = writeln!(
        block,
        "    \"features_oracle_ms\": {features_oracle_ms:.2}, \
         \"features_compiled_ms\": {features_compiled_ms:.2}, \
         \"features_speedup\": {features_speedup:.2},"
    );
    let _ = write!(
        block,
        "    \"verify_oracle_ms\": {verify_oracle_ms:.2}, \
         \"verify_compiled_ms\": {verify_compiled_ms:.2}, \
         \"verify_speedup\": {verify_speedup:.2}"
    );
    block
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_runtime.json".to_string();
    let mut rows = 50_000usize;
    let mut workers = 16usize;
    let mut router = false;
    let mut persist = false;
    let mut mangle = false;
    let mut shapes = false;
    let mut trace = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                if let Some(p) = args.get(i + 1) {
                    out_path = p.clone();
                    i += 1;
                }
            }
            "--rows" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    rows = v;
                    i += 1;
                }
            }
            "--workers" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    workers = v;
                    i += 1;
                }
            }
            "--quick" => rows = 5_000,
            "--router" => router = true,
            "--persist" => persist = true,
            "--mangle" => mangle = true,
            "--shapes" => shapes = true,
            "--trace" => trace = true,
            _ => {}
        }
        i += 1;
    }

    let specs = [
        (DatasetSpec::Hospital, "hospital"),
        (DatasetSpec::Flights, "flights"),
    ];
    let concurrent = RuntimeConfig {
        workers,
        ..RuntimeConfig::concurrent_uncached()
    };
    let cached = RuntimeConfig {
        workers,
        ..RuntimeConfig::default()
    };

    let mut blocks: Vec<String> = Vec::new();
    let mut all_speedups_ok = true;
    for &(spec, name) in &specs {
        eprintln!("generating {name} @ {rows} rows ...");
        let ds = generate(
            spec,
            &GenerateOptions {
                n_rows: rows,
                seed: 7,
                error_spec: None,
            },
        );
        let config = ZeroEdConfig::fast();

        eprintln!("  sequential ...");
        let seq_detector = ZeroEd::new(config.clone().sequential_runtime());
        let seq = run_mode("sequential", &seq_detector, &ds, 1);

        eprintln!("  concurrent ({workers} workers) ...");
        let conc_detector = ZeroEd::new(config.clone().with_runtime(concurrent.clone()));
        let conc = run_mode("concurrent", &conc_detector, &ds, 1);

        eprintln!("  concurrent+cache cold ...");
        let cached_detector = ZeroEd::new(config.clone().with_runtime(cached.clone()));
        let cold = run_mode("concurrent_cached_cold", &cached_detector, &ds, 1);

        eprintln!("  concurrent+cache warm (re-run) ...");
        let warm = run_mode("concurrent_cached_warm", &cached_detector, &ds, 1);

        // Scheduling and caching must never change the detection result.
        assert_eq!(seq.outcome.mask, conc.outcome.mask, "{name}: concurrent mask diverged");
        assert_eq!(seq.outcome.mask, cold.outcome.mask, "{name}: cached mask diverged");
        assert_eq!(seq.outcome.mask, warm.outcome.mask, "{name}: warm mask diverged");
        assert_eq!(warm.requests, 0, "{name}: warm run must not call the model");

        // Every mode's stage profile must reconcile (child sums ≤ parent,
        // ≥90% of wall covered) and the profiler must stay under 2% of the
        // run — on --quick too, so tier-1 guards the invariant.
        for r in [&seq, &conc, &cold, &warm] {
            assert_profile(name, r);
            if trace {
                // The flight recorder's zero-tolerance reconciliation runs
                // on every headline mode, --quick included.
                assert_trace(&format!("{name}/{}", r.label), &r.outcome.stats);
            }
        }
        // The full-size hospital sequential run also guards the non-LLM
        // wall: sampling+detector must stay under half of the detect wall
        // (see assert_non_llm_wall for why exactly this run).
        if rows >= 50_000 && name == "hospital" {
            assert_non_llm_wall(name, &seq);
        }
        let overhead = profiler_overhead_pct(&cold);
        assert!(overhead < 2.0, "{name}: profiler overhead {overhead:.3}% >= 2%");

        let speedup_concurrent = seq.llm_stage_ms / conc.llm_stage_ms.max(1e-9);
        let speedup_cached = seq.llm_stage_ms / cold.llm_stage_ms.max(1e-9);
        let speedup_warm = seq.llm_stage_ms / warm.llm_stage_ms.max(1e-9);
        eprintln!(
            "  llm-stage: seq {:.0} ms | conc {:.0} ms ({:.1}x) | cache cold {:.0} ms ({:.1}x) | \
             cache warm {:.0} ms ({:.1}x, {} tokens saved)",
            seq.llm_stage_ms,
            conc.llm_stage_ms,
            speedup_concurrent,
            cold.llm_stage_ms,
            speedup_cached,
            warm.llm_stage_ms,
            speedup_warm,
            warm.tokens_saved,
        );
        if speedup_cached < 2.0 {
            all_speedups_ok = false;
        }

        let mut block = String::new();
        let _ = writeln!(
            block,
            "    {{\"dataset\": \"{}\", \"rows\": {}, \"cols\": {}, \"workers\": {},",
            name,
            ds.dirty.n_rows(),
            ds.dirty.n_cols(),
            workers,
        );
        let _ = writeln!(
            block,
            "     \"speedup_llm_stage_concurrent\": {speedup_concurrent:.2}, \
             \"speedup_llm_stage_cached\": {speedup_cached:.2}, \
             \"speedup_llm_stage_warm_rerun\": {speedup_warm:.2}, \
             \"masks_identical\": true, \"modes\": ["
        );
        json_mode(&mut block, &seq, false);
        json_mode(&mut block, &conc, false);
        json_mode(&mut block, &cold, false);
        json_mode(&mut block, &warm, true);
        block.push_str("    ],\n");
        let _ = writeln!(block, "     \"profiler_overhead_pct\": {overhead:.3},");
        // The cold cached run's tree: the representative configuration (the
        // default mode) paying full LLM + featurisation cost.
        let _ = write!(
            block,
            "     \"stage_breakdown\": {}}}",
            profile_of(&cold).to_json()
        );
        blocks.push(block);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p zeroed-bench --bin bench_runtime\",",
    );
    // Host metadata: physical parallelism (std::thread::available_parallelism)
    // alongside the configured worker budget. The pool size is a request-
    // concurrency budget against a serving backend, not a core count —
    // simulated LLM sleeps overlap regardless of cores — so both numbers are
    // needed to interpret speedups across machines.
    let _ = writeln!(
        json,
        "  \"host\": {{\"available_parallelism\": {}, \"worker_budget\": {workers}}},",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let _ = writeln!(
        json,
        "  \"latency_scale\": {LATENCY_SCALE}, \"llm_profile\": \"Qwen2.5-72b\",",
    );
    let _ = writeln!(
        json,
        "  \"llm_stage\": \"labeling + training_data (the model-call-dominated pipeline steps)\","
    );
    json.push_str("  \"runs\": [\n");
    json.push_str(&blocks.join(",\n"));
    json.push_str("\n  ]");
    // Always emitted (like the headline runs): the compiled criteria engine
    // vs its AST oracle, outputs asserted identical — tier-1 `--quick` runs
    // guard the equivalence, full runs refresh the ledger's speedups.
    json.push_str(",\n  \"criteria_vm\": {\n");
    json.push_str(&criteria_section(rows));
    json.push_str("\n  }");
    if shapes {
        json.push_str(",\n  \"shapes\": [\n");
        json.push_str(&shapes_section(rows, workers));
        json.push_str("\n  ]");
    }
    if router {
        json.push_str(",\n  \"router\": {\n");
        json.push_str(&router_section(rows, workers));
        json.push_str("\n  }");
    }
    if persist {
        json.push_str(",\n  \"persistence\": {\n");
        json.push_str(&persist_section(rows, workers));
        json.push_str("\n  }");
    }
    if mangle {
        json.push_str(",\n  \"mangling\": {\n");
        json.push_str(&mangle_section(rows, workers));
        json.push_str("\n  }");
    }
    if trace {
        json.push_str(",\n  \"trace\": {\n");
        json.push_str(&trace_section(rows, workers));
        json.push_str("\n  }");
    }
    json.push_str("\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("{json}");
    eprintln!("wrote {out_path}");
    assert!(
        all_speedups_ok,
        "concurrent+cache must be at least 2x faster than sequential on the LLM stages"
    );
}
