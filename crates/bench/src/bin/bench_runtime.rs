//! `BENCH_runtime.json` emitter: LLM-orchestration wall-times for the three
//! runtime execution modes.
//!
//! Runs full `ZeroEd::detect` sweeps on the hospital and flights generators
//! (50k rows by default; `--quick` drops to 5k for CI smoke runs) with the
//! simulated serving-latency model enabled, through:
//!
//! 1. **sequential** — the seed path: every LLM call blocks the pipeline;
//! 2. **concurrent** — per-attribute fan-out on the `zeroed-runtime`
//!    scheduler, no cache;
//! 3. **concurrent+cache (cold)** — same, with the request-dedup cache on;
//! 4. **concurrent+cache (warm)** — a second detection against the same
//!    detector: every request replays from the cache (the re-run /
//!    repeated-workload scenario).
//!
//! The worker budget is fixed (default 16, `--workers N`) rather than derived
//! from host cores: LLM calls are latency-bound, not CPU-bound, so the pool
//! models a request-concurrency budget against a serving backend — sleeps
//! overlap regardless of core count. The headline metric is the *LLM-stage*
//! wall-time (labelling + training-data construction, the two stages whose
//! wall-clock is dominated by model calls); totals and the serial model cost
//! (`TokenLedger::sim_cost`) are reported alongside. Every mode must produce
//! a bit-identical mask — the emitter asserts it before writing the ledger.
//!
//! ```text
//! cargo run --release -p zeroed-bench --bin bench_runtime
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use zeroed_core::{DetectionOutcome, RuntimeConfig, ZeroEd, ZeroEdConfig};
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
use zeroed_llm::{LlmClient, LlmProfile};

const LATENCY_SCALE: f64 = 1.0;

struct ModeResult {
    label: &'static str,
    total_ms: f64,
    llm_stage_ms: f64,
    requests: usize,
    tokens: usize,
    sim_cost_ms: f64,
    cache_hits: usize,
    cache_misses: usize,
    tokens_saved: usize,
    outcome: DetectionOutcome,
}

fn run_mode(
    label: &'static str,
    detector: &ZeroEd,
    ds: &zeroed_datagen::GeneratedDataset,
    seed: u64,
) -> ModeResult {
    let llm = zeroed_bench::simulated_llm(ds, LlmProfile::qwen_72b(), seed)
        .with_latency_scale(LATENCY_SCALE);
    let t = Instant::now();
    let outcome = detector.detect(&ds.dirty, &llm);
    let total_ms = t.elapsed().as_secs_f64() * 1e3;
    let usage = llm.ledger().usage();
    let timings = &outcome.timings;
    ModeResult {
        label,
        total_ms,
        llm_stage_ms: (timings.labeling + timings.training_data).as_secs_f64() * 1e3,
        requests: usage.requests,
        tokens: usage.total(),
        sim_cost_ms: llm.ledger().sim_cost().as_secs_f64() * 1e3,
        cache_hits: outcome.stats.cache_hits,
        cache_misses: outcome.stats.cache_misses,
        tokens_saved: outcome.stats.cache_tokens_saved,
        outcome,
    }
}

fn json_mode(json: &mut String, r: &ModeResult, last: bool) {
    let _ = write!(
        json,
        "      {{\"mode\": \"{}\", \"total_ms\": {:.1}, \"llm_stage_ms\": {:.1}, \
         \"requests\": {}, \"tokens\": {}, \"llm_serial_cost_ms\": {:.1}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"cache_tokens_saved\": {}}}",
        r.label,
        r.total_ms,
        r.llm_stage_ms,
        r.requests,
        r.tokens,
        r.sim_cost_ms,
        r.cache_hits,
        r.cache_misses,
        r.tokens_saved,
    );
    json.push_str(if last { "\n" } else { ",\n" });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_runtime.json".to_string();
    let mut rows = 50_000usize;
    let mut workers = 16usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                if let Some(p) = args.get(i + 1) {
                    out_path = p.clone();
                    i += 1;
                }
            }
            "--rows" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    rows = v;
                    i += 1;
                }
            }
            "--workers" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    workers = v;
                    i += 1;
                }
            }
            "--quick" => rows = 5_000,
            _ => {}
        }
        i += 1;
    }

    let specs = [
        (DatasetSpec::Hospital, "hospital"),
        (DatasetSpec::Flights, "flights"),
    ];
    let concurrent = RuntimeConfig {
        workers,
        ..RuntimeConfig::concurrent_uncached()
    };
    let cached = RuntimeConfig {
        workers,
        ..RuntimeConfig::default()
    };

    let mut blocks: Vec<String> = Vec::new();
    let mut all_speedups_ok = true;
    for &(spec, name) in &specs {
        eprintln!("generating {name} @ {rows} rows ...");
        let ds = generate(
            spec,
            &GenerateOptions {
                n_rows: rows,
                seed: 7,
                error_spec: None,
            },
        );
        let config = ZeroEdConfig::fast();

        eprintln!("  sequential ...");
        let seq_detector = ZeroEd::new(config.clone().sequential_runtime());
        let seq = run_mode("sequential", &seq_detector, &ds, 1);

        eprintln!("  concurrent ({workers} workers) ...");
        let conc_detector = ZeroEd::new(config.clone().with_runtime(concurrent.clone()));
        let conc = run_mode("concurrent", &conc_detector, &ds, 1);

        eprintln!("  concurrent+cache cold ...");
        let cached_detector = ZeroEd::new(config.clone().with_runtime(cached.clone()));
        let cold = run_mode("concurrent_cached_cold", &cached_detector, &ds, 1);

        eprintln!("  concurrent+cache warm (re-run) ...");
        let warm = run_mode("concurrent_cached_warm", &cached_detector, &ds, 1);

        // Scheduling and caching must never change the detection result.
        assert_eq!(seq.outcome.mask, conc.outcome.mask, "{name}: concurrent mask diverged");
        assert_eq!(seq.outcome.mask, cold.outcome.mask, "{name}: cached mask diverged");
        assert_eq!(seq.outcome.mask, warm.outcome.mask, "{name}: warm mask diverged");
        assert_eq!(warm.requests, 0, "{name}: warm run must not call the model");

        let speedup_concurrent = seq.llm_stage_ms / conc.llm_stage_ms.max(1e-9);
        let speedup_cached = seq.llm_stage_ms / cold.llm_stage_ms.max(1e-9);
        let speedup_warm = seq.llm_stage_ms / warm.llm_stage_ms.max(1e-9);
        eprintln!(
            "  llm-stage: seq {:.0} ms | conc {:.0} ms ({:.1}x) | cache cold {:.0} ms ({:.1}x) | \
             cache warm {:.0} ms ({:.1}x, {} tokens saved)",
            seq.llm_stage_ms,
            conc.llm_stage_ms,
            speedup_concurrent,
            cold.llm_stage_ms,
            speedup_cached,
            warm.llm_stage_ms,
            speedup_warm,
            warm.tokens_saved,
        );
        if speedup_cached < 2.0 {
            all_speedups_ok = false;
        }

        let mut block = String::new();
        let _ = writeln!(
            block,
            "    {{\"dataset\": \"{}\", \"rows\": {}, \"cols\": {}, \"workers\": {},",
            name,
            ds.dirty.n_rows(),
            ds.dirty.n_cols(),
            workers,
        );
        let _ = writeln!(
            block,
            "     \"speedup_llm_stage_concurrent\": {speedup_concurrent:.2}, \
             \"speedup_llm_stage_cached\": {speedup_cached:.2}, \
             \"speedup_llm_stage_warm_rerun\": {speedup_warm:.2}, \
             \"masks_identical\": true, \"modes\": ["
        );
        json_mode(&mut block, &seq, false);
        json_mode(&mut block, &conc, false);
        json_mode(&mut block, &cold, false);
        json_mode(&mut block, &warm, true);
        block.push_str("    ]}");
        blocks.push(block);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p zeroed-bench --bin bench_runtime\",",
    );
    let _ = writeln!(
        json,
        "  \"host_cores\": {},",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let _ = writeln!(
        json,
        "  \"latency_scale\": {LATENCY_SCALE}, \"llm_profile\": \"Qwen2.5-72b\",",
    );
    let _ = writeln!(
        json,
        "  \"llm_stage\": \"labeling + training_data (the model-call-dominated pipeline steps)\","
    );
    json.push_str("  \"runs\": [\n");
    json.push_str(&blocks.join(",\n"));
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("{json}");
    eprintln!("wrote {out_path}");
    assert!(
        all_speedups_ok,
        "concurrent+cache must be at least 2x faster than sequential on the LLM stages"
    );
}
