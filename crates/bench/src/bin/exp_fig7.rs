//! Fig. 7 — end-to-end runtime: (a) every method across the six comparison
//! datasets, (b) scalability on growing subsets of the Tax dataset.

use zeroed_bench::{format_table, parse_args, prepared_dataset, run_method, Method, Row};
use zeroed_core::ZeroEdConfig;
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
use zeroed_llm::LlmProfile;

fn main() {
    let args = parse_args(std::env::args().skip(1));
    println!("== Fig. 7: running-time evaluation ==");
    println!("(rows per dataset: {}; single run per point)\n", args.rows);
    let methods = Method::paper_lineup(ZeroEdConfig::default());

    // (a) Runtime across datasets.
    let header: Vec<String> = DatasetSpec::COMPARISON
        .iter()
        .map(|s| format!("{} (s)", s.name()))
        .collect();
    let datasets: Vec<_> = DatasetSpec::COMPARISON
        .iter()
        .map(|&spec| prepared_dataset(spec, &args, args.base_seed))
        .collect();
    let mut rows = Vec::new();
    for method in &methods {
        let mut cells = Vec::new();
        for prepared in &datasets {
            let result = run_method(method, &prepared.data, LlmProfile::qwen_72b(), args.base_seed);
            cells.push(format!("{:.2}", result.runtime.as_secs_f64()));
        }
        rows.push(Row::new(method.name(), cells));
        eprintln!("finished {}", method.name());
    }
    println!("(a) runtime across datasets");
    println!("{}", format_table("Method", &header, &rows));

    // (b) Scalability on Tax subsets. The paper sweeps 50k–200k tuples; the
    // default harness sweep is scaled down so it finishes quickly — pass
    // larger --rows to extend it (sizes are rows, 2*rows, 4*rows, 8*rows).
    let base = if args.rows == 0 { 1_000 } else { args.rows };
    let sizes: Vec<usize> = vec![base, base * 2, base * 4, base * 8];
    let header: Vec<String> = sizes.iter().map(|s| format!("{s} rows (s)")).collect();
    let mut rows = Vec::new();
    for method in &methods {
        let mut cells = Vec::new();
        for &size in &sizes {
            let ds = generate(
                DatasetSpec::Tax,
                &GenerateOptions {
                    n_rows: size,
                    seed: args.base_seed,
                    error_spec: None,
                },
            );
            let result = run_method(method, &ds, LlmProfile::qwen_72b(), args.base_seed);
            cells.push(format!("{:.2}", result.runtime.as_secs_f64()));
        }
        rows.push(Row::new(method.name(), cells));
        eprintln!("finished {} on Tax subsets", method.name());
    }
    println!("(b) runtime on Tax subsets");
    println!("{}", format_table("Method", &header, &rows));
}
