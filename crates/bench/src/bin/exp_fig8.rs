//! Fig. 8 — LLM token consumption of ZeroED vs FM_ED: (a) across the six
//! comparison datasets, (b) on growing subsets of the Tax dataset.

use zeroed_bench::{format_table, parse_args, prepared_dataset, run_method, Method, Row};
use zeroed_core::ZeroEdConfig;
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
use zeroed_llm::LlmProfile;

fn token_cells(result: &zeroed_bench::MethodResult) -> Vec<String> {
    vec![
        format!("{}", result.tokens.input_tokens),
        format!("{}", result.tokens.output_tokens),
        format!("{}", result.tokens.total()),
    ]
}

fn main() {
    let args = parse_args(std::env::args().skip(1));
    println!("== Fig. 8: token consumption (ZeroED vs FM_ED) ==");
    println!("(rows per dataset: {}; single run per point)\n", args.rows);
    let methods = [
        ("ZeroED", Method::ZeroEd(ZeroEdConfig::default())),
        ("FM_ED", Method::FmEd),
    ];

    // (a) Across datasets.
    println!("(a) token cost across datasets (input / output / total)");
    let header: Vec<String> = vec!["input".into(), "output".into(), "total".into()];
    for &spec in &DatasetSpec::COMPARISON {
        let prepared = prepared_dataset(spec, &args, args.base_seed);
        let mut rows = Vec::new();
        for (label, method) in &methods {
            let result = run_method(method, &prepared.data, LlmProfile::qwen_72b(), args.base_seed);
            rows.push(Row::new(*label, token_cells(&result)));
        }
        println!("{}", format_table(spec.name(), &header, &rows));
    }

    // (b) Tax subsets.
    let base = if args.rows == 0 { 1_000 } else { args.rows };
    let sizes: Vec<usize> = vec![base, base * 2, base * 4, base * 8];
    println!("(b) total token cost on Tax subsets");
    let header: Vec<String> = sizes.iter().map(|s| format!("{s} rows")).collect();
    let mut rows = Vec::new();
    for (label, method) in &methods {
        let mut cells = Vec::new();
        for &size in &sizes {
            let ds = generate(
                DatasetSpec::Tax,
                &GenerateOptions {
                    n_rows: size,
                    seed: args.base_seed,
                    error_spec: None,
                },
            );
            let result = run_method(method, &ds, LlmProfile::qwen_72b(), args.base_seed);
            cells.push(format!("{}", result.tokens.total()));
        }
        rows.push(Row::new(*label, cells));
        eprintln!("finished {label} on Tax subsets");
    }
    println!("{}", format_table("Method", &header, &rows));
}
