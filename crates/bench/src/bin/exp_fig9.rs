//! Fig. 9 — ZeroED performance as the LLM label rate (clustering number) grows
//! from 1% to 5%.

use zeroed_bench::tablefmt::prf;
use zeroed_bench::{format_table, parse_args, prepared_dataset, run_method_averaged, Method, Row};
use zeroed_core::ZeroEdConfig;
use zeroed_datagen::DatasetSpec;
use zeroed_llm::LlmProfile;

fn main() {
    let args = parse_args(std::env::args().skip(1));
    println!("== Fig. 9: error detection under different LLM label rates ==");
    println!(
        "(rows per dataset: {}; seeds averaged: {})\n",
        args.rows, args.seeds
    );
    let rates = [0.01, 0.02, 0.03, 0.04, 0.05];
    let header: Vec<String> = DatasetSpec::COMPARISON
        .iter()
        .map(|s| format!("{} P/R/F1", s.name()))
        .collect();
    let seeds = args.seed_list();
    let datasets: Vec<_> = DatasetSpec::COMPARISON
        .iter()
        .map(|&spec| prepared_dataset(spec, &args, args.base_seed))
        .collect();

    let mut rows = Vec::new();
    for &rate in &rates {
        let config = ZeroEdConfig {
            label_rate: rate,
            ..ZeroEdConfig::default()
        };
        let method = Method::ZeroEd(config);
        let mut cells = Vec::new();
        for prepared in &datasets {
            let result =
                run_method_averaged(&method, &prepared.data, LlmProfile::qwen_72b(), &seeds);
            cells.push(prf(
                result.report.precision,
                result.report.recall,
                result.report.f1,
            ));
        }
        rows.push(Row::new(format!("{:.0}%", rate * 100.0), cells));
        eprintln!("finished label rate {rate}");
    }
    println!("{}", format_table("Label rate", &header, &rows));
}
