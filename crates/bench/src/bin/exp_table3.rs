//! Table III — main comparison: precision/recall/F1 of the seven methods on
//! the six comparison datasets.

use zeroed_bench::{format_table, parse_args, prepared_dataset, run_method_averaged};
use zeroed_bench::{Method, Row};
use zeroed_bench::tablefmt::prf;
use zeroed_core::ZeroEdConfig;
use zeroed_datagen::DatasetSpec;
use zeroed_llm::LlmProfile;

fn main() {
    let args = parse_args(std::env::args().skip(1));
    println!("== Table III: error-detection performance comparison ==");
    println!(
        "(rows per dataset: {}; seeds averaged: {})\n",
        args.rows, args.seeds
    );
    let methods = Method::paper_lineup(ZeroEdConfig::default());
    let header: Vec<String> = DatasetSpec::COMPARISON
        .iter()
        .map(|s| format!("{} P/R/F1", s.name()))
        .collect();
    let seeds = args.seed_list();

    // Generate each dataset once (per base seed) and reuse across methods.
    let datasets: Vec<_> = DatasetSpec::COMPARISON
        .iter()
        .map(|&spec| prepared_dataset(spec, &args, args.base_seed))
        .collect();

    let mut rows = Vec::new();
    for method in &methods {
        let mut cells = Vec::new();
        for prepared in &datasets {
            let result =
                run_method_averaged(method, &prepared.data, LlmProfile::qwen_72b(), &seeds);
            cells.push(prf(
                result.report.precision,
                result.report.recall,
                result.report.f1,
            ));
        }
        rows.push(Row::new(method.name(), cells));
        eprintln!("finished {}", method.name());
    }
    println!("{}", format_table("Method", &header, &rows));
}
