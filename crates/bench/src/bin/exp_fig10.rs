//! Fig. 10 — ZeroED performance as the number of correlated attributes grows
//! from 1 to 5.

use zeroed_bench::tablefmt::prf;
use zeroed_bench::{format_table, parse_args, prepared_dataset, run_method_averaged, Method, Row};
use zeroed_core::ZeroEdConfig;
use zeroed_datagen::DatasetSpec;
use zeroed_llm::LlmProfile;

fn main() {
    let args = parse_args(std::env::args().skip(1));
    println!("== Fig. 10: error detection under different correlated-attribute counts ==");
    println!(
        "(rows per dataset: {}; seeds averaged: {})\n",
        args.rows, args.seeds
    );
    let header: Vec<String> = DatasetSpec::COMPARISON
        .iter()
        .map(|s| format!("{} P/R/F1", s.name()))
        .collect();
    let seeds = args.seed_list();
    let datasets: Vec<_> = DatasetSpec::COMPARISON
        .iter()
        .map(|&spec| prepared_dataset(spec, &args, args.base_seed))
        .collect();

    let mut rows = Vec::new();
    for k in 1..=5usize {
        let config = ZeroEdConfig {
            top_k_corr: k,
            ..ZeroEdConfig::default()
        };
        let method = Method::ZeroEd(config);
        let mut cells = Vec::new();
        for prepared in &datasets {
            let result =
                run_method_averaged(&method, &prepared.data, LlmProfile::qwen_72b(), &seeds);
            cells.push(prf(
                result.report.precision,
                result.report.recall,
                result.report.f1,
            ));
        }
        rows.push(Row::new(format!("k = {k}"), cells));
        eprintln!("finished k = {k}");
    }
    println!("{}", format_table("Corr. attrs", &header, &rows));
}
