//! `BENCH_features.json` emitter: featurisation wall-times on duplicate-heavy
//! generated datasets, fast (interned) path vs. the seed reference path.
//!
//! Runs the full `fit + build_all` featurisation on the hospital and flights
//! generators at 1k/10k/50k rows, once through the interned fast path and once
//! through `zeroed_features::reference::build_all_reference` (the seed
//! per-cell implementation, kept as the correctness oracle), plus an
//! end-to-end `ZeroEd::detect` wall-time per dataset at 1k rows, plus the
//! interned-vs-reference wall-times of the dBoost, NADEEF and KATARA
//! baselines (whose histograms, FD lookups and knowledge-base lookups consume
//! the shared `TableDict` / code-keyed `FrequencyModel`). Results are
//! written to `BENCH_features.json` (override with `--out PATH`; `--quick`
//! caps the sweep at 10k rows for CI smoke runs) so successive PRs can track
//! the perf trajectory.
//!
//! ```text
//! cargo run --release -p zeroed-bench --bin bench_features
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use zeroed_baselines::{Baseline, BaselineInput, DBoost, Katara, LabeledTuple, Nadeef, Raha};
use zeroed_core::{ZeroEd, ZeroEdConfig};
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
use zeroed_features::reference::build_all_reference;
use zeroed_features::{FeatureBuilder, FeatureConfig};
use zeroed_llm::LlmProfile;

struct FeatureResult {
    dataset: &'static str,
    rows: usize,
    cols: usize,
    distinct_ratio: f64,
    fit_ms: f64,
    fast_build_ms: f64,
    reference_build_ms: f64,
}

struct PipelineResult {
    dataset: &'static str,
    rows: usize,
    wall_ms: f64,
}

struct BaselineResult {
    method: &'static str,
    dataset: &'static str,
    rows: usize,
    interned_ms: f64,
    reference_ms: f64,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn bench_dataset(spec: DatasetSpec, name: &'static str, rows: usize) -> FeatureResult {
    let ds = generate(
        spec,
        &GenerateOptions {
            n_rows: rows,
            seed: 7,
            error_spec: None,
        },
    );
    let table = &ds.dirty;
    let dict = table.intern();
    let n_cells = table.n_cells().max(1);
    let distinct: usize = (0..table.n_cols())
        .map(|j| dict.column(j).n_distinct())
        .sum();
    let builder = FeatureBuilder::new(FeatureConfig {
        embed_dim: 24,
        top_k_corr: 2,
        ..FeatureConfig::default()
    });

    // Fit (interning, NMI, frequency model, distinct-value caches).
    let t = Instant::now();
    let fitted = builder.fit(table, &[]);
    let fit_ms = ms(t);

    // Fast path: warm once, then time the better of two runs.
    let _ = fitted.build_all();
    let mut fast_build_ms = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        let fast = fitted.build_all();
        fast_build_ms = fast_build_ms.min(ms(t));
        std::hint::black_box(&fast);
    }

    // Seed reference path (single run; it is the slow side being measured).
    let t = Instant::now();
    let reference = build_all_reference(&fitted);
    let reference_build_ms = ms(t);
    std::hint::black_box(&reference);

    FeatureResult {
        dataset: name,
        rows: table.n_rows(),
        cols: table.n_cols(),
        distinct_ratio: distinct as f64 / n_cells as f64,
        fit_ms,
        fast_build_ms,
        reference_build_ms,
    }
}

fn bench_pipeline(spec: DatasetSpec, name: &'static str, rows: usize) -> PipelineResult {
    let ds = generate(
        spec,
        &GenerateOptions {
            n_rows: rows,
            seed: 7,
            error_spec: None,
        },
    );
    let llm = zeroed_bench::simulated_llm(&ds, LlmProfile::qwen_72b(), 1);
    let detector = ZeroEd::new(ZeroEdConfig::fast());
    let t = Instant::now();
    let outcome = detector.detect(&ds.dirty, &llm);
    let wall_ms = ms(t);
    std::hint::black_box(&outcome);
    PipelineResult {
        dataset: name,
        rows,
        wall_ms,
    }
}

fn bench_baselines(spec: DatasetSpec, name: &'static str, rows: usize) -> Vec<BaselineResult> {
    let ds = generate(
        spec,
        &GenerateOptions {
            n_rows: rows,
            seed: 7,
            error_spec: None,
        },
    );
    let input = BaselineInput {
        dirty: &ds.dirty,
        metadata: &ds.metadata,
        labeled: &[],
    };
    let dboost = DBoost::default();
    let nadeef = Nadeef::with_all_rules();
    let mut out = Vec::new();
    // Both sides get the identical protocol — one untimed warm-up run, then
    // best-of-two timed runs — so one-time allocator/page-fault effects bias
    // neither, and equivalence is asserted as we go.
    let time_side = |side: &dyn Fn() -> zeroed_table::ErrorMask| {
        let warm = side();
        let mut best_ms = f64::INFINITY;
        for _ in 0..2 {
            let t = Instant::now();
            let mask = side();
            best_ms = best_ms.min(ms(t));
            assert_eq!(mask, warm);
        }
        (warm, best_ms)
    };
    let time_pair = |fast: &dyn Fn() -> zeroed_table::ErrorMask,
                     slow: &dyn Fn() -> zeroed_table::ErrorMask| {
        let (fast_mask, fast_ms) = time_side(fast);
        let (slow_mask, slow_ms) = time_side(slow);
        assert_eq!(slow_mask, fast_mask, "interned baseline diverged from reference");
        (fast_ms, slow_ms)
    };
    let (interned_ms, reference_ms) =
        time_pair(&|| dboost.detect(&input), &|| dboost.detect_reference(&input));
    out.push(BaselineResult {
        method: "dBoost",
        dataset: name,
        rows,
        interned_ms,
        reference_ms,
    });
    let (interned_ms, reference_ms) =
        time_pair(&|| nadeef.detect(&input), &|| nadeef.detect_reference(&input));
    out.push(BaselineResult {
        method: "NADEEF",
        dataset: name,
        rows,
        interned_ms,
        reference_ms,
    });
    let katara = Katara;
    let (interned_ms, reference_ms) =
        time_pair(&|| katara.detect(&input), &|| katara.detect_reference(&input));
    out.push(BaselineResult {
        method: "KATARA",
        dataset: name,
        rows,
        interned_ms,
        reference_ms,
    });
    // Raha's detection is label-propagated: give it a realistic labelling
    // budget (error rows plus clean rows, as in the Fig. 6 sweeps).
    let labels = LabeledTuple::mixed_from_mask(&ds.mask, 10);
    let labeled_input = BaselineInput {
        dirty: &ds.dirty,
        metadata: &ds.metadata,
        labeled: &labels,
    };
    let raha = Raha::default();
    let (interned_ms, reference_ms) = time_pair(
        &|| raha.detect(&labeled_input),
        &|| raha.detect_reference(&labeled_input),
    );
    out.push(BaselineResult {
        method: "Raha",
        dataset: name,
        rows,
        interned_ms,
        reference_ms,
    });
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_features.json".to_string();
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                if let Some(p) = args.get(i + 1) {
                    out_path = p.clone();
                    i += 1;
                }
            }
            "--quick" => quick = true,
            _ => {}
        }
        i += 1;
    }

    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 50_000]
    };
    let specs = [
        (DatasetSpec::Hospital, "hospital"),
        (DatasetSpec::Flights, "flights"),
    ];

    let mut features = Vec::new();
    for &(spec, name) in &specs {
        for &rows in sizes {
            eprintln!("featurising {name} @ {rows} rows ...");
            let r = bench_dataset(spec, name, rows);
            eprintln!(
                "  fit {:.1} ms | build fast {:.1} ms | build reference {:.1} ms | speedup {:.1}x",
                r.fit_ms,
                r.fast_build_ms,
                r.reference_build_ms,
                r.reference_build_ms / r.fast_build_ms.max(1e-9),
            );
            features.push(r);
        }
    }

    let mut pipeline = Vec::new();
    for &(spec, name) in &specs {
        eprintln!("end-to-end pipeline {name} @ 1000 rows ...");
        let r = bench_pipeline(spec, name, 1_000);
        eprintln!("  detect {:.1} ms", r.wall_ms);
        pipeline.push(r);
    }

    let baseline_rows = *sizes.last().unwrap();
    let mut baselines = Vec::new();
    for &(spec, name) in &specs {
        eprintln!("baselines {name} @ {baseline_rows} rows ...");
        for r in bench_baselines(spec, name, baseline_rows) {
            eprintln!(
                "  {} interned {:.1} ms | reference {:.1} ms | speedup {:.1}x",
                r.method,
                r.interned_ms,
                r.reference_ms,
                r.reference_ms / r.interned_ms.max(1e-9),
            );
            baselines.push(r);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p zeroed-bench --bin bench_features\",",
    );
    let _ = writeln!(
        json,
        "  \"host_cores\": {},",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    json.push_str("  \"featurisation\": [\n");
    for (i, r) in features.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"dataset\": \"{}\", \"rows\": {}, \"cols\": {}, \"distinct_ratio\": {:.4}, \
             \"fit_ms\": {:.2}, \"build_fast_ms\": {:.2}, \"build_reference_ms\": {:.2}, \
             \"speedup\": {:.2}}}",
            r.dataset,
            r.rows,
            r.cols,
            r.distinct_ratio,
            r.fit_ms,
            r.fast_build_ms,
            r.reference_build_ms,
            r.reference_build_ms / r.fast_build_ms.max(1e-9),
        );
        json.push_str(if i + 1 < features.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"baselines_interning\": [\n");
    for (i, r) in baselines.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"method\": \"{}\", \"dataset\": \"{}\", \"rows\": {}, \
             \"interned_ms\": {:.2}, \"reference_ms\": {:.2}, \"speedup\": {:.2}}}",
            r.method,
            r.dataset,
            r.rows,
            r.interned_ms,
            r.reference_ms,
            r.reference_ms / r.interned_ms.max(1e-9),
        );
        json.push_str(if i + 1 < baselines.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"pipeline_detect\": [\n");
    for (i, r) in pipeline.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"dataset\": \"{}\", \"rows\": {}, \"wall_ms\": {:.2}}}",
            r.dataset, r.rows, r.wall_ms,
        );
        json.push_str(if i + 1 < pipeline.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
