//! Table VI — effect of the clustering/sampling method (Random, agglomerative,
//! k-means) on Flights, Billionaire and Movies.

use zeroed_bench::tablefmt::prf;
use zeroed_bench::{format_table, parse_args, prepared_dataset, run_method_averaged, Method, Row};
use zeroed_core::config::SamplingMethodConfig;
use zeroed_core::ZeroEdConfig;
use zeroed_datagen::DatasetSpec;
use zeroed_llm::LlmProfile;

fn main() {
    let args = parse_args(std::env::args().skip(1));
    println!("== Table VI: ZeroED with different clustering methods ==");
    println!(
        "(rows per dataset: {}; seeds averaged: {})\n",
        args.rows, args.seeds
    );
    let datasets_specs = [
        DatasetSpec::Flights,
        DatasetSpec::Billionaire,
        DatasetSpec::Movies,
    ];
    let header: Vec<String> = datasets_specs
        .iter()
        .map(|s| format!("{} P/R/F1", s.name()))
        .collect();
    let seeds = args.seed_list();
    let datasets: Vec<_> = datasets_specs
        .iter()
        .map(|&spec| prepared_dataset(spec, &args, args.base_seed))
        .collect();

    let variants = [
        ("Random", SamplingMethodConfig::Random),
        ("AGC", SamplingMethodConfig::Agglomerative),
        ("k-Means", SamplingMethodConfig::KMeans),
    ];
    let mut rows = Vec::new();
    for (label, sampling) in variants {
        let config = ZeroEdConfig {
            sampling,
            ..ZeroEdConfig::default()
        };
        let method = Method::ZeroEd(config);
        let mut cells = Vec::new();
        for prepared in &datasets {
            let result =
                run_method_averaged(&method, &prepared.data, LlmProfile::qwen_72b(), &seeds);
            cells.push(prf(
                result.report.precision,
                result.report.recall,
                result.report.f1,
            ));
        }
        rows.push(Row::new(label, cells));
        eprintln!("finished {label}");
    }
    println!("{}", format_table("Clustering", &header, &rows));
}
