//! Table V — effect of the LLM backbone: ZeroED with five different simulated
//! model profiles.

use zeroed_bench::tablefmt::prf;
use zeroed_bench::{format_table, parse_args, prepared_dataset, run_method_averaged, Method, Row};
use zeroed_core::ZeroEdConfig;
use zeroed_datagen::DatasetSpec;
use zeroed_llm::LlmProfile;

fn main() {
    let args = parse_args(std::env::args().skip(1));
    println!("== Table V: ZeroED with different LLM backbones ==");
    println!(
        "(rows per dataset: {}; seeds averaged: {})\n",
        args.rows, args.seeds
    );
    let header: Vec<String> = DatasetSpec::COMPARISON
        .iter()
        .map(|s| format!("{} P/R/F1", s.name()))
        .collect();
    let seeds = args.seed_list();
    let datasets: Vec<_> = DatasetSpec::COMPARISON
        .iter()
        .map(|&spec| prepared_dataset(spec, &args, args.base_seed))
        .collect();

    let mut rows = Vec::new();
    for profile in LlmProfile::all() {
        let method = Method::ZeroEd(ZeroEdConfig::default());
        let mut cells = Vec::new();
        for prepared in &datasets {
            let result = run_method_averaged(&method, &prepared.data, profile.clone(), &seeds);
            cells.push(prf(
                result.report.precision,
                result.report.recall,
                result.report.f1,
            ));
        }
        rows.push(Row::new(profile.name.clone(), cells));
        eprintln!("finished {}", profile.name);
    }
    println!("{}", format_table("LLM", &header, &rows));
}
