//! Fig. 6 — Raha's F1 as the number of human-labelled tuples grows, with the
//! label-free ZeroED F1 as the reference line.

use zeroed_bench::{format_table, parse_args, prepared_dataset, run_method_averaged, Method, Row};
use zeroed_core::ZeroEdConfig;
use zeroed_datagen::DatasetSpec;
use zeroed_llm::LlmProfile;

fn main() {
    let args = parse_args(std::env::args().skip(1));
    println!("== Fig. 6: Raha performance via active learning (F1 vs #labels) ==");
    println!(
        "(rows per dataset: {}; seeds averaged: {})\n",
        args.rows, args.seeds
    );
    let label_counts = [1usize, 5, 10, 15, 20, 25, 30, 35, 40, 45];
    let header: Vec<String> = DatasetSpec::COMPARISON
        .iter()
        .map(|s| s.name().to_string())
        .collect();
    let seeds = args.seed_list();
    let datasets: Vec<_> = DatasetSpec::COMPARISON
        .iter()
        .map(|&spec| prepared_dataset(spec, &args, args.base_seed))
        .collect();

    let mut rows = Vec::new();
    for &n_labels in &label_counts {
        let method = Method::Raha {
            labeled_tuples: n_labels,
        };
        let mut cells = Vec::new();
        for prepared in &datasets {
            let result =
                run_method_averaged(&method, &prepared.data, LlmProfile::qwen_72b(), &seeds);
            cells.push(format!("{:.3}", result.report.f1));
        }
        rows.push(Row::new(format!("Raha @{n_labels}"), cells));
        eprintln!("finished Raha with {n_labels} labels");
    }
    // ZeroED reference (no human labels at all).
    let zeroed = Method::ZeroEd(ZeroEdConfig::default());
    let mut cells = Vec::new();
    for prepared in &datasets {
        let result = run_method_averaged(&zeroed, &prepared.data, LlmProfile::qwen_72b(), &seeds);
        cells.push(format!("{:.3}", result.report.f1));
    }
    rows.push(Row::new("ZeroED (0 labels)", cells));
    println!("{}", format_table("F1", &header, &rows));
}
