//! Table IV — ablation study: ZeroED with guideline generation, criteria
//! reasoning, correlated-attribute features or verification/augmentation
//! removed.

use zeroed_bench::tablefmt::prf;
use zeroed_bench::{format_table, parse_args, prepared_dataset, run_method_averaged, Method, Row};
use zeroed_core::ZeroEdConfig;
use zeroed_datagen::DatasetSpec;
use zeroed_llm::LlmProfile;

fn main() {
    let args = parse_args(std::env::args().skip(1));
    println!("== Table IV: ablation study of ZeroED ==");
    println!(
        "(rows per dataset: {}; seeds averaged: {})\n",
        args.rows, args.seeds
    );
    let variants: Vec<(&str, ZeroEdConfig)> = vec![
        ("w/o Guid.", ZeroEdConfig::default().without_guidelines()),
        ("w/o Crit.", ZeroEdConfig::default().without_criteria()),
        ("w/o Corr.", ZeroEdConfig::default().without_correlated()),
        ("w/o Veri.", ZeroEdConfig::default().without_verification()),
        ("ZeroED", ZeroEdConfig::default()),
    ];
    let header: Vec<String> = DatasetSpec::COMPARISON
        .iter()
        .map(|s| format!("{} P/R/F1", s.name()))
        .collect();
    let seeds = args.seed_list();
    let datasets: Vec<_> = DatasetSpec::COMPARISON
        .iter()
        .map(|&spec| prepared_dataset(spec, &args, args.base_seed))
        .collect();

    let mut rows = Vec::new();
    for (label, config) in &variants {
        let method = Method::ZeroEd(config.clone());
        let mut cells = Vec::new();
        for prepared in &datasets {
            let result =
                run_method_averaged(&method, &prepared.data, LlmProfile::qwen_72b(), &seeds);
            cells.push(prf(
                result.report.precision,
                result.report.recall,
                result.report.f1,
            ));
        }
        rows.push(Row::new(*label, cells));
        eprintln!("finished {label}");
    }
    println!("{}", format_table("Ablation", &header, &rows));
}
