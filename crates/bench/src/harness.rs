//! Shared experiment-harness plumbing: CLI parsing and dataset preparation.

use zeroed_datagen::{generate, DatasetSpec, GenerateOptions, GeneratedDataset};

/// Command-line arguments shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Rows per generated dataset; `0` means "use the paper's size". The
    /// default (600) keeps a full sweep to a few minutes.
    pub rows: usize,
    /// Number of repetitions to average (the paper uses 3).
    pub seeds: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            rows: 600,
            seeds: 3,
            base_seed: 42,
        }
    }
}

impl HarnessArgs {
    /// The seeds to average over.
    pub fn seed_list(&self) -> Vec<u64> {
        (0..self.seeds.max(1) as u64)
            .map(|i| self.base_seed + i)
            .collect()
    }
}

/// Parses `--rows N`, `--seeds N` and `--seed N` from an argument iterator
/// (unknown arguments are ignored so binaries can add their own).
pub fn parse_args(args: impl Iterator<Item = String>) -> HarnessArgs {
    let mut out = HarnessArgs::default();
    let argv: Vec<String> = args.collect();
    let mut i = 0;
    while i < argv.len() {
        let key = argv[i].as_str();
        let value = argv.get(i + 1).and_then(|v| v.parse::<u64>().ok());
        match (key, value) {
            ("--rows", Some(v)) => {
                out.rows = v as usize;
                i += 1;
            }
            ("--seeds", Some(v)) => {
                out.seeds = v as usize;
                i += 1;
            }
            ("--seed", Some(v)) => {
                out.base_seed = v;
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// A generated dataset ready for evaluation.
pub struct PreparedDataset {
    /// Which benchmark it is.
    pub spec: DatasetSpec,
    /// The generated data (dirty, clean, mask, metadata).
    pub data: GeneratedDataset,
}

/// Generates one benchmark dataset at the harness-configured size.
pub fn prepared_dataset(spec: DatasetSpec, args: &HarnessArgs, seed: u64) -> PreparedDataset {
    let data = generate(
        spec,
        &GenerateOptions {
            n_rows: args.rows,
            seed,
            error_spec: None,
        },
    );
    PreparedDataset { spec, data }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_known_flags_and_ignores_unknown() {
        let args = parse_args(
            ["--rows", "250", "--seeds", "2", "--seed", "7", "--bogus", "x"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.rows, 250);
        assert_eq!(args.seeds, 2);
        assert_eq!(args.base_seed, 7);
        assert_eq!(args.seed_list(), vec![7, 8]);
        let default = parse_args(std::iter::empty());
        assert_eq!(default.rows, 600);
        assert_eq!(default.seeds, 3);
    }

    #[test]
    fn prepares_datasets_at_requested_size() {
        let args = HarnessArgs {
            rows: 90,
            seeds: 1,
            base_seed: 1,
        };
        let ds = prepared_dataset(DatasetSpec::Beers, &args, 1);
        assert_eq!(ds.data.dirty.n_rows(), 90);
        assert_eq!(ds.spec, DatasetSpec::Beers);
    }
}
