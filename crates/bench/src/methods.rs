//! Uniform wrapper around every evaluated method (ZeroED + the six baselines).

use std::time::{Duration, Instant};
use zeroed_baselines::{
    ActiveClean, Baseline, BaselineInput, DBoost, FmEd, Katara, LabeledTuple, Nadeef, Raha,
};
use zeroed_core::{ZeroEd, ZeroEdConfig};
use zeroed_datagen::GeneratedDataset;
use zeroed_llm::{LlmClient, LlmProfile, SimLlm, TokenUsage};
use zeroed_table::DetectionReport;

/// A method under evaluation.
#[derive(Debug, Clone)]
pub enum Method {
    /// dBoost with its default statistical configuration.
    DBoost,
    /// NADEEF with the dataset's constraints and patterns.
    Nadeef,
    /// KATARA with the dataset's knowledge base.
    Katara,
    /// ActiveClean with `labeled_tuples` labelled records.
    ActiveClean {
        /// Number of labelled tuples given to the method.
        labeled_tuples: usize,
    },
    /// Raha with `labeled_tuples` labelled records.
    Raha {
        /// Number of labelled tuples given to the method.
        labeled_tuples: usize,
    },
    /// The LLM prompt-per-tuple baseline.
    FmEd,
    /// ZeroED with the given configuration.
    ZeroEd(ZeroEdConfig),
}

impl Method {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Method::DBoost => "dBoost".into(),
            Method::Nadeef => "NADEEF".into(),
            Method::Katara => "KATARA".into(),
            Method::ActiveClean { .. } => "ActiveClean".into(),
            Method::Raha { .. } => "Raha".into(),
            Method::FmEd => "FM_ED".into(),
            Method::ZeroEd(_) => "ZeroED".into(),
        }
    }

    /// The default line-up of the paper's Table III (2 labelled tuples for the
    /// manual-label baselines, default ZeroED configuration).
    pub fn paper_lineup(zeroed_config: ZeroEdConfig) -> Vec<Method> {
        vec![
            Method::DBoost,
            Method::Nadeef,
            Method::Katara,
            Method::ActiveClean { labeled_tuples: 2 },
            Method::Raha { labeled_tuples: 2 },
            Method::FmEd,
            Method::ZeroEd(zeroed_config),
        ]
    }
}

/// Outcome of running one method on one dataset.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Cell-level precision/recall/F1 against the ground truth.
    pub report: DetectionReport,
    /// End-to-end wall-clock runtime.
    pub runtime: Duration,
    /// LLM token usage (zero for non-LLM methods).
    pub tokens: TokenUsage,
}

/// Deterministically selects `n` tuples to hand to the manual-label baselines:
/// an even stride over the table, which mixes clean and dirty tuples the same
/// way a human annotator sampling the file would.
pub fn labeled_tuple_rows(ds: &GeneratedDataset, n: usize) -> Vec<usize> {
    let n_rows = ds.dirty.n_rows();
    if n == 0 || n_rows == 0 {
        return Vec::new();
    }
    let take = n.min(n_rows);
    let stride = (n_rows / take).max(1);
    (0..n_rows).step_by(stride).take(take).collect()
}

/// Builds the simulated LLM for a dataset: oracle mask + per-cell error types,
/// with the requested backbone profile.
pub fn simulated_llm(ds: &GeneratedDataset, profile: LlmProfile, seed: u64) -> SimLlm {
    let types: Vec<_> = ds
        .injected
        .iter()
        .map(|e| ((e.row, e.col), e.error_type))
        .collect();
    SimLlm::new(profile, seed)
        .with_oracle(ds.mask.clone())
        .with_error_types(types)
}

/// Runs one method on one prepared dataset and scores it against the ground
/// truth.
pub fn run_method(
    method: &Method,
    ds: &GeneratedDataset,
    llm_profile: LlmProfile,
    seed: u64,
) -> MethodResult {
    let start = Instant::now();
    let (mask, tokens) = match method {
        Method::DBoost => {
            let input = BaselineInput {
                dirty: &ds.dirty,
                metadata: &ds.metadata,
                labeled: &[],
            };
            (DBoost::default().detect(&input), TokenUsage::default())
        }
        Method::Nadeef => {
            let input = BaselineInput {
                dirty: &ds.dirty,
                metadata: &ds.metadata,
                labeled: &[],
            };
            (Nadeef::default().detect(&input), TokenUsage::default())
        }
        Method::Katara => {
            let input = BaselineInput {
                dirty: &ds.dirty,
                metadata: &ds.metadata,
                labeled: &[],
            };
            (Katara.detect(&input), TokenUsage::default())
        }
        Method::ActiveClean { labeled_tuples } => {
            let rows = labeled_tuple_rows(ds, *labeled_tuples);
            let labeled = LabeledTuple::from_mask(&ds.mask, &rows);
            let input = BaselineInput {
                dirty: &ds.dirty,
                metadata: &ds.metadata,
                labeled: &labeled,
            };
            (ActiveClean::default().detect(&input), TokenUsage::default())
        }
        Method::Raha { labeled_tuples } => {
            let rows = labeled_tuple_rows(ds, *labeled_tuples);
            let labeled = LabeledTuple::from_mask(&ds.mask, &rows);
            let input = BaselineInput {
                dirty: &ds.dirty,
                metadata: &ds.metadata,
                labeled: &labeled,
            };
            (
                Raha {
                    seed,
                    ..Raha::default()
                }
                .detect(&input),
                TokenUsage::default(),
            )
        }
        Method::FmEd => {
            let llm = simulated_llm(ds, llm_profile, seed);
            let fm = FmEd::new(&llm);
            let input = BaselineInput {
                dirty: &ds.dirty,
                metadata: &ds.metadata,
                labeled: &[],
            };
            let mask = fm.detect(&input);
            (mask, llm.ledger().usage())
        }
        Method::ZeroEd(config) => {
            let llm = simulated_llm(ds, llm_profile, seed);
            let mut config = config.clone();
            config.seed = seed;
            let outcome = ZeroEd::new(config).detect(&ds.dirty, &llm);
            (outcome.mask, llm.ledger().usage())
        }
    };
    let runtime = start.elapsed();
    let report = mask
        .score_against(&ds.mask)
        .expect("prediction mask matches the dataset shape");
    MethodResult {
        report,
        runtime,
        tokens,
    }
}

/// Runs one method over several seeds and averages the reports (the paper
/// averages three repetitions).
pub fn run_method_averaged(
    method: &Method,
    ds: &GeneratedDataset,
    llm_profile: LlmProfile,
    seeds: &[u64],
) -> MethodResult {
    let mut reports = Vec::new();
    let mut runtime = Duration::ZERO;
    let mut tokens = TokenUsage::default();
    for &seed in seeds {
        let r = run_method(method, ds, llm_profile.clone(), seed);
        reports.push(r.report);
        runtime += r.runtime;
        tokens.input_tokens += r.tokens.input_tokens;
        tokens.output_tokens += r.tokens.output_tokens;
        tokens.requests += r.tokens.requests;
    }
    let n = seeds.len().max(1);
    MethodResult {
        report: DetectionReport::mean(&reports),
        runtime: runtime / n as u32,
        tokens: TokenUsage {
            input_tokens: tokens.input_tokens / n,
            output_tokens: tokens.output_tokens / n,
            requests: tokens.requests / n,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};

    fn tiny() -> GeneratedDataset {
        generate(
            DatasetSpec::Flights,
            &GenerateOptions {
                n_rows: 120,
                seed: 7,
                error_spec: None,
            },
        )
    }

    #[test]
    fn all_methods_run_on_a_tiny_dataset() {
        let ds = tiny();
        let config = ZeroEdConfig {
            label_rate: 0.08,
            ..ZeroEdConfig::fast()
        };
        for method in Method::paper_lineup(config) {
            let result = run_method(&method, &ds, LlmProfile::qwen_72b(), 1);
            assert!(
                result.report.precision >= 0.0 && result.report.precision <= 1.0,
                "{}",
                method.name()
            );
            if matches!(method, Method::FmEd | Method::ZeroEd(_)) {
                assert!(result.tokens.requests > 0, "{} should use the LLM", method.name());
            } else {
                assert_eq!(result.tokens.requests, 0, "{}", method.name());
            }
        }
    }

    #[test]
    fn labeled_rows_are_deterministic_and_bounded() {
        let ds = tiny();
        let rows = labeled_tuple_rows(&ds, 5);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows, labeled_tuple_rows(&ds, 5));
        assert!(labeled_tuple_rows(&ds, 0).is_empty());
        assert_eq!(labeled_tuple_rows(&ds, 10_000).len(), ds.dirty.n_rows());
    }

    #[test]
    fn averaging_runs_multiple_seeds() {
        let ds = tiny();
        let result = run_method_averaged(&Method::DBoost, &ds, LlmProfile::qwen_72b(), &[1, 2]);
        assert!(result.report.f1 >= 0.0);
    }
}
