//! Plain-text table formatting for experiment output.

/// One row of an output table: a label plus formatted cell strings.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (method name, dataset name, parameter value...).
    pub label: String,
    /// Formatted cells.
    pub cells: Vec<String>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>, cells: Vec<String>) -> Self {
        Self {
            label: label.into(),
            cells,
        }
    }
}

/// Formats a header and rows into an aligned plain-text table.
pub fn format_table(corner: &str, header: &[String], rows: &[Row]) -> String {
    let mut widths: Vec<usize> = Vec::new();
    widths.push(
        rows.iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(corner.len()))
            .max()
            .unwrap_or(0),
    );
    for (i, h) in header.iter().enumerate() {
        let cell_width = rows
            .iter()
            .map(|r| r.cells.get(i).map(|c| c.len()).unwrap_or(0))
            .max()
            .unwrap_or(0);
        widths.push(h.len().max(cell_width));
    }
    let mut out = String::new();
    let mut line = format!("{:width$}", corner, width = widths[0]);
    for (i, h) in header.iter().enumerate() {
        line.push_str(&format!("  {:>width$}", h, width = widths[i + 1]));
    }
    out.push_str(&line);
    out.push('\n');
    out.push_str(&"-".repeat(line.len()));
    out.push('\n');
    for row in rows {
        let mut line = format!("{:width$}", row.label, width = widths[0]);
        for (i, _) in header.iter().enumerate() {
            let cell = row.cells.get(i).map(|s| s.as_str()).unwrap_or("");
            line.push_str(&format!("  {:>width$}", cell, width = widths[i + 1]));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Formats a `(precision, recall, f1)` triple the way the paper's tables do.
pub fn prf(precision: f64, recall: f64, f1: f64) -> String {
    format!("{precision:.3}/{recall:.3}/{f1:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let rows = vec![
            Row::new("dBoost", vec!["0.887".into(), "0.355".into()]),
            Row::new("ZeroED", vec!["0.936".into(), "0.715".into()]),
        ];
        let text = format_table("Method", &["Prec".into(), "Rec".into()], &rows);
        assert!(text.contains("Method"));
        assert!(text.contains("dBoost"));
        assert!(text.lines().count() >= 4);
        let header_len = text.lines().next().unwrap().len();
        for line in text.lines().skip(2) {
            assert!(line.len() <= header_len + 2);
        }
    }

    #[test]
    fn prf_formatting() {
        assert_eq!(prf(0.9361, 0.715, 0.811), "0.936/0.715/0.811");
    }
}
