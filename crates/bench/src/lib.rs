//! # zeroed-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! ZeroED paper's evaluation section (see DESIGN.md §3 for the full index),
//! plus criterion micro-benchmarks for the individual pipeline stages.
//!
//! Each experiment is a binary under `src/bin/`; run, for example:
//!
//! ```text
//! cargo run --release -p zeroed-bench --bin exp_table3
//! cargo run --release -p zeroed-bench --bin exp_table3 -- --rows 400 --seeds 1
//! ```
//!
//! By default the harness generates each benchmark dataset at a reduced size
//! (`--rows 600`) so a full sweep finishes in minutes on a laptop; pass
//! `--rows 0` to use the paper's original sizes.

pub mod harness;
pub mod methods;
pub mod tablefmt;

pub use harness::{parse_args, prepared_dataset, HarnessArgs, PreparedDataset};
pub use methods::{run_method, run_method_averaged, simulated_llm, Method, MethodResult};
pub use tablefmt::{format_table, Row};
