//! # zeroed-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! ZeroED paper's evaluation section (see DESIGN.md §3 for the full index),
//! plus criterion micro-benchmarks for the individual pipeline stages and
//! the two perf-ledger emitters successive PRs track regressions against.
//!
//! ## Paper experiments
//!
//! Each experiment is a binary under `src/bin/` (`exp_table2` … `exp_fig11`)
//! built from three shared pieces: [`harness`] (argument parsing, dataset
//! preparation, per-seed averaging), [`methods`] (every detection method —
//! ZeroED and the baselines — behind one [`Method`] enum, plus
//! [`simulated_llm`], which wires the generated dataset's ground truth into
//! `SimLlm` as the labelling oracle) and [`tablefmt`] (the fixed-width table
//! renderer the binaries print). Run, for example:
//!
//! ```text
//! cargo run --release -p zeroed-bench --bin exp_table3
//! cargo run --release -p zeroed-bench --bin exp_table3 -- --rows 400 --seeds 1
//! ```
//!
//! By default the harness generates each benchmark dataset at a reduced size
//! (`--rows 600`) so a full sweep finishes in minutes on a laptop; pass
//! `--rows 0` to use the paper's original sizes.
//!
//! ## Perf ledgers
//!
//! Two emitters write committed JSON ledgers (the tier-1 verify line runs
//! both in `--quick` mode; drop `--quick` to regenerate the 50k-row files):
//!
//! * `bench_features` → `BENCH_features.json` — interned vs seed-reference
//!   wall-times for featurisation and for the dBoost/NADEEF/KATARA/Raha
//!   baselines, asserting mask equivalence as it measures.
//! * `bench_runtime` → `BENCH_runtime.json` — LLM-stage wall-times across
//!   the runtime's execution modes (sequential / concurrent / cached cold /
//!   cached warm), the `--router` hedging experiment (p99 recovery against
//!   a slow-tail backend) and the `--persist` cross-process warm start,
//!   including the sharded-concurrent-writers experiment (K detector
//!   handles sharing one store root). Hard assertions gate every section:
//!   masks bit-identical, warm runs issue zero LLM requests, hedging
//!   recovers ≥1.5x p99, concurrent+cache ≥2x sequential. With `--trace`
//!   it additionally runs the flight-recorder conformance suite and embeds
//!   a `trace` section (per-mode event counts, exporter validation,
//!   recorder overhead).
//!
//! The `bench_check` binary is the regression gate over those ledgers: it
//! diffs a freshly generated `BENCH_runtime.json` against the committed one
//! stage-by-stage (share of root wall-time, so absolute machine speed
//! cancels out), warns outside a ±30% band and fails hard past 2x. The
//! [`minijson`] module is its dependency-free JSON reader.
//!
//! Criterion micro-benchmarks for individual stages live under `benches/`
//! (`cargo bench --no-run` compiles them in tier-1).

pub mod harness;
pub mod methods;
pub mod minijson;
pub mod tablefmt;

pub use harness::{parse_args, prepared_dataset, HarnessArgs, PreparedDataset};
pub use methods::{run_method, run_method_averaged, simulated_llm, Method, MethodResult};
pub use tablefmt::{format_table, Row};
