//! A minimal recursive-descent JSON reader for the committed perf ledgers.
//!
//! The repo's JSON is hand-rolled on the way *out* (no serde implementation
//! behind the vendored facade), so the regression gate needs a reader of its
//! own to diff two ledgers. This is deliberately a reader for the ledgers'
//! dialect of JSON — full grammar, objects kept as ordered key/value pairs,
//! numbers as `f64` — not a general-purpose serde replacement: no
//! streaming, no borrowed strings, and `\uXXXX` escapes outside the BMP are
//! rejected rather than paired (the ledgers are ASCII).

/// A parsed JSON value. Object member order is preserved (the ledgers are
/// diffed and re-rendered in order).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the ledgers stay well inside `f64` precision).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (surrounding whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` on other variants or a missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            byte as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("unsupported \\u escape {code:#x}"))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the ledgers are ASCII, but be
                // correct anyway).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' in array, found {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            other => return Err(format!("expected ',' or '}}' in object, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".into())
        );
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let doc = Json::parse(
            r#"{"runs": [{"dataset": "hospital", "wall_ms": 12.5}, {"dataset": "flights"}], "ok": true}"#,
        )
        .unwrap();
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("dataset").and_then(Json::as_str), Some("hospital"));
        assert_eq!(runs[0].get("wall_ms").and_then(Json::as_f64), Some(12.5));
        let members = doc.as_obj().unwrap();
        assert_eq!(members[0].0, "runs");
        assert_eq!(members[1].0, "ok");
    }

    #[test]
    fn parses_the_ledger_dialect() {
        // A cut-down stage_breakdown exactly as the emitter renders it.
        let doc = Json::parse(
            r#"{"name": "detect", "wall_ms": 9778.119, "count": 1, "parallel": false, "children": [{"name": "features", "wall_ms": 1773.095, "count": 1, "parallel": false}]}"#,
        )
        .unwrap();
        assert_eq!(doc.get("wall_ms").and_then(Json::as_f64), Some(9778.119));
        let children = doc.get("children").and_then(Json::as_arr).unwrap();
        assert_eq!(children[0].get("name").and_then(Json::as_str), Some("features"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn empty_containers_and_whitespace() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse(" { } ").unwrap(), Json::Obj(vec![]));
        assert_eq!(
            Json::parse("[ 1 , 2 ]").unwrap(),
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])
        );
    }
}
