//! Micro-benchmarks of the orchestration runtime: request-key hashing, cache
//! hit/miss paths and scheduler fan-out overhead. The end-to-end sequential
//! vs concurrent vs cached comparison lives in the `bench_runtime` binary
//! (`BENCH_runtime.json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use zeroed_runtime::{CachedResponse, RequestKey, RequestKind, ResponseCache, ResponseOrigin, Scheduler, StoredResponse};

fn key_for(i: u64) -> RequestKey {
    let mut b = RequestKey::builder(RequestKind::LabelBatch, "Qwen2.5-72b");
    b.text("Task: decide for each value of attribute 'state' below whether it is clean or erroneous.")
        .rows(&[1, 2, 3, 4, 5, 6, 7, 8])
        .word(i);
    b.finish()
}

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");

    group.bench_function("request_key_build", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(key_for(i))
        })
    });

    group.bench_function("cache_hit", |b| {
        let cache = ResponseCache::new(1 << 12);
        let key = key_for(42);
        let _ = cache.get_or_compute(key, || StoredResponse {
            value: CachedResponse::Flags(vec![true; 20]),
            input_tokens: 800,
            output_tokens: 40,
            origin: ResponseOrigin::Computed,
        });
        b.iter(|| {
            black_box(cache.get_or_compute(key, || unreachable!("must hit")))
        })
    });

    group.bench_function("cache_miss_insert", |b| {
        let cache = ResponseCache::new(1 << 20);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(cache.get_or_compute(key_for(i), || StoredResponse {
                value: CachedResponse::Flags(vec![false; 20]),
                input_tokens: 800,
                output_tokens: 40,
                origin: ResponseOrigin::Computed,
            }))
        })
    });

    group.bench_function("scheduler_fanout_64", |b| {
        let scheduler = Scheduler::with_workers(8);
        b.iter(|| {
            let out = scheduler.run(64, |i| black_box(i * 2 + 1));
            black_box(out)
        })
    });

    // The shared-cache fan-out: many tasks asking for the same key must
    // coalesce onto a single computation.
    group.bench_function("scheduler_fanout_shared_cache", |b| {
        let scheduler = Scheduler::with_workers(8);
        b.iter(|| {
            let cache = Arc::new(ResponseCache::new(1 << 10));
            let out = scheduler.run(32, |i| {
                let (stored, _) = cache.get_or_compute(key_for(7), || StoredResponse {
                    value: CachedResponse::Flags(vec![true]),
                    input_tokens: 100,
                    output_tokens: 10,
                    origin: ResponseOrigin::Computed,
                });
                matches!(stored.value, CachedResponse::Flags(_)) as usize + i
            });
            black_box(out)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
