//! Per-stage cost of the feature representation (paper §III-B): frequency
//! model, pattern generalisation, hashed embeddings, NMI and the full builder.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
use zeroed_features::{
    generalize, normalized_mutual_information, FeatureBuilder, FeatureConfig, FrequencyModel,
    HashEmbedder, Level,
};

fn bench_features(c: &mut Criterion) {
    let ds = generate(
        DatasetSpec::Hospital,
        &GenerateOptions {
            n_rows: 500,
            seed: 1,
            error_spec: None,
        },
    );
    let table = &ds.dirty;

    c.bench_function("features/frequency_model_500x20", |b| {
        b.iter(|| FrequencyModel::new(black_box(table)))
    });

    c.bench_function("features/pattern_generalize_l3", |b| {
        b.iter(|| {
            for row in table.rows().iter().take(100) {
                for v in row {
                    black_box(generalize(v, Level::L3));
                }
            }
        })
    });

    let embedder = HashEmbedder::new(24);
    c.bench_function("features/hash_embedding_cell", |b| {
        b.iter(|| black_box(embedder.embed("prophylactic antibiotic received within one hour")))
    });

    let col_a = table.column_refs(1);
    let col_b = table.column_refs(3);
    c.bench_function("features/nmi_500_rows", |b| {
        b.iter(|| black_box(normalized_mutual_information(&col_a, &col_b)))
    });

    let builder = FeatureBuilder::new(FeatureConfig {
        embed_dim: 16,
        top_k_corr: 2,
        ..FeatureConfig::default()
    });
    c.bench_function("features/full_build_500x20", |b| {
        b.iter(|| black_box(builder.build(table, &[])))
    });

    // Interned fast path vs. the seed per-cell reference on the same fitted
    // state — the speedup this pair reports is what BENCH_features.json
    // tracks across PRs.
    let fitted = builder.fit(table, &[]);
    c.bench_function("features/build_all_interned_500x20", |b| {
        b.iter(|| black_box(fitted.build_all()))
    });
    c.bench_function("features/build_all_reference_500x20", |b| {
        b.iter(|| black_box(zeroed_features::reference::build_all_reference(&fitted)))
    });

    c.bench_function("features/intern_table_500x20", |b| {
        b.iter(|| black_box(table.intern()))
    });

    let mut embed_out = vec![0.0f32; embedder.dim()];
    c.bench_function("features/hash_embedding_cell_into", |b| {
        b.iter(|| {
            embedder.embed_into(
                black_box("prophylactic antibiotic received within one hour"),
                &mut embed_out,
            );
            black_box(embed_out[0])
        })
    });
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
