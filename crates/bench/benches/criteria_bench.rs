//! Criteria evaluation cost: compiled VM vs AST oracle (features §III-B,
//! Algorithm 1 verification §III-D).
//!
//! The compiled path's advantage scales with value duplication — programs
//! evaluate once per *distinct* code and scatter by the interned column's
//! codes — so the tables here sweep cardinality: `u` distinct values spread
//! over `n` rows, the shape real per-attribute columns take.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashSet;
use zeroed_criteria::dsl::{Check, CriteriaSet, Criterion as Crit};
use zeroed_criteria::{compile_set, verify};
use zeroed_table::Table;

/// `n`-row, two-column table with `u` distinct values in column 0 (the
/// checked attribute) and `u / 4 + 1` in column 1 (the cross-check column).
fn synthetic(n: usize, u: usize) -> Table {
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let v = (i * 7 + i / 11) % u;
            vec![
                format!("val-{v:05}"),
                format!("det-{:04}", v % (u / 4 + 1)),
            ]
        })
        .collect();
    Table::new("bench", vec!["a".into(), "det".into()], rows).unwrap()
}

/// A representative per-attribute criteria set: one cheap check, one
/// string-heavy check, one numeric check, and one cross-column check.
fn criteria() -> CriteriaSet {
    CriteriaSet {
        column: 0,
        criteria: vec![
            Crit::new("present", "", Check::NotMissing),
            Crit::new(
                "shape",
                "",
                Check::PatternTemplate {
                    allowed: HashSet::from(["u[3]S[1]D[5]".to_string()]),
                },
            ),
            Crit::new("len", "", Check::LengthRange { min: 6, max: 12 }),
            Crit::new(
                "paired",
                "",
                Check::CrossKeyword {
                    other_col: 1,
                    pairs: vec![("det-0001".into(), "val-".into())],
                },
            ),
        ],
    }
}

fn bench_criteria_features(c: &mut Criterion) {
    let mut group = c.benchmark_group("criteria_features");
    let set = criteria();
    for &(n, u) in &[(10_000usize, 60usize), (50_000, 300)] {
        let table = synthetic(n, u);
        let dict = table.intern();
        group.bench_with_input(BenchmarkId::new("ast_oracle", n), &table, |b, table| {
            b.iter(|| black_box(verify::oracle::criteria_features(&set, table)))
        });
        group.bench_with_input(BenchmarkId::new("compiled_vm", n), &dict, |b, dict| {
            b.iter(|| black_box(verify::criteria_features_dict(&set, dict)))
        });
    }
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("criteria_verify");
    let set = criteria();
    let table = synthetic(50_000, 300);
    let dict = table.intern();
    let check_rows: Vec<usize> = (0..500).collect();
    group.bench_with_input(BenchmarkId::new("ast_oracle", 500), &table, |b, table| {
        b.iter(|| {
            let kept = verify::oracle::filter_criteria(&set, table, &check_rows, 0.5);
            black_box(verify::oracle::filter_rows(&kept, table, &check_rows, 0.5))
        })
    });
    group.bench_with_input(BenchmarkId::new("compiled_vm", 500), &dict, |b, dict| {
        b.iter(|| {
            let kept = verify::filter_criteria_dict(&set, dict, &check_rows, 0.5);
            black_box(verify::filter_rows_dict(&kept, dict, &check_rows, 0.5))
        })
    });
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("criteria_compile");
    let set = criteria();
    group.bench_with_input(BenchmarkId::new("compile_set", set.len()), &set, |b, set| {
        b.iter(|| black_box(compile_set(set)))
    });
    let programs = compile_set(&set);
    group.bench_with_input(
        BenchmarkId::new("roundtrip_bytes", set.len()),
        &programs,
        |b, compiled| {
            b.iter(|| {
                for p in &compiled.programs {
                    let bytes = p.to_bytes();
                    black_box(zeroed_criteria::Program::from_bytes(&bytes).unwrap());
                }
            })
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_criteria_features,
    bench_verification,
    bench_compile
);
criterion_main!(benches);
