//! End-to-end pipeline cost: ZeroED vs FM_ED on a small benchmark dataset
//! (the micro view of the paper's Fig. 7).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zeroed_baselines::{Baseline, BaselineInput, FmEd};
use zeroed_bench::simulated_llm;
use zeroed_core::{ZeroEd, ZeroEdConfig};
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
use zeroed_llm::LlmProfile;

fn bench_pipeline(c: &mut Criterion) {
    let ds = generate(
        DatasetSpec::Flights,
        &GenerateOptions {
            n_rows: 300,
            seed: 5,
            error_spec: None,
        },
    );

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("zeroed_flights_300", |b| {
        b.iter(|| {
            let llm = simulated_llm(&ds, LlmProfile::qwen_72b(), 1);
            let detector = ZeroEd::new(ZeroEdConfig::fast());
            black_box(detector.detect(&ds.dirty, &llm))
        })
    });

    group.bench_function("fm_ed_flights_300", |b| {
        b.iter(|| {
            let llm = simulated_llm(&ds, LlmProfile::qwen_72b(), 1);
            let fm = FmEd::new(&llm);
            let input = BaselineInput {
                dirty: &ds.dirty,
                metadata: &ds.metadata,
                labeled: &[],
            };
            black_box(fm.detect(&input))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
