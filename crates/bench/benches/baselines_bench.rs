//! Detection cost of the non-LLM baselines (dBoost, NADEEF, Raha).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zeroed_baselines::{Baseline, BaselineInput, DBoost, LabeledTuple, Nadeef, Raha};
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};

fn bench_baselines(c: &mut Criterion) {
    let ds = generate(
        DatasetSpec::Beers,
        &GenerateOptions {
            n_rows: 500,
            seed: 9,
            error_spec: None,
        },
    );
    let labeled = LabeledTuple::from_mask(&ds.mask, &[0, 100, 200, 300]);
    let input = BaselineInput {
        dirty: &ds.dirty,
        metadata: &ds.metadata,
        labeled: &labeled,
    };

    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("dboost_beers_500", |b| {
        b.iter(|| black_box(DBoost::default().detect(&input)))
    });
    group.bench_function("nadeef_beers_500", |b| {
        b.iter(|| black_box(Nadeef::default().detect(&input)))
    });
    group.bench_function("raha_beers_500", |b| {
        b.iter(|| black_box(Raha::default().detect(&input)))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
