//! Clustering cost in rows and dimensions (sampling step, paper §III-C).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use zeroed_cluster::{cluster, SamplingMethod};

fn synthetic(n: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| ((i * 31 + d * 17) % 97) as f32 / 97.0 + ((i % 7) * 3) as f32)
                .collect()
        })
        .collect()
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    for &n in &[500usize, 2_000] {
        let data = synthetic(n, 32);
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        for method in [
            SamplingMethod::KMeans,
            SamplingMethod::Agglomerative,
            SamplingMethod::Random,
        ] {
            group.bench_with_input(
                BenchmarkId::new(method.name(), n),
                &rows,
                |b, rows| b.iter(|| black_box(cluster(method, rows, 25, 7))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
