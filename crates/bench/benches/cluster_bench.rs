//! Clustering cost in rows and dimensions (sampling step, paper §III-C).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use zeroed_cluster::{cluster, kmeans, kmeans_reference, KMeansConfig, SamplingMethod};

fn synthetic(n: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| ((i * 31 + d * 17) % 97) as f32 / 97.0 + ((i % 7) * 3) as f32)
                .collect()
        })
        .collect()
}

/// `n` rows drawn from `u` distinct integer-valued vectors — the shape real
/// per-attribute features take (assembled per distinct cell value).
fn duplicated(n: usize, u: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            let v = (i * 7 + i / 11) % u;
            (0..dim)
                .map(|d| {
                    if d == 0 {
                        v as f32
                    } else {
                        ((v * (d + 3) + d * d) % 23) as f32
                    }
                })
                .collect()
        })
        .collect()
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    for &n in &[500usize, 2_000] {
        let data = synthetic(n, 32);
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        for method in [
            SamplingMethod::KMeans,
            SamplingMethod::Agglomerative,
            SamplingMethod::Random,
        ] {
            group.bench_with_input(
                BenchmarkId::new(method.name(), n),
                &rows,
                |b, rows| b.iter(|| black_box(cluster(method, rows, 25, 7))),
            );
        }
    }
    group.finish();
}

/// The sampling-stage hot path: dedup-weighted k-means against the retained
/// full-row oracle on low-cardinality tables (u distinct vectors ≪ n rows).
fn bench_kmeans_dedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_dedup");
    let config = KMeansConfig::default();
    for &(n, u) in &[(10_000usize, 50usize), (50_000, 200)] {
        let data = duplicated(n, u, 16);
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        group.bench_with_input(
            BenchmarkId::new("dedup", format!("{n}x{u}")),
            &rows,
            |b, rows| b.iter(|| black_box(kmeans(rows, 25, &config, 7))),
        );
        // The oracle is quadratic in practice (k Lloyd scans over all rows),
        // so only the smaller shape gets the reference run.
        if n <= 10_000 {
            group.bench_with_input(
                BenchmarkId::new("oracle", format!("{n}x{u}")),
                &rows,
                |b, rows| b.iter(|| black_box(kmeans_reference(rows, 25, &config, 7))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cluster, bench_kmeans_dedup);
criterion_main!(benches);
