//! Detector (MLP) training and inference throughput (paper §III-D).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zeroed_ml::{Mlp, MlpConfig};

fn synthetic(n: usize, dim: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| (0..dim).map(|d| ((i * 13 + d * 7) % 101) as f32 / 101.0).collect())
        .collect();
    let labels: Vec<f32> = rows
        .iter()
        .map(|r| if r[0] + r[1] > 1.0 { 1.0 } else { 0.0 })
        .collect();
    (rows, labels)
}

fn bench_mlp(c: &mut Criterion) {
    let (rows, labels) = synthetic(1_000, 64);
    let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
    let config = MlpConfig {
        hidden: 64,
        epochs: 10,
        ..MlpConfig::default()
    };

    // `fit` routes through the batched trainer; the scalar trainer is the
    // retained equivalence oracle (bit-identical — see the mlp module docs).
    c.bench_function("mlp/train_batched_1000x64_10epochs", |b| {
        b.iter(|| {
            let mut mlp = Mlp::new(64, &config);
            black_box(mlp.train_batched(&refs, &labels, &config))
        })
    });
    c.bench_function("mlp/train_scalar_1000x64_10epochs", |b| {
        b.iter(|| {
            let mut mlp = Mlp::new(64, &config);
            black_box(mlp.train(&refs, &labels, &config))
        })
    });

    let model = Mlp::fit(&refs, &labels, &config);
    c.bench_function("mlp/predict_1000x64", |b| {
        b.iter(|| {
            for row in &refs {
                black_box(model.predict_proba(row));
            }
        })
    });
    c.bench_function("mlp/predict_batch_1000x64", |b| {
        b.iter(|| black_box(model.predict_proba_batch(&refs)))
    });
}

criterion_group!(benches, bench_mlp);
criterion_main!(benches);
