//! Classification metrics over boolean predictions.
//!
//! Cell-level precision/recall/F1 live in `zeroed-table::metrics`; the helpers
//! here operate on plain prediction vectors and are used for model-level
//! diagnostics (training-set accuracy, verification thresholds).

/// Fraction of predictions equal to their labels. Returns 1.0 for empty input.
pub fn accuracy(predictions: &[bool], labels: &[bool]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    if predictions.is_empty() {
        return 1.0;
    }
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Confusion counts `(tp, fp, fn, tn)` treating `true` as the positive class.
pub fn binary_confusion(predictions: &[bool], labels: &[bool]) -> (usize, usize, usize, usize) {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    let mut tn = 0;
    for (&p, &l) in predictions.iter().zip(labels.iter()) {
        match (p, l) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => tn += 1,
        }
    }
    (tp, fp, fn_, tn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[true, false, true], &[true, true, true]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 1.0);
    }

    #[test]
    fn confusion_counts() {
        let pred = [true, true, false, false];
        let label = [true, false, true, false];
        assert_eq!(binary_confusion(&pred, &label), (1, 1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = accuracy(&[true], &[]);
    }
}
