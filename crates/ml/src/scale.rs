//! Per-feature standardisation (zero mean, unit variance).

/// A fitted standard scaler: stores per-dimension mean and standard deviation
/// and applies `(x - mean) / std` to new rows. Dimensions with (near-)zero
/// variance are passed through unchanged.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl StandardScaler {
    /// Fits the scaler on training rows. Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on zero rows");
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0f64; dim];
        for row in rows {
            assert_eq!(row.len(), dim, "ragged feature rows");
            for (m, &x) in means.iter_mut().zip(row.iter()) {
                *m += x as f64;
            }
        }
        for m in means.iter_mut() {
            *m /= n;
        }
        let mut vars = vec![0.0f64; dim];
        for row in rows {
            for ((v, &x), m) in vars.iter_mut().zip(row.iter()).zip(means.iter()) {
                let d = x as f64 - m;
                *v += d * d;
            }
        }
        let stds: Vec<f32> = vars
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s < 1e-8 {
                    1.0
                } else {
                    s as f32
                }
            })
            .collect();
        Self {
            means: means.into_iter().map(|m| m as f32).collect(),
            stds,
        }
    }

    /// Fits the scaler with a positive weight per row: moments are weighted
    /// means, as if row `i` appeared `weights[i]` times. With unit weights
    /// this is bit-identical to [`StandardScaler::fit`] (each accumulation
    /// multiplies by exactly `1.0`, and the weight total sums `1.0` per row
    /// in f64 — exact); it lets the detector fit on deduplicated feature
    /// rows weighted by multiplicity. Panics if `rows` is empty, ragged, or
    /// misaligned with `weights`.
    pub fn fit_weighted(rows: &[&[f32]], weights: &[f32]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on zero rows");
        assert_eq!(rows.len(), weights.len(), "rows and weights must align");
        debug_assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let dim = rows[0].len();
        let mut total = 0.0f64;
        let mut means = vec![0.0f64; dim];
        for (row, &w) in rows.iter().zip(weights.iter()) {
            assert_eq!(row.len(), dim, "ragged feature rows");
            let wf = w as f64;
            total += wf;
            for (m, &x) in means.iter_mut().zip(row.iter()) {
                *m += wf * (x as f64);
            }
        }
        for m in means.iter_mut() {
            *m /= total;
        }
        let mut vars = vec![0.0f64; dim];
        for (row, &w) in rows.iter().zip(weights.iter()) {
            let wf = w as f64;
            for ((v, &x), m) in vars.iter_mut().zip(row.iter()).zip(means.iter()) {
                let d = x as f64 - m;
                *v += wf * (d * d);
            }
        }
        let stds: Vec<f32> = vars
            .iter()
            .map(|&v| {
                let s = (v / total).sqrt();
                if s < 1e-8 {
                    1.0
                } else {
                    s as f32
                }
            })
            .collect();
        Self {
            means: means.into_iter().map(|m| m as f32).collect(),
            stds,
        }
    }

    /// Number of feature dimensions.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Standardises one row into a new vector.
    pub fn transform(&self, row: &[f32]) -> Vec<f32> {
        row.iter()
            .zip(self.means.iter())
            .zip(self.stds.iter())
            .map(|((&x, &m), &s)| (x - m) / s)
            .collect()
    }

    /// Standardises one row into a caller-supplied buffer (no allocation on
    /// the per-cell prediction hot path). `row` and `out` must both match the
    /// scaler's dim — a short row would otherwise leave stale values in a
    /// reused buffer.
    pub fn transform_into(&self, row: &[f32], out: &mut [f32]) {
        assert_eq!(row.len(), self.means.len(), "input dim mismatch");
        assert_eq!(out.len(), self.means.len(), "output dim mismatch");
        for (o, ((&x, &m), &s)) in out
            .iter_mut()
            .zip(row.iter().zip(self.means.iter()).zip(self.stds.iter()))
        {
            *o = (x - m) / s;
        }
    }

    /// Standardises a batch of rows.
    pub fn transform_all(&self, rows: &[&[f32]]) -> Vec<Vec<f32>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardises_to_zero_mean_unit_variance() {
        let data = vec![vec![1.0f32, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let scaler = StandardScaler::fit(&rows);
        let transformed = scaler.transform_all(&rows);
        for d in 0..2 {
            let mean: f32 = transformed.iter().map(|r| r[d]).sum::<f32>() / 3.0;
            let var: f32 = transformed.iter().map(|r| r[d] * r[d]).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-4);
        }
        assert_eq!(scaler.dim(), 2);
    }

    #[test]
    fn constant_dimension_is_left_alone() {
        let data = vec![vec![5.0f32, 1.0], vec![5.0, 2.0]];
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let scaler = StandardScaler::fit(&rows);
        let t = scaler.transform(&[5.0, 1.5]);
        assert_eq!(t[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_panics() {
        let rows: Vec<&[f32]> = Vec::new();
        let _ = StandardScaler::fit(&rows);
    }

    /// Unit weights must reproduce the unweighted fit bit-for-bit.
    #[test]
    fn unit_weighted_fit_is_bit_identical() {
        let data: Vec<Vec<f32>> = (0..50)
            .map(|i| vec![(i % 7) as f32 * 0.93 - 1.7, (i % 11) as f32 * 3.14])
            .collect();
        let rows: Vec<&[f32]> = data.iter().map(|r| r.as_slice()).collect();
        let plain = StandardScaler::fit(&rows);
        let weighted = StandardScaler::fit_weighted(&rows, &vec![1.0; rows.len()]);
        assert_eq!(plain.means, weighted.means);
        assert_eq!(plain.stds, weighted.stds);
    }

    /// Integer weights must equal fitting on the expanded row set. The data
    /// is integer-valued and the weights sum to a power of two, so every
    /// intermediate (weighted sums, means, centred squares) is exact in f64
    /// — both paths then compute the same exact value and agree bitwise.
    #[test]
    fn integer_weights_match_expanded_rows_on_integer_data() {
        let unique = [vec![1.0f32, -4.0], vec![2.0, 0.0], vec![7.0, 3.0]];
        let weights = [3.0f32, 1.0, 4.0];
        let urows: Vec<&[f32]> = unique.iter().map(|r| r.as_slice()).collect();
        let weighted = StandardScaler::fit_weighted(&urows, &weights);
        let mut expanded: Vec<&[f32]> = Vec::new();
        for (row, &w) in urows.iter().zip(weights.iter()) {
            for _ in 0..w as usize {
                expanded.push(row);
            }
        }
        let plain = StandardScaler::fit(&expanded);
        assert_eq!(plain.means, weighted.means);
        assert_eq!(plain.stds, weighted.stds);
    }
}
