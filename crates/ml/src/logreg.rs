//! Logistic regression trained with mini-batch gradient descent.
//!
//! Used by the ActiveClean baseline (which trains a simple convex model on the
//! features of labelled cells) and as a light-weight alternative detector.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Logistic-regression hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegressionConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 regularisation strength.
    pub l2: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        Self {
            epochs: 50,
            learning_rate: 0.1,
            l2: 1e-4,
            seed: 7,
        }
    }
}

/// A trained logistic-regression model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f32>,
    bias: f32,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl LogisticRegression {
    /// Fits a model on `(rows, labels)` with labels in `{0.0, 1.0}`.
    pub fn fit(rows: &[&[f32]], labels: &[f32], config: &LogisticRegressionConfig) -> Self {
        assert_eq!(rows.len(), labels.len(), "rows and labels must align");
        let dim = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut weights = vec![0.0f32; dim];
        let mut bias = 0.0f32;
        if rows.is_empty() {
            return Self { weights, bias };
        }
        let n = rows.len();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..config.epochs {
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &idx in &order {
                let x = rows[idx];
                let y = labels[idx];
                let z: f32 = weights.iter().zip(x.iter()).map(|(w, xi)| w * xi).sum::<f32>() + bias;
                let p = sigmoid(z);
                let err = p - y;
                for (w, &xi) in weights.iter_mut().zip(x.iter()) {
                    *w -= config.learning_rate * (err * xi + config.l2 * *w);
                }
                bias -= config.learning_rate * err;
            }
        }
        Self { weights, bias }
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba(&self, x: &[f32]) -> f32 {
        let z: f32 = self
            .weights
            .iter()
            .zip(x.iter())
            .map(|(w, xi)| w * xi)
            .sum::<f32>()
            + self.bias;
        sigmoid(z)
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, x: &[f32]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Model weights (for inspection / sampling heuristics such as
    /// ActiveClean's gradient-based sampling).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_threshold() {
        let rows: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32 / 100.0]).collect();
        let labels: Vec<f32> = (0..100).map(|i| if i >= 50 { 1.0 } else { 0.0 }).collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let model = LogisticRegression::fit(&refs, &labels, &LogisticRegressionConfig::default());
        assert!(!model.predict(&[0.1]));
        assert!(model.predict(&[0.9]));
        assert!(model.predict_proba(&[0.9]) > model.predict_proba(&[0.1]));
    }

    #[test]
    fn empty_training_gives_half_probability() {
        let model =
            LogisticRegression::fit(&[], &[], &LogisticRegressionConfig::default());
        assert!((model.predict_proba(&[]) - 0.5).abs() < 1e-6);
        assert!(model.weights().is_empty());
    }

    #[test]
    fn two_feature_separation() {
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|i| vec![(i % 10) as f32, ((i / 10) % 10) as f32])
            .collect();
        let labels: Vec<f32> = rows
            .iter()
            .map(|r| if r[0] + r[1] > 9.0 { 1.0 } else { 0.0 })
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let model = LogisticRegression::fit(&refs, &labels, &LogisticRegressionConfig::default());
        let correct = rows
            .iter()
            .zip(labels.iter())
            .filter(|(r, &y)| model.predict(r) == (y > 0.5))
            .count();
        assert!(correct >= 175, "only {correct}/200");
    }
}
