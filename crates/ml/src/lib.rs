//! # zeroed-ml
//!
//! Minimal machine-learning substrate for ZeroED.
//!
//! The paper's detector is deliberately simple: a two-layer multilayer
//! perceptron with ReLU activations trained with the binary cross-entropy
//! loss (paper §III-D). This crate implements that model from scratch —
//! dense layers, Adam optimiser, mini-batch training — plus a logistic
//! regression used by the ActiveClean baseline and a feature standardiser.
//!
//! All models consume rows as `&[&[f32]]`, matching the `FeatureMatrix`
//! produced by `zeroed-features` without copying.

pub mod logreg;
pub mod metrics;
pub mod mlp;
pub mod scale;

pub use logreg::{LogisticRegression, LogisticRegressionConfig};
pub use metrics::{accuracy, binary_confusion};
pub use mlp::{Mlp, MlpConfig};
pub use scale::StandardScaler;
