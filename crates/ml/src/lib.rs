//! # zeroed-ml
//!
//! Minimal machine-learning substrate for ZeroED — the detector the whole
//! pipeline exists to train.
//!
//! The paper's detector is deliberately simple: a two-layer multilayer
//! perceptron with ReLU activations trained with the binary cross-entropy
//! loss (paper §III-D), one model per attribute, fed by the training data
//! Algorithm 1 constructs (propagated labels, mutually verified clean rows,
//! LLM-augmented error examples). This crate implements that model from
//! scratch — dense layers, Adam optimiser with bias-corrected moments
//! (hoisted per step, not per parameter), mini-batch training — plus the
//! [`LogisticRegression`] the ActiveClean and Raha baselines train and a
//! [`StandardScaler`] for feature standardisation.
//!
//! ## Contracts
//!
//! * **Zero-copy input.** All models consume rows as `&[&[f32]]`, matching
//!   the `FeatureMatrix` rows produced by `zeroed-features` — featurisation
//!   output trains directly, no reshaping or copying.
//! * **Determinism.** Weight initialisation and mini-batch shuffling are
//!   driven by explicit seeds (counter-based RNG), so a detection run is
//!   reproducible end-to-end: same features + same seed → same weights →
//!   same error-mask predictions. The pipeline's bit-identical equivalence
//!   suites (sequential vs concurrent vs routed vs warm-started) rest on
//!   this.
//! * **No external math stack.** The workspace builds offline; everything
//!   here is plain `f32` loops, which also keeps the per-column models cheap
//!   enough to train one per attribute on 50k-row tables (see
//!   `BENCH_features.json`'s pipeline rows).
//!
//! [`metrics`] carries the confusion-matrix helpers the experiment harness
//! uses to score masks against ground truth.

pub mod logreg;
pub mod metrics;
pub mod mlp;
pub mod scale;

pub use logreg::{LogisticRegression, LogisticRegressionConfig};
pub use metrics::{accuracy, binary_confusion};
pub use mlp::{Mlp, MlpConfig};
pub use scale::StandardScaler;
