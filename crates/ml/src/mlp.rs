//! A two-layer multilayer perceptron for binary cell classification.
//!
//! Architecture (paper §III-D): `input → hidden (ReLU) → 1 (sigmoid)`, trained
//! with the binary cross-entropy loss and the Adam optimiser on mini-batches.
//!
//! Two trainers share the algorithm:
//!
//! * [`Mlp::train`] — the scalar per-example loop, kept as the equivalence
//!   oracle.
//! * [`Mlp::train_batched`] / [`Mlp::train_weighted`] — the production fast
//!   path: per batch, the forward pass runs in parallel over examples and the
//!   backward pass in parallel over *hidden units* (each unit owns its `w1`
//!   gradient row, its `b1` entry and its `w2` entry, accumulating over the
//!   batch in example order). Because every output location has exactly one
//!   owner and each owner adds in the same order as the scalar loop, the
//!   gradients — and therefore the trained parameters — are bit-identical to
//!   [`Mlp::train`]'s under any thread count. [`Mlp::train_weighted`] folds a
//!   per-example weight into `dL/dlogit` (and the loss), which with unit
//!   weights multiplies by `1.0` exactly — so `train_batched` *is*
//!   `train_weighted` with weights of one, and both are covered by the same
//!   oracle. The weighted form is what lets `zeroed-core`'s detector train on
//!   deduplicated feature rows weighted by multiplicity instead of `n`
//!   expanded copies.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// MLP hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// PRNG seed for initialisation and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            epochs: 30,
            batch_size: 64,
            learning_rate: 1e-3,
            weight_decay: 1e-5,
            seed: 42,
        }
    }
}

/// Dense parameter matrix with Adam state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Param {
    value: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Param {
    fn new(len: usize) -> Self {
        Self {
            value: vec![0.0; len],
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    fn adam_step(&mut self, grad: &[f32], lr: f32, t: usize, weight_decay: f32) {
        const B1: f32 = 0.9;
        const B2: f32 = 0.999;
        const EPS: f32 = 1e-8;
        // The bias-correction factors depend only on the step count — hoist
        // them so each step costs O(1) `powi` calls instead of O(params).
        let t = t as i32;
        let m_corr = 1.0 / (1.0 - B1.powi(t));
        let v_corr = 1.0 / (1.0 - B2.powi(t));
        for i in 0..self.value.len() {
            let g = grad[i] + weight_decay * self.value[i];
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * g;
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * g * g;
            let m_hat = self.m[i] * m_corr;
            let v_hat = self.v[i] * v_corr;
            self.value[i] -= lr * m_hat / (v_hat.sqrt() + EPS);
        }
    }
}

/// A trained two-layer MLP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    input_dim: usize,
    hidden: usize,
    w1: Param,
    b1: Param,
    w2: Param,
    b2: Param,
    steps: usize,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Mlp {
    /// Creates an untrained MLP with Xavier-style initialisation.
    pub fn new(input_dim: usize, config: &MlpConfig) -> Self {
        let hidden = config.hidden.max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let scale1 = (2.0 / (input_dim.max(1) + hidden) as f32).sqrt();
        let scale2 = (2.0 / (hidden + 1) as f32).sqrt();
        let mut w1 = Param::new(input_dim * hidden);
        for w in w1.value.iter_mut() {
            *w = (rng.gen::<f32>() * 2.0 - 1.0) * scale1;
        }
        let mut w2 = Param::new(hidden);
        for w in w2.value.iter_mut() {
            *w = (rng.gen::<f32>() * 2.0 - 1.0) * scale2;
        }
        Self {
            input_dim,
            hidden,
            w1,
            b1: Param::new(hidden),
            w2,
            b2: Param::new(1),
            steps: 0,
        }
    }

    /// Input dimensionality the network expects.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Forward pass returning `(hidden_activations, probability)`.
    fn forward(&self, x: &[f32]) -> (Vec<f32>, f32) {
        debug_assert_eq!(x.len(), self.input_dim);
        let mut h = vec![0.0f32; self.hidden];
        for j in 0..self.hidden {
            let mut acc = self.b1.value[j];
            let weights = &self.w1.value[j * self.input_dim..(j + 1) * self.input_dim];
            for (w, &xi) in weights.iter().zip(x.iter()) {
                acc += w * xi;
            }
            h[j] = acc.max(0.0);
        }
        let mut out = self.b2.value[0];
        for (w, &hj) in self.w2.value.iter().zip(h.iter()) {
            out += w * hj;
        }
        (h, sigmoid(out))
    }

    /// Predicted probability that the row is an error (positive class).
    pub fn predict_proba(&self, x: &[f32]) -> f32 {
        self.forward(x).1
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, x: &[f32]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Trains the network on `(rows, labels)` (labels in `{0.0, 1.0}`) and
    /// returns the mean training loss of the final epoch.
    ///
    /// Rows must all have the configured input dimension; label and row counts
    /// must match. An empty training set leaves the network untouched and
    /// returns 0.
    pub fn train(&mut self, rows: &[&[f32]], labels: &[f32], config: &MlpConfig) -> f32 {
        assert_eq!(rows.len(), labels.len(), "rows and labels must align");
        if rows.is_empty() {
            return 0.0;
        }
        let n = rows.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(1));
        let batch = config.batch_size.max(1);
        let mut last_epoch_loss = 0.0f32;

        // Gradient buffers reused across batches.
        let mut gw1 = vec![0.0f32; self.w1.value.len()];
        let mut gb1 = vec![0.0f32; self.b1.value.len()];
        let mut gw2 = vec![0.0f32; self.w2.value.len()];
        let mut gb2 = vec![0.0f32; 1];

        for _epoch in 0..config.epochs {
            // Fisher-Yates shuffle.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0f32;
            for chunk in order.chunks(batch) {
                gw1.iter_mut().for_each(|g| *g = 0.0);
                gb1.iter_mut().for_each(|g| *g = 0.0);
                gw2.iter_mut().for_each(|g| *g = 0.0);
                gb2[0] = 0.0;
                for &idx in chunk {
                    let x = rows[idx];
                    let y = labels[idx];
                    let (h, p) = self.forward(x);
                    let p_clamped = p.clamp(1e-7, 1.0 - 1e-7);
                    epoch_loss +=
                        -(y * p_clamped.ln() + (1.0 - y) * (1.0 - p_clamped).ln());
                    // dL/dlogit = p - y
                    let dlogit = p - y;
                    gb2[0] += dlogit;
                    for j in 0..self.hidden {
                        gw2[j] += dlogit * h[j];
                    }
                    for j in 0..self.hidden {
                        if h[j] <= 0.0 {
                            continue;
                        }
                        let dh = dlogit * self.w2.value[j];
                        gb1[j] += dh;
                        let grad_row = &mut gw1[j * self.input_dim..(j + 1) * self.input_dim];
                        for (g, &xi) in grad_row.iter_mut().zip(x.iter()) {
                            *g += dh * xi;
                        }
                    }
                }
                let scale = 1.0 / chunk.len() as f32;
                gw1.iter_mut().for_each(|g| *g *= scale);
                gb1.iter_mut().for_each(|g| *g *= scale);
                gw2.iter_mut().for_each(|g| *g *= scale);
                gb2[0] *= scale;
                self.steps += 1;
                let t = self.steps;
                self.w1
                    .adam_step(&gw1, config.learning_rate, t, config.weight_decay);
                self.b1.adam_step(&gb1, config.learning_rate, t, 0.0);
                self.w2
                    .adam_step(&gw2, config.learning_rate, t, config.weight_decay);
                self.b2.adam_step(&gb2, config.learning_rate, t, 0.0);
            }
            last_epoch_loss = epoch_loss / n as f32;
        }
        last_epoch_loss
    }

    /// Batched fast-path trainer: bit-identical to [`Mlp::train`] (see the
    /// module docs), with the forward pass parallel over examples and the
    /// backward pass parallel over hidden units.
    pub fn train_batched(&mut self, rows: &[&[f32]], labels: &[f32], config: &MlpConfig) -> f32 {
        self.train_weighted(rows, labels, &vec![1.0f32; rows.len()], config)
    }

    /// [`Mlp::train_batched`] with a positive weight per example: each
    /// example's gradient and loss contribution is scaled by its weight, and
    /// batch gradients are weighted means (divided by the batch's total
    /// weight instead of its length). With unit weights this is bit-identical
    /// to [`Mlp::train`]; with integer weights it trains on a deduplicated
    /// set as if each row appeared `weight` times in every batch its distinct
    /// vector lands in.
    pub fn train_weighted(
        &mut self,
        rows: &[&[f32]],
        labels: &[f32],
        weights: &[f32],
        config: &MlpConfig,
    ) -> f32 {
        assert_eq!(rows.len(), labels.len(), "rows and labels must align");
        assert_eq!(rows.len(), weights.len(), "rows and weights must align");
        debug_assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        if rows.is_empty() {
            return 0.0;
        }
        let n = rows.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(1));
        let batch = config.batch_size.max(1);
        let total_weight: f32 = weights.iter().sum();
        let mut last_epoch_loss = 0.0f32;

        let mut gw1 = vec![0.0f32; self.w1.value.len()];
        let mut gb1 = vec![0.0f32; self.b1.value.len()];
        let mut gw2 = vec![0.0f32; self.w2.value.len()];
        let mut gb2 = vec![0.0f32; 1];

        for _epoch in 0..config.epochs {
            // Fisher-Yates shuffle — same RNG stream as the scalar trainer.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0f32;
            for chunk in order.chunks(batch) {
                // Forward the whole batch (parallel over examples; the
                // parameters are frozen within a batch, so each forward is
                // independent and the results match the scalar interleaving).
                let fwd: Vec<(Vec<f32>, f32)> = chunk
                    .par_iter()
                    .map(|&idx| self.forward(rows[idx]))
                    .collect();
                // Weighted `dL/dlogit` per example, plus the serial loss and
                // `b2` accumulations (scalar-order f32 sums).
                gb2[0] = 0.0;
                let mut chunk_weight = 0.0f32;
                let mut wdlogits = Vec::with_capacity(chunk.len());
                for (&idx, (_, p)) in chunk.iter().zip(fwd.iter()) {
                    let y = labels[idx];
                    let w = weights[idx];
                    let p_clamped = p.clamp(1e-7, 1.0 - 1e-7);
                    epoch_loss +=
                        w * -(y * p_clamped.ln() + (1.0 - y) * (1.0 - p_clamped).ln());
                    let wdlogit = w * (p - y);
                    gb2[0] += wdlogit;
                    chunk_weight += w;
                    wdlogits.push(wdlogit);
                }
                // Backward, parallel over hidden units: unit `j` owns
                // `gb1[j]`, `gw2[j]` and `gw1` row `j`, and accumulates over
                // the batch in example order — exactly the scalar trainer's
                // addition order for that location.
                let per_unit: Vec<(f32, f32)> = (0..self.hidden)
                    .into_par_iter()
                    .map(|j| {
                        let mut gb1_j = 0.0f32;
                        let mut gw2_j = 0.0f32;
                        for ((h, _), &wdlogit) in fwd.iter().zip(wdlogits.iter()) {
                            gw2_j += wdlogit * h[j];
                            if h[j] > 0.0 {
                                gb1_j += wdlogit * self.w2.value[j];
                            }
                        }
                        (gb1_j, gw2_j)
                    })
                    .collect();
                for (j, (gb1_j, gw2_j)) in per_unit.into_iter().enumerate() {
                    gb1[j] = gb1_j;
                    gw2[j] = gw2_j;
                }
                let input_dim = self.input_dim;
                let w2 = &self.w2.value;
                gw1.par_chunks_mut(input_dim)
                    .enumerate()
                    .for_each(|(j, grad_row)| {
                        grad_row.iter_mut().for_each(|g| *g = 0.0);
                        for (&idx, ((h, _), &wdlogit)) in
                            chunk.iter().zip(fwd.iter().zip(wdlogits.iter()))
                        {
                            if h[j] <= 0.0 {
                                continue;
                            }
                            let dh = wdlogit * w2[j];
                            for (g, &xi) in grad_row.iter_mut().zip(rows[idx].iter()) {
                                *g += dh * xi;
                            }
                        }
                    });
                let scale = 1.0 / chunk_weight;
                gw1.iter_mut().for_each(|g| *g *= scale);
                gb1.iter_mut().for_each(|g| *g *= scale);
                gw2.iter_mut().for_each(|g| *g *= scale);
                gb2[0] *= scale;
                self.steps += 1;
                let t = self.steps;
                self.w1
                    .adam_step(&gw1, config.learning_rate, t, config.weight_decay);
                self.b1.adam_step(&gb1, config.learning_rate, t, 0.0);
                self.w2
                    .adam_step(&gw2, config.learning_rate, t, config.weight_decay);
                self.b2.adam_step(&gb2, config.learning_rate, t, 0.0);
            }
            last_epoch_loss = epoch_loss / total_weight;
        }
        last_epoch_loss
    }

    /// Predicted probabilities for a batch of rows (parallel over rows; each
    /// forward is independent, so the results are identical to calling
    /// [`Mlp::predict_proba`] per row).
    pub fn predict_proba_batch(&self, rows: &[&[f32]]) -> Vec<f32> {
        rows.par_iter().map(|row| self.forward(row).1).collect()
    }

    /// Convenience: constructs and trains an MLP in one call through the
    /// batched fast path (bit-identical to training with [`Mlp::train`]).
    pub fn fit(rows: &[&[f32]], labels: &[f32], config: &MlpConfig) -> Mlp {
        let input_dim = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut mlp = Mlp::new(input_dim, config);
        mlp.train_batched(rows, labels, config);
        mlp
    }

    /// Constructs and trains a weighted MLP in one call (the detector's
    /// dedup-weighted entry point).
    pub fn fit_weighted(rows: &[&[f32]], labels: &[f32], weights: &[f32], config: &MlpConfig) -> Mlp {
        let input_dim = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut mlp = Mlp::new(input_dim, config);
        mlp.train_weighted(rows, labels, weights, config);
        mlp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _rep in 0..50 {
            for (a, b) in [(0.0f32, 0.0f32), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                rows.push(vec![a, b]);
                labels.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
            }
        }
        (rows, labels)
    }

    #[test]
    fn learns_xor() {
        let (rows, labels) = xor_data();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let config = MlpConfig {
            hidden: 16,
            epochs: 200,
            batch_size: 16,
            learning_rate: 5e-3,
            ..Default::default()
        };
        let mlp = Mlp::fit(&refs, &labels, &config);
        for (row, &y) in rows.iter().zip(labels.iter()) {
            assert_eq!(mlp.predict(row), y > 0.5, "row {row:?}");
        }
    }

    #[test]
    fn learns_linearly_separable_data() {
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|i| vec![(i % 20) as f32 / 20.0, ((i * 7) % 13) as f32 / 13.0])
            .collect();
        let labels: Vec<f32> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let mlp = Mlp::fit(
            &refs,
            &labels,
            &MlpConfig {
                epochs: 120,
                ..Default::default()
            },
        );
        let correct = rows
            .iter()
            .zip(labels.iter())
            .filter(|(r, &y)| mlp.predict(r) == (y > 0.5))
            .count();
        assert!(correct >= 185, "only {correct}/200 correct");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        // Single example; compare analytic dL/dw2[j] against finite differences.
        let config = MlpConfig {
            hidden: 4,
            seed: 3,
            ..Default::default()
        };
        let x = vec![0.3f32, -0.7, 0.9];
        let y = 1.0f32;
        let mlp = Mlp::new(3, &config);
        let loss_of = |m: &Mlp| {
            let p = m.predict_proba(&x).clamp(1e-7, 1.0 - 1e-7);
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        };
        // Analytic gradient for w2.
        let (h, p) = mlp.forward(&x);
        let dlogit = p - y;
        for j in 0..4 {
            let analytic = dlogit * h[j];
            let mut plus = mlp.clone();
            plus.w2.value[j] += 1e-3;
            let mut minus = mlp.clone();
            minus.w2.value[j] -= 1e-3;
            let numeric = (loss_of(&plus) - loss_of(&minus)) / 2e-3;
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "w2[{j}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn probabilities_are_bounded() {
        let mlp = Mlp::new(5, &MlpConfig::default());
        let p = mlp.predict_proba(&[1.0, -2.0, 3.0, 0.0, 10.0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn empty_training_is_a_noop() {
        let mut mlp = Mlp::new(2, &MlpConfig::default());
        let loss = mlp.train(&[], &[], &MlpConfig::default());
        assert_eq!(loss, 0.0);
    }

    #[test]
    #[should_panic(expected = "rows and labels must align")]
    fn mismatched_labels_panic() {
        let mut mlp = Mlp::new(1, &MlpConfig::default());
        let rows = [vec![1.0f32]];
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let _ = mlp.train(&refs, &[], &MlpConfig::default());
    }

    fn messy_data(n: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        // Non-integer values: exercises real f32 arithmetic, not just the
        // exact-sum regime.
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                vec![
                    (i % 17) as f32 * 0.37 - 2.1,
                    ((i * 13) % 29) as f32 * 0.11,
                    if i % 3 == 0 { -0.5 } else { 1.25 },
                ]
            })
            .collect();
        let labels: Vec<f32> = (0..n).map(|i| ((i * 7) % 5 < 2) as u8 as f32).collect();
        (rows, labels)
    }

    /// The batched trainer must produce bit-identical parameters (hence
    /// predictions) to the scalar oracle — including across multiple batches
    /// and a ragged final chunk.
    #[test]
    fn batched_training_is_bit_identical_to_scalar() {
        let (rows, labels) = messy_data(203);
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let config = MlpConfig {
            hidden: 8,
            epochs: 5,
            batch_size: 32,
            seed: 9,
            ..Default::default()
        };
        let mut scalar = Mlp::new(3, &config);
        let scalar_loss = scalar.train(&refs, &labels, &config);
        let mut batched = Mlp::new(3, &config);
        let batched_loss = batched.train_batched(&refs, &labels, &config);
        assert_eq!(scalar_loss.to_bits(), batched_loss.to_bits());
        assert_eq!(scalar.w1.value, batched.w1.value);
        assert_eq!(scalar.b1.value, batched.b1.value);
        assert_eq!(scalar.w2.value, batched.w2.value);
        assert_eq!(scalar.b2.value, batched.b2.value);
        for row in &refs {
            assert_eq!(
                scalar.predict_proba(row).to_bits(),
                batched.predict_proba(row).to_bits()
            );
        }
    }

    /// Unit weights must reduce `train_weighted` to `train_batched` exactly.
    #[test]
    fn unit_weights_are_bit_identical_to_unweighted() {
        let (rows, labels) = messy_data(97);
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let config = MlpConfig {
            hidden: 6,
            epochs: 4,
            batch_size: 16,
            seed: 4,
            ..Default::default()
        };
        let mut unweighted = Mlp::new(3, &config);
        unweighted.train_batched(&refs, &labels, &config);
        let mut weighted = Mlp::new(3, &config);
        weighted.train_weighted(&refs, &labels, &vec![1.0; refs.len()], &config);
        assert_eq!(unweighted.w1.value, weighted.w1.value);
        assert_eq!(unweighted.w2.value, weighted.w2.value);
        assert_eq!(unweighted.b1.value, weighted.b1.value);
        assert_eq!(unweighted.b2.value, weighted.b2.value);
    }

    /// Weighted training still learns: duplicating a class via weights keeps
    /// the separable problem learnable.
    #[test]
    fn weighted_training_learns_linearly_separable_data() {
        let rows: Vec<Vec<f32>> = (0..120)
            .map(|i| vec![(i % 20) as f32 / 20.0, ((i * 7) % 13) as f32 / 13.0])
            .collect();
        let labels: Vec<f32> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let weights: Vec<f32> = labels.iter().map(|&y| if y > 0.5 { 3.0 } else { 1.0 }).collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let mlp = Mlp::fit_weighted(
            &refs,
            &labels,
            &weights,
            &MlpConfig {
                epochs: 150,
                learning_rate: 5e-3,
                ..Default::default()
            },
        );
        let correct = rows
            .iter()
            .zip(labels.iter())
            .filter(|(r, &y)| mlp.predict(r) == (y > 0.5))
            .count();
        assert!(correct >= 110, "only {correct}/120 correct");
    }

    /// The parallel batch prediction must match per-row prediction bitwise.
    #[test]
    fn batch_prediction_matches_per_row() {
        let (rows, labels) = messy_data(64);
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let mlp = Mlp::fit(&refs, &labels, &MlpConfig {
            hidden: 5,
            epochs: 3,
            ..Default::default()
        });
        let batch = mlp.predict_proba_batch(&refs);
        for (row, &p) in refs.iter().zip(batch.iter()) {
            assert_eq!(mlp.predict_proba(row).to_bits(), p.to_bits());
        }
    }
}
