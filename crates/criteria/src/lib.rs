//! # zeroed-criteria
//!
//! Executable error-checking criteria (paper §III-B "error reason-aware
//! features" and §III-D "mutual verification").
//!
//! In the paper the LLM emits Python functions such as
//! `is_clean_consistent_with_measure_code(row, attr)` that encode concrete
//! error reasons; executing them over every cell yields binary
//! "satisfies-this-criterion" features. In this reproduction the criteria are
//! expressed in a small declarative DSL ([`Check`]) that covers the same
//! operation families the paper's examples use — null checks, format/pattern
//! templates, numeric and length ranges, domain membership, and
//! cross-attribute consistency (functional-dependency lookups and keyword
//! co-occurrence). A [`Criterion`] couples a check with the human-readable
//! rationale the LLM produced.
//!
//! The [`verify`] module implements the mutual-verification half of the
//! paper's Algorithm 1: criteria are scored against propagated clean labels
//! and dropped below an accuracy threshold, then surviving criteria are used
//! to discard unreliable propagated labels.

pub mod dsl;
pub mod verify;

pub use dsl::{Check, CriteriaSet, Criterion};
pub use verify::{criteria_features, criterion_accuracy, filter_criteria, filter_rows, pass_rate};
