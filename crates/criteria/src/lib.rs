//! # zeroed-criteria
//!
//! Executable error-checking criteria (paper §III-B "error reason-aware
//! features" and §III-D "mutual verification").
//!
//! In the paper the LLM emits Python functions such as
//! `is_clean_consistent_with_measure_code(row, attr)` that encode concrete
//! error reasons; executing them over every cell yields binary
//! "satisfies-this-criterion" features. In this reproduction the criteria are
//! expressed in a small declarative DSL ([`Check`]) that covers the same
//! operation families the paper's examples use — null checks, format/pattern
//! templates, numeric and length ranges, domain membership, and
//! cross-attribute consistency (functional-dependency lookups and keyword
//! co-occurrence). A [`Criterion`] couples a check with the human-readable
//! rationale the LLM produced.
//!
//! ## Why a DSL instead of generated code
//!
//! Executing LLM-written Python inside a production detector is an
//! operational non-starter (sandboxing, determinism, latency); a closed
//! check algebra keeps criteria *data* — serialisable, diffable, and safe to
//! replay from the response store. That last point is a real contract: the
//! on-disk store (`zeroed-store`) persists whole [`CriteriaSet`]s, and
//! `refine_criteria` request keys fold their canonical byte encoding
//! (`zeroed_store::canonical_criteria`), so [`Check`]'s unordered fields
//! (`HashSet` domains, `HashMap` FD mappings) are always serialised sorted —
//! identical logical criteria must produce identical bytes on every process.
//!
//! ## The two halves
//!
//! * [`dsl`] — the check algebra itself plus evaluation: a [`Criterion`]
//!   couples a [`Check`] with the rationale the (simulated) LLM produced;
//!   `criteria_features` turns a [`CriteriaSet`] into binary per-cell
//!   feature columns ("error reason-aware features", §III-B) that are
//!   appended to the unified representation.
//! * [`verify`] — the mutual-verification half of Algorithm 1: criteria are
//!   scored against propagated clean labels and dropped below an accuracy
//!   threshold ([`filter_criteria`]), then the surviving criteria discard
//!   unreliable propagated labels ([`filter_rows`]) — each side cleans the
//!   other, which is what lets a zero-shot system train a detector on its
//!   own labels.
//!
//! Checks are pure and total: evaluation never panics on malformed cell
//! values (a value that fails to parse simply fails the check), which the
//! pipeline relies on when running criteria over dirty data by design.
//!
//! ## The criteria VM
//!
//! Evaluation itself has two interchangeable engines:
//!
//! * the **AST oracle** — [`Check::evaluate`] walks the check tree per cell;
//!   byte-for-byte the original implementation, preserved as the
//!   specification (and selectable in the pipeline via
//!   `ZeroEdConfig::criteria_engine`);
//! * the **compiled path** (default) — [`compile`] lowers each check into a
//!   flat, versioned bytecode [`Program`] and [`vm`]
//!   evaluates it once per *distinct* interned value (or distinct value
//!   pair for cross-column checks), scattering results to rows by
//!   `TableDict` code.
//!
//! The differential suite (`tests/vm_differential.rs`) holds the two
//! bit-identical on randomly generated check trees and tables; the byte
//! format is pinned by `tests/bytecode_golden.rs`.

pub mod compile;
pub mod dsl;
pub mod verify;
pub mod vm;

pub use compile::{compile_check, compile_set, CompiledSet, Program, BYTECODE_VERSION};
pub use dsl::{l3_pattern, Check, CriteriaSet, Criterion};
pub use verify::{
    criteria_features, criteria_features_dict, criterion_accuracy, filter_criteria,
    filter_criteria_dict, filter_rows, filter_rows_dict, pass_rate,
};
