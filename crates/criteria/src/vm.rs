//! The register-free stack VM that evaluates compiled criteria programs.
//!
//! Two layers live here:
//!
//! * [`Program::eval`] — the instruction interpreter: one program, one
//!   `(this, other)` value pair, a boolean stack. It reuses the exact cell
//!   helpers the AST oracle calls (`zeroed_table::value::{is_missing,
//!   parse_numeric, tokenize}` and [`crate::dsl::l3_pattern`]), so a single
//!   evaluation is semantics-identical to [`crate::dsl::Check::evaluate`] by
//!   construction; the differential suite holds it to *bit*-identical.
//! * [`DistinctEval`] — the columnar driver: criteria are pure functions of
//!   the cell *value*, so over a [`ColumnDict`] a program only ever needs to
//!   run once per **distinct code** (or distinct `(this_code, other_code)`
//!   pair for cross-column programs) and the result is scattered back to rows
//!   by code, exactly like `FittedFeatures::build_all` scatters per-distinct
//!   feature blocks. On repeated-value-heavy real tables this collapses the
//!   dominant cost of `criteria_features` and Algorithm-1 verification from
//!   `O(rows × criteria)` AST walks to `O(distinct × criteria)` program runs
//!   plus a code-indexed copy.
//!
//! Full-table scatters run in fixed-size row chunks ([`ROW_CHUNK`]): one
//! program is driven across one (column × row-chunk) block at a time, which
//! keeps the per-distinct result vector hot in cache while rows stream.

use crate::compile::{CompiledSet, Op, Program};
use std::collections::HashMap;
use zeroed_table::intern::ColumnDict;
use zeroed_table::value::{is_missing, parse_numeric, tokenize};
use zeroed_table::Table;

/// Rows scattered per (program × chunk) block in [`DistinctEval::eval_all_rows`].
pub const ROW_CHUNK: usize = 4096;

#[inline]
fn imm_u32(code: &[u8], pc: &mut usize) -> u32 {
    let v = u32::from_le_bytes(code[*pc..*pc + 4].try_into().unwrap());
    *pc += 4;
    v
}

#[inline]
fn imm_u64(code: &[u8], pc: &mut usize) -> u64 {
    let v = u64::from_le_bytes(code[*pc..*pc + 8].try_into().unwrap());
    *pc += 8;
    v
}

impl Program {
    /// Runs the program on one value pair: `this` is the cell of the
    /// program's own column, `other` the cell of [`Program::other_col`]
    /// (pass `""` for single-column programs — they never read it).
    ///
    /// Total like the oracle: malformed values simply fail their checks, the
    /// stack never underflows on compiler-produced programs, and an empty
    /// program yields `true`.
    pub fn eval(&self, this: &str, other: &str) -> bool {
        let code = &self.code;
        let mut stack: Vec<bool> = Vec::with_capacity(4);
        // `ThisContains`/`OtherContains` operate on the untrimmed lowercase
        // forms (the oracle lowers once per CrossKeyword evaluation); compute
        // them lazily so single-op programs never allocate here.
        let mut this_lower: Option<String> = None;
        let mut other_lower: Option<String> = None;
        let mut pc = 0usize;
        while pc < code.len() {
            let op = Op::from_byte(code[pc]).expect("compiler-produced opcode");
            pc += 1;
            match op {
                Op::NotMissing => stack.push(!is_missing(this)),
                Op::PatternIn => {
                    let set = &self.pool.str_sets[imm_u32(code, &mut pc) as usize];
                    let pattern = crate::dsl::l3_pattern(this);
                    stack.push(set.binary_search(&pattern).is_ok());
                }
                Op::LenInRange => {
                    let min = imm_u64(code, &mut pc);
                    let max = imm_u64(code, &mut pc);
                    let len = this.chars().count() as u64;
                    stack.push(len >= min && len <= max);
                }
                Op::NumInRange => {
                    let lo = self.pool.f64s[imm_u32(code, &mut pc) as usize];
                    let hi = self.pool.f64s[imm_u32(code, &mut pc) as usize];
                    stack.push(
                        parse_numeric(this)
                            .map(|x| x >= lo && x <= hi)
                            .unwrap_or(false),
                    );
                }
                Op::DomainIn => {
                    let set = &self.pool.str_sets[imm_u32(code, &mut pc) as usize];
                    let key = this.trim().to_lowercase();
                    stack.push(set.binary_search(&key).is_ok());
                }
                Op::CharsetOk => {
                    let cs = &self.pool.charsets[imm_u32(code, &mut pc) as usize];
                    stack.push(this.chars().all(|c| cs.allows(c)));
                }
                Op::TokensInRange => {
                    let min = imm_u64(code, &mut pc);
                    let max = imm_u64(code, &mut pc);
                    let n = tokenize(this).len() as u64;
                    stack.push(n >= min && n <= max);
                }
                Op::FdConsistent => {
                    let map = &self.pool.fd_maps[imm_u32(code, &mut pc) as usize];
                    let det = other.trim().to_lowercase();
                    let verdict = match map.binary_search_by(|(k, _)| k.as_str().cmp(&det)) {
                        Ok(i) => this.trim().to_lowercase() == map[i].1,
                        Err(_) => true,
                    };
                    stack.push(verdict);
                }
                Op::OtherContains => {
                    let needle = &self.pool.strings[imm_u32(code, &mut pc) as usize];
                    let haystack = other_lower.get_or_insert_with(|| other.to_lowercase());
                    stack.push(haystack.contains(needle.as_str()));
                }
                Op::ThisContains => {
                    let needle = &self.pool.strings[imm_u32(code, &mut pc) as usize];
                    let haystack = this_lower.get_or_insert_with(|| this.to_lowercase());
                    stack.push(haystack.contains(needle.as_str()));
                }
                Op::PushTrue => stack.push(true),
                Op::And => {
                    let b = stack.pop().expect("And rhs");
                    let a = stack.pop().expect("And lhs");
                    stack.push(a & b);
                }
                Op::Or => {
                    let b = stack.pop().expect("Or rhs");
                    let a = stack.pop().expect("Or lhs");
                    stack.push(a | b);
                }
                Op::Not => {
                    let a = stack.pop().expect("Not operand");
                    stack.push(!a);
                }
            }
        }
        stack.pop().unwrap_or(true)
    }
}

/// Memoising columnar driver for one program over interned columns: results
/// are computed once per distinct code (single-column programs) or once per
/// distinct `(this_code, other_code)` pair (cross-column programs) and reused
/// for every row sharing the code(s).
pub struct DistinctEval<'a> {
    program: &'a Program,
    this: &'a ColumnDict,
    other: Option<&'a ColumnDict>,
    /// Per-distinct verdicts of single-column programs, indexed by code.
    single: Vec<Option<bool>>,
    /// Per-distinct-pair verdicts of cross-column programs.
    pairs: HashMap<(u32, u32), bool>,
}

impl<'a> DistinctEval<'a> {
    /// Binds a program to the interned column(s) it reads. `other` must be
    /// `Some` exactly when the program has an [`Program::other_col`]; both
    /// dictionaries must describe the same table (equal row counts).
    pub fn new(program: &'a Program, this: &'a ColumnDict, other: Option<&'a ColumnDict>) -> Self {
        assert_eq!(
            program.other_col.is_some(),
            other.is_some(),
            "other-column dictionary must match the program's column wiring"
        );
        if let Some(other) = other {
            assert_eq!(this.n_rows(), other.n_rows(), "dictionaries describe one table");
        }
        let single = if other.is_none() {
            vec![None; this.n_distinct()]
        } else {
            Vec::new()
        };
        Self {
            program,
            this,
            other,
            single,
            pairs: HashMap::new(),
        }
    }

    /// Evaluates the program for one row, memoised by distinct code(s).
    #[inline]
    pub fn eval_row(&mut self, row: usize) -> bool {
        match self.other {
            None => {
                let code = self.this.code(row);
                self.eval_code(code)
            }
            Some(other) => {
                let key = (self.this.code(row), other.code(row));
                match self.pairs.get(&key) {
                    Some(&v) => v,
                    None => {
                        let v = self
                            .program
                            .eval(self.this.value(key.0), other.value(key.1));
                        self.pairs.insert(key, v);
                        v
                    }
                }
            }
        }
    }

    #[inline]
    fn eval_code(&mut self, code: u32) -> bool {
        match self.single[code as usize] {
            Some(v) => v,
            None => {
                let v = self.program.eval(self.this.value(code), "");
                self.single[code as usize] = Some(v);
                v
            }
        }
    }

    /// Evaluates the program for every row of the column: per-distinct
    /// verdicts first, then a chunked scatter by code.
    pub fn eval_all_rows(&mut self) -> Vec<bool> {
        let n_rows = self.this.n_rows();
        let mut out = vec![false; n_rows];
        match self.other {
            None => {
                for code in 0..self.this.n_distinct() as u32 {
                    self.eval_code(code);
                }
                let codes = self.this.codes();
                for start in (0..n_rows).step_by(ROW_CHUNK) {
                    let end = (start + ROW_CHUNK).min(n_rows);
                    for row in start..end {
                        out[row] = self.single[codes[row] as usize]
                            .expect("all distinct codes evaluated");
                    }
                }
            }
            Some(_) => {
                for start in (0..n_rows).step_by(ROW_CHUNK) {
                    let end = (start + ROW_CHUNK).min(n_rows);
                    for row in start..end {
                        out[row] = self.eval_row(row);
                    }
                }
            }
        }
        out
    }
}

impl CompiledSet {
    /// Evaluates every compiled criterion on one cell of `table`, mirroring
    /// [`crate::dsl::CriteriaSet::evaluate_cell`] on the compiled path.
    pub fn eval_cell(&self, table: &Table, row: usize) -> Vec<bool> {
        let this = table.cell(row, self.column);
        self.programs
            .iter()
            .map(|p| {
                let other = p
                    .other_col
                    .map(|c| table.cell(row, c as usize))
                    .unwrap_or("");
                p.eval(this, other)
            })
            .collect()
    }

    /// Binds every program of the set to dictionaries resolved by
    /// `resolve`, returning one [`DistinctEval`] per criterion (in order).
    /// `resolve` is called with the set's own column and with every distinct
    /// `other_col` the programs reference.
    pub fn evaluators<'a>(
        &'a self,
        resolve: impl Fn(usize) -> &'a ColumnDict,
    ) -> Vec<DistinctEval<'a>> {
        let this = resolve(self.column);
        self.programs
            .iter()
            .map(|p| DistinctEval::new(p, this, p.other_col.map(|c| resolve(c as usize))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_check, compile_set};
    use crate::dsl::{Check, CriteriaSet, Criterion};
    use std::collections::HashMap as StdHashMap;

    fn table() -> Table {
        Table::new(
            "t",
            vec!["code".into(), "cond".into()],
            vec![
                vec!["ami-1".into(), "heart attack".into()],
                vec!["scip-2".into(), "surgical infection prevention".into()],
                vec!["ami-1".into(), "heart attack".into()],
                vec!["pn-9".into(), "heart attack".into()],
                vec!["".into(), "".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn vm_matches_oracle_per_cell() {
        let t = table();
        let checks = vec![
            Check::NotMissing,
            Check::LengthRange { min: 3, max: 12 },
            Check::TokenCountRange { min: 2, max: 3 },
            Check::CrossKeyword {
                other_col: 0,
                pairs: vec![
                    ("ami".into(), "heart".into()),
                    ("pn".into(), "pneumonia".into()),
                ],
            },
            Check::FdLookup {
                determinant_col: 0,
                mapping: StdHashMap::from([("ami-1".to_string(), "heart attack".to_string())]),
            },
        ];
        for check in &checks {
            let p = compile_check(check, 1);
            for row in 0..t.n_rows() {
                let other = p.other_col.map(|c| t.cell(row, c as usize)).unwrap_or("");
                assert_eq!(
                    p.eval(t.cell(row, 1), other),
                    check.evaluate(&t, row, 1),
                    "{check:?} row {row}"
                );
            }
        }
    }

    #[test]
    fn distinct_eval_memoises_and_scatters() {
        let t = table();
        let dict = t.intern();
        let p = compile_check(&Check::NotMissing, 1);
        let mut ev = DistinctEval::new(&p, dict.column(1), None);
        let all = ev.eval_all_rows();
        assert_eq!(all, vec![true, true, true, true, false]);
        for row in 0..t.n_rows() {
            assert_eq!(ev.eval_row(row), all[row]);
        }
    }

    #[test]
    fn cross_column_pairs_memoise() {
        let t = table();
        let dict = t.intern();
        let cross = compile_check(
            &Check::CrossKeyword {
                other_col: 0,
                pairs: vec![("pn".into(), "pneumonia".into())],
            },
            1,
        );
        let mut ev = DistinctEval::new(&cross, dict.column(1), Some(dict.column(0)));
        let all = ev.eval_all_rows();
        let expect: Vec<bool> = (0..t.n_rows())
            .map(|row| {
                Check::CrossKeyword {
                    other_col: 0,
                    pairs: vec![("pn".into(), "pneumonia".into())],
                }
                .evaluate(&t, row, 1)
            })
            .collect();
        assert_eq!(all, expect);
        // rows 0 and 2 share both codes — one pair entry serves both.
        assert!(ev.pairs.len() < t.n_rows());
    }

    #[test]
    fn compiled_set_eval_cell_matches_dsl() {
        let t = table();
        let set = CriteriaSet {
            column: 1,
            criteria: vec![
                Criterion::new("nm", "", Check::NotMissing),
                Criterion::new(
                    "fd",
                    "",
                    Check::FdLookup {
                        determinant_col: 0,
                        mapping: StdHashMap::from([(
                            "ami-1".to_string(),
                            "heart attack".to_string(),
                        )]),
                    },
                ),
            ],
        };
        let compiled = compile_set(&set);
        for row in 0..t.n_rows() {
            assert_eq!(compiled.eval_cell(&t, row), set.evaluate_cell(&t, row));
        }
    }
}
