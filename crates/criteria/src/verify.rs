//! Mutual verification between criteria and propagated labels, plus the
//! criteria-feature extraction used by the feature builder.
//!
//! Algorithm 1 of the paper refines training data in two passes:
//!
//! 1. **verify criteria with right labels** — every refined criterion is
//!    scored on cells whose propagated label says "clean"; criteria whose
//!    accuracy falls below 0.5 are dropped ([`filter_criteria`]);
//! 2. **verify data with reliable criteria** — propagated "clean" cells that
//!    fail more than half of the surviving criteria are discarded
//!    ([`filter_rows`]).
//!
//! ## Compiled by default, oracle behind the same names
//!
//! Since the criteria VM landed, every entry point here runs on the
//! **compiled** path: checks are lowered once ([`crate::compile`]) and
//! evaluated per distinct value / distinct value pair ([`crate::vm`]) instead
//! of walking the [`Check`](crate::dsl::Check) AST per cell. The original
//! per-cell implementations are preserved verbatim in [`oracle`] — they are
//! the specification, the differential suite (`tests/vm_differential.rs`)
//! holds the two bit-identical, and the pipeline can be pinned to them via
//! `ZeroEdConfig::criteria_engine` in `zeroed-core`.
//!
//! The float conventions are part of the contract and identical on both
//! paths: empty row sets score `1.0` in [`criterion_accuracy`], empty
//! criteria sets score `1.0` in [`pass_rate`], and every rate is computed as
//! `count as f64 / len as f64`.
//!
//! The `*_dict` variants ([`criteria_features_dict`],
//! [`filter_criteria_dict`], [`filter_rows_dict`]) accept the caller's
//! already-built [`TableDict`] so the pipeline (which interns the table once
//! per run) pays no extra interning; the plain variants intern the columns
//! they touch internally.

use crate::compile::{compile_check, compile_set, Program};
use crate::dsl::{CriteriaSet, Criterion};
use crate::vm::DistinctEval;
use std::collections::HashMap;
use zeroed_table::intern::ColumnDict;
use zeroed_table::{Table, TableDict};

/// The original per-cell AST-walking implementations, kept byte-for-byte as
/// the specification oracle for the compiled path (the same discipline as
/// `zeroed_features::reference` and the scalar MLP oracle): slow, obviously
/// correct, and exercised against the VM by the differential suite.
pub mod oracle {
    use crate::dsl::{CriteriaSet, Criterion};
    use zeroed_table::Table;

    /// Fraction of the given rows (all assumed labelled clean) that satisfy
    /// the criterion. Returns 1.0 for an empty row set (no evidence against
    /// it).
    pub fn criterion_accuracy(
        criterion: &Criterion,
        table: &Table,
        col: usize,
        clean_rows: &[usize],
    ) -> f64 {
        if clean_rows.is_empty() {
            return 1.0;
        }
        let satisfied = clean_rows
            .iter()
            .filter(|&&row| criterion.evaluate(table, row, col))
            .count();
        satisfied as f64 / clean_rows.len() as f64
    }

    /// Fraction of criteria in the set that the cell satisfies. Returns 1.0
    /// for an empty criteria set.
    pub fn pass_rate(set: &CriteriaSet, table: &Table, row: usize) -> f64 {
        if set.is_empty() {
            return 1.0;
        }
        let passed = set
            .criteria
            .iter()
            .filter(|c| c.evaluate(table, row, set.column))
            .count();
        passed as f64 / set.criteria.len() as f64
    }

    /// Drops criteria whose accuracy on clean-labelled rows is below
    /// `threshold` (Algorithm 1 lines 8–14; the paper uses 0.5). Returns the
    /// retained set.
    pub fn filter_criteria(
        set: &CriteriaSet,
        table: &Table,
        clean_rows: &[usize],
        threshold: f64,
    ) -> CriteriaSet {
        let criteria = set
            .criteria
            .iter()
            .filter(|c| criterion_accuracy(c, table, set.column, clean_rows) >= threshold)
            .cloned()
            .collect();
        CriteriaSet {
            column: set.column,
            criteria,
        }
    }

    /// Keeps only the clean-labelled rows whose pass rate over the (verified)
    /// criteria reaches `threshold` (Algorithm 1 lines 15–20; the paper uses
    /// 0.5).
    pub fn filter_rows(
        set: &CriteriaSet,
        table: &Table,
        clean_rows: &[usize],
        threshold: f64,
    ) -> Vec<usize> {
        clean_rows
            .iter()
            .copied()
            .filter(|&row| pass_rate(set, table, row) >= threshold)
            .collect()
    }

    /// Evaluates a column's criteria over every row, producing the binary
    /// error-reason-aware feature block (`f_cri`) consumed by
    /// `zeroed-features::FeatureBuilder` as `extra` features. Satisfied
    /// criteria map to `1.0`, violated ones to `0.0`.
    pub fn criteria_features(set: &CriteriaSet, table: &Table) -> Vec<Vec<f32>> {
        if set.is_empty() {
            return Vec::new();
        }
        (0..table.n_rows())
            .map(|row| {
                set.evaluate_cell(table, row)
                    .into_iter()
                    .map(|b| if b { 1.0 } else { 0.0 })
                    .collect()
            })
            .collect()
    }
}

/// Value-keyed memo for evaluating one program over a row *subset* (the
/// verification passes touch ≤500 clean rows of a possibly 50k-row table, so
/// interning whole columns would cost more than it saves — memoising on the
/// borrowed cell strings gives the same run-once-per-distinct behaviour).
struct SubsetMemo<'t> {
    single: HashMap<&'t str, bool>,
    pair: HashMap<(&'t str, &'t str), bool>,
}

impl<'t> SubsetMemo<'t> {
    fn new() -> Self {
        Self {
            single: HashMap::new(),
            pair: HashMap::new(),
        }
    }

    #[inline]
    fn eval_row(&mut self, program: &Program, table: &'t Table, row: usize) -> bool {
        let this = table.cell(row, program.col as usize);
        match program.other_col {
            None => *self
                .single
                .entry(this)
                .or_insert_with(|| program.eval(this, "")),
            Some(oc) => {
                let other = table.cell(row, oc as usize);
                *self
                    .pair
                    .entry((this, other))
                    .or_insert_with(|| program.eval(this, other))
            }
        }
    }
}

fn subset_accuracy(program: &Program, table: &Table, clean_rows: &[usize]) -> f64 {
    if clean_rows.is_empty() {
        return 1.0;
    }
    let mut memo = SubsetMemo::new();
    let satisfied = clean_rows
        .iter()
        .filter(|&&row| memo.eval_row(program, table, row))
        .count();
    satisfied as f64 / clean_rows.len() as f64
}

/// Fraction of the given rows (all assumed labelled clean) that satisfy the
/// criterion, evaluated on the compiled path. Returns 1.0 for an empty row
/// set (no evidence against it). Oracle: [`oracle::criterion_accuracy`].
pub fn criterion_accuracy(
    criterion: &Criterion,
    table: &Table,
    col: usize,
    clean_rows: &[usize],
) -> f64 {
    subset_accuracy(&compile_check(&criterion.check, col), table, clean_rows)
}

/// Fraction of criteria in the set that the cell satisfies, evaluated on the
/// compiled path. Returns 1.0 for an empty criteria set. Oracle:
/// [`oracle::pass_rate`].
pub fn pass_rate(set: &CriteriaSet, table: &Table, row: usize) -> f64 {
    if set.is_empty() {
        return 1.0;
    }
    let compiled = compile_set(set);
    let passed = compiled.eval_cell(table, row).iter().filter(|&&b| b).count();
    passed as f64 / compiled.len() as f64
}

/// Drops criteria whose accuracy on clean-labelled rows is below `threshold`
/// (Algorithm 1 lines 8–14; the paper uses 0.5), evaluated on the compiled
/// path. Returns the retained set. Oracle: [`oracle::filter_criteria`].
pub fn filter_criteria(
    set: &CriteriaSet,
    table: &Table,
    clean_rows: &[usize],
    threshold: f64,
) -> CriteriaSet {
    let criteria = set
        .criteria
        .iter()
        .filter(|c| {
            subset_accuracy(&compile_check(&c.check, set.column), table, clean_rows) >= threshold
        })
        .cloned()
        .collect();
    CriteriaSet {
        column: set.column,
        criteria,
    }
}

/// Keeps only the clean-labelled rows whose pass rate over the (verified)
/// criteria reaches `threshold` (Algorithm 1 lines 15–20; the paper uses
/// 0.5), evaluated on the compiled path. Oracle: [`oracle::filter_rows`].
pub fn filter_rows(
    set: &CriteriaSet,
    table: &Table,
    clean_rows: &[usize],
    threshold: f64,
) -> Vec<usize> {
    let compiled = compile_set(set);
    let mut memos: Vec<SubsetMemo<'_>> = compiled.programs.iter().map(|_| SubsetMemo::new()).collect();
    clean_rows
        .iter()
        .copied()
        .filter(|&row| {
            let rate = if compiled.is_empty() {
                1.0
            } else {
                let mut passed = 0usize;
                for (p, m) in compiled.programs.iter().zip(memos.iter_mut()) {
                    if m.eval_row(p, table, row) {
                        passed += 1;
                    }
                }
                passed as f64 / compiled.len() as f64
            };
            rate >= threshold
        })
        .collect()
}

fn matrix_to_f32(per_criterion: Vec<Vec<bool>>, n_rows: usize) -> Vec<Vec<f32>> {
    (0..n_rows)
        .map(|row| {
            per_criterion
                .iter()
                .map(|col| if col[row] { 1.0 } else { 0.0 })
                .collect()
        })
        .collect()
}

/// Evaluates a column's criteria over every row on the compiled columnar
/// path, producing the binary error-reason-aware feature block (`f_cri`)
/// consumed by `zeroed-features::FeatureBuilder` as `extra` features.
/// Satisfied criteria map to `1.0`, violated ones to `0.0`. Interns the
/// columns the programs read internally — the pipeline uses
/// [`criteria_features_dict`] with its run-wide dictionary instead. Oracle:
/// [`oracle::criteria_features`].
pub fn criteria_features(set: &CriteriaSet, table: &Table) -> Vec<Vec<f32>> {
    if set.is_empty() {
        return Vec::new();
    }
    let compiled = compile_set(set);
    let mut dicts: HashMap<usize, ColumnDict> = HashMap::new();
    dicts.insert(set.column, ColumnDict::for_column(table, set.column));
    for p in &compiled.programs {
        if let Some(oc) = p.other_col {
            dicts
                .entry(oc as usize)
                .or_insert_with(|| ColumnDict::for_column(table, oc as usize));
        }
    }
    let per_criterion: Vec<Vec<bool>> = compiled
        .evaluators(|col| &dicts[&col])
        .into_iter()
        .map(|mut ev| ev.eval_all_rows())
        .collect();
    matrix_to_f32(per_criterion, table.n_rows())
}

/// [`criteria_features`] over a pre-built table dictionary: zero interning
/// cost, per-distinct evaluation straight off the caller's `dict` (which
/// must describe the same table the criteria were generated for).
pub fn criteria_features_dict(set: &CriteriaSet, dict: &TableDict) -> Vec<Vec<f32>> {
    if set.is_empty() {
        return Vec::new();
    }
    let compiled = compile_set(set);
    let per_criterion: Vec<Vec<bool>> = compiled
        .evaluators(|col| dict.column(col))
        .into_iter()
        .map(|mut ev| ev.eval_all_rows())
        .collect();
    matrix_to_f32(per_criterion, dict.n_rows())
}

/// [`filter_criteria`] over a pre-built table dictionary (`dict` must
/// describe the same table): per-distinct memoisation keyed by interned
/// codes instead of cell strings.
pub fn filter_criteria_dict(
    set: &CriteriaSet,
    dict: &TableDict,
    clean_rows: &[usize],
    threshold: f64,
) -> CriteriaSet {
    let compiled = compile_set(set);
    let criteria = set
        .criteria
        .iter()
        .zip(compiled.programs.iter())
        .filter(|(_, program)| {
            let acc = if clean_rows.is_empty() {
                1.0
            } else {
                let mut ev = DistinctEval::new(
                    program,
                    dict.column(set.column),
                    program.other_col.map(|c| dict.column(c as usize)),
                );
                let satisfied = clean_rows.iter().filter(|&&row| ev.eval_row(row)).count();
                satisfied as f64 / clean_rows.len() as f64
            };
            acc >= threshold
        })
        .map(|(c, _)| c.clone())
        .collect();
    CriteriaSet {
        column: set.column,
        criteria,
    }
}

/// [`filter_rows`] over a pre-built table dictionary (`dict` must describe
/// the same table): per-distinct memoisation keyed by interned codes.
pub fn filter_rows_dict(
    set: &CriteriaSet,
    dict: &TableDict,
    clean_rows: &[usize],
    threshold: f64,
) -> Vec<usize> {
    let compiled = compile_set(set);
    let mut evals: Vec<DistinctEval<'_>> = compiled
        .programs
        .iter()
        .map(|p| {
            DistinctEval::new(
                p,
                dict.column(set.column),
                p.other_col.map(|c| dict.column(c as usize)),
            )
        })
        .collect();
    clean_rows
        .iter()
        .copied()
        .filter(|&row| {
            let rate = if evals.is_empty() {
                1.0
            } else {
                let mut passed = 0usize;
                for ev in evals.iter_mut() {
                    if ev.eval_row(row) {
                        passed += 1;
                    }
                }
                passed as f64 / evals.len() as f64
            };
            rate >= threshold
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Check;

    fn table() -> Table {
        Table::new(
            "t",
            vec!["zip".into()],
            vec![
                vec!["35233".into()],
                vec!["90210".into()],
                vec!["9021".into()],
                vec!["".into()],
                vec!["abcde".into()],
            ],
        )
        .unwrap()
    }

    fn set() -> CriteriaSet {
        CriteriaSet {
            column: 0,
            criteria: vec![
                Criterion::new("not_missing", "zip present", Check::NotMissing),
                Criterion::new(
                    "five_digits",
                    "zip is 5 chars",
                    Check::LengthRange { min: 5, max: 5 },
                ),
                Criterion::new(
                    "numeric",
                    "zip is numeric",
                    Check::NumericRange { min: 0.0, max: 99999.0 },
                ),
            ],
        }
    }

    #[test]
    fn accuracy_and_pass_rate() {
        let t = table();
        let s = set();
        // Rows 0 and 1 are genuinely clean.
        let acc = criterion_accuracy(&s.criteria[1], &t, 0, &[0, 1]);
        assert_eq!(acc, 1.0);
        // Row 2 (4 digits) fails the length criterion.
        let acc = criterion_accuracy(&s.criteria[1], &t, 0, &[0, 1, 2]);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(criterion_accuracy(&s.criteria[0], &t, 0, &[]), 1.0);

        assert_eq!(pass_rate(&s, &t, 0), 1.0);
        assert!((pass_rate(&s, &t, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(pass_rate(&s, &t, 3), 0.0);
        let empty = CriteriaSet::new(0);
        assert_eq!(pass_rate(&empty, &t, 3), 1.0);
    }

    #[test]
    fn filtering_criteria_drops_inaccurate_ones() {
        let t = table();
        let mut s = set();
        // Add a bogus criterion that fails on every clean value.
        s.criteria.push(Criterion::new(
            "bogus",
            "zips must equal 00000 (wrong)",
            Check::Domain {
                allowed: ["00000".to_string()].into_iter().collect(),
            },
        ));
        let kept = filter_criteria(&s, &t, &[0, 1], 0.5);
        assert_eq!(kept.len(), 4 - 1);
        assert!(kept.criteria.iter().all(|c| c.name != "bogus"));
    }

    #[test]
    fn filtering_rows_drops_unreliable_labels() {
        let t = table();
        let s = set();
        // Suppose propagation labelled rows 0, 2, 3 and 4 as clean.
        let kept = filter_rows(&s, &t, &[0, 2, 3, 4], 0.5);
        // Row 0 passes 3/3, row 2 passes 2/3, row 3 passes 0/3, row 4 passes
        // 2/3 ("abcde" is non-missing and five characters, but not numeric).
        assert_eq!(kept, vec![0, 2, 4]);
        // A stricter threshold keeps only the fully consistent row.
        assert_eq!(filter_rows(&s, &t, &[0, 2, 3, 4], 0.9), vec![0]);
    }

    #[test]
    fn criteria_feature_matrix_shape() {
        let t = table();
        let s = set();
        let feats = criteria_features(&s, &t);
        assert_eq!(feats.len(), 5);
        assert_eq!(feats[0], vec![1.0, 1.0, 1.0]);
        assert_eq!(feats[3], vec![0.0, 0.0, 0.0]);
        assert!(criteria_features(&CriteriaSet::new(0), &t).is_empty());
    }

    #[test]
    fn compiled_entry_points_match_the_oracle() {
        let t = table();
        let s = set();
        assert_eq!(criteria_features(&s, &t), oracle::criteria_features(&s, &t));
        for row in 0..t.n_rows() {
            assert_eq!(pass_rate(&s, &t, row).to_bits(), oracle::pass_rate(&s, &t, row).to_bits());
        }
        let rows = [0usize, 2, 3, 4];
        assert_eq!(
            filter_criteria(&s, &t, &rows, 0.5),
            oracle::filter_criteria(&s, &t, &rows, 0.5)
        );
        assert_eq!(
            filter_rows(&s, &t, &rows, 0.5),
            oracle::filter_rows(&s, &t, &rows, 0.5)
        );
    }

    #[test]
    fn dict_variants_match_the_plain_ones() {
        let t = table();
        let s = set();
        let dict = t.intern();
        assert_eq!(criteria_features_dict(&s, &dict), criteria_features(&s, &t));
        let rows = [0usize, 1, 2, 3, 4];
        assert_eq!(
            filter_criteria_dict(&s, &dict, &rows, 0.5),
            filter_criteria(&s, &t, &rows, 0.5)
        );
        assert_eq!(
            filter_rows_dict(&s, &dict, &rows, 0.5),
            filter_rows(&s, &t, &rows, 0.5)
        );
        // Empty clean-row sets keep every criterion on both paths.
        assert_eq!(filter_criteria_dict(&s, &dict, &[], 0.5).len(), s.len());
        // Empty criteria sets keep every row (pass rate convention 1.0).
        let empty = CriteriaSet::new(0);
        assert_eq!(filter_rows_dict(&empty, &dict, &rows, 0.5), rows.to_vec());
    }
}
