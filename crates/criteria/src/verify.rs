//! Mutual verification between criteria and propagated labels, plus the
//! criteria-feature extraction used by the feature builder.
//!
//! Algorithm 1 of the paper refines training data in two passes:
//!
//! 1. **verify criteria with right labels** — every refined criterion is
//!    scored on cells whose propagated label says "clean"; criteria whose
//!    accuracy falls below 0.5 are dropped ([`filter_criteria`]);
//! 2. **verify data with reliable criteria** — propagated "clean" cells that
//!    fail more than half of the surviving criteria are discarded
//!    ([`filter_rows`]).

use crate::dsl::{CriteriaSet, Criterion};
use zeroed_table::Table;

/// Fraction of the given rows (all assumed labelled clean) that satisfy the
/// criterion. Returns 1.0 for an empty row set (no evidence against it).
pub fn criterion_accuracy(
    criterion: &Criterion,
    table: &Table,
    col: usize,
    clean_rows: &[usize],
) -> f64 {
    if clean_rows.is_empty() {
        return 1.0;
    }
    let satisfied = clean_rows
        .iter()
        .filter(|&&row| criterion.evaluate(table, row, col))
        .count();
    satisfied as f64 / clean_rows.len() as f64
}

/// Fraction of criteria in the set that the cell satisfies. Returns 1.0 for an
/// empty criteria set.
pub fn pass_rate(set: &CriteriaSet, table: &Table, row: usize) -> f64 {
    if set.is_empty() {
        return 1.0;
    }
    let passed = set
        .criteria
        .iter()
        .filter(|c| c.evaluate(table, row, set.column))
        .count();
    passed as f64 / set.criteria.len() as f64
}

/// Drops criteria whose accuracy on clean-labelled rows is below `threshold`
/// (Algorithm 1 lines 8–14; the paper uses 0.5). Returns the retained set.
pub fn filter_criteria(
    set: &CriteriaSet,
    table: &Table,
    clean_rows: &[usize],
    threshold: f64,
) -> CriteriaSet {
    let criteria = set
        .criteria
        .iter()
        .filter(|c| criterion_accuracy(c, table, set.column, clean_rows) >= threshold)
        .cloned()
        .collect();
    CriteriaSet {
        column: set.column,
        criteria,
    }
}

/// Keeps only the clean-labelled rows whose pass rate over the (verified)
/// criteria reaches `threshold` (Algorithm 1 lines 15–20; the paper uses 0.5).
pub fn filter_rows(
    set: &CriteriaSet,
    table: &Table,
    clean_rows: &[usize],
    threshold: f64,
) -> Vec<usize> {
    clean_rows
        .iter()
        .copied()
        .filter(|&row| pass_rate(set, table, row) >= threshold)
        .collect()
}

/// Evaluates a column's criteria over every row, producing the binary
/// error-reason-aware feature block (`f_cri`) consumed by
/// `zeroed-features::FeatureBuilder` as `extra` features. Satisfied criteria
/// map to `1.0`, violated ones to `0.0`.
pub fn criteria_features(set: &CriteriaSet, table: &Table) -> Vec<Vec<f32>> {
    if set.is_empty() {
        return Vec::new();
    }
    (0..table.n_rows())
        .map(|row| {
            set.evaluate_cell(table, row)
                .into_iter()
                .map(|b| if b { 1.0 } else { 0.0 })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Check;

    fn table() -> Table {
        Table::new(
            "t",
            vec!["zip".into()],
            vec![
                vec!["35233".into()],
                vec!["90210".into()],
                vec!["9021".into()],
                vec!["".into()],
                vec!["abcde".into()],
            ],
        )
        .unwrap()
    }

    fn set() -> CriteriaSet {
        CriteriaSet {
            column: 0,
            criteria: vec![
                Criterion::new("not_missing", "zip present", Check::NotMissing),
                Criterion::new(
                    "five_digits",
                    "zip is 5 chars",
                    Check::LengthRange { min: 5, max: 5 },
                ),
                Criterion::new(
                    "numeric",
                    "zip is numeric",
                    Check::NumericRange { min: 0.0, max: 99999.0 },
                ),
            ],
        }
    }

    #[test]
    fn accuracy_and_pass_rate() {
        let t = table();
        let s = set();
        // Rows 0 and 1 are genuinely clean.
        let acc = criterion_accuracy(&s.criteria[1], &t, 0, &[0, 1]);
        assert_eq!(acc, 1.0);
        // Row 2 (4 digits) fails the length criterion.
        let acc = criterion_accuracy(&s.criteria[1], &t, 0, &[0, 1, 2]);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(criterion_accuracy(&s.criteria[0], &t, 0, &[]), 1.0);

        assert_eq!(pass_rate(&s, &t, 0), 1.0);
        assert!((pass_rate(&s, &t, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(pass_rate(&s, &t, 3), 0.0);
        let empty = CriteriaSet::new(0);
        assert_eq!(pass_rate(&empty, &t, 3), 1.0);
    }

    #[test]
    fn filtering_criteria_drops_inaccurate_ones() {
        let t = table();
        let mut s = set();
        // Add a bogus criterion that fails on every clean value.
        s.criteria.push(Criterion::new(
            "bogus",
            "zips must equal 00000 (wrong)",
            Check::Domain {
                allowed: ["00000".to_string()].into_iter().collect(),
            },
        ));
        let kept = filter_criteria(&s, &t, &[0, 1], 0.5);
        assert_eq!(kept.len(), 4 - 1);
        assert!(kept.criteria.iter().all(|c| c.name != "bogus"));
    }

    #[test]
    fn filtering_rows_drops_unreliable_labels() {
        let t = table();
        let s = set();
        // Suppose propagation labelled rows 0, 2, 3 and 4 as clean.
        let kept = filter_rows(&s, &t, &[0, 2, 3, 4], 0.5);
        // Row 0 passes 3/3, row 2 passes 2/3, row 3 passes 0/3, row 4 passes
        // 2/3 ("abcde" is non-missing and five characters, but not numeric).
        assert_eq!(kept, vec![0, 2, 4]);
        // A stricter threshold keeps only the fully consistent row.
        assert_eq!(filter_rows(&s, &t, &[0, 2, 3, 4], 0.9), vec![0]);
    }

    #[test]
    fn criteria_feature_matrix_shape() {
        let t = table();
        let s = set();
        let feats = criteria_features(&s, &t);
        assert_eq!(feats.len(), 5);
        assert_eq!(feats[0], vec![1.0, 1.0, 1.0]);
        assert_eq!(feats[3], vec![0.0, 0.0, 0.0]);
        assert!(criteria_features(&CriteriaSet::new(0), &t).is_empty());
    }
}
