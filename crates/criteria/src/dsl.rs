//! The declarative criteria DSL and its executor.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use zeroed_table::value::{is_missing, parse_numeric, tokenize};
use zeroed_table::Table;

/// The executable body of a criterion. Every variant answers the question
/// "does this cell value *satisfy* the check?" — `true` means the value looks
/// clean with respect to this criterion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Check {
    /// The value must not be missing (empty or a null placeholder).
    NotMissing,
    /// The value's character-class pattern (uppercase/lowercase/digit/symbol
    /// runs, as produced by `zeroed-features::pattern::generalize` at L3) must
    /// be one of the allowed templates.
    PatternTemplate {
        /// Allowed generalised patterns.
        allowed: HashSet<String>,
    },
    /// The value's length (in characters) must fall in `[min, max]`.
    LengthRange {
        /// Minimum length.
        min: usize,
        /// Maximum length.
        max: usize,
    },
    /// The value must parse as a number within `[min, max]`.
    NumericRange {
        /// Minimum value.
        min: f64,
        /// Maximum value.
        max: f64,
    },
    /// The value (case-insensitively) must belong to a fixed domain.
    Domain {
        /// Allowed values, lower-cased.
        allowed: HashSet<String>,
    },
    /// The value may only contain the listed character classes.
    Charset {
        /// Letters allowed.
        letters: bool,
        /// ASCII digits allowed.
        digits: bool,
        /// Whitespace allowed.
        whitespace: bool,
        /// Additional allowed symbol characters.
        symbols: Vec<char>,
    },
    /// The number of whitespace-separated tokens must fall in `[min, max]`.
    TokenCountRange {
        /// Minimum token count.
        min: usize,
        /// Maximum token count.
        max: usize,
    },
    /// Functional-dependency consistency: when the determinant column's value
    /// appears in `mapping`, this value must equal the mapped value
    /// (case-insensitive). Unknown determinants pass (the criterion cannot
    /// judge them).
    FdLookup {
        /// Index of the determinant column.
        determinant_col: usize,
        /// determinant value (lower-cased) → expected dependent value
        /// (lower-cased).
        mapping: HashMap<String, String>,
    },
    /// Cross-attribute keyword consistency (the paper's Hospital example):
    /// when the other column's value contains `trigger`, this value must
    /// contain `required`. Comparison is case-insensitive.
    CrossKeyword {
        /// Index of the other column.
        other_col: usize,
        /// `(trigger substring in other column, required substring here)`.
        pairs: Vec<(String, String)>,
    },
}

impl Check {
    /// Evaluates the check for cell `(row, col)` of `table`.
    pub fn evaluate(&self, table: &Table, row: usize, col: usize) -> bool {
        let value = table.cell(row, col);
        match self {
            Check::NotMissing => !is_missing(value),
            Check::PatternTemplate { allowed } => {
                allowed.contains(&l3_pattern(value))
            }
            Check::LengthRange { min, max } => {
                let len = value.chars().count();
                len >= *min && len <= *max
            }
            Check::NumericRange { min, max } => parse_numeric(value)
                .map(|x| x >= *min && x <= *max)
                .unwrap_or(false),
            Check::Domain { allowed } => allowed.contains(&value.trim().to_lowercase()),
            Check::Charset {
                letters,
                digits,
                whitespace,
                symbols,
            } => value.chars().all(|c| {
                (c.is_alphabetic() && *letters)
                    || (c.is_ascii_digit() && *digits)
                    || (c.is_whitespace() && *whitespace)
                    || symbols.contains(&c)
            }),
            Check::TokenCountRange { min, max } => {
                let n = tokenize(value).len();
                n >= *min && n <= *max
            }
            Check::FdLookup {
                determinant_col,
                mapping,
            } => {
                let det = table.cell(row, *determinant_col).trim().to_lowercase();
                match mapping.get(&det) {
                    Some(expected) => value.trim().to_lowercase() == *expected,
                    None => true,
                }
            }
            Check::CrossKeyword { other_col, pairs } => {
                let other = table.cell(row, *other_col).to_lowercase();
                let this = value.to_lowercase();
                for (trigger, required) in pairs {
                    if other.contains(trigger.as_str()) && !this.contains(required.as_str()) {
                        return false;
                    }
                }
                true
            }
        }
    }
}

/// L3 pattern generalisation: uppercase/lowercase/digit/symbol run-length
/// encoding, e.g. `"DOe123."` → `"U[2]u[1]D[3]S[1]"`.
///
/// This intentionally duplicates `zeroed-features::pattern::generalize` at
/// L3 to keep this crate free of that dependency direction (features depends
/// on the *output* of criteria, not the other way round). The two copies are
/// held equivalent by the shared-corpus de-drift test in
/// `tests/pattern_drift.rs` — change both or neither. It is `pub` because
/// the bytecode VM ([`crate::vm`]) and that test both need the exact
/// generaliser [`Check::PatternTemplate`] is specified against.
pub fn l3_pattern(value: &str) -> String {
    let mut out = String::new();
    let mut prev: Option<char> = None;
    let mut run = 0usize;
    let classify = |c: char| {
        if c.is_uppercase() {
            'U'
        } else if c.is_alphabetic() {
            'u'
        } else if c.is_ascii_digit() {
            'D'
        } else {
            'S'
        }
    };
    let flush = |out: &mut String, c: char, len: usize| {
        if len > 0 {
            out.push(c);
            out.push('[');
            out.push_str(&len.to_string());
            out.push(']');
        }
    };
    for c in value.chars() {
        let sym = classify(c);
        match prev {
            Some(p) if p == sym => run += 1,
            Some(p) => {
                flush(&mut out, p, run);
                prev = Some(sym);
                run = 1;
            }
            None => {
                prev = Some(sym);
                run = 1;
            }
        }
    }
    if let Some(p) = prev {
        flush(&mut out, p, run);
    }
    out
}

/// A named error-checking criterion with its rationale (the "error reason" the
/// LLM articulated when generating it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Criterion {
    /// Identifier, e.g. `is_clean_zip_format`.
    pub name: String,
    /// Natural-language explanation of the error reason this check encodes.
    pub rationale: String,
    /// The executable check.
    pub check: Check,
}

impl Criterion {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, rationale: impl Into<String>, check: Check) -> Self {
        Self {
            name: name.into(),
            rationale: rationale.into(),
            check,
        }
    }

    /// Evaluates the criterion on one cell; `true` means "satisfied / looks
    /// clean".
    pub fn evaluate(&self, table: &Table, row: usize, col: usize) -> bool {
        self.check.evaluate(table, row, col)
    }
}

/// The criteria attached to one attribute.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CriteriaSet {
    /// Attribute (column) index the criteria apply to.
    pub column: usize,
    /// The criteria themselves.
    pub criteria: Vec<Criterion>,
}

impl CriteriaSet {
    /// Creates an empty set for a column.
    pub fn new(column: usize) -> Self {
        Self {
            column,
            criteria: Vec::new(),
        }
    }

    /// Number of criteria.
    pub fn len(&self) -> usize {
        self.criteria.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.criteria.is_empty()
    }

    /// Evaluates every criterion on one cell, returning the binary vector used
    /// as the error-reason-aware feature `f_cri(D[i,j])`.
    pub fn evaluate_cell(&self, table: &Table, row: usize) -> Vec<bool> {
        self.criteria
            .iter()
            .map(|c| c.evaluate(table, row, self.column))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "t",
            vec!["MeasureCode".into(), "Condition".into(), "ZipCode".into()],
            vec![
                vec!["scip-card-2".into(), "surgical infection prevention".into(), "35233".into()],
                vec!["ami-card-3".into(), "heart attack".into(), "90210".into()],
                vec!["pn-card-5".into(), "heart attack".into(), "9021".into()],
                vec!["ami-card-3".into(), "".into(), "90x10".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn not_missing_and_domain() {
        let t = table();
        assert!(Check::NotMissing.evaluate(&t, 0, 1));
        assert!(!Check::NotMissing.evaluate(&t, 3, 1));
        let dom = Check::Domain {
            allowed: ["heart attack", "pneumonia", "surgical infection prevention"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        };
        assert!(dom.evaluate(&t, 1, 1));
        assert!(!dom.evaluate(&t, 3, 1));
    }

    #[test]
    fn pattern_length_numeric_charset() {
        let t = table();
        let zip_pattern = Check::PatternTemplate {
            allowed: [l3_pattern("12345")].into_iter().collect(),
        };
        assert!(zip_pattern.evaluate(&t, 0, 2));
        assert!(!zip_pattern.evaluate(&t, 2, 2)); // too short
        assert!(!zip_pattern.evaluate(&t, 3, 2)); // contains a letter

        assert!(Check::LengthRange { min: 5, max: 5 }.evaluate(&t, 0, 2));
        assert!(!Check::LengthRange { min: 5, max: 5 }.evaluate(&t, 2, 2));

        assert!(Check::NumericRange { min: 0.0, max: 99999.0 }.evaluate(&t, 0, 2));
        assert!(!Check::NumericRange { min: 0.0, max: 99999.0 }.evaluate(&t, 3, 2));

        let digits_only = Check::Charset {
            letters: false,
            digits: true,
            whitespace: false,
            symbols: vec![],
        };
        assert!(digits_only.evaluate(&t, 0, 2));
        assert!(!digits_only.evaluate(&t, 3, 2));
    }

    #[test]
    fn token_count() {
        let t = table();
        assert!(Check::TokenCountRange { min: 2, max: 4 }.evaluate(&t, 1, 1));
        assert!(!Check::TokenCountRange { min: 2, max: 4 }.evaluate(&t, 3, 1));
    }

    #[test]
    fn fd_lookup_and_cross_keyword() {
        let t = table();
        let mut mapping = HashMap::new();
        mapping.insert("scip-card-2".to_string(), "surgical infection prevention".to_string());
        mapping.insert("ami-card-3".to_string(), "heart attack".to_string());
        let fd = Check::FdLookup {
            determinant_col: 0,
            mapping,
        };
        assert!(fd.evaluate(&t, 0, 1));
        assert!(fd.evaluate(&t, 1, 1));
        assert!(fd.evaluate(&t, 2, 1)); // unknown determinant passes
        assert!(!fd.evaluate(&t, 3, 1)); // empty condition for ami

        // Mirrors the paper's Fig. 4 Hospital criterion.
        let cross = Check::CrossKeyword {
            other_col: 0,
            pairs: vec![
                ("scip".into(), "surgical infection prevention".into()),
                ("ami".into(), "heart attack".into()),
                ("pn".into(), "pneumonia".into()),
            ],
        };
        assert!(cross.evaluate(&t, 0, 1));
        assert!(cross.evaluate(&t, 1, 1));
        assert!(!cross.evaluate(&t, 2, 1)); // pn code but "heart attack" condition
    }

    #[test]
    fn criteria_set_evaluates_all() {
        let t = table();
        let mut set = CriteriaSet::new(2);
        assert!(set.is_empty());
        set.criteria.push(Criterion::new(
            "is_clean_not_missing",
            "zip codes must be present",
            Check::NotMissing,
        ));
        set.criteria.push(Criterion::new(
            "is_clean_five_digits",
            "US zip codes are exactly five digits",
            Check::LengthRange { min: 5, max: 5 },
        ));
        assert_eq!(set.len(), 2);
        assert_eq!(set.evaluate_cell(&t, 0), vec![true, true]);
        assert_eq!(set.evaluate_cell(&t, 2), vec![true, false]);
    }

    #[test]
    fn l3_pattern_examples() {
        assert_eq!(l3_pattern("DOe123."), "U[2]u[1]D[3]S[1]");
        assert_eq!(l3_pattern(""), "");
        assert_eq!(l3_pattern("12345"), "D[5]");
    }
}
