//! Lowering [`Check`] trees into flat, versioned bytecode programs.
//!
//! `crates/criteria` originally evaluated every criterion by walking the
//! [`Check`] AST once per cell. This module is the compiler half of the
//! criteria VM (see [`crate::vm`] for the evaluator): each verified check is
//! lowered *once* into a [`Program`] — a flat instruction stream plus a
//! [`ConstPool`] of interned constants — and then evaluated per **distinct**
//! value (or distinct value *pair* for cross-column checks) instead of per
//! cell. The AST walk in [`crate::dsl`] stays, byte-for-byte unchanged, as
//! the specification oracle; `tests/vm_differential.rs` asserts the two are
//! bit-identical on randomly generated check trees and tables.
//!
//! ## Bytecode layout
//!
//! A program is a stack machine over booleans. Most checks lower to a single
//! fused opcode carrying pool indices or immediates; only [`Check::CrossKeyword`]
//! needs real stack traffic (one `PushTrue` accumulator folded with
//! `And`/`Or`/`Not` per keyword pair). Immediates are little-endian; pool
//! indices are `u32`.
//!
//! | op   | name            | immediates          | semantics                                        |
//! |------|-----------------|---------------------|--------------------------------------------------|
//! | 0x01 | `NotMissing`    | —                   | push `!is_missing(this)`                         |
//! | 0x02 | `PatternIn`     | set: u32            | push `str_sets[set]` ∋ `l3_pattern(this)`        |
//! | 0x03 | `LenInRange`    | min: u64, max: u64  | push `min <= chars(this) <= max`                 |
//! | 0x04 | `NumInRange`    | lo: u32, hi: u32    | push `f64s[lo] <= parse(this) <= f64s[hi]`       |
//! | 0x05 | `DomainIn`      | set: u32            | push `str_sets[set]` ∋ `lower(trim(this))`       |
//! | 0x06 | `CharsetOk`     | cs: u32             | push ∀c ∈ this: c allowed by `charsets[cs]`      |
//! | 0x07 | `TokensInRange` | min: u64, max: u64  | push `min <= tokens(this) <= max`                |
//! | 0x08 | `FdConsistent`  | map: u32            | push FD check of `this` against `fd_maps[map]`   |
//! | 0x09 | `OtherContains` | s: u32              | push `lower(other)` contains `strings[s]`        |
//! | 0x0A | `ThisContains`  | s: u32              | push `lower(this)` contains `strings[s]`         |
//! | 0x0B | `PushTrue`      | —                   | push `true`                                      |
//! | 0x0C | `And`           | —                   | pop b, pop a, push `a && b`                      |
//! | 0x0D | `Or`            | —                   | pop b, pop a, push `a \|\| b`                    |
//! | 0x0E | `Not`           | —                   | pop a, push `!a`                                 |
//!
//! ## Constant-pool determinism
//!
//! [`Check`]'s unordered collections (`HashSet` domains/patterns, `HashMap`
//! FD mappings) are sorted during lowering, so logically identical checks
//! always compile to byte-identical programs — the same discipline
//! `zeroed_store::canonical_criteria` applies to the serialised DSL. Sorted
//! pools also let the VM use binary search for membership. The golden tests
//! in `tests/bytecode_golden.rs` byte-pin one exemplar program per check
//! variant against [`Program::to_bytes`].
//!
//! The compiler is **total**: every well-formed [`Check`] lowers to a
//! program (there is no rejection path), mirroring the oracle, which never
//! fails to evaluate.

use crate::dsl::{Check, CriteriaSet};

/// Version of the opcode set + byte encoding. Bump on any change to opcode
/// numbering, immediate widths or pool layout; [`Program::from_bytes`]
/// rejects other versions.
pub const BYTECODE_VERSION: u16 = 1;

/// Magic prefix of the byte encoding (`"ZCVM"`).
pub const BYTECODE_MAGIC: [u8; 4] = *b"ZCVM";

/// Opcode bytes of the criteria VM. The discriminant values are part of the
/// on-byte format and must never be renumbered without bumping
/// [`BYTECODE_VERSION`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// `push !is_missing(this)`
    NotMissing = 0x01,
    /// `push str_sets[imm] contains l3_pattern(this)`
    PatternIn = 0x02,
    /// `push min <= this.chars().count() <= max`
    LenInRange = 0x03,
    /// `push f64s[lo] <= parse_numeric(this) <= f64s[hi]` (unparsable → false)
    NumInRange = 0x04,
    /// `push str_sets[imm] contains this.trim().to_lowercase()`
    DomainIn = 0x05,
    /// `push` every char of `this` allowed by `charsets[imm]`
    CharsetOk = 0x06,
    /// `push min <= tokenize(this).len() <= max`
    TokensInRange = 0x07,
    /// `push` FD consistency of `this` given determinant `other`
    FdConsistent = 0x08,
    /// `push other.to_lowercase() contains strings[imm]`
    OtherContains = 0x09,
    /// `push this.to_lowercase() contains strings[imm]`
    ThisContains = 0x0A,
    /// `push true`
    PushTrue = 0x0B,
    /// `pop b, pop a, push a && b`
    And = 0x0C,
    /// `pop b, pop a, push a || b`
    Or = 0x0D,
    /// `pop a, push !a`
    Not = 0x0E,
}

impl Op {
    /// Decodes an opcode byte.
    pub fn from_byte(byte: u8) -> Option<Op> {
        Some(match byte {
            0x01 => Op::NotMissing,
            0x02 => Op::PatternIn,
            0x03 => Op::LenInRange,
            0x04 => Op::NumInRange,
            0x05 => Op::DomainIn,
            0x06 => Op::CharsetOk,
            0x07 => Op::TokensInRange,
            0x08 => Op::FdConsistent,
            0x09 => Op::OtherContains,
            0x0A => Op::ThisContains,
            0x0B => Op::PushTrue,
            0x0C => Op::And,
            0x0D => Op::Or,
            0x0E => Op::Not,
            _ => return None,
        })
    }
}

/// A compiled character-class filter ([`Check::Charset`] lowered): three
/// class flags plus a sorted, deduplicated list of extra allowed symbols.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CharsetSpec {
    /// Letters allowed (`char::is_alphabetic`).
    pub letters: bool,
    /// ASCII digits allowed.
    pub digits: bool,
    /// Whitespace allowed.
    pub whitespace: bool,
    /// Extra allowed symbols, sorted ascending and deduplicated.
    pub symbols: Vec<char>,
}

impl CharsetSpec {
    /// Whether `c` is allowed by this charset — exactly the oracle's
    /// per-character predicate, with `symbols.contains` replaced by binary
    /// search over the sorted pool.
    #[inline]
    pub fn allows(&self, c: char) -> bool {
        (c.is_alphabetic() && self.letters)
            || (c.is_ascii_digit() && self.digits)
            || (c.is_whitespace() && self.whitespace)
            || self.symbols.binary_search(&c).is_ok()
    }
}

/// Interned constants referenced by pool-index immediates in the instruction
/// stream. All unordered source collections arrive here sorted (see module
/// docs), so equal checks produce equal pools.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConstPool {
    /// Plain strings (`ThisContains`/`OtherContains` needles, pre-lowercased
    /// exactly as the oracle compares them).
    pub strings: Vec<String>,
    /// Sorted, deduplicated membership sets (domains, pattern templates).
    pub str_sets: Vec<Vec<String>>,
    /// `f64` immediates (numeric-range bounds), bit-preserved.
    pub f64s: Vec<f64>,
    /// FD mappings as `(determinant, expected)` pairs sorted by determinant.
    pub fd_maps: Vec<Vec<(String, String)>>,
    /// Charset filters.
    pub charsets: Vec<CharsetSpec>,
}

impl ConstPool {
    fn push_string(&mut self, s: String) -> u32 {
        let idx = self.strings.len() as u32;
        self.strings.push(s);
        idx
    }

    fn push_str_set(&mut self, mut set: Vec<String>) -> u32 {
        set.sort();
        set.dedup();
        let idx = self.str_sets.len() as u32;
        self.str_sets.push(set);
        idx
    }

    fn push_f64(&mut self, x: f64) -> u32 {
        let idx = self.f64s.len() as u32;
        self.f64s.push(x);
        idx
    }

    fn push_fd_map(&mut self, mut map: Vec<(String, String)>) -> u32 {
        map.sort();
        let idx = self.fd_maps.len() as u32;
        self.fd_maps.push(map);
        idx
    }

    fn push_charset(&mut self, spec: CharsetSpec) -> u32 {
        let idx = self.charsets.len() as u32;
        self.charsets.push(spec);
        idx
    }
}

/// One compiled check: a flat instruction stream over the pool, plus the
/// column wiring the VM needs to feed it (`col` supplies `this`; `other_col`,
/// when present, supplies `other` for cross-column checks).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Bytecode format version ([`BYTECODE_VERSION`] for programs produced by
    /// this compiler).
    pub version: u16,
    /// Column whose cell value is `this`.
    pub col: u32,
    /// Second input column (`FdLookup` determinant / `CrossKeyword` other),
    /// `None` for single-cell checks.
    pub other_col: Option<u32>,
    /// The instruction stream (opcode bytes + little-endian immediates).
    pub code: Vec<u8>,
    /// Interned constants referenced by the instruction stream.
    pub pool: ConstPool,
}

struct Emitter {
    code: Vec<u8>,
    pool: ConstPool,
    other_col: Option<u32>,
}

impl Emitter {
    fn op(&mut self, op: Op) {
        self.code.push(op as u8);
    }

    fn u32(&mut self, x: u32) {
        self.code.extend_from_slice(&x.to_le_bytes());
    }

    fn u64(&mut self, x: u64) {
        self.code.extend_from_slice(&x.to_le_bytes());
    }
}

/// Lowers one [`Check`] for column `col` into a [`Program`]. Total: every
/// check compiles (the differential and golden suites hold the compiler to
/// "rejects nothing the oracle accepts").
pub fn compile_check(check: &Check, col: usize) -> Program {
    let mut e = Emitter {
        code: Vec::new(),
        pool: ConstPool::default(),
        other_col: None,
    };
    match check {
        Check::NotMissing => e.op(Op::NotMissing),
        Check::PatternTemplate { allowed } => {
            let set = e.pool.push_str_set(allowed.iter().cloned().collect());
            e.op(Op::PatternIn);
            e.u32(set);
        }
        Check::LengthRange { min, max } => {
            e.op(Op::LenInRange);
            e.u64(*min as u64);
            e.u64(*max as u64);
        }
        Check::NumericRange { min, max } => {
            let lo = e.pool.push_f64(*min);
            let hi = e.pool.push_f64(*max);
            e.op(Op::NumInRange);
            e.u32(lo);
            e.u32(hi);
        }
        Check::Domain { allowed } => {
            let set = e.pool.push_str_set(allowed.iter().cloned().collect());
            e.op(Op::DomainIn);
            e.u32(set);
        }
        Check::Charset {
            letters,
            digits,
            whitespace,
            symbols,
        } => {
            let mut sorted = symbols.clone();
            sorted.sort();
            sorted.dedup();
            let cs = e.pool.push_charset(CharsetSpec {
                letters: *letters,
                digits: *digits,
                whitespace: *whitespace,
                symbols: sorted,
            });
            e.op(Op::CharsetOk);
            e.u32(cs);
        }
        Check::TokenCountRange { min, max } => {
            e.op(Op::TokensInRange);
            e.u64(*min as u64);
            e.u64(*max as u64);
        }
        Check::FdLookup {
            determinant_col,
            mapping,
        } => {
            e.other_col = Some(*determinant_col as u32);
            let map = e
                .pool
                .push_fd_map(mapping.iter().map(|(k, v)| (k.clone(), v.clone())).collect());
            e.op(Op::FdConsistent);
            e.u32(map);
        }
        Check::CrossKeyword { other_col, pairs } => {
            e.other_col = Some(*other_col as u32);
            // acc = true; for each (trigger, required):
            //   acc &&= !other.contains(trigger) || this.contains(required)
            // — the contrapositive of the oracle's early-return loop, folded
            // left so evaluation order (and short-circuit-free semantics)
            // match exactly: `contains` is pure, so evaluating every pair is
            // observably identical to the oracle's early return.
            e.op(Op::PushTrue);
            for (trigger, required) in pairs {
                let t = e.pool.push_string(trigger.clone());
                let r = e.pool.push_string(required.clone());
                e.op(Op::OtherContains);
                e.u32(t);
                e.op(Op::Not);
                e.op(Op::ThisContains);
                e.u32(r);
                e.op(Op::Or);
                e.op(Op::And);
            }
        }
    }
    Program {
        version: BYTECODE_VERSION,
        col: col as u32,
        other_col: e.other_col,
        code: e.code,
        pool: e.pool,
    }
}

/// A whole attribute's criteria compiled to programs, in criterion order.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledSet {
    /// Attribute (column) index the programs read `this` from.
    pub column: usize,
    /// One program per criterion of the source [`CriteriaSet`], same order.
    pub programs: Vec<Program>,
}

impl CompiledSet {
    /// Number of compiled criteria.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether the set compiled to zero programs.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }
}

/// Compiles every criterion of `set` (see [`compile_check`]).
pub fn compile_set(set: &CriteriaSet) -> CompiledSet {
    CompiledSet {
        column: set.column,
        programs: set
            .criteria
            .iter()
            .map(|c| compile_check(&c.check, set.column))
            .collect(),
    }
}

/// Errors produced by [`Program::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with [`BYTECODE_MAGIC`].
    BadMagic,
    /// The encoded version differs from [`BYTECODE_VERSION`].
    WrongVersion(u16),
    /// The buffer ended mid-field or carried trailing garbage.
    Truncated,
    /// A string field was not valid UTF-8 / a char field not a valid scalar.
    Malformed,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad bytecode magic"),
            DecodeError::WrongVersion(v) => {
                write!(f, "bytecode version {v} (expected {BYTECODE_VERSION})")
            }
            DecodeError::Truncated => write!(f, "truncated bytecode"),
            DecodeError::Malformed => write!(f, "malformed bytecode field"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Program {
    /// Serialises the program to the versioned byte format the golden tests
    /// pin. Layout: magic, version, `col`, optional `other_col`, the five
    /// pool sections, then the instruction stream — all integers
    /// little-endian, all strings length-prefixed UTF-8.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&BYTECODE_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.col.to_le_bytes());
        match self.other_col {
            Some(c) => {
                out.push(1);
                out.extend_from_slice(&c.to_le_bytes());
            }
            None => out.push(0),
        }
        let put_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        out.extend_from_slice(&(self.pool.strings.len() as u32).to_le_bytes());
        for s in &self.pool.strings {
            put_str(&mut out, s);
        }
        out.extend_from_slice(&(self.pool.str_sets.len() as u32).to_le_bytes());
        for set in &self.pool.str_sets {
            out.extend_from_slice(&(set.len() as u32).to_le_bytes());
            for s in set {
                put_str(&mut out, s);
            }
        }
        out.extend_from_slice(&(self.pool.f64s.len() as u32).to_le_bytes());
        for x in &self.pool.f64s {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(self.pool.fd_maps.len() as u32).to_le_bytes());
        for map in &self.pool.fd_maps {
            out.extend_from_slice(&(map.len() as u32).to_le_bytes());
            for (k, v) in map {
                put_str(&mut out, k);
                put_str(&mut out, v);
            }
        }
        out.extend_from_slice(&(self.pool.charsets.len() as u32).to_le_bytes());
        for cs in &self.pool.charsets {
            out.push(u8::from(cs.letters) | (u8::from(cs.digits) << 1) | (u8::from(cs.whitespace) << 2));
            out.extend_from_slice(&(cs.symbols.len() as u32).to_le_bytes());
            for &c in &cs.symbols {
                out.extend_from_slice(&(c as u32).to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.code.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.code);
        out
    }

    /// Decodes a program previously produced by [`Program::to_bytes`],
    /// rejecting foreign magic, other format versions, truncation and
    /// trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Program, DecodeError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(4)? != BYTECODE_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = u16::from_le_bytes(r.take(2)?.try_into().unwrap());
        if version != BYTECODE_VERSION {
            return Err(DecodeError::WrongVersion(version));
        }
        let col = r.u32()?;
        let other_col = match r.take(1)?[0] {
            0 => None,
            1 => Some(r.u32()?),
            _ => return Err(DecodeError::Malformed),
        };
        let mut pool = ConstPool::default();
        for _ in 0..r.u32()? {
            let s = r.string()?;
            pool.strings.push(s);
        }
        for _ in 0..r.u32()? {
            let n = r.u32()?;
            let mut set = Vec::with_capacity(n as usize);
            for _ in 0..n {
                set.push(r.string()?);
            }
            pool.str_sets.push(set);
        }
        for _ in 0..r.u32()? {
            let bits = u64::from_le_bytes(r.take(8)?.try_into().unwrap());
            pool.f64s.push(f64::from_bits(bits));
        }
        for _ in 0..r.u32()? {
            let n = r.u32()?;
            let mut map = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let k = r.string()?;
                let v = r.string()?;
                map.push((k, v));
            }
            pool.fd_maps.push(map);
        }
        for _ in 0..r.u32()? {
            let flags = r.take(1)?[0];
            let n = r.u32()?;
            let mut symbols = Vec::with_capacity(n as usize);
            for _ in 0..n {
                symbols.push(char::from_u32(r.u32()?).ok_or(DecodeError::Malformed)?);
            }
            pool.charsets.push(CharsetSpec {
                letters: flags & 1 != 0,
                digits: flags & 2 != 0,
                whitespace: flags & 4 != 0,
                symbols,
            });
        }
        let code_len = r.u32()? as usize;
        let code = r.take(code_len)?.to_vec();
        if r.pos != bytes.len() {
            return Err(DecodeError::Truncated);
        }
        Ok(Program {
            version,
            col,
            other_col,
            code,
            pool,
        })
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::Malformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::Criterion;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn pools_are_sorted_regardless_of_source_order() {
        let a = Check::Domain {
            allowed: ["zeta", "alpha", "mid"].iter().map(|s| s.to_string()).collect(),
        };
        let b = Check::Domain {
            allowed: ["mid", "zeta", "alpha"].iter().map(|s| s.to_string()).collect(),
        };
        assert_eq!(compile_check(&a, 0), compile_check(&b, 0));
        assert_eq!(
            compile_check(&a, 0).pool.str_sets[0],
            vec!["alpha".to_string(), "mid".into(), "zeta".into()]
        );
    }

    #[test]
    fn fd_maps_sort_by_determinant() {
        let mut mapping = HashMap::new();
        mapping.insert("b".to_string(), "2".to_string());
        mapping.insert("a".to_string(), "1".to_string());
        let p = compile_check(
            &Check::FdLookup {
                determinant_col: 3,
                mapping,
            },
            1,
        );
        assert_eq!(p.other_col, Some(3));
        assert_eq!(
            p.pool.fd_maps[0],
            vec![("a".to_string(), "1".to_string()), ("b".into(), "2".into())]
        );
    }

    #[test]
    fn round_trip_every_variant() {
        let checks: Vec<Check> = vec![
            Check::NotMissing,
            Check::PatternTemplate {
                allowed: HashSet::from(["D[5]".to_string(), "U[2]".into()]),
            },
            Check::LengthRange { min: 1, max: 9 },
            Check::NumericRange { min: -1.5, max: 1e9 },
            Check::Domain {
                allowed: HashSet::from(["x".to_string()]),
            },
            Check::Charset {
                letters: true,
                digits: false,
                whitespace: true,
                symbols: vec!['-', '.', '-'],
            },
            Check::TokenCountRange { min: 0, max: 4 },
            Check::FdLookup {
                determinant_col: 0,
                mapping: HashMap::from([("k".to_string(), "v".to_string())]),
            },
            Check::CrossKeyword {
                other_col: 2,
                pairs: vec![("ami".into(), "heart attack".into())],
            },
        ];
        for check in checks {
            let p = compile_check(&check, 1);
            let bytes = p.to_bytes();
            assert_eq!(Program::from_bytes(&bytes).unwrap(), p, "{check:?}");
        }
    }

    #[test]
    fn decode_rejects_bad_inputs() {
        let p = compile_check(&Check::NotMissing, 0);
        let bytes = p.to_bytes();
        assert_eq!(Program::from_bytes(&bytes[1..]), Err(DecodeError::BadMagic));
        let mut wrong = bytes.clone();
        wrong[4] = 0xFF; // version low byte
        assert!(matches!(
            Program::from_bytes(&wrong),
            Err(DecodeError::WrongVersion(_))
        ));
        assert_eq!(
            Program::from_bytes(&bytes[..bytes.len() - 1]),
            Err(DecodeError::Truncated)
        );
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(Program::from_bytes(&trailing), Err(DecodeError::Truncated));
    }

    #[test]
    fn compile_set_preserves_order_and_column() {
        let set = CriteriaSet {
            column: 2,
            criteria: vec![
                Criterion::new("a", "", Check::NotMissing),
                Criterion::new("b", "", Check::LengthRange { min: 5, max: 5 }),
            ],
        };
        let compiled = compile_set(&set);
        assert_eq!(compiled.column, 2);
        assert_eq!(compiled.len(), 2);
        assert!(!compiled.is_empty());
        assert_eq!(compiled.programs[0].code[0], Op::NotMissing as u8);
        assert_eq!(compiled.programs[1].code[0], Op::LenInRange as u8);
    }
}
