//! Differential-testing harness: the compiled criteria VM against the
//! AST-walking specification oracle.
//!
//! A seeded generator produces random [`Check`] trees and random tables —
//! including empty strings, unicode, near-numeric junk and FD determinants
//! the mapping has never seen — and every cell's VM verdict is asserted
//! bit-identical to [`Check::evaluate`]. On top of the per-cell sweep, the
//! four `verify` entry points (compiled by default) are compared against
//! their `verify::oracle` counterparts with `f64::to_bits` equality, and the
//! empty-set `1.0` conventions of `pass_rate` / `criterion_accuracy` are
//! pinned as properties.

use std::collections::{HashMap, HashSet};
use zeroed_criteria::dsl::{Check, CriteriaSet, Criterion};
use zeroed_criteria::vm::DistinctEval;
use zeroed_criteria::{compile_check, compile_set, verify, Program};
use zeroed_table::Table;

/// SplitMix64 — a tiny deterministic RNG, no external deps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    fn f64_small(&mut self) -> f64 {
        (self.next_u64() % 2_000) as f64 / 10.0 - 100.0
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

/// Cell vocabulary stressing every check family: clean-looking values,
/// missing placeholders, unicode (multi-byte uppercase/lowercase, CJK),
/// near-numeric junk, currency/percent forms, whitespace oddities.
const VALUES: &[&str] = &[
    "",
    " ",
    "  NULL ",
    "n/a",
    "?",
    "-",
    "unknown",
    "35233",
    "90210",
    "9021",
    "90x10",
    "12a",
    "$1,200.50",
    "12%",
    "€7",
    "-3.5",
    "1e3",
    "NaN",
    "inf",
    "heart attack",
    "Heart  Attack",
    "surgical infection prevention",
    "pneumonia",
    "scip-card-2",
    "ami-card-3",
    "pn-card-5",
    "ZÜRICH",
    "zürich",
    "Ärzte 12",
    "東京",
    "naïve",
    "ß",
    "DOe123.",
    "a-b_c",
    "  x  ",
    "0",
    "00000",
    "MA",
    "ma ",
];

fn random_table(rng: &mut Rng, n_rows: usize, n_cols: usize) -> Table {
    let columns: Vec<String> = (0..n_cols).map(|j| format!("c{j}")).collect();
    let rows: Vec<Vec<String>> = (0..n_rows)
        .map(|_| (0..n_cols).map(|_| rng.pick(VALUES).to_string()).collect())
        .collect();
    Table::new("diff", columns, rows).unwrap()
}

fn random_string_set(rng: &mut Rng) -> HashSet<String> {
    (0..rng.below(5)).map(|_| rng.pick(VALUES).to_string()).collect()
}

fn random_check(rng: &mut Rng, n_cols: usize, col: usize) -> Check {
    match rng.below(9) {
        0 => Check::NotMissing,
        1 => Check::PatternTemplate {
            allowed: (0..rng.below(4))
                .map(|_| zeroed_criteria::l3_pattern(*rng.pick(VALUES)))
                .collect(),
        },
        2 => {
            let min = rng.below(6);
            Check::LengthRange {
                min,
                max: min + rng.below(8),
            }
        }
        3 => {
            let a = rng.f64_small();
            let b = rng.f64_small();
            Check::NumericRange {
                min: a.min(b),
                max: a.max(b),
            }
        }
        4 => Check::Domain {
            allowed: random_string_set(rng)
                .into_iter()
                .map(|s| s.trim().to_lowercase())
                .collect(),
        },
        5 => Check::Charset {
            letters: rng.below(2) == 0,
            digits: rng.below(2) == 0,
            whitespace: rng.below(2) == 0,
            symbols: (0..rng.below(4))
                .map(|_| *rng.pick(&['-', '.', '$', ',', '/', 'ü', '東']))
                .collect(),
        },
        6 => {
            let min = rng.below(3);
            Check::TokenCountRange {
                min,
                max: min + rng.below(4),
            }
        }
        7 => {
            // Determinants deliberately include values absent from the
            // tables (unknown determinants must pass) and near-collisions.
            let mut mapping = HashMap::new();
            for _ in 0..rng.below(6) {
                mapping.insert(
                    rng.pick(VALUES).trim().to_lowercase(),
                    rng.pick(VALUES).trim().to_lowercase(),
                );
            }
            mapping.insert("never-seen-determinant".to_string(), "x".to_string());
            let mut determinant_col = rng.below(n_cols);
            if determinant_col == col {
                determinant_col = (determinant_col + 1) % n_cols;
            }
            Check::FdLookup {
                determinant_col,
                mapping,
            }
        }
        _ => {
            let mut other_col = rng.below(n_cols);
            if other_col == col {
                other_col = (other_col + 1) % n_cols;
            }
            Check::CrossKeyword {
                other_col,
                pairs: (0..rng.below(4) + 1)
                    .map(|_| {
                        (
                            rng.pick(VALUES).to_lowercase(),
                            rng.pick(VALUES).to_lowercase(),
                        )
                    })
                    .collect(),
            }
        }
    }
}

fn random_set(rng: &mut Rng, n_cols: usize) -> CriteriaSet {
    let column = rng.below(n_cols);
    CriteriaSet {
        column,
        criteria: (0..rng.below(5) + 1)
            .map(|i| {
                Criterion::new(
                    format!("crit_{i}"),
                    "generated",
                    random_check(rng, n_cols, column),
                )
            })
            .collect(),
    }
}

fn assert_program_matches_oracle(check: &Check, program: &Program, table: &Table, col: usize) {
    for row in 0..table.n_rows() {
        let other = program
            .other_col
            .map(|c| table.cell(row, c as usize))
            .unwrap_or("");
        assert_eq!(
            program.eval(table.cell(row, col), other),
            check.evaluate(table, row, col),
            "VM diverged from oracle: row {row}, col {col}, check {check:?}, cell {:?}",
            table.cell(row, col),
        );
    }
}

#[test]
fn vm_is_bit_identical_to_the_ast_oracle_per_cell() {
    let mut rng = Rng::new(0x5EED_CAFE);
    for round in 0..60 {
        let n_cols = rng.below(3) + 2;
        let n_rows = rng.below(60) + 1;
        let table = random_table(&mut rng, n_rows, n_cols);
        for col in 0..n_cols {
            for _ in 0..4 {
                let check = random_check(&mut rng, n_cols, col);
                let program = compile_check(&check, col);
                assert_program_matches_oracle(&check, &program, &table, col);
                // Byte round-trip must preserve behaviour, not just equality.
                let reloaded = Program::from_bytes(&program.to_bytes()).unwrap();
                assert_program_matches_oracle(&check, &reloaded, &table, col);
                let _ = round;
            }
        }
    }
}

#[test]
fn columnar_distinct_eval_matches_the_per_cell_vm() {
    let mut rng = Rng::new(0xD157_1C01);
    for _ in 0..30 {
        let n_cols = rng.below(3) + 2;
        let n_rows = rng.below(200) + 1;
        let table = random_table(&mut rng, n_rows, n_cols);
        let dict = table.intern();
        let col = rng.below(n_cols);
        let check = random_check(&mut rng, n_cols, col);
        let program = compile_check(&check, col);
        let mut ev = DistinctEval::new(
            &program,
            dict.column(col),
            program.other_col.map(|c| dict.column(c as usize)),
        );
        let scattered = ev.eval_all_rows();
        for row in 0..n_rows {
            assert_eq!(scattered[row], check.evaluate(&table, row, col), "row {row}");
        }
    }
}

#[test]
fn verify_entry_points_match_their_oracles_bitwise() {
    let mut rng = Rng::new(0xFEED_F00D);
    for _ in 0..25 {
        let n_cols = rng.below(3) + 2;
        let n_rows = rng.below(80) + 1;
        let table = random_table(&mut rng, n_rows, n_cols);
        let dict = table.intern();
        let set = random_set(&mut rng, n_cols);
        let threshold = [0.0, 0.25, 0.5, 0.9, 1.0][rng.below(5)];
        let clean_rows: Vec<usize> = (0..n_rows).filter(|_| rng.below(3) != 0).collect();

        // criteria_features: full matrix, all three implementations.
        let oracle = verify::oracle::criteria_features(&set, &table);
        assert_eq!(verify::criteria_features(&set, &table), oracle);
        assert_eq!(verify::criteria_features_dict(&set, &dict), oracle);

        // pass_rate per row, bitwise.
        for row in 0..n_rows {
            assert_eq!(
                verify::pass_rate(&set, &table, row).to_bits(),
                verify::oracle::pass_rate(&set, &table, row).to_bits()
            );
        }

        // criterion_accuracy, bitwise.
        for criterion in &set.criteria {
            assert_eq!(
                verify::criterion_accuracy(criterion, &table, set.column, &clean_rows).to_bits(),
                verify::oracle::criterion_accuracy(criterion, &table, set.column, &clean_rows)
                    .to_bits()
            );
        }

        // filter_criteria / filter_rows, plain and dict variants.
        let oracle_kept = verify::oracle::filter_criteria(&set, &table, &clean_rows, threshold);
        assert_eq!(
            verify::filter_criteria(&set, &table, &clean_rows, threshold),
            oracle_kept
        );
        assert_eq!(
            verify::filter_criteria_dict(&set, &dict, &clean_rows, threshold),
            oracle_kept
        );
        let oracle_rows = verify::oracle::filter_rows(&oracle_kept, &table, &clean_rows, threshold);
        assert_eq!(
            verify::filter_rows(&oracle_kept, &table, &clean_rows, threshold),
            oracle_rows
        );
        assert_eq!(
            verify::filter_rows_dict(&oracle_kept, &dict, &clean_rows, threshold),
            oracle_rows
        );
    }
}

#[test]
fn compiled_set_eval_cell_matches_the_dsl_everywhere() {
    let mut rng = Rng::new(0xABCD_1234);
    for _ in 0..20 {
        let n_cols = rng.below(3) + 2;
        let n_rows = rng.below(40) + 1;
        let table = random_table(&mut rng, n_rows, n_cols);
        let set = random_set(&mut rng, n_cols);
        let compiled = compile_set(&set);
        for row in 0..n_rows {
            assert_eq!(compiled.eval_cell(&table, row), set.evaluate_cell(&table, row));
        }
    }
}

// ---------------------------------------------------------------------------
// Property pins: the empty-set conventions are 1.0 on BOTH paths.
// ---------------------------------------------------------------------------

#[test]
fn empty_row_set_scores_accuracy_one_on_both_paths() {
    let mut rng = Rng::new(7);
    let table = random_table(&mut rng, 10, 2);
    for _ in 0..20 {
        let check = random_check(&mut rng, 2, 0);
        let criterion = Criterion::new("c", "", check);
        assert_eq!(verify::criterion_accuracy(&criterion, &table, 0, &[]), 1.0);
        assert_eq!(
            verify::oracle::criterion_accuracy(&criterion, &table, 0, &[]),
            1.0
        );
    }
}

#[test]
fn empty_criteria_set_scores_pass_rate_one_on_both_paths() {
    let mut rng = Rng::new(8);
    let table = random_table(&mut rng, 10, 2);
    let empty = CriteriaSet::new(0);
    for row in 0..table.n_rows() {
        assert_eq!(verify::pass_rate(&empty, &table, row), 1.0);
        assert_eq!(verify::oracle::pass_rate(&empty, &table, row), 1.0);
    }
    // And the conventions compose: an empty set keeps every row through
    // filter_rows at any threshold ≤ 1.0 and drops all above — identically.
    let rows: Vec<usize> = (0..10).collect();
    for threshold in [0.0, 0.5, 1.0, 1.5] {
        assert_eq!(
            verify::filter_rows(&empty, &table, &rows, threshold),
            verify::oracle::filter_rows(&empty, &table, &rows, threshold)
        );
    }
}

#[test]
fn empty_tables_are_handled_identically() {
    let table = Table::empty("e", vec!["a".into(), "b".into()]);
    let dict = table.intern();
    let mut rng = Rng::new(9);
    let set = random_set(&mut rng, 2);
    assert_eq!(
        verify::criteria_features(&set, &table),
        verify::oracle::criteria_features(&set, &table)
    );
    assert_eq!(
        verify::criteria_features_dict(&set, &dict),
        verify::oracle::criteria_features(&set, &table)
    );
    assert_eq!(verify::filter_rows(&set, &table, &[], 0.5), Vec::<usize>::new());
}
