//! De-drift guard for the two L3 pattern generalisers.
//!
//! `zeroed_criteria::l3_pattern` intentionally duplicates
//! `zeroed_features::pattern::generalize(.., Level::L3)` so the criteria
//! crate does not depend on the features crate (which would invert the
//! dependency direction of the pipeline). Duplication is only safe while
//! the copies agree; this shared corpus fails the build the moment either
//! side drifts.

use zeroed_criteria::l3_pattern;
use zeroed_features::pattern::{generalize, Level};

/// Corpus spanning every character class and transition the generalisers
/// handle: case runs, digit runs, symbols, whitespace, unicode uppercase /
/// lowercase / non-cased scripts, and the empty string.
const CORPUS: &[&str] = &[
    "",
    " ",
    "   ",
    "DOe123.",
    "12345",
    "abcde",
    "ABCDE",
    "aB",
    "Ba",
    "a1b2c3",
    "A1B2C3",
    "hello world",
    "Hello, World!",
    "scip-card-2",
    "90210",
    "$1,200.50",
    "12%",
    "€7",
    "-3.5",
    "n/a",
    "N/A",
    "null",
    "NULL",
    "ZÜRICH",
    "zürich",
    "Ärzte 12",
    "東京",
    "naïve",
    "ß",
    "ẞ",
    "Ǆ",
    "ǅ",
    "ǆ",
    "\t",
    "a\tb",
    "  leading",
    "trailing  ",
    "__dunder__",
    "CamelCaseValue",
    "snake_case_value",
    "MiXeD123CaSe456",
    "....",
    "a.b.c.d",
    "0x1F",
    "1e10",
    "+44 20 7946 0958",
    "(617) 555-0123",
];

#[test]
fn criteria_l3_pattern_matches_features_generalize_l3() {
    for value in CORPUS {
        assert_eq!(
            l3_pattern(value),
            generalize(value, Level::L3),
            "L3 generalisers drifted apart on {value:?} — update dsl.rs::l3_pattern \
             or features::pattern::generalize so they agree again",
        );
    }
}

#[test]
fn corpus_exercises_the_documented_exemplar() {
    // The doc example both crates cite: mixed case, digits, and a symbol.
    assert_eq!(l3_pattern("DOe123."), "U[2]u[1]D[3]S[1]");
    assert_eq!(generalize("DOe123.", Level::L3), "U[2]u[1]D[3]S[1]");
}
