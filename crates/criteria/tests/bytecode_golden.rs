//! Byte-pinned golden encodings of the criteria-VM bytecode.
//!
//! Same discipline as `crates/store/tests/format_golden.rs`: a program
//! serialised by one build must decode in every later build, so the exact
//! bytes of one exemplar program per [`Check`] variant are frozen here. If a
//! test fails because the encoding changed *intentionally*, bump
//! [`zeroed_criteria::BYTECODE_VERSION`] and update the golden bytes.

use std::collections::{HashMap, HashSet};
use zeroed_criteria::compile::{DecodeError, Op};
use zeroed_criteria::dsl::Check;
use zeroed_criteria::{compile_check, Program, BYTECODE_VERSION};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    let clean: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    clean
        .as_bytes()
        .chunks(2)
        .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).unwrap(), 16).unwrap())
        .collect()
}

/// One exemplar check per variant, with fixed contents so the compiled bytes
/// are deterministic (unordered collections are sorted by the compiler).
fn exemplars() -> Vec<(&'static str, usize, Check)> {
    vec![
        ("not_missing", 0, Check::NotMissing),
        (
            "pattern_template",
            1,
            Check::PatternTemplate {
                allowed: HashSet::from(["U[2]u[1]D[3]S[1]".to_string(), "D[5]".into()]),
            },
        ),
        ("length_range", 2, Check::LengthRange { min: 1, max: 10 }),
        (
            "numeric_range",
            3,
            Check::NumericRange {
                min: -2.5,
                max: 100.0,
            },
        ),
        (
            "domain",
            4,
            Check::Domain {
                allowed: HashSet::from(["ma".to_string(), "al".into()]),
            },
        ),
        (
            "charset",
            5,
            Check::Charset {
                letters: true,
                digits: true,
                whitespace: false,
                symbols: vec!['.', '-'],
            },
        ),
        ("token_count_range", 6, Check::TokenCountRange { min: 1, max: 3 }),
        (
            "fd_lookup",
            7,
            Check::FdLookup {
                determinant_col: 2,
                mapping: HashMap::from([("35233".to_string(), "birmingham".to_string())]),
            },
        ),
        (
            "cross_keyword",
            8,
            Check::CrossKeyword {
                other_col: 1,
                pairs: vec![("ami".to_string(), "heart".to_string())],
            },
        ),
    ]
}

#[test]
fn bytecode_version_and_opcodes_are_pinned() {
    assert_eq!(BYTECODE_VERSION, 1);
    // The opcode numbering is part of the byte format; renumbering requires a
    // version bump and new golden bytes.
    assert_eq!(Op::NotMissing as u8, 0x01);
    assert_eq!(Op::PatternIn as u8, 0x02);
    assert_eq!(Op::LenInRange as u8, 0x03);
    assert_eq!(Op::NumInRange as u8, 0x04);
    assert_eq!(Op::DomainIn as u8, 0x05);
    assert_eq!(Op::CharsetOk as u8, 0x06);
    assert_eq!(Op::TokensInRange as u8, 0x07);
    assert_eq!(Op::FdConsistent as u8, 0x08);
    assert_eq!(Op::OtherContains as u8, 0x09);
    assert_eq!(Op::ThisContains as u8, 0x0a);
    assert_eq!(Op::PushTrue as u8, 0x0b);
    assert_eq!(Op::And as u8, 0x0c);
    assert_eq!(Op::Or as u8, 0x0d);
    assert_eq!(Op::Not as u8, 0x0e);
    // Every defined opcode round-trips through the decoder; neighbours of the
    // range are rejected.
    for byte in 0x01..=0x0e_u8 {
        assert_eq!(Op::from_byte(byte).map(|op| op as u8), Some(byte));
    }
    assert_eq!(Op::from_byte(0x00), None);
    assert_eq!(Op::from_byte(0x0f), None);
}

#[test]
fn golden_program_bytes() {
    let golden: HashMap<&str, &str> = HashMap::from(GOLDEN);
    for (name, col, check) in exemplars() {
        let program = compile_check(&check, col);
        let bytes = program.to_bytes();
        assert_eq!(
            hex(&bytes),
            golden[name],
            "compiled bytes for `{name}` changed — if intentional, bump \
             BYTECODE_VERSION and refresh the golden constant",
        );
        // And the frozen bytes must keep decoding to the same program.
        assert_eq!(Program::from_bytes(&unhex(golden[name])).unwrap(), program);
    }
    assert_eq!(GOLDEN.len(), exemplars().len());
}

#[test]
fn compiler_is_total_over_every_variant() {
    // "Rejects nothing the oracle accepts": each exemplar both compiles and
    // evaluates wherever the oracle does, including on degenerate inputs.
    let table = zeroed_table::Table::new(
        "g",
        (0..9).map(|j| format!("c{j}")).collect(),
        vec![vec![String::new(); 9], vec!["x".into(); 9]],
    )
    .unwrap();
    for (name, col, check) in exemplars() {
        let program = compile_check(&check, col);
        for row in 0..table.n_rows() {
            let other = program
                .other_col
                .map(|c| table.cell(row, c as usize))
                .unwrap_or("");
            assert_eq!(
                program.eval(table.cell(row, col), other),
                check.evaluate(&table, row, col),
                "{name} row {row}"
            );
        }
    }
}

#[test]
fn foreign_versions_are_rejected() {
    let bytes = compile_check(&Check::NotMissing, 0).to_bytes();
    for version in [0u16, 2, 0xffff] {
        let mut doctored = bytes.clone();
        doctored[4..6].copy_from_slice(&version.to_le_bytes());
        assert_eq!(
            Program::from_bytes(&doctored),
            Err(DecodeError::WrongVersion(version))
        );
    }
    let mut magicless = bytes;
    magicless[0] = b'X';
    assert_eq!(Program::from_bytes(&magicless), Err(DecodeError::BadMagic));
}

/// `(exemplar name, hex of Program::to_bytes)` — regenerate by running the
/// ignored `dump_golden_bytes` test with `--ignored --nocapture`.
const GOLDEN: [(&str, &str); 9] = [
    (
        "not_missing",
        // magic "ZCVM" · v1 · col 0 · no other_col · empty pools · [NotMissing]
        "5a43564d0100000000000000000000000000000000000000000000000000000100000001",
    ),
    (
        "pattern_template",
        // str_set {"D[5]", "U[2]u[1]D[3]S[1]"} (sorted) · [PatternIn 0]
        "5a43564d0100010000000000000000010000000200000004000000445b355d10000000555b325d755b315d445b335d535b315d000000000000000000000000050000000200000000",
    ),
    (
        "length_range",
        // [LenInRange 1 10] — bounds as u64 immediates, no pool entries
        "5a43564d010002000000000000000000000000000000000000000000000000110000000301000000000000000a00000000000000",
    ),
    (
        "numeric_range",
        // f64 pool [-2.5, 100.0] bit-preserved · [NumInRange 0 1]
        "5a43564d0100030000000000000000000000000200000000000000000004c00000000000005940000000000000000009000000040000000001000000",
    ),
    (
        "domain",
        // str_set {"al", "ma"} (sorted) · [DomainIn 0]
        "5a43564d0100040000000000000000010000000200000002000000616c020000006d61000000000000000000000000050000000500000000",
    ),
    (
        "charset",
        // charset flags letters|digits=0b011 · symbols ['-','.'] sorted · [CharsetOk 0]
        "5a43564d01000500000000000000000000000000000000000000000100000003020000002d0000002e000000050000000600000000",
    ),
    (
        "token_count_range",
        // [TokensInRange 1 3]
        "5a43564d010006000000000000000000000000000000000000000000000000110000000701000000000000000300000000000000",
    ),
    (
        "fd_lookup",
        // other_col 2 · fd_map [("35233","birmingham")] · [FdConsistent 0]
        "5a43564d010007000000010200000000000000000000000000000001000000010000000500000033353233330a0000006269726d696e6768616d00000000050000000800000000",
    ),
    (
        "cross_keyword",
        // other_col 1 · strings ["ami","heart"] ·
        // [PushTrue, OtherContains 0, Not, ThisContains 1, Or, And]
        "5a43564d01000800000001010000000200000003000000616d69050000006865617274000000000000000000000000000000000e0000000b09000000000e0a010000000d0c",
    ),
];

/// Regeneration helper, not part of the suite.
#[test]
#[ignore]
fn dump_golden_bytes() {
    for (name, col, check) in exemplars() {
        println!("    (\"{name}\", \"{}\"),", hex(&compile_check(&check, col).to_bytes()));
    }
}
