//! # zeroed-llm
//!
//! The LLM abstraction used by ZeroED and the FM_ED baseline.
//!
//! The paper drives several stages of its pipeline with an LLM: deriving
//! executable error-checking criteria, writing data-distribution analysis
//! functions, generating error-detection guidelines, labelling sampled cells
//! in context, refining criteria contrastively, and augmenting the minority
//! error class. All of those interactions go through the [`LlmClient`] trait
//! here, so the pipeline itself is agnostic to *which* model answers.
//!
//! Two things matter for a faithful reproduction without network access:
//!
//! 1. **Structured behaviour** — [`sim::SimLlm`] is a deterministic simulated
//!    LLM. It produces the same *kinds* of structured outputs a real model
//!    would (criteria in the `zeroed-criteria` DSL, guidelines, binary labels,
//!    perturbed error values), driven by actual data profiling plus a
//!    per-model [`LlmProfile`] whose labelling fidelity is calibrated to the
//!    paper's Table V. Experiments hand the simulator a ground-truth oracle;
//!    without one it falls back to purely heuristic reasoning.
//! 2. **Token accounting** — every call renders the paper's prompt templates
//!    ([`prompts`]) and a realistic response text, and records their sizes in
//!    a shared [`TokenLedger`], which is what the Fig. 8 token-cost
//!    experiments measure.

pub mod client;
pub mod fault;
pub mod mangle;
pub mod parse;
pub mod profile;
pub mod prompts;
pub mod sim;
pub mod token;

pub use client::{AttributeContext, DistributionAnalysis, ErrorTypeGuide, Guideline, LlmClient};
pub use fault::{FaultKind, FaultSchedule};
pub use mangle::{MangleKind, MangleSchedule};
pub use profile::{LlmLatency, LlmProfile};
pub use sim::SimLlm;
pub use token::{count_tokens, TokenLedger, TokenUsage};
