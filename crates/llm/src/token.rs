//! Token counting and accounting.
//!
//! The paper's efficiency claims (Fig. 8) are phrased in input/output token
//! counts. The exact tokenizer is model-specific; this module uses the common
//! engineering approximation of one token per ~4 characters, with a floor of
//! one token per whitespace-separated word, which is accurate to within a few
//! percent for English prose and structured table serialisations.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Approximate number of tokens in a text.
pub fn count_tokens(text: &str) -> usize {
    if text.is_empty() {
        return 0;
    }
    let chars = text.chars().count();
    let words = text.split_whitespace().count();
    (chars / 4).max(words)
}

/// A snapshot of accumulated token usage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenUsage {
    /// Prompt (input) tokens sent to the model.
    pub input_tokens: usize,
    /// Completion (output) tokens produced by the model.
    pub output_tokens: usize,
    /// Number of individual requests.
    pub requests: usize,
}

impl TokenUsage {
    /// Total tokens (input + output).
    pub fn total(&self) -> usize {
        self.input_tokens + self.output_tokens
    }
}

/// Thread-safe accumulator of token usage shared by all calls of one client.
#[derive(Debug, Default, Clone)]
pub struct TokenLedger {
    inner: Arc<Mutex<TokenUsage>>,
    /// The share of [`TokenLedger::usage`] spent on repair-layer re-asks
    /// (second issues of a request whose first response came back mangled).
    /// Kept as a distinct line so degradation cost is auditable: re-ask
    /// tokens are *included* in the main usage and mirrored here.
    reask: Arc<Mutex<TokenUsage>>,
    /// Total simulated model latency across all recorded calls. Tracked
    /// separately from [`TokenUsage`] because it is a *cost model* output
    /// (sum of per-call latencies, independent of scheduling), not something
    /// a served deployment would report.
    sim_cost: Arc<Mutex<std::time::Duration>>,
}

impl TokenLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request given the rendered prompt and response texts.
    pub fn record(&self, prompt: &str, response: &str) {
        let mut usage = self.inner.lock();
        usage.input_tokens += count_tokens(prompt);
        usage.output_tokens += count_tokens(response);
        usage.requests += 1;
    }

    /// Records one request given pre-computed token counts.
    pub fn record_counts(&self, input_tokens: usize, output_tokens: usize) {
        let mut usage = self.inner.lock();
        usage.input_tokens += input_tokens;
        usage.output_tokens += output_tokens;
        usage.requests += 1;
    }

    /// Records one *re-ask* request given pre-computed token counts: the
    /// counts land in the main usage (a re-ask is a real request) and are
    /// mirrored into the distinct re-ask line.
    pub fn record_reask_counts(&self, input_tokens: usize, output_tokens: usize) {
        {
            let mut usage = self.inner.lock();
            usage.input_tokens += input_tokens;
            usage.output_tokens += output_tokens;
            usage.requests += 1;
        }
        let mut reask = self.reask.lock();
        reask.input_tokens += input_tokens;
        reask.output_tokens += output_tokens;
        reask.requests += 1;
    }

    /// The re-ask share of the ledger (already included in
    /// [`TokenLedger::usage`]).
    pub fn reask_usage(&self) -> TokenUsage {
        *self.reask.lock()
    }

    /// Adds one call's simulated model latency (see [`TokenLedger::sim_cost`]).
    pub fn record_sim_cost(&self, cost: std::time::Duration) {
        *self.sim_cost.lock() += cost;
    }

    /// Total simulated model latency recorded so far. This is the *serial*
    /// cost of all calls; a concurrent scheduler's wall-clock should come in
    /// well below it.
    pub fn sim_cost(&self) -> std::time::Duration {
        *self.sim_cost.lock()
    }

    /// Returns the current snapshot.
    pub fn usage(&self) -> TokenUsage {
        *self.inner.lock()
    }

    /// Resets the ledger to zero.
    pub fn reset(&self) {
        *self.inner.lock() = TokenUsage::default();
        *self.reask.lock() = TokenUsage::default();
        *self.sim_cost.lock() = std::time::Duration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_counting_is_reasonable() {
        assert_eq!(count_tokens(""), 0);
        let text = "Please label each of the following values as clean or erroneous.";
        let n = count_tokens(text);
        assert!(n >= 11 && n <= 20, "got {n}");
        // Long single word still counts by characters.
        assert!(count_tokens(&"a".repeat(400)) >= 100);
    }

    #[test]
    fn ledger_accumulates_and_resets() {
        let ledger = TokenLedger::new();
        ledger.record("one two three four", "ok");
        ledger.record_counts(10, 20);
        let usage = ledger.usage();
        assert_eq!(usage.requests, 2);
        assert!(usage.input_tokens >= 14);
        assert!(usage.output_tokens >= 21);
        assert_eq!(usage.total(), usage.input_tokens + usage.output_tokens);
        ledger.reset();
        assert_eq!(ledger.usage(), TokenUsage::default());
    }

    #[test]
    fn ledger_clones_share_state() {
        let ledger = TokenLedger::new();
        let clone = ledger.clone();
        clone.record_counts(5, 5);
        assert_eq!(ledger.usage().requests, 1);
    }

    #[test]
    fn reask_line_is_included_in_usage_and_mirrored() {
        let ledger = TokenLedger::new();
        ledger.record_counts(10, 20);
        ledger.record_reask_counts(3, 4);
        let usage = ledger.usage();
        assert_eq!(usage.requests, 2);
        assert_eq!(usage.input_tokens, 13);
        assert_eq!(usage.output_tokens, 24);
        let reask = ledger.reask_usage();
        assert_eq!(reask.requests, 1);
        assert_eq!(reask.input_tokens, 3);
        assert_eq!(reask.output_tokens, 4);
        ledger.reset();
        assert_eq!(ledger.reask_usage(), TokenUsage::default());
    }

    #[test]
    fn sim_cost_accumulates_and_resets() {
        use std::time::Duration;
        let ledger = TokenLedger::new();
        assert_eq!(ledger.sim_cost(), Duration::ZERO);
        ledger.record_sim_cost(Duration::from_millis(3));
        ledger.clone().record_sim_cost(Duration::from_millis(4));
        assert_eq!(ledger.sim_cost(), Duration::from_millis(7));
        ledger.reset();
        assert_eq!(ledger.sim_cost(), Duration::ZERO);
    }
}
