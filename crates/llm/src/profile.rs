//! Per-model quality profiles for the simulated LLM.
//!
//! The paper evaluates ZeroED with five different backbones (Table V). The
//! simulated LLM reproduces the *relative* behaviour of those models through a
//! quality profile: how reliably the model recognises each error type when
//! labelling, how often it wrongly flags clean values, how good its generated
//! criteria are, and how much the two-step guideline helps it.

use serde::{Deserialize, Serialize};
use std::time::Duration;
use zeroed_table::ErrorType;

/// Simulated serving latency of one LLM backbone.
///
/// Real deployments spend most of ZeroED's wall-clock inside LLM calls, so
/// the offline reproduction needs a latency model to make scheduling
/// improvements measurable: a fixed per-request overhead (network + prefill
/// setup) plus linear per-token costs for prompt ingestion and decoding.
/// The absolute numbers are loosely calibrated to self-hosted vLLM serving of
/// the respective model sizes, scaled down ~10x so benchmark sweeps finish in
/// seconds; only the *relative* shape matters for scheduler experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlmLatency {
    /// Fixed per-request overhead in milliseconds.
    pub base_ms: f64,
    /// Prompt-ingestion cost in microseconds per input token.
    pub input_us_per_token: f64,
    /// Decoding cost in microseconds per output token.
    pub output_us_per_token: f64,
}

impl LlmLatency {
    /// Latency of one call with the given token counts.
    pub fn call_cost(&self, input_tokens: usize, output_tokens: usize) -> Duration {
        let us = self.base_ms * 1e3
            + self.input_us_per_token * input_tokens as f64
            + self.output_us_per_token * output_tokens as f64;
        Duration::from_nanos((us.max(0.0) * 1e3) as u64)
    }
}

/// Labelling/reasoning fidelity of one LLM backbone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LlmProfile {
    /// Model name as used in the paper's tables.
    pub name: String,
    /// Probability of correctly labelling a clean cell as clean.
    pub clean_accuracy: f64,
    /// Probability of recognising an erroneous cell, per error type.
    pub recall_missing: f64,
    /// Recall for typos.
    pub recall_typo: f64,
    /// Recall for pattern violations.
    pub recall_pattern: f64,
    /// Recall for outliers.
    pub recall_outlier: f64,
    /// Recall for rule violations.
    pub recall_rule: f64,
    /// Quality of generated error-checking criteria in `[0, 1]`; scales how
    /// many criterion families the model produces and how well calibrated
    /// their thresholds are.
    pub criteria_quality: f64,
    /// Additive accuracy boost when a detection guideline is supplied
    /// (removed by the "w/o Guid." ablation).
    pub guideline_boost: f64,
    /// Simulated serving latency of this backbone.
    pub latency: LlmLatency,
}

impl LlmProfile {
    /// Recall for a specific error type.
    pub fn recall(&self, ty: ErrorType) -> f64 {
        match ty {
            ErrorType::MissingValue => self.recall_missing,
            ErrorType::Typo => self.recall_typo,
            ErrorType::PatternViolation => self.recall_pattern,
            ErrorType::Outlier => self.recall_outlier,
            ErrorType::RuleViolation => self.recall_rule,
        }
    }

    /// The paper's default backbone: Qwen2.5-72B.
    pub fn qwen_72b() -> Self {
        Self {
            name: "Qwen2.5-72b".into(),
            clean_accuracy: 0.975,
            recall_missing: 0.98,
            recall_typo: 0.92,
            recall_pattern: 0.90,
            recall_outlier: 0.82,
            recall_rule: 0.80,
            criteria_quality: 0.95,
            guideline_boost: 0.06,
            latency: LlmLatency { base_ms: 12.0, input_us_per_token: 3.0, output_us_per_token: 36.0 },
        }
    }

    /// Llama3.1-70B.
    pub fn llama_70b() -> Self {
        Self {
            name: "Llama3.1-70b".into(),
            clean_accuracy: 0.955,
            recall_missing: 0.96,
            recall_typo: 0.88,
            recall_pattern: 0.85,
            recall_outlier: 0.76,
            recall_rule: 0.72,
            criteria_quality: 0.85,
            guideline_boost: 0.06,
            latency: LlmLatency { base_ms: 12.0, input_us_per_token: 3.0, output_us_per_token: 34.0 },
        }
    }

    /// Llama3.1-8B.
    pub fn llama_8b() -> Self {
        Self {
            name: "Llama3.1-8b".into(),
            clean_accuracy: 0.93,
            recall_missing: 0.95,
            recall_typo: 0.85,
            recall_pattern: 0.80,
            recall_outlier: 0.70,
            recall_rule: 0.62,
            criteria_quality: 0.75,
            guideline_boost: 0.08,
            latency: LlmLatency { base_ms: 8.0, input_us_per_token: 0.8, output_us_per_token: 9.0 },
        }
    }

    /// Qwen2.5-7B.
    pub fn qwen_7b() -> Self {
        Self {
            name: "Qwen2.5-7b".into(),
            clean_accuracy: 0.88,
            recall_missing: 0.93,
            recall_typo: 0.78,
            recall_pattern: 0.72,
            recall_outlier: 0.62,
            recall_rule: 0.55,
            criteria_quality: 0.65,
            guideline_boost: 0.08,
            latency: LlmLatency { base_ms: 8.0, input_us_per_token: 0.8, output_us_per_token: 9.0 },
        }
    }

    /// GPT-4o-mini, which the paper found to over-flag clean values (high
    /// recall, poor precision).
    pub fn gpt_4o_mini() -> Self {
        Self {
            name: "GPT-4o-mini".into(),
            clean_accuracy: 0.72,
            recall_missing: 0.95,
            recall_typo: 0.80,
            recall_pattern: 0.78,
            recall_outlier: 0.68,
            recall_rule: 0.60,
            criteria_quality: 0.70,
            guideline_boost: 0.05,
            latency: LlmLatency { base_ms: 20.0, input_us_per_token: 0.6, output_us_per_token: 12.0 },
        }
    }

    /// All five profiles in the order of the paper's Table V.
    pub fn all() -> Vec<LlmProfile> {
        vec![
            Self::gpt_4o_mini(),
            Self::llama_8b(),
            Self::llama_70b(),
            Self::qwen_7b(),
            Self::qwen_72b(),
        ]
    }

    /// Looks a profile up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<LlmProfile> {
        Self::all()
            .into_iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qwen72b_dominates_smaller_models() {
        let big = LlmProfile::qwen_72b();
        let small = LlmProfile::qwen_7b();
        assert!(big.clean_accuracy > small.clean_accuracy);
        for ty in ErrorType::ALL {
            assert!(big.recall(ty) >= small.recall(ty), "{ty}");
        }
        assert!(big.criteria_quality > small.criteria_quality);
    }

    #[test]
    fn gpt4o_mini_has_low_clean_accuracy() {
        // The paper reports GPT-4o-mini with strong recall but weak precision;
        // the profile encodes that as a low clean accuracy.
        let p = LlmProfile::gpt_4o_mini();
        assert!(p.clean_accuracy < LlmProfile::llama_8b().clean_accuracy);
        assert!(p.recall_missing > 0.9);
    }

    #[test]
    fn latency_scales_with_tokens_and_model_size() {
        let big = LlmProfile::qwen_72b().latency;
        let small = LlmProfile::qwen_7b().latency;
        assert!(big.call_cost(1_000, 200) > small.call_cost(1_000, 200));
        assert!(big.call_cost(1_000, 200) > big.call_cost(100, 20));
        assert_eq!(
            LlmLatency {
                base_ms: 1.0,
                input_us_per_token: 0.0,
                output_us_per_token: 0.0
            }
            .call_cost(0, 0),
            Duration::from_millis(1)
        );
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(LlmProfile::all().len(), 5);
        assert!(LlmProfile::by_name("qwen2.5-72B").is_some());
        assert!(LlmProfile::by_name("gpt-5").is_none());
    }
}
