//! Criteria generation and contrastive refinement for the simulated LLM.
//!
//! This mirrors what the paper's LLM does when prompted with
//! [`crate::prompts::criteria_prompt`]: reason about likely error causes for
//! the attribute and emit executable checks. The simulated model derives the
//! checks from the [`ColumnProfile`]; the `criteria_quality` knob of the
//! model profile controls how many check families it manages to produce
//! (weaker models emit fewer, coarser criteria).

use super::profiling::ColumnProfile;
use crate::mangle::MangleKind;
use std::collections::HashSet;
use zeroed_criteria::{Check, CriteriaSet, Criterion};
use zeroed_features::pattern::{generalize, Level};

/// Builds an attribute's criteria set from its profile.
///
/// `quality` in `[0, 1]` determines how many criterion families are emitted:
/// every model produces the basic null/format checks, stronger models add
/// range, domain, charset and cross-attribute consistency checks.
pub fn build_criteria(profile: &ColumnProfile, quality: f64) -> CriteriaSet {
    let mut set = CriteriaSet::new(profile.column);
    let name = &profile.name;

    // 1. Missing check — always produced unless the column is mostly empty by
    // design.
    if profile.missing_ratio < 0.5 {
        set.criteria.push(Criterion::new(
            format!("is_clean_{name}_not_missing"),
            format!("values of '{name}' should be present; blanks and null placeholders indicate missing data"),
            Check::NotMissing,
        ));
    }

    // 2. Format template check from the patterns covering most of the data.
    let covering = profile.covering_patterns(0.92);
    if !covering.is_empty() && covering.len() <= 12 {
        set.criteria.push(Criterion::new(
            format!("is_clean_{name}_format"),
            format!(
                "'{name}' values follow {} dominant character formats; deviating formats suggest pattern violations",
                covering.len()
            ),
            Check::PatternTemplate {
                allowed: covering.into_iter().collect::<HashSet<String>>(),
            },
        ));
    }

    // 3. Length range with slack.
    let (min_len, max_len) = profile.length_range;
    if max_len > 0 && quality >= 0.3 {
        let slack = ((max_len - min_len) / 2).max(2);
        set.criteria.push(Criterion::new(
            format!("is_clean_{name}_length"),
            format!("'{name}' values are between {min_len} and {max_len} characters long"),
            Check::LengthRange {
                min: min_len.saturating_sub(slack),
                max: max_len + slack,
            },
        ));
    }

    // 4. Numeric range from robust bounds.
    if let (Some((lo, hi)), true) = (profile.numeric_bounds, quality >= 0.4) {
        set.criteria.push(Criterion::new(
            format!("is_clean_{name}_numeric_range"),
            format!("'{name}' is numeric and typically lies within [{lo:.2}, {hi:.2}]; far-out values are outliers"),
            Check::NumericRange { min: lo, max: hi },
        ));
    }

    // 5. Domain membership for categorical columns.
    if profile.is_categorical() && !profile.is_numeric() && quality >= 0.5 {
        let allowed: HashSet<String> = profile
            .value_counts
            .iter()
            .filter(|(v, &c)| c >= 2 && !v.trim().is_empty())
            .map(|(v, _)| v.trim().to_lowercase())
            .collect();
        if allowed.len() >= 2 && allowed.len() <= 64 {
            set.criteria.push(Criterion::new(
                format!("is_clean_{name}_domain"),
                format!("'{name}' takes one of {} known categorical values", allowed.len()),
                Check::Domain { allowed },
            ));
        }
    }

    // 6. Charset check derived from observed characters.
    if quality >= 0.6 {
        let mut letters = false;
        let mut digits = false;
        let mut whitespace = false;
        let mut symbols: HashSet<char> = HashSet::new();
        for value in profile.value_counts.keys() {
            for c in value.chars() {
                if c.is_alphabetic() {
                    letters = true;
                } else if c.is_ascii_digit() {
                    digits = true;
                } else if c.is_whitespace() {
                    whitespace = true;
                } else {
                    symbols.insert(c);
                }
            }
        }
        if symbols.len() <= 8 {
            // Sorted, not hash-order: the symbol list is part of the
            // criterion's content, and content-addressed request keys (and
            // with them trace ids) must not vary with `HashSet` iteration
            // order across runs or processes.
            let mut symbols: Vec<char> = symbols.into_iter().collect();
            symbols.sort_unstable();
            set.criteria.push(Criterion::new(
                format!("is_clean_{name}_charset"),
                format!("'{name}' values only use the character classes observed in the data"),
                Check::Charset {
                    letters,
                    digits,
                    whitespace,
                    symbols,
                },
            ));
        }
    }

    // 7. Cross-attribute consistency from the empirical FD mapping.
    if let (Some((det, mapping)), true) = (&profile.fd_mapping, quality >= 0.7) {
        if mapping.len() >= 3 {
            set.criteria.push(Criterion::new(
                format!("is_clean_{name}_consistent_with_correlated"),
                format!(
                    "'{name}' is determined by attribute #{det}; values disagreeing with the usual pairing are rule violations"
                ),
                Check::FdLookup {
                    determinant_col: *det,
                    mapping: mapping.clone(),
                },
            ));
        }
    }

    set
}

/// Contrastive refinement (Algorithm 1 lines 4–7): given values labelled clean
/// and erroneous, tighten the criteria so they separate the two groups better.
/// The simulated model adds (a) a pattern template restricted to formats seen
/// among clean examples but not erroneous ones, and (b) a domain built from
/// clean examples for categorical columns, keeping the original criteria.
pub fn refine_criteria(
    profile: &ColumnProfile,
    existing: &CriteriaSet,
    clean_examples: &[String],
    error_examples: &[String],
) -> CriteriaSet {
    let mut refined = existing.clone();
    if clean_examples.is_empty() {
        return refined;
    }
    let name = &profile.name;
    let clean_patterns: HashSet<String> = clean_examples
        .iter()
        .map(|v| generalize(v, Level::L3))
        .collect();
    let error_patterns: HashSet<String> = error_examples
        .iter()
        .map(|v| generalize(v, Level::L3))
        .collect();
    // Patterns that only ever appear among clean examples.
    let distinctive: HashSet<String> = clean_patterns
        .difference(&error_patterns)
        .cloned()
        .collect();
    if !distinctive.is_empty()
        && distinctive.len() <= 12
        && !refined
            .criteria
            .iter()
            .any(|c| c.name.ends_with("_contrastive_format"))
    {
        refined.criteria.push(Criterion::new(
            format!("is_clean_{name}_contrastive_format"),
            format!(
                "formats observed only among clean '{name}' examples; erroneous examples use other formats"
            ),
            Check::PatternTemplate {
                allowed: distinctive,
            },
        ));
    }
    if profile.is_categorical() && !profile.is_numeric() {
        let allowed: HashSet<String> = clean_examples
            .iter()
            .map(|v| v.trim().to_lowercase())
            .filter(|v| !v.is_empty())
            .collect();
        if allowed.len() >= 2
            && !refined
                .criteria
                .iter()
                .any(|c| c.name.ends_with("_contrastive_domain"))
        {
            refined.criteria.push(Criterion::new(
                format!("is_clean_{name}_contrastive_domain"),
                format!("values of '{name}' seen among verified clean examples"),
                Check::Domain { allowed },
            ));
        }
    }
    refined
}

/// Applies one seeded content corruption to a criteria response (see
/// [`crate::mangle`]). Every kind leaves a scar the repair layer's validator
/// always catches: an unnamed criterion, a column index outside the schema
/// (`n_cols` wide), duplicated function names, names drifted out of the
/// `is_clean_` namespace, or the unrepairable empty/garbage sentinel.
pub fn mangle_criteria(mut set: CriteriaSet, kind: MangleKind, n_cols: usize) -> CriteriaSet {
    // A legitimately empty criteria set has no list items to corrupt; the
    // arity/drift kinds degrade to the unparseable sentinel so the corruption
    // never hides behind a healthy-looking empty response.
    let unparseable = || CriteriaSet {
        column: usize::MAX,
        criteria: Vec::new(),
    };
    match kind {
        MangleKind::TruncatedList => {
            let keep = set.criteria.len() / 2;
            set.criteria.truncate(keep);
            set.criteria.push(Criterion::new(
                "",
                "the response cut off in the middle of a function definition",
                Check::NotMissing,
            ));
            set
        }
        MangleKind::MalformedJson | MangleKind::EmptyBody => unparseable(),
        MangleKind::HallucinatedColumn => {
            set.column = set.column.saturating_add(n_cols).saturating_add(1);
            set
        }
        MangleKind::WrongArity => {
            if set.criteria.is_empty() {
                return unparseable();
            }
            let dup = set.criteria.clone();
            set.criteria.extend(dup);
            set
        }
        MangleKind::SchemaDrift => {
            if set.criteria.is_empty() {
                return unparseable();
            }
            for c in &mut set.criteria {
                c.name = match c.name.strip_prefix("is_clean_") {
                    Some(rest) => rest.to_string(),
                    None => format!("drifted_{}", c.name),
                };
            }
            set
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_table::Table;

    fn zip_profile() -> ColumnProfile {
        let rows: Vec<Vec<String>> = (0..200)
            .map(|i| {
                vec![
                    format!("{:05}", 10_000 + (i % 7) * 101),
                    ["Boston", "Denver", "Phoenix"][i % 3].to_string(),
                ]
            })
            .collect();
        let t = Table::new("t", vec!["zip".into(), "city".into()], rows).unwrap();
        ColumnProfile::analyze(&t, 0, &[1])
    }

    #[test]
    fn high_quality_produces_rich_criteria() {
        let profile = zip_profile();
        let set = build_criteria(&profile, 0.95);
        assert!(set.len() >= 4, "got {} criteria", set.len());
        let names: Vec<&str> = set.criteria.iter().map(|c| c.name.as_str()).collect();
        assert!(names.iter().any(|n| n.contains("not_missing")));
        assert!(names.iter().any(|n| n.contains("format")));
        assert!(names.iter().any(|n| n.contains("numeric_range") || n.contains("length")));
    }

    #[test]
    fn low_quality_produces_fewer_criteria() {
        let profile = zip_profile();
        let rich = build_criteria(&profile, 0.95).len();
        let poor = build_criteria(&profile, 0.2).len();
        assert!(poor < rich, "poor {poor} should be < rich {rich}");
        assert!(poor >= 1);
    }

    #[test]
    fn refinement_adds_contrastive_checks() {
        let profile = zip_profile();
        let base = build_criteria(&profile, 0.9);
        let refined = refine_criteria(
            &profile,
            &base,
            &["10101".into(), "10202".into()],
            &["1010".into(), "".into()],
        );
        assert!(refined.len() > base.len());
        // Refinement is idempotent with respect to the contrastive criteria.
        let twice = refine_criteria(
            &profile,
            &refined,
            &["10101".into()],
            &["abc".into()],
        );
        assert_eq!(twice.len(), refined.len());
        // Empty clean examples are a no-op.
        let noop = refine_criteria(&profile, &base, &[], &["x".into()]);
        assert_eq!(noop.len(), base.len());
    }

    #[test]
    fn every_mangle_kind_leaves_a_detectable_scar() {
        let profile = zip_profile();
        let base = build_criteria(&profile, 0.95);
        let n_cols = 2;
        let scarred = |set: &CriteriaSet| {
            set.column != base.column
                || set.criteria.iter().any(|c| !c.name.starts_with("is_clean_"))
                || {
                    let mut names: Vec<&str> =
                        set.criteria.iter().map(|c| c.name.as_str()).collect();
                    names.sort_unstable();
                    names.windows(2).any(|w| w[0] == w[1])
                }
        };
        for kind in crate::mangle::MangleKind::ALL {
            let mangled = mangle_criteria(base.clone(), kind, n_cols);
            assert!(scarred(&mangled), "{kind:?} left no scar");
            // Scars survive even when the healthy response is empty.
            let mangled_empty =
                mangle_criteria(CriteriaSet::new(base.column), kind, n_cols);
            assert!(scarred(&mangled_empty), "{kind:?} hid behind an empty set");
        }
    }
}
