//! Distribution analysis and guideline generation for the simulated LLM
//! (paper §III-C, Fig. 5).

use super::profiling::ColumnProfile;
use crate::client::{DistributionAnalysis, ErrorTypeGuide, Guideline};
use crate::mangle::MangleKind;
use zeroed_table::ErrorType;

/// Produces the distribution analysis that "executing the LLM-written analysis
/// functions over the whole dataset" yields.
pub fn build_analysis(profile: &ColumnProfile) -> DistributionAnalysis {
    let mut findings = Vec::new();
    findings.push(format!(
        "The attribute has {} distinct values over {} records.",
        profile.distinct(),
        profile.total
    ));
    if profile.missing_ratio > 0.0 {
        findings.push(format!(
            "{:.2}% of the values are missing or null placeholders.",
            profile.missing_ratio * 100.0
        ));
    }
    if profile.is_numeric() {
        if let Some((lo, hi)) = profile.numeric_bounds {
            findings.push(format!(
                "Values are numeric; the bulk of the distribution lies within [{lo:.2}, {hi:.2}]."
            ));
        }
    } else if profile.is_categorical() {
        findings.push(
            "The attribute is categorical; values outside the frequent categories are suspicious."
                .to_string(),
        );
    } else {
        findings.push(
            "The attribute is free text; formats are more informative than exact values."
                .to_string(),
        );
    }
    if profile.fd_mapping.is_some() {
        findings.push(
            "The attribute is strongly determined by a correlated attribute; inconsistent pairs indicate rule violations."
                .to_string(),
        );
    }
    DistributionAnalysis {
        column: profile.name.clone(),
        total_records: profile.total,
        distinct_values: profile.distinct(),
        missing_ratio: profile.missing_ratio,
        frequent_values: profile.top_values(5),
        rare_values: profile.rare_values(5),
        frequent_patterns: profile.top_patterns(3),
        numeric_summary: profile.numeric_summary,
        findings,
    }
}

/// Produces the attribute-specific error-detection guideline from the profile
/// and its distribution analysis.
pub fn build_guideline(profile: &ColumnProfile, analysis: &DistributionAnalysis) -> Guideline {
    let name = &profile.name;
    let explanation = if profile.is_numeric() {
        format!("'{name}' is a numeric attribute; typical values lie in a bounded range.")
    } else if profile.is_categorical() {
        format!(
            "'{name}' is a categorical attribute with {} frequent categories.",
            analysis.frequent_values.len()
        )
    } else {
        format!("'{name}' is a textual attribute whose values follow a small set of formats.")
    };

    let dominant_format = analysis
        .frequent_patterns
        .first()
        .map(|(p, _)| p.clone())
        .unwrap_or_else(|| "the dominant format".to_string());
    let frequent_example = analysis
        .frequent_values
        .first()
        .map(|(v, _)| v.clone())
        .unwrap_or_default();

    let error_types = vec![
        ErrorTypeGuide {
            error_type: ErrorType::MissingValue,
            examples: vec!["".into(), "NULL".into(), "N/A".into()],
            causes: "fields left blank at entry time or lost during integration".into(),
            detection: "flag empty strings and common null placeholders".into(),
        },
        ErrorTypeGuide {
            error_type: ErrorType::Typo,
            examples: profile.rare_values(3),
            causes: "manual entry mistakes producing rare, near-duplicate strings".into(),
            detection: format!(
                "flag rare values that are close (small edit distance) to frequent values such as '{frequent_example}'"
            ),
        },
        ErrorTypeGuide {
            error_type: ErrorType::PatternViolation,
            examples: vec![format!("values not matching {dominant_format}")],
            causes: "format drift between sources (different date/time/identifier conventions)".into(),
            detection: format!("flag values whose character format differs from {dominant_format}"),
        },
        ErrorTypeGuide {
            error_type: ErrorType::Outlier,
            examples: profile
                .numeric_summary
                .map(|(min, _, max)| vec![format!("{}", max * 100.0), format!("{}", min - 1.0)])
                .unwrap_or_else(|| vec!["values far outside the usual domain".into()]),
            causes: "unit mistakes, sensor faults or corrupted numeric entries".into(),
            detection: profile
                .numeric_bounds
                .map(|(lo, hi)| format!("flag numeric values outside [{lo:.2}, {hi:.2}]"))
                .unwrap_or_else(|| "flag values with frequency below 1% that do not fit the domain".into()),
        },
        ErrorTypeGuide {
            error_type: ErrorType::RuleViolation,
            examples: vec![format!("a '{name}' value inconsistent with its correlated attribute")],
            causes: "updates applied to one attribute but not its dependent attributes".into(),
            detection: if profile.fd_mapping.is_some() {
                "compare the value against the usual value for the same correlated attribute value"
                    .into()
            } else {
                "cross-check the value against related attributes in the same tuple".into()
            },
        },
    ];

    Guideline {
        column: name.clone(),
        explanation,
        error_types,
    }
}

/// Applies one seeded content corruption to a distribution-analysis response
/// (see [`crate::mangle`]). Scars: empty findings (a healthy analysis always
/// reports at least one), a non-finite missing ratio (the unrepairable
/// garbage sentinel), a column name outside the schema, or record counts that
/// cannot match the analysed table.
pub fn mangle_analysis(mut a: DistributionAnalysis, kind: MangleKind) -> DistributionAnalysis {
    match kind {
        MangleKind::TruncatedList => {
            a.findings.clear();
            a.rare_values.clear();
            a.frequent_patterns.truncate(1);
            a
        }
        MangleKind::MalformedJson => {
            a.missing_ratio = f64::NAN;
            a
        }
        MangleKind::HallucinatedColumn => {
            a.column = format!("{}_id", a.column);
            a
        }
        MangleKind::WrongArity => {
            a.total_records = a.total_records * 2 + 1;
            a.distinct_values = a.total_records + 1;
            a
        }
        MangleKind::SchemaDrift => {
            a.column = format!("{}::v2", a.column);
            a.total_records = 0;
            a
        }
        MangleKind::EmptyBody => DistributionAnalysis {
            column: String::new(),
            total_records: 0,
            distinct_values: 0,
            missing_ratio: f64::NAN,
            frequent_values: Vec::new(),
            rare_values: Vec::new(),
            frequent_patterns: Vec::new(),
            numeric_summary: None,
            findings: Vec::new(),
        },
    }
}

/// Applies one seeded content corruption to a guideline response (see
/// [`crate::mangle`]). Scars: fewer or more than the five canonical error
/// types, entries out of canonical order, a drifted column name, or the
/// empty/garbage sentinel with no salvageable entries.
pub fn mangle_guideline(mut g: Guideline, kind: MangleKind) -> Guideline {
    match kind {
        MangleKind::TruncatedList => {
            g.error_types.truncate(2);
            g
        }
        MangleKind::MalformedJson => {
            g.error_types.clear();
            g.explanation = "{ \"guideline\": [ unterminated".to_string();
            g
        }
        MangleKind::HallucinatedColumn => {
            g.column = format!("{}_notes", g.column);
            g
        }
        MangleKind::WrongArity => {
            if let Some(first) = g.error_types.first().cloned() {
                g.error_types.push(first);
            }
            g
        }
        MangleKind::SchemaDrift => {
            g.error_types.reverse();
            g
        }
        MangleKind::EmptyBody => Guideline {
            column: String::new(),
            explanation: String::new(),
            error_types: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_table::Table;

    fn profile() -> ColumnProfile {
        let rows: Vec<Vec<String>> = (0..100)
            .map(|i| {
                vec![
                    format!("{}", 40_000 + (i % 9) * 1_000),
                    ["Boston", "Denver"][i % 2].to_string(),
                ]
            })
            .collect();
        let t = Table::new("t", vec!["salary".into(), "city".into()], rows).unwrap();
        ColumnProfile::analyze(&t, 0, &[1])
    }

    #[test]
    fn analysis_summarises_column() {
        let p = profile();
        let a = build_analysis(&p);
        assert_eq!(a.column, "salary");
        assert_eq!(a.total_records, 100);
        assert_eq!(a.distinct_values, 9);
        assert!(a.numeric_summary.is_some());
        assert!(!a.findings.is_empty());
        assert!(!a.frequent_values.is_empty());
    }

    #[test]
    fn guideline_covers_all_five_error_types() {
        let p = profile();
        let a = build_analysis(&p);
        let g = build_guideline(&p, &a);
        assert_eq!(g.error_types.len(), 5);
        let types: Vec<ErrorType> = g.error_types.iter().map(|e| e.error_type).collect();
        for ty in ErrorType::ALL {
            assert!(types.contains(&ty), "missing {ty}");
        }
        let text = g.render();
        assert!(text.contains("salary"));
        assert!(text.contains("detection"));
    }

    #[test]
    fn numeric_guideline_mentions_bounds() {
        let p = profile();
        let a = build_analysis(&p);
        let g = build_guideline(&p, &a);
        let outlier = g
            .error_types
            .iter()
            .find(|e| e.error_type == ErrorType::Outlier)
            .unwrap();
        assert!(outlier.detection.contains("flag numeric values outside"));
    }

    #[test]
    fn every_mangle_kind_scars_analysis_and_guideline() {
        let p = profile();
        let a = build_analysis(&p);
        let g = build_guideline(&p, &a);
        let analysis_scarred = |m: &DistributionAnalysis| {
            m.column != a.column
                || m.total_records != a.total_records
                || m.distinct_values > m.total_records
                || !m.missing_ratio.is_finite()
                || m.findings.is_empty()
        };
        let guideline_scarred = |m: &Guideline| {
            m.column != g.column
                || m.error_types.len() != g.error_types.len()
                || m.error_types
                    .iter()
                    .zip(g.error_types.iter())
                    .any(|(e, h)| e.error_type != h.error_type)
        };
        assert!(!analysis_scarred(&a), "healthy analysis must be unscarred");
        assert!(!guideline_scarred(&g), "healthy guideline must be unscarred");
        for kind in MangleKind::ALL {
            assert!(
                analysis_scarred(&mangle_analysis(a.clone(), kind)),
                "{kind:?} left the analysis unscarred"
            );
            assert!(
                guideline_scarred(&mangle_guideline(g.clone(), kind)),
                "{kind:?} left the guideline unscarred"
            );
        }
    }
}
