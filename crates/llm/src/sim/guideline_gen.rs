//! Distribution analysis and guideline generation for the simulated LLM
//! (paper §III-C, Fig. 5).

use super::profiling::ColumnProfile;
use crate::client::{DistributionAnalysis, ErrorTypeGuide, Guideline};
use zeroed_table::ErrorType;

/// Produces the distribution analysis that "executing the LLM-written analysis
/// functions over the whole dataset" yields.
pub fn build_analysis(profile: &ColumnProfile) -> DistributionAnalysis {
    let mut findings = Vec::new();
    findings.push(format!(
        "The attribute has {} distinct values over {} records.",
        profile.distinct(),
        profile.total
    ));
    if profile.missing_ratio > 0.0 {
        findings.push(format!(
            "{:.2}% of the values are missing or null placeholders.",
            profile.missing_ratio * 100.0
        ));
    }
    if profile.is_numeric() {
        if let Some((lo, hi)) = profile.numeric_bounds {
            findings.push(format!(
                "Values are numeric; the bulk of the distribution lies within [{lo:.2}, {hi:.2}]."
            ));
        }
    } else if profile.is_categorical() {
        findings.push(
            "The attribute is categorical; values outside the frequent categories are suspicious."
                .to_string(),
        );
    } else {
        findings.push(
            "The attribute is free text; formats are more informative than exact values."
                .to_string(),
        );
    }
    if profile.fd_mapping.is_some() {
        findings.push(
            "The attribute is strongly determined by a correlated attribute; inconsistent pairs indicate rule violations."
                .to_string(),
        );
    }
    DistributionAnalysis {
        column: profile.name.clone(),
        total_records: profile.total,
        distinct_values: profile.distinct(),
        missing_ratio: profile.missing_ratio,
        frequent_values: profile.top_values(5),
        rare_values: profile.rare_values(5),
        frequent_patterns: profile.top_patterns(3),
        numeric_summary: profile.numeric_summary,
        findings,
    }
}

/// Produces the attribute-specific error-detection guideline from the profile
/// and its distribution analysis.
pub fn build_guideline(profile: &ColumnProfile, analysis: &DistributionAnalysis) -> Guideline {
    let name = &profile.name;
    let explanation = if profile.is_numeric() {
        format!("'{name}' is a numeric attribute; typical values lie in a bounded range.")
    } else if profile.is_categorical() {
        format!(
            "'{name}' is a categorical attribute with {} frequent categories.",
            analysis.frequent_values.len()
        )
    } else {
        format!("'{name}' is a textual attribute whose values follow a small set of formats.")
    };

    let dominant_format = analysis
        .frequent_patterns
        .first()
        .map(|(p, _)| p.clone())
        .unwrap_or_else(|| "the dominant format".to_string());
    let frequent_example = analysis
        .frequent_values
        .first()
        .map(|(v, _)| v.clone())
        .unwrap_or_default();

    let error_types = vec![
        ErrorTypeGuide {
            error_type: ErrorType::MissingValue,
            examples: vec!["".into(), "NULL".into(), "N/A".into()],
            causes: "fields left blank at entry time or lost during integration".into(),
            detection: "flag empty strings and common null placeholders".into(),
        },
        ErrorTypeGuide {
            error_type: ErrorType::Typo,
            examples: profile.rare_values(3),
            causes: "manual entry mistakes producing rare, near-duplicate strings".into(),
            detection: format!(
                "flag rare values that are close (small edit distance) to frequent values such as '{frequent_example}'"
            ),
        },
        ErrorTypeGuide {
            error_type: ErrorType::PatternViolation,
            examples: vec![format!("values not matching {dominant_format}")],
            causes: "format drift between sources (different date/time/identifier conventions)".into(),
            detection: format!("flag values whose character format differs from {dominant_format}"),
        },
        ErrorTypeGuide {
            error_type: ErrorType::Outlier,
            examples: profile
                .numeric_summary
                .map(|(min, _, max)| vec![format!("{}", max * 100.0), format!("{}", min - 1.0)])
                .unwrap_or_else(|| vec!["values far outside the usual domain".into()]),
            causes: "unit mistakes, sensor faults or corrupted numeric entries".into(),
            detection: profile
                .numeric_bounds
                .map(|(lo, hi)| format!("flag numeric values outside [{lo:.2}, {hi:.2}]"))
                .unwrap_or_else(|| "flag values with frequency below 1% that do not fit the domain".into()),
        },
        ErrorTypeGuide {
            error_type: ErrorType::RuleViolation,
            examples: vec![format!("a '{name}' value inconsistent with its correlated attribute")],
            causes: "updates applied to one attribute but not its dependent attributes".into(),
            detection: if profile.fd_mapping.is_some() {
                "compare the value against the usual value for the same correlated attribute value"
                    .into()
            } else {
                "cross-check the value against related attributes in the same tuple".into()
            },
        },
    ];

    Guideline {
        column: name.clone(),
        explanation,
        error_types,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_table::Table;

    fn profile() -> ColumnProfile {
        let rows: Vec<Vec<String>> = (0..100)
            .map(|i| {
                vec![
                    format!("{}", 40_000 + (i % 9) * 1_000),
                    ["Boston", "Denver"][i % 2].to_string(),
                ]
            })
            .collect();
        let t = Table::new("t", vec!["salary".into(), "city".into()], rows).unwrap();
        ColumnProfile::analyze(&t, 0, &[1])
    }

    #[test]
    fn analysis_summarises_column() {
        let p = profile();
        let a = build_analysis(&p);
        assert_eq!(a.column, "salary");
        assert_eq!(a.total_records, 100);
        assert_eq!(a.distinct_values, 9);
        assert!(a.numeric_summary.is_some());
        assert!(!a.findings.is_empty());
        assert!(!a.frequent_values.is_empty());
    }

    #[test]
    fn guideline_covers_all_five_error_types() {
        let p = profile();
        let a = build_analysis(&p);
        let g = build_guideline(&p, &a);
        assert_eq!(g.error_types.len(), 5);
        let types: Vec<ErrorType> = g.error_types.iter().map(|e| e.error_type).collect();
        for ty in ErrorType::ALL {
            assert!(types.contains(&ty), "missing {ty}");
        }
        let text = g.render();
        assert!(text.contains("salary"));
        assert!(text.contains("detection"));
    }

    #[test]
    fn numeric_guideline_mentions_bounds() {
        let p = profile();
        let a = build_analysis(&p);
        let g = build_guideline(&p, &a);
        let outlier = g
            .error_types
            .iter()
            .find(|e| e.error_type == ErrorType::Outlier)
            .unwrap();
        assert!(outlier.detection.contains("flag numeric values outside"));
    }
}
