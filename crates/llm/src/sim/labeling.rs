//! Labelling behaviour of the simulated LLM.
//!
//! The simulated model decides whether a cell is erroneous in two layers:
//!
//! 1. a **heuristic judgment** derived from the column profile — the same
//!    evidence a real LLM extracts from its guideline and in-context samples
//!    (missing placeholders, rare formats, out-of-range numbers, values that
//!    disagree with the empirical dependency on a correlated attribute);
//! 2. an optional **oracle blend** — when the experiment harness supplies the
//!    ground-truth error mask, the simulator answers correctly with the
//!    probability given by its [`crate::LlmProfile`] (per error type, plus the
//!    guideline boost) and otherwise falls back to the heuristic judgment.
//!    This is what lets the reproduction calibrate different backbone models
//!    (Table V) and the guideline ablation (Table IV) without network access.

use super::profiling::ColumnProfile;
use crate::mangle::MangleKind;
use crate::profile::LlmProfile;
use zeroed_table::value::is_missing;
use zeroed_table::{ErrorType, Table};

/// Deterministic pseudo-random draw in `[0, 1)` for a (seed, row, col, salt)
/// tuple, independent of call order.
pub fn cell_draw(seed: u64, row: usize, col: usize, salt: u64) -> f64 {
    let mut h = seed ^ 0x9e3779b97f4a7c15;
    for v in [row as u64, col as u64, salt] {
        h ^= v.wrapping_add(0x9e3779b97f4a7c15).wrapping_add(h << 6).wrapping_add(h >> 2);
        h = h.wrapping_mul(0xbf58476d1ce4e5b9);
        h ^= h >> 27;
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Heuristic cell judgment against the column profile; `true` = looks
/// erroneous. `use_context` enables the cross-attribute dependency check —
/// the per-tuple FM_ED baseline runs with it disabled because it cannot see
/// other tuples.
pub fn heuristic_judgment(
    profile: &ColumnProfile,
    table: &Table,
    row: usize,
    col: usize,
    use_context: bool,
) -> bool {
    let value = table.cell(row, col);
    if is_missing(value) {
        return true;
    }
    // Numeric outlier.
    if let (Some((lo, hi)), Some(x)) = (
        profile.numeric_bounds,
        zeroed_table::value::parse_numeric(value),
    ) {
        if x < lo || x > hi {
            return true;
        }
    }
    // Rare format.
    if profile.pattern_frequency(value) < 0.02 {
        return true;
    }
    // Rare value in a categorical column.
    if profile.is_categorical() && profile.value_frequency(value) < 0.005 {
        return true;
    }
    // Disagreement with the empirical dependency on the correlated attribute.
    if use_context {
        if let Some((det, mapping)) = &profile.fd_mapping {
            let d = table.cell(row, *det).trim().to_lowercase();
            if let Some(expected) = mapping.get(&d) {
                if !expected.is_empty() && value.trim().to_lowercase() != *expected {
                    return true;
                }
            }
        }
    }
    false
}

/// Final label for one cell ("is this an error?"), blending the oracle (when
/// available) with the heuristic judgment according to the model profile.
#[allow(clippy::too_many_arguments)]
pub fn label_cell(
    model: &LlmProfile,
    profile: &ColumnProfile,
    table: &Table,
    row: usize,
    col: usize,
    truth: Option<(bool, Option<ErrorType>)>,
    with_guideline: bool,
    seed: u64,
) -> bool {
    let heuristic = heuristic_judgment(profile, table, row, col, true);
    let Some((is_error, error_type)) = truth else {
        // Zero-knowledge mode: pure heuristic reasoning.
        return heuristic;
    };
    let boost = if with_guideline {
        model.guideline_boost
    } else {
        0.0
    };
    let p_correct = if is_error {
        let base = match error_type {
            Some(ty) => model.recall(ty),
            None => {
                (model.recall_missing
                    + model.recall_typo
                    + model.recall_pattern
                    + model.recall_outlier
                    + model.recall_rule)
                    / 5.0
            }
        };
        (base + boost).min(0.995)
    } else {
        (model.clean_accuracy + boost).min(0.995)
    };
    if cell_draw(seed, row, col, 17) < p_correct {
        is_error
    } else {
        // The model answers incorrectly-or-heuristically: fall back to its
        // heuristic opinion, flipping it when the heuristic happens to agree
        // with the truth (so the error rate matches the profile).
        if heuristic == is_error {
            !is_error
        } else {
            heuristic
        }
    }
}

/// Applies one seeded content corruption to a batch-labelling response (see
/// [`crate::mangle`]). The response contract is arity (one label per
/// requested row), so every kind maps onto an arity scar: a truncated answer
/// list, extra labels beyond the batch, or an empty body. Callers only mangle
/// non-empty batches — an empty request has no answer lines to corrupt.
pub fn mangle_labels(mut labels: Vec<bool>, kind: MangleKind) -> Vec<bool> {
    match kind {
        MangleKind::TruncatedList | MangleKind::SchemaDrift => {
            let keep = labels.len() / 2;
            labels.truncate(keep);
            labels
        }
        MangleKind::WrongArity | MangleKind::HallucinatedColumn => {
            labels.push(false);
            labels.push(true);
            labels
        }
        MangleKind::MalformedJson | MangleKind::EmptyBody => Vec::new(),
    }
}

/// FM_ED-style per-tuple judgment: only single-cell evidence (no dataset
/// context), with reduced effective recall for context-dependent error types.
pub fn detect_tuple_cell(
    model: &LlmProfile,
    profile: &ColumnProfile,
    table: &Table,
    row: usize,
    col: usize,
    truth: Option<(bool, Option<ErrorType>)>,
    seed: u64,
) -> bool {
    let heuristic = {
        let value = table.cell(row, col);
        is_missing(value)
            || (profile.is_categorical() && profile.value_frequency(value) < 0.002)
    };
    let Some((is_error, error_type)) = truth else {
        return heuristic;
    };
    // Context-dependent error types are much harder without dataset context.
    let p_correct = if is_error {
        let scale = match error_type {
            Some(ErrorType::MissingValue) => 1.0,
            Some(ErrorType::Typo) => 0.85,
            Some(ErrorType::PatternViolation) => 0.55,
            Some(ErrorType::Outlier) => 0.45,
            Some(ErrorType::RuleViolation) => 0.2,
            None => 0.6,
        };
        (model
            .recall(error_type.unwrap_or(ErrorType::Typo))
            * scale)
            .min(0.99)
    } else {
        (model.clean_accuracy + 0.015).min(0.99)
    };
    if cell_draw(seed, row, col, 31) < p_correct {
        is_error
    } else if heuristic == is_error {
        !is_error
    } else {
        heuristic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Table, ColumnProfile) {
        let mut rows: Vec<Vec<String>> = (0..200)
            .map(|i| {
                vec![
                    ["Boston", "Denver", "Phoenix", "Boston"][i % 4].to_string(),
                    match i % 4 {
                        0 | 3 => "MA",
                        1 => "CO",
                        _ => "AZ",
                    }
                    .to_string(),
                ]
            })
            .collect();
        rows[5][1] = "".into(); // missing
        rows[9][1] = "CO".into(); // rule violation: Boston paired with CO (i%4==1? index 9 -> 9%4=1 Denver..)
        rows[8][1] = "AZ".into(); // rule violation: Boston (8%4=0) paired with AZ
        let t = Table::new("t", vec!["city".into(), "state".into()], rows).unwrap();
        let p = ColumnProfile::analyze(&t, 1, &[0]);
        (t, p)
    }

    #[test]
    fn heuristics_catch_missing_and_inconsistency() {
        let (t, p) = fixture();
        assert!(heuristic_judgment(&p, &t, 5, 1, true), "missing value");
        assert!(heuristic_judgment(&p, &t, 8, 1, true), "broken dependency");
        assert!(!heuristic_judgment(&p, &t, 0, 1, true), "clean value");
        // Without context the dependency violation is invisible.
        assert!(!heuristic_judgment(&p, &t, 8, 1, false));
    }

    #[test]
    fn oracle_blend_follows_profile_quality() {
        let (t, p) = fixture();
        let strong = LlmProfile::qwen_72b();
        let weak = LlmProfile::gpt_4o_mini();
        // Over many synthetic clean cells, the strong model mislabels fewer.
        let mut strong_wrong = 0;
        let mut weak_wrong = 0;
        for row in 0..200 {
            if row == 5 || row == 8 || row == 9 {
                continue;
            }
            let truth = Some((false, None));
            if label_cell(&strong, &p, &t, row, 1, truth, true, 7) {
                strong_wrong += 1;
            }
            if label_cell(&weak, &p, &t, row, 1, truth, true, 7) {
                weak_wrong += 1;
            }
        }
        assert!(
            strong_wrong < weak_wrong,
            "strong {strong_wrong} vs weak {weak_wrong}"
        );
    }

    #[test]
    fn guideline_boost_improves_error_recall() {
        let (t, p) = fixture();
        let model = LlmProfile::qwen_7b();
        let mut with_g = 0;
        let mut without_g = 0;
        // Use many seeds to estimate recall on a single known error cell.
        for seed in 0..500 {
            let truth = Some((true, Some(ErrorType::RuleViolation)));
            if label_cell(&model, &p, &t, 8, 1, truth, true, seed) {
                with_g += 1;
            }
            if label_cell(&model, &p, &t, 8, 1, truth, false, seed) {
                without_g += 1;
            }
        }
        assert!(with_g >= without_g, "with {with_g} vs without {without_g}");
    }

    #[test]
    fn labels_are_deterministic_per_seed() {
        let (t, p) = fixture();
        let model = LlmProfile::llama_8b();
        let a = label_cell(&model, &p, &t, 3, 1, Some((false, None)), true, 11);
        let b = label_cell(&model, &p, &t, 3, 1, Some((false, None)), true, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn tuple_detection_misses_rule_violations_more_often() {
        let (t, p) = fixture();
        let model = LlmProfile::qwen_72b();
        let mut tuple_hits = 0;
        let mut context_hits = 0;
        for seed in 0..400 {
            let truth = Some((true, Some(ErrorType::RuleViolation)));
            if detect_tuple_cell(&model, &p, &t, 8, 1, truth, seed) {
                tuple_hits += 1;
            }
            if label_cell(&model, &p, &t, 8, 1, truth, true, seed) {
                context_hits += 1;
            }
        }
        assert!(
            tuple_hits < context_hits,
            "tuple {tuple_hits} vs context {context_hits}"
        );
    }

    #[test]
    fn cell_draw_is_uniform_ish() {
        let n = 2_000;
        let mean: f64 = (0..n).map(|i| cell_draw(1, i, 0, 3)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn every_mangle_kind_breaks_label_arity() {
        let healthy = vec![true, false, true, false, true, false];
        for kind in MangleKind::ALL {
            let mangled = mangle_labels(healthy.clone(), kind);
            assert_ne!(mangled.len(), healthy.len(), "{kind:?} kept the arity");
        }
        // Over-arity answers keep the healthy prefix (a trim recovers them).
        let over = mangle_labels(healthy.clone(), MangleKind::WrongArity);
        assert_eq!(&over[..healthy.len()], &healthy[..]);
    }
}
