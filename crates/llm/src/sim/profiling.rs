//! Column profiling used by the simulated LLM's "reasoning".
//!
//! A real LLM grounds its criteria, guidelines and labels in what it can see
//! of the data (sampled tuples) plus the output of the distribution-analysis
//! functions it wrote. The simulated LLM grounds the same decisions in a
//! [`ColumnProfile`]: frequent values and formats, numeric ranges, length
//! statistics, and the majority mapping from the most correlated attribute
//! (an empirical functional dependency).

use std::collections::HashMap;
use zeroed_table::value::{is_missing, parse_numeric};
use zeroed_table::Table;
use zeroed_features::pattern::{generalize, Level};

/// Summary of one attribute's value distribution.
#[derive(Debug, Clone)]
pub struct ColumnProfile {
    /// Column index.
    pub column: usize,
    /// Column name.
    pub name: String,
    /// Number of rows profiled.
    pub total: usize,
    /// value → count.
    pub value_counts: HashMap<String, usize>,
    /// L3 pattern → count.
    pub pattern_counts: HashMap<String, usize>,
    /// Fraction of missing values.
    pub missing_ratio: f64,
    /// Fraction of values that parse as numbers.
    pub numeric_ratio: f64,
    /// Robust numeric bounds (5th/95th percentile) extended by 50% of the
    /// inter-quantile range, when the column is numeric.
    pub numeric_bounds: Option<(f64, f64)>,
    /// `(min, mean, max)` of numeric values.
    pub numeric_summary: Option<(f64, f64, f64)>,
    /// Minimum and maximum character length of non-missing values.
    pub length_range: (usize, usize),
    /// Majority mapping `correlated value → this column's most common value`
    /// for the strongest correlated attribute, along with that attribute's
    /// index. Present only when the mapping is reasonably functional.
    pub fd_mapping: Option<(usize, HashMap<String, String>)>,
}

impl ColumnProfile {
    /// Profiles a column over the whole table. `correlated` is consulted to
    /// build the empirical FD mapping against the strongest correlated
    /// attribute.
    pub fn analyze(table: &Table, column: usize, correlated: &[usize]) -> ColumnProfile {
        let total = table.n_rows();
        let mut value_counts: HashMap<String, usize> = HashMap::new();
        let mut pattern_counts: HashMap<String, usize> = HashMap::new();
        let mut missing = 0usize;
        let mut numerics: Vec<f64> = Vec::new();
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        for row in table.rows() {
            let v = row[column].as_str();
            *value_counts.entry(v.to_string()).or_insert(0) += 1;
            *pattern_counts
                .entry(generalize(v, Level::L3))
                .or_insert(0) += 1;
            if is_missing(v) {
                missing += 1;
            } else {
                let len = v.chars().count();
                min_len = min_len.min(len);
                max_len = max_len.max(len);
                if let Some(x) = parse_numeric(v) {
                    numerics.push(x);
                }
            }
        }
        if min_len == usize::MAX {
            min_len = 0;
        }
        let non_missing = (total - missing).max(1);
        let numeric_ratio = numerics.len() as f64 / non_missing as f64;
        let (numeric_bounds, numeric_summary) = if numeric_ratio >= 0.9 && !numerics.is_empty() {
            let mut sorted = numerics.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let q = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
            let (p5, p95) = (q(0.05), q(0.95));
            let spread = (p95 - p5).abs().max(1e-9);
            let bounds = (p5 - 0.5 * spread, p95 + 0.5 * spread);
            let min = sorted[0];
            let max = sorted[sorted.len() - 1];
            let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
            (Some(bounds), Some((min, mean, max)))
        } else {
            (None, None)
        };

        // Empirical FD against the strongest correlated attribute: for each
        // determinant value record this column's majority value; keep the
        // mapping only when it is strongly functional (majority share ≥ 0.9 on
        // average).
        let fd_mapping = correlated.first().and_then(|&det| {
            let mut pairs: HashMap<String, HashMap<String, usize>> = HashMap::new();
            for row in table.rows() {
                let d = row[det].trim().to_lowercase();
                let v = row[column].trim().to_lowercase();
                if d.is_empty() {
                    continue;
                }
                *pairs.entry(d).or_default().entry(v).or_insert(0) += 1;
            }
            let mut mapping = HashMap::new();
            let mut share_acc = 0.0;
            let mut n_groups = 0usize;
            for (d, dist) in &pairs {
                let total_d: usize = dist.values().sum();
                if total_d < 2 {
                    continue;
                }
                // Break count ties by value so the mapping (and therefore the
                // whole pipeline) is independent of hash-map iteration order.
                let (best_v, best_c) = dist
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then_with(|| a.0.cmp(b.0)))
                    .map(|(v, &c)| (v.clone(), c))
                    .expect("non-empty distribution");
                share_acc += best_c as f64 / total_d as f64;
                n_groups += 1;
                mapping.insert(d.clone(), best_v);
            }
            if n_groups >= 3 && share_acc / n_groups as f64 >= 0.85 {
                Some((det, mapping))
            } else {
                None
            }
        });

        ColumnProfile {
            column,
            name: table.columns()[column].clone(),
            total,
            value_counts,
            pattern_counts,
            missing_ratio: if total == 0 {
                0.0
            } else {
                missing as f64 / total as f64
            },
            numeric_ratio,
            numeric_bounds,
            numeric_summary,
            length_range: (min_len, max_len),
            fd_mapping,
        }
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.value_counts.len()
    }

    /// Relative frequency of one value.
    pub fn value_frequency(&self, value: &str) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.value_counts.get(value).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Relative frequency of a value's L3 pattern.
    pub fn pattern_frequency(&self, value: &str) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let pat = generalize(value, Level::L3);
        *self.pattern_counts.get(&pat).unwrap_or(&0) as f64 / self.total as f64
    }

    /// The `n` most frequent values (descending).
    pub fn top_values(&self, n: usize) -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> = self
            .value_counts
            .iter()
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// The `n` most frequent L3 patterns (descending).
    pub fn top_patterns(&self, n: usize) -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> = self
            .pattern_counts
            .iter()
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Values occurring at most once (typo/outlier candidates), capped at `n`.
    pub fn rare_values(&self, n: usize) -> Vec<String> {
        let mut v: Vec<String> = self
            .value_counts
            .iter()
            .filter(|(_, &c)| c <= 1)
            .map(|(k, _)| k.clone())
            .collect();
        v.sort();
        v.truncate(n);
        v
    }

    /// Whether the column looks categorical (few distinct values).
    pub fn is_categorical(&self) -> bool {
        self.distinct() <= 12.max(self.total / 50)
    }

    /// Whether the column is (predominantly) numeric.
    pub fn is_numeric(&self) -> bool {
        self.numeric_ratio >= 0.9
    }

    /// Patterns that jointly cover at least `coverage` of the rows, most
    /// frequent first.
    pub fn covering_patterns(&self, coverage: f64) -> Vec<String> {
        let mut pats = self.top_patterns(self.pattern_counts.len());
        let mut kept = Vec::new();
        let mut covered = 0usize;
        let target = (coverage * self.total as f64).ceil() as usize;
        for (p, c) in pats.drain(..) {
            kept.push(p);
            covered += c;
            if covered >= target {
                break;
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut rows = Vec::new();
        for i in 0..100 {
            let city = ["Boston", "Denver", "Phoenix", "Boston"][i % 4];
            let state = match city {
                "Boston" => "MA",
                "Denver" => "CO",
                _ => "AZ",
            };
            rows.push(vec![
                city.to_string(),
                state.to_string(),
                format!("{}", 50_000 + (i % 10) * 1_000),
            ]);
        }
        rows[7][2] = "".into();
        Table::new(
            "t",
            vec!["city".into(), "state".into(), "salary".into()],
            rows,
        )
        .unwrap()
    }

    #[test]
    fn profiles_basic_statistics() {
        let t = table();
        let p = ColumnProfile::analyze(&t, 0, &[1]);
        assert_eq!(p.total, 100);
        assert_eq!(p.distinct(), 3);
        assert!(p.is_categorical());
        assert!(!p.is_numeric());
        assert!((p.value_frequency("Boston") - 0.5).abs() < 1e-12);
        assert_eq!(p.top_values(1)[0].0, "Boston");
        assert!(p.missing_ratio < 1e-9);
    }

    #[test]
    fn numeric_profile_has_bounds() {
        let t = table();
        let p = ColumnProfile::analyze(&t, 2, &[0]);
        assert!(p.is_numeric());
        let (lo, hi) = p.numeric_bounds.unwrap();
        assert!(lo < 50_000.0);
        assert!(hi > 59_000.0);
        let (min, mean, max) = p.numeric_summary.unwrap();
        assert!(min <= mean && mean <= max);
        assert!(p.missing_ratio > 0.0);
    }

    #[test]
    fn fd_mapping_reflects_dependency() {
        let t = table();
        let p = ColumnProfile::analyze(&t, 1, &[0]);
        let (det, mapping) = p.fd_mapping.as_ref().expect("state depends on city");
        assert_eq!(*det, 0);
        assert_eq!(mapping.get("boston").map(|s| s.as_str()), Some("ma"));
        assert_eq!(mapping.get("denver").map(|s| s.as_str()), Some("co"));
    }

    #[test]
    fn covering_patterns_and_rare_values() {
        let t = table();
        let p = ColumnProfile::analyze(&t, 2, &[0]);
        let pats = p.covering_patterns(0.95);
        assert!(!pats.is_empty());
        // All salaries share the 5-digit pattern except the injected blank.
        assert!(pats[0].starts_with("D["));
        let rare = p.rare_values(10);
        assert!(rare.contains(&"".to_string()));
    }
}
