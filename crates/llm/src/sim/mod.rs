//! The simulated LLM ([`SimLlm`]).
//!
//! See the crate-level documentation and DESIGN.md for the substitution
//! rationale: the simulator produces the same structured outputs a served
//! model would (criteria, analyses, guidelines, labels, augmented errors),
//! grounded in real data profiling, with labelling fidelity governed by a
//! per-backbone [`LlmProfile`] and an optional ground-truth oracle supplied by
//! the experiment harness. Every call renders the paper's prompt templates and
//! charges a shared [`TokenLedger`].

pub mod augment;
pub mod criteria_gen;
pub mod guideline_gen;
pub mod labeling;
pub mod profiling;

use crate::client::{AttributeContext, DistributionAnalysis, Guideline, LlmClient};
use crate::fault::{FaultKind, FaultSchedule};
use crate::mangle::{MangleKind, MangleSchedule};
use crate::profile::LlmProfile;
use crate::prompts;
use crate::token::TokenLedger;
use parking_lot::Mutex;
use profiling::ColumnProfile;
use std::collections::HashMap;
use std::sync::Arc;
use zeroed_criteria::CriteriaSet;
use zeroed_table::{ErrorMask, ErrorType, Table};

/// Ground-truth information the experiment harness may give the simulator so
/// that its labelling accuracy can be calibrated to a target backbone.
#[derive(Debug, Clone, Default)]
struct Oracle {
    mask: Option<ErrorMask>,
    types: HashMap<(usize, usize), ErrorType>,
}

/// A deterministic simulated LLM implementing [`LlmClient`].
pub struct SimLlm {
    profile: LlmProfile,
    seed: u64,
    ledger: TokenLedger,
    oracle: Oracle,
    /// Multiplier applied to the profile's latency model; `0.0` (the default)
    /// disables the simulated sleep so tests stay instant. Benchmarks enable
    /// it to make scheduling/caching wins measurable in wall-clock.
    latency_scale: f64,
    /// Seeded fault-injection schedule (see [`crate::fault`]). `None` means a
    /// perfectly healthy backend.
    faults: Option<FaultSchedule>,
    /// Seeded content-corruption schedule (see [`crate::mangle`]). `None`
    /// means responses are never mangled.
    mangling: Option<MangleSchedule>,
    /// Per-request attempt marks set through [`LlmClient::note_reask`]:
    /// `salt → attempt`. An absent entry is attempt 0 (the first ask). The
    /// mangle draw folds the attempt in, so a re-ask redraws independently.
    attempts: Mutex<HashMap<u64, u32>>,
    /// Number of first-ask responses this simulator actually corrupted —
    /// the conformance suite's "zero silent drops" reference: every count
    /// here must reappear as a `mangled` count in the repair layer.
    mangled_responses: Mutex<usize>,
    profile_cache: Mutex<HashMap<(String, usize, usize), Arc<ColumnProfile>>>,
}

impl std::fmt::Debug for SimLlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimLlm")
            .field("profile", &self.profile.name)
            .field("seed", &self.seed)
            .field("has_oracle", &self.oracle.mask.is_some())
            .finish()
    }
}

impl SimLlm {
    /// Creates a simulator for the given backbone profile.
    pub fn new(profile: LlmProfile, seed: u64) -> Self {
        Self {
            profile,
            seed,
            ledger: TokenLedger::new(),
            oracle: Oracle::default(),
            latency_scale: 0.0,
            faults: None,
            mangling: None,
            attempts: Mutex::new(HashMap::new()),
            mangled_responses: Mutex::new(0),
            profile_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The paper's default backbone (Qwen2.5-72B).
    pub fn default_model(seed: u64) -> Self {
        Self::new(LlmProfile::qwen_72b(), seed)
    }

    /// Supplies the ground-truth error mask so labelling fidelity follows the
    /// backbone profile (used by the experiment harness; omit for true
    /// zero-knowledge heuristic operation).
    pub fn with_oracle(mut self, mask: ErrorMask) -> Self {
        self.oracle.mask = Some(mask);
        self
    }

    /// Supplies per-cell error types (from the injector's bookkeeping) so the
    /// per-type recalls of the profile apply precisely.
    pub fn with_error_types(
        mut self,
        types: impl IntoIterator<Item = ((usize, usize), ErrorType)>,
    ) -> Self {
        self.oracle.types.extend(types);
        self
    }

    /// Enables simulated serving latency: every call sleeps for
    /// `scale × profile.latency.call_cost(...)` after rendering its prompt
    /// and response. `0.0` disables the sleep; the per-call cost is recorded
    /// in the ledger either way.
    pub fn with_latency_scale(mut self, scale: f64) -> Self {
        self.latency_scale = scale.max(0.0);
        self
    }

    /// Attaches a seeded fault-injection schedule.
    ///
    /// The simulator itself never fails a call: error/timeout decisions are
    /// surfaced through [`LlmClient::injected_fault`] for an orchestration
    /// layer (the `zeroed-runtime` router) to act on *before* executing, while
    /// slow-tail decisions add the schedule's penalty to this backend's
    /// simulated serving latency (recorded in the ledger's sim cost and slept
    /// when [`SimLlm::with_latency_scale`] enables sleeping). Responses and
    /// token charges are unaffected — a slow-tail call is correct, just late.
    pub fn with_faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = Some(schedule);
        self
    }

    /// The attached fault schedule, if any.
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.faults.as_ref()
    }

    /// Attaches a seeded content-corruption schedule (see [`crate::mangle`]).
    ///
    /// Unlike transport faults, mangled calls *succeed*: the response body is
    /// corrupted per the schedule's seeded draw over `(salt, attempt)` and
    /// charged to the ledger at its corrupted size. The FM_ED per-tuple path
    /// ([`LlmClient::detect_tuple`]) is exempt — it is a baseline outside the
    /// pipeline's repair layer, so corrupting it would only measure the
    /// baseline's lack of a repair path, not the pipeline's degradation.
    pub fn with_mangling(mut self, schedule: MangleSchedule) -> Self {
        self.mangling = Some(schedule);
        self
    }

    /// The attached mangle schedule, if any.
    pub fn mangle_schedule(&self) -> Option<&MangleSchedule> {
        self.mangling.as_ref()
    }

    /// How many first-ask responses were actually corrupted so far. The
    /// conformance suite compares this against the repair layer's `mangled`
    /// counters: equality proves no corruption slipped through undetected.
    pub fn mangled_responses(&self) -> usize {
        *self.mangled_responses.lock()
    }

    /// The mangle decision for the request identified by `salt` at its
    /// current attempt mark. Returns `(attempt, kind)`; the caller records
    /// the corruption via [`SimLlm::record_mangled`] only if it actually
    /// applies the transform (degenerate responses with nothing to corrupt
    /// are skipped, so the silent-drop reference counter stays exact).
    fn mangle_decision(&self, salt: u64) -> (u32, Option<MangleKind>) {
        let attempt = self.attempts.lock().get(&salt).copied().unwrap_or(0);
        let kind = self.mangling.as_ref().and_then(|s| s.decide(salt, attempt));
        (attempt, kind)
    }

    /// Bumps the silent-drop reference counter for an applied first-ask
    /// corruption (re-ask corruptions are accounted inside the repair
    /// layer's `defaulted` bucket, not as fresh mangles).
    fn record_mangled(&self, attempt: u32) {
        if attempt == 0 {
            *self.mangled_responses.lock() += 1;
        }
    }

    /// The backbone profile used by this simulator.
    pub fn model_profile(&self) -> &LlmProfile {
        &self.profile
    }

    /// Records one rendered call in the ledger (tokens + simulated latency)
    /// and, when latency simulation is enabled, sleeps for the scaled cost.
    /// `extra` is additional serving latency beyond the profile's token-linear
    /// model — the slow-tail fault penalty. `reask` marks the call as a
    /// repair-layer re-ask, booking its tokens on the ledger's distinct
    /// re-ask line (still included in the main usage).
    fn charge(&self, prompt: &str, response: &str, extra: std::time::Duration, reask: bool) {
        let input = crate::token::count_tokens(prompt);
        let output = crate::token::count_tokens(response);
        if reask {
            self.ledger.record_reask_counts(input, output);
        } else {
            self.ledger.record_counts(input, output);
        }
        let cost = self.profile.latency.call_cost(input, output) + extra;
        self.ledger.record_sim_cost(cost);
        if self.latency_scale > 0.0 {
            std::thread::sleep(cost.mul_f64(self.latency_scale));
        }
    }

    /// The slow-tail latency penalty (if any) the fault schedule injects into
    /// the request identified by `salt`. Error/timeout faults are *not*
    /// applied here — they surface through [`LlmClient::injected_fault`] so
    /// an orchestration layer can reroute.
    fn slow_tail_extra(&self, salt: u64) -> std::time::Duration {
        match &self.faults {
            Some(s) if !s.is_healthy() && s.decide(salt) == Some(FaultKind::SlowTail) => {
                s.slow_tail_penalty()
            }
            _ => std::time::Duration::ZERO,
        }
    }

    fn truth_for(&self, row: usize, col: usize) -> Option<(bool, Option<ErrorType>)> {
        let mask = self.oracle.mask.as_ref()?;
        if row >= mask.n_rows() || col >= mask.n_cols() {
            return None;
        }
        let is_error = mask.get(row, col);
        let ty = self.oracle.types.get(&(row, col)).copied();
        Some((is_error, ty))
    }

    fn column_profile(&self, table: &Table, column: usize, correlated: &[usize]) -> Arc<ColumnProfile> {
        let key = (table.name().to_string(), table.n_rows(), column);
        {
            let cache = self.profile_cache.lock();
            if let Some(p) = cache.get(&key) {
                return Arc::clone(p);
            }
        }
        let profile = Arc::new(ColumnProfile::analyze(table, column, correlated));
        self.profile_cache.lock().insert(key, Arc::clone(&profile));
        profile
    }
}

impl LlmClient for SimLlm {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn ledger(&self) -> &TokenLedger {
        &self.ledger
    }

    fn generate_criteria(&self, ctx: &AttributeContext<'_>) -> CriteriaSet {
        let salt = self.request_salt(ctx.table, Some(ctx.column), ctx.sample_rows);
        let (attempt, mangle) = self.mangle_decision(salt);
        let profile = self.column_profile(ctx.table, ctx.column, ctx.correlated);
        let mut set = criteria_gen::build_criteria(&profile, self.profile.criteria_quality);
        if let Some(kind) = mangle {
            set = criteria_gen::mangle_criteria(set, kind, ctx.table.n_cols());
            self.record_mangled(attempt);
        }
        let prompt = prompts::criteria_prompt(ctx);
        let response = prompts::render_criteria_response(&set);
        self.charge(&prompt, &response, self.slow_tail_extra(salt), attempt > 0);
        set
    }

    fn analyze_distribution(&self, ctx: &AttributeContext<'_>) -> DistributionAnalysis {
        let salt = self.request_salt(ctx.table, Some(ctx.column), ctx.sample_rows);
        let (attempt, mangle) = self.mangle_decision(salt);
        let profile = self.column_profile(ctx.table, ctx.column, ctx.correlated);
        let mut analysis = guideline_gen::build_analysis(&profile);
        if let Some(kind) = mangle {
            analysis = guideline_gen::mangle_analysis(analysis, kind);
            self.record_mangled(attempt);
        }
        let prompt = prompts::analysis_prompt(ctx);
        let response = prompts::render_analysis(&analysis);
        self.charge(&prompt, &response, self.slow_tail_extra(salt), attempt > 0);
        analysis
    }

    fn generate_guideline(
        &self,
        ctx: &AttributeContext<'_>,
        analysis: &DistributionAnalysis,
    ) -> Guideline {
        let salt = self.request_salt(ctx.table, Some(ctx.column), ctx.sample_rows);
        let (attempt, mangle) = self.mangle_decision(salt);
        let profile = self.column_profile(ctx.table, ctx.column, ctx.correlated);
        let mut guideline = guideline_gen::build_guideline(&profile, analysis);
        if let Some(kind) = mangle {
            guideline = guideline_gen::mangle_guideline(guideline, kind);
            self.record_mangled(attempt);
        }
        let prompt = prompts::guideline_prompt(ctx, analysis);
        let response = guideline.render();
        self.charge(&prompt, &response, self.slow_tail_extra(salt), attempt > 0);
        guideline
    }

    fn label_batch(
        &self,
        ctx: &AttributeContext<'_>,
        guideline: Option<&Guideline>,
        rows: &[usize],
    ) -> Vec<bool> {
        let salt = self.request_salt(ctx.table, Some(ctx.column), rows);
        let (attempt, mangle) = self.mangle_decision(salt);
        let profile = self.column_profile(ctx.table, ctx.column, ctx.correlated);
        let mut labels: Vec<bool> = rows
            .iter()
            .map(|&row| {
                labeling::label_cell(
                    &self.profile,
                    &profile,
                    ctx.table,
                    row,
                    ctx.column,
                    self.truth_for(row, ctx.column),
                    guideline.is_some(),
                    self.seed,
                )
            })
            .collect();
        // An empty batch has no answer lines to corrupt; skip it so the
        // silent-drop reference counter only counts real corruptions.
        if let (Some(kind), false) = (mangle, rows.is_empty()) {
            labels = labeling::mangle_labels(labels, kind);
            self.record_mangled(attempt);
        }
        let prompt = prompts::labeling_prompt(ctx, guideline, rows);
        let response = prompts::render_labels_response(&labels);
        self.charge(&prompt, &response, self.slow_tail_extra(salt), attempt > 0);
        labels
    }

    fn refine_criteria(
        &self,
        ctx: &AttributeContext<'_>,
        clean_examples: &[String],
        error_examples: &[String],
        existing: &CriteriaSet,
    ) -> CriteriaSet {
        let salt = self.request_salt(ctx.table, Some(ctx.column), &[]);
        let (attempt, mangle) = self.mangle_decision(salt);
        let profile = self.column_profile(ctx.table, ctx.column, ctx.correlated);
        let mut refined =
            criteria_gen::refine_criteria(&profile, existing, clean_examples, error_examples);
        if let Some(kind) = mangle {
            refined = criteria_gen::mangle_criteria(refined, kind, ctx.table.n_cols());
            self.record_mangled(attempt);
        }
        let prompt = prompts::contrastive_prompt(ctx, clean_examples, error_examples);
        let response = prompts::render_criteria_response(&refined);
        self.charge(&prompt, &response, self.slow_tail_extra(salt), attempt > 0);
        refined
    }

    fn augment_errors(
        &self,
        ctx: &AttributeContext<'_>,
        clean_examples: &[String],
        count: usize,
    ) -> Vec<String> {
        let salt = self.request_salt(ctx.table, Some(ctx.column), &[]);
        let (attempt, mangle) = self.mangle_decision(salt);
        let profile = self.column_profile(ctx.table, ctx.column, ctx.correlated);
        let mut generated = augment::augment_errors(&profile, clean_examples, count, self.seed);
        // A legitimately empty answer (no clean examples / zero count) has no
        // items to corrupt; skip it so the reference counter stays exact.
        if let (Some(kind), false) = (mangle, generated.is_empty()) {
            generated = augment::mangle_values(generated, kind);
            self.record_mangled(attempt);
        }
        let prompt = prompts::augmentation_prompt(ctx, clean_examples, count);
        let response = prompts::render_augment_response(&generated);
        self.charge(&prompt, &response, self.slow_tail_extra(salt), attempt > 0);
        generated
    }

    fn detect_tuple(&self, table: &Table, row: usize) -> Vec<bool> {
        let flags: Vec<bool> = (0..table.n_cols())
            .map(|col| {
                let profile = self.column_profile(table, col, &[]);
                labeling::detect_tuple_cell(
                    &self.profile,
                    &profile,
                    table,
                    row,
                    col,
                    self.truth_for(row, col),
                    self.seed,
                )
            })
            .collect();
        let prompt = prompts::tuple_prompt(table, row);
        let response = prompts::render_tuple_response(&flags);
        let salt = self.request_salt(table, None, &[row]);
        self.charge(&prompt, &response, self.slow_tail_extra(salt), false);
        flags
    }

    fn request_salt(&self, table: &Table, column: Option<usize>, rows: &[usize]) -> u64 {
        // The simulator's answers depend on hidden state a prompt does not
        // capture: the seed (pseudo-random draws hash the *row index*) and
        // the oracle truth of the referenced cells. Fold all of it into the
        // salt so a caching layer can never conflate two requests whose
        // correct responses differ.
        let mut h: u64 = 0x51_7c_c1_b7_27_22_0a_95 ^ self.seed;
        let mut mix = |word: u64| {
            h = (h.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        };
        mix(self.oracle.mask.is_some() as u64);
        let cols: Vec<usize> = match column {
            Some(c) => vec![c],
            None => (0..table.n_cols()).collect(),
        };
        // Fold the column identity in even when `rows` is empty (the
        // refine/augment requests), so each per-attribute request draws its
        // own fault/mangle decision and keeps a distinct re-ask attempt mark.
        for &col in &cols {
            mix(col as u64 + 1);
        }
        for &row in rows {
            mix(row as u64);
            for &col in &cols {
                match self.truth_for(row, col) {
                    None => mix(0),
                    Some((is_error, ty)) => {
                        mix(1 + is_error as u64);
                        mix(ty.map(|t| t as u64 + 1).unwrap_or(0));
                    }
                }
            }
        }
        h
    }

    fn note_reask(&self, salt: u64, attempt: u32) {
        if attempt == 0 {
            self.attempts.lock().remove(&salt);
        } else {
            self.attempts.lock().insert(salt, attempt);
        }
    }

    fn injected_fault(&self, salt: u64) -> Option<FaultKind> {
        self.faults.as_ref().and_then(|s| s.decide(salt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_table::Table;

    fn fixture() -> (Table, ErrorMask) {
        let mut rows: Vec<Vec<String>> = (0..120)
            .map(|i| {
                let city = ["Boston", "Denver", "Phoenix"][i % 3];
                let state = ["MA", "CO", "AZ"][i % 3];
                vec![city.to_string(), state.to_string(), format!("{:05}", 10_000 + (i % 3) * 111)]
            })
            .collect();
        let clean = Table::new(
            "cities",
            vec!["city".into(), "state".into(), "zip".into()],
            rows.clone(),
        )
        .unwrap();
        rows[3][1] = "".into();
        rows[7][2] = "1x0".into();
        rows[11][1] = "AZ".into(); // inconsistent with Phoenix? row 11 % 3 = 2 -> Phoenix/AZ ... choose another
        rows[12][1] = "CO".into(); // row 12 is Boston -> rule violation
        let dirty = Table::new(
            "cities",
            vec!["city".into(), "state".into(), "zip".into()],
            rows,
        )
        .unwrap();
        let mask = ErrorMask::diff(&dirty, &clean).unwrap();
        (dirty, mask)
    }

    fn ctx<'a>(table: &'a Table, column: usize, corr: &'a [usize], samples: &'a [usize]) -> AttributeContext<'a> {
        AttributeContext {
            table,
            column,
            correlated: corr,
            sample_rows: samples,
        }
    }

    #[test]
    fn end_to_end_calls_record_tokens() {
        let (table, mask) = fixture();
        let llm = SimLlm::default_model(3).with_oracle(mask);
        let corr = vec![0usize];
        let samples: Vec<usize> = (0..20).collect();
        let c = ctx(&table, 1, &corr, &samples);
        let criteria = llm.generate_criteria(&c);
        assert!(!criteria.is_empty());
        let analysis = llm.analyze_distribution(&c);
        assert_eq!(analysis.column, "state");
        let guideline = llm.generate_guideline(&c, &analysis);
        assert_eq!(guideline.error_types.len(), 5);
        let labels = llm.label_batch(&c, Some(&guideline), &samples);
        assert_eq!(labels.len(), samples.len());
        let refined = llm.refine_criteria(&c, &["MA".into(), "CO".into()], &["".into()], &criteria);
        assert!(refined.len() >= criteria.len());
        let augmented = llm.augment_errors(&c, &["MA".into(), "CO".into()], 6);
        assert_eq!(augmented.len(), 6);
        let tuple_flags = llm.detect_tuple(&table, 3);
        assert_eq!(tuple_flags.len(), 3);
        let usage = llm.ledger().usage();
        assert!(usage.requests >= 7);
        assert!(usage.input_tokens > usage.output_tokens / 10);
        assert!(usage.output_tokens > 0);
    }

    #[test]
    fn oracle_driven_labels_are_mostly_correct_for_strong_model() {
        let (table, mask) = fixture();
        let llm = SimLlm::default_model(5).with_oracle(mask.clone());
        let corr = vec![0usize];
        let all_rows: Vec<usize> = (0..table.n_rows()).collect();
        let c = ctx(&table, 1, &corr, &all_rows);
        let labels = llm.label_batch(&c, None, &all_rows);
        let correct = all_rows
            .iter()
            .zip(labels.iter())
            .filter(|(&row, &lab)| mask.get(row, 1) == lab)
            .count();
        assert!(
            correct as f64 / all_rows.len() as f64 > 0.9,
            "correct {correct}/{}",
            all_rows.len()
        );
    }

    #[test]
    fn zero_knowledge_mode_still_flags_obvious_errors() {
        let (table, _mask) = fixture();
        let llm = SimLlm::default_model(1); // no oracle
        let corr = vec![0usize];
        let rows = vec![3usize, 0usize];
        let c = ctx(&table, 1, &corr, &rows);
        let labels = llm.label_batch(&c, None, &rows);
        assert!(labels[0], "missing value should be flagged heuristically");
        assert!(!labels[1], "clean value should pass");
    }

    #[test]
    fn mangling_corrupts_responses_and_reasks_redraw() {
        let (table, mask) = fixture();
        let llm = SimLlm::default_model(9)
            .with_oracle(mask)
            .with_mangling(MangleSchedule::uniform(7, 1.0));
        let corr = vec![0usize];
        let rows: Vec<usize> = (0..10).collect();
        let c = ctx(&table, 1, &corr, &rows);
        // rate 1.0: the first ask is always corrupted, and the arity contract
        // of a labelling response is always broken by every mangle kind.
        let labels = llm.label_batch(&c, None, &rows);
        assert_ne!(labels.len(), rows.len());
        assert_eq!(llm.mangled_responses(), 1);
        // A re-ask redraws at attempt 1 and is charged on the re-ask line;
        // it does not count as a fresh first-ask corruption.
        let salt = llm.request_salt(&table, Some(1), &rows);
        llm.note_reask(salt, 1);
        let again = llm.label_batch(&c, None, &rows);
        assert_ne!(again.len(), rows.len(), "rate 1.0 mangles re-asks too");
        assert_eq!(llm.mangled_responses(), 1);
        assert_eq!(llm.ledger().reask_usage().requests, 1);
        llm.note_reask(salt, 0);
        // Degenerate responses with nothing to corrupt are never counted.
        let before = llm.mangled_responses();
        let empty = llm.augment_errors(&c, &[], 5);
        assert!(empty.is_empty());
        assert_eq!(llm.mangled_responses(), before);
        // A healthy schedule never corrupts anything.
        let healthy = SimLlm::default_model(9).with_mangling(MangleSchedule::healthy(7));
        let ok = healthy.label_batch(&c, None, &rows);
        assert_eq!(ok.len(), rows.len());
        assert_eq!(healthy.mangled_responses(), 0);
    }

    #[test]
    fn request_salt_distinguishes_columns_without_rows() {
        let (table, mask) = fixture();
        let llm = SimLlm::default_model(9).with_oracle(mask);
        // The refine/augment requests pass no rows; the salt must still
        // depend on the column so per-attribute requests stay distinct.
        let a = llm.request_salt(&table, Some(0), &[]);
        let b = llm.request_salt(&table, Some(1), &[]);
        assert_ne!(a, b);
    }

    #[test]
    fn determinism_across_identical_clients() {
        let (table, mask) = fixture();
        let corr = vec![0usize];
        let rows: Vec<usize> = (0..40).collect();
        let a = SimLlm::default_model(9).with_oracle(mask.clone());
        let b = SimLlm::default_model(9).with_oracle(mask);
        let ca = ctx(&table, 2, &corr, &rows);
        assert_eq!(a.label_batch(&ca, None, &rows), b.label_batch(&ca, None, &rows));
        assert_eq!(a.name(), "Qwen2.5-72b");
    }
}
