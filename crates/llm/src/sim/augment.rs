//! Semantic error augmentation for the simulated LLM (Algorithm 1 line 25).
//!
//! Given verified clean example values of an attribute, the model fabricates
//! additional *erroneous* values that stay semantically close to the clean
//! ones while exhibiting realistic error mechanisms: character-level typos,
//! missing-value placeholders, format corruption, numeric distortion, and
//! in-domain value swaps (rule-violation-like inconsistencies).

use super::profiling::ColumnProfile;
use crate::mangle::MangleKind;

/// Deterministic hash-based choice in `[0, n)`.
fn pick(seed: u64, salt: u64, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let mut h = seed ^ salt.wrapping_mul(0x9e3779b97f4a7c15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    (h % n as u64) as usize
}

/// Generates `count` erroneous variants of the clean examples.
pub fn augment_errors(
    profile: &ColumnProfile,
    clean_examples: &[String],
    count: usize,
    seed: u64,
) -> Vec<String> {
    if clean_examples.is_empty() || count == 0 {
        return Vec::new();
    }
    let placeholders = ["", "NULL", "N/A", "-"];
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let salt = i as u64;
        let base = &clean_examples[pick(seed, salt, clean_examples.len())];
        let mechanism = pick(seed, salt.wrapping_add(101), 5);
        let corrupted = match mechanism {
            // Missing-value placeholder.
            0 => placeholders[pick(seed, salt.wrapping_add(7), placeholders.len())].to_string(),
            // Typo: substitute or drop one character.
            1 => typo(base, seed, salt),
            // Format corruption: strip separators / append garbage.
            2 => {
                if base.contains([' ', ':', '-', '/']) {
                    base.replace([' ', ':', '-', '/'], "")
                } else {
                    format!("{base}##")
                }
            }
            // Numeric distortion (or case scramble for text).
            3 => {
                if let Some(x) = zeroed_table::value::parse_numeric(base) {
                    format!("{}", x * 100.0)
                } else {
                    base.to_uppercase()
                }
            }
            // In-domain swap: use a *different* clean example, which is
            // erroneous in context (rule-violation-like).
            _ => {
                let other = &clean_examples[pick(seed, salt.wrapping_add(13), clean_examples.len())];
                if other != base {
                    other.clone()
                } else {
                    typo(base, seed, salt.wrapping_add(29))
                }
            }
        };
        // Guarantee the generated value differs from the base clean example.
        if corrupted == *base {
            out.push(format!("{base}x"));
        } else {
            out.push(corrupted);
        }
    }
    // Categorical attributes should not be augmented with free-form garbage
    // only; ensure at least one placeholder is present for balance.
    if profile.is_categorical() && !out.iter().any(|v| v.is_empty()) && out.len() > 2 {
        let last = out.len() - 1;
        out[last] = String::new();
    }
    out
}

/// Applies one seeded content corruption to an augmentation response (see
/// [`crate::mangle`]). The response contract is arity (`values.len()` must
/// equal the requested count), so every kind maps onto an arity scar:
/// truncation, extra hallucinated values, or an empty body. Callers only
/// mangle non-empty responses — an empty healthy answer (no clean examples)
/// has no items to corrupt.
pub fn mangle_values(mut values: Vec<String>, kind: MangleKind) -> Vec<String> {
    match kind {
        MangleKind::TruncatedList | MangleKind::SchemaDrift => {
            let keep = values.len() / 2;
            values.truncate(keep);
            values
        }
        MangleKind::WrongArity | MangleKind::HallucinatedColumn => {
            values.push("value copied from an unrelated attribute".to_string());
            values.push("another fabricated value beyond the requested count".to_string());
            values
        }
        MangleKind::MalformedJson | MangleKind::EmptyBody => Vec::new(),
    }
}

fn typo(base: &str, seed: u64, salt: u64) -> String {
    let chars: Vec<char> = base.chars().collect();
    if chars.is_empty() {
        return "x".to_string();
    }
    let pos = pick(seed, salt.wrapping_add(3), chars.len());
    let mut out = chars.clone();
    if pick(seed, salt.wrapping_add(5), 2) == 0 && out.len() > 1 {
        out.remove(pos);
    } else {
        let replacement = char::from(b'a' + (pick(seed, salt.wrapping_add(9), 26)) as u8);
        out[pos] = replacement;
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_table::Table;

    fn profile() -> ColumnProfile {
        let rows: Vec<Vec<String>> = (0..60)
            .map(|i| vec![["Boston", "Denver", "Phoenix"][i % 3].to_string()])
            .collect();
        let t = Table::new("t", vec!["city".into()], rows).unwrap();
        ColumnProfile::analyze(&t, 0, &[])
    }

    #[test]
    fn produces_requested_count_of_distinct_errors() {
        let p = profile();
        let clean = vec!["Boston".to_string(), "Denver".to_string(), "Phoenix".to_string()];
        let errors = augment_errors(&p, &clean, 20, 5);
        assert_eq!(errors.len(), 20);
        // Every generated value differs from the clean example it was based on
        // is hard to check directly, but none should equal *all* clean values.
        assert!(errors.iter().any(|e| !clean.contains(e)));
    }

    #[test]
    fn deterministic_given_seed() {
        let p = profile();
        let clean = vec!["Boston".to_string(), "Denver".to_string()];
        assert_eq!(
            augment_errors(&p, &clean, 10, 3),
            augment_errors(&p, &clean, 10, 3)
        );
        assert_ne!(
            augment_errors(&p, &clean, 10, 3),
            augment_errors(&p, &clean, 10, 4)
        );
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let p = profile();
        assert!(augment_errors(&p, &[], 5, 1).is_empty());
        assert!(augment_errors(&p, &["x".into()], 0, 1).is_empty());
    }

    #[test]
    fn every_mangle_kind_breaks_the_arity_contract() {
        let p = profile();
        let clean = vec!["Boston".to_string(), "Denver".to_string()];
        let count = 8;
        let healthy = augment_errors(&p, &clean, count, 5);
        assert_eq!(healthy.len(), count);
        for kind in MangleKind::ALL {
            let mangled = mangle_values(healthy.clone(), kind);
            assert_ne!(mangled.len(), count, "{kind:?} kept the arity intact");
        }
        // A single-value response truncates to an (invalid) empty one.
        assert!(mangle_values(vec!["x".into()], MangleKind::TruncatedList).is_empty());
    }
}
