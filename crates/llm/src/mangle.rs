//! Seeded, deterministic *content*-fault injection for simulated LLM backends.
//!
//! [`crate::FaultSchedule`] models transport pathologies: a request errors,
//! times out, or lands in a latency slow-tail. Real LLM serving has a second,
//! nastier failure axis — the request *succeeds* but the body is wrong:
//! truncated lists, malformed or partially-emitted JSON, hallucinated column
//! names, wrong-arity answers, schema drift, or an empty body. A
//! [`MangleSchedule`] decides, purely as a function of its own seed, the
//! request's hidden-state salt ([`crate::LlmClient::request_salt`]) and the
//! attempt number, whether a given response is corrupted and how.
//!
//! Keying off the salt (rather than a call counter) keeps runs reproducible
//! regardless of scheduling: the same request is mangled the same way no
//! matter which worker thread issues it, in which execution mode, or through
//! which router backend — provided every response-equivalent backend carries
//! the same schedule. Folding the attempt number gives re-asks an independent
//! draw: a repair layer that re-asks a mangled request gets a fresh (usually
//! healthy, occasionally re-mangled) response, which is exactly how retry
//! against a flaky serving stack behaves.
//!
//! The simulator stays infallible at the transport level: a mangled call
//! still "succeeds" and is charged to the token ledger at the corrupted
//! body's size. Detecting and repairing the corruption is the caller's
//! burden — the repair/re-ask layer in `zeroed-core` — mirroring the
//! permissive-environment discipline: the simulation is plausible, the
//! pipeline carries the correctness load.

use serde::{Deserialize, Serialize};

/// One kind of injected response corruption.
///
/// Every kind maps, per stage, onto a typed transform that always leaves a
/// detectable scar (a value that cannot pass that stage's validator), so the
/// repair layer's `mangled == repaired + reasked + defaulted` accounting
/// reconciles exactly — no corruption is silently indistinguishable from a
/// healthy answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MangleKind {
    /// The response cut off mid-list: trailing items are missing and the last
    /// emitted item is broken (an unnamed criterion, a short label vector, a
    /// guideline covering only the first error types).
    TruncatedList,
    /// The body failed to parse at all (broken JSON, interleaved prose).
    /// Nothing is salvageable; the typed representation is a sentinel value
    /// that carries no usable content.
    MalformedJson,
    /// The model answered about an attribute that does not exist: column
    /// names/indices in the response point outside the schema.
    HallucinatedColumn,
    /// The response has the wrong arity: more items than asked for
    /// (duplicated entries, extra labels) on list-shaped stages, inconsistent
    /// counts on scalar-shaped ones.
    WrongArity,
    /// The response is well-formed under the *wrong* schema: keys renamed,
    /// entries reordered, identifiers drifted out of the expected namespace.
    SchemaDrift,
    /// The model returned an empty body (stop-token on the first position,
    /// content filter, zero-length completion).
    EmptyBody,
}

impl MangleKind {
    /// All kinds, in a fixed order (the order `decide` draws from).
    pub const ALL: [MangleKind; 6] = [
        MangleKind::TruncatedList,
        MangleKind::MalformedJson,
        MangleKind::HallucinatedColumn,
        MangleKind::WrongArity,
        MangleKind::SchemaDrift,
        MangleKind::EmptyBody,
    ];
}

/// A seeded per-client response-corruption schedule.
///
/// `rate` is the probability that a given `(salt, attempt)` pair is mangled;
/// the kind is a second independent uniform draw over [`MangleKind::ALL`].
/// The draw is a deterministic hash of `(seed, salt, attempt)` using a
/// different mixing constant than [`crate::FaultSchedule`], so transport and
/// content faults hit (statistically) independent request sets even when both
/// schedules share a seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MangleSchedule {
    /// Seed separating this client's corruption pattern from others'.
    pub seed: u64,
    /// Probability that a response is corrupted.
    pub rate: f64,
}

impl MangleSchedule {
    /// A schedule that never corrupts anything.
    pub fn healthy(seed: u64) -> Self {
        Self { seed, rate: 0.0 }
    }

    /// A schedule corrupting `rate` of responses, kinds drawn uniformly.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        Self { seed, rate }
    }

    /// Whether this schedule can ever corrupt a response.
    pub fn is_healthy(&self) -> bool {
        self.rate <= 0.0
    }

    /// Deterministically decides whether the response to the request
    /// identified by `salt`, on its `attempt`-th issue (0 = first ask,
    /// 1 = the repair layer's re-ask), is corrupted — and how. `None` is a
    /// healthy response.
    pub fn decide(&self, salt: u64, attempt: u32) -> Option<MangleKind> {
        if self.is_healthy() {
            return None;
        }
        // splitmix64 over (seed, salt, attempt) — the same generator as
        // `FaultSchedule::decide` but seeded through a different odd
        // constant, so content faults decorrelate from transport faults.
        let mut x = self
            .seed
            .wrapping_mul(0xa076_1d64_78bd_642f)
            .wrapping_add(salt)
            .wrapping_add((attempt as u64).wrapping_mul(0xe703_7ed1_a0b4_28db));
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.rate {
            return None;
        }
        // Second independent draw for the kind: one more mixing round over
        // the already-whitened state.
        let mut k = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
        k ^= k >> 29;
        Some(MangleKind::ALL[(k % MangleKind::ALL.len() as u64) as usize])
    }
}

impl Default for MangleSchedule {
    fn default() -> Self {
        Self::healthy(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_schedule_never_mangles() {
        let s = MangleSchedule::healthy(9);
        assert!(s.is_healthy());
        for salt in 0..1_000u64 {
            assert_eq!(s.decide(salt, 0), None);
            assert_eq!(s.decide(salt, 1), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_in_seed_salt_and_attempt() {
        let s = MangleSchedule::uniform(3, 0.5);
        for salt in 0..200u64 {
            assert_eq!(s.decide(salt, 0), s.decide(salt, 0));
            assert_eq!(s.decide(salt, 1), s.decide(salt, 1));
        }
        let other = MangleSchedule { seed: 4, ..s };
        let differs = (0..200u64).any(|salt| s.decide(salt, 0) != other.decide(salt, 0));
        assert!(differs, "seeds must separate corruption patterns");
    }

    #[test]
    fn reask_attempt_redraws_independently() {
        let s = MangleSchedule::uniform(7, 0.5);
        let differs = (0..200u64).any(|salt| s.decide(salt, 0) != s.decide(salt, 1));
        assert!(differs, "attempt must be folded into the draw");
        // At rate 0.5, most first-attempt mangles must clear on re-ask.
        let mangled: Vec<u64> = (0..2_000u64)
            .filter(|&salt| s.decide(salt, 0).is_some())
            .collect();
        let recovered = mangled
            .iter()
            .filter(|&&salt| s.decide(salt, 1).is_none())
            .count();
        assert!(
            recovered * 3 > mangled.len(),
            "re-asks must usually draw healthy: {recovered}/{}",
            mangled.len()
        );
    }

    #[test]
    fn rate_and_kind_distribution_are_approximately_uniform() {
        let s = MangleSchedule::uniform(11, 0.5);
        let n = 12_000u64;
        let mut kind_counts = std::collections::HashMap::new();
        let mut mangled = 0usize;
        for salt in 0..n {
            if let Some(kind) = s.decide(salt.wrapping_mul(0x1234_5678_9abc_def1), 0) {
                mangled += 1;
                *kind_counts.entry(kind).or_insert(0usize) += 1;
            }
        }
        let frac = mangled as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "overall rate off: {frac}");
        for kind in MangleKind::ALL {
            let share = kind_counts[&kind] as f64 / mangled as f64;
            assert!(
                (share - 1.0 / 6.0).abs() < 0.05,
                "kind {kind:?} share off: {share}"
            );
        }
    }

    #[test]
    fn mangle_draw_decorrelates_from_fault_draw() {
        // Same seed on both schedules: the request sets they hit must not
        // coincide (the whole point of the distinct mixing constant).
        let m = MangleSchedule::uniform(5, 0.3);
        let f = crate::FaultSchedule {
            seed: 5,
            error_rate: 0.3,
            timeout_rate: 0.0,
            slow_tail_rate: 0.0,
            slow_tail_ms: 0.0,
        };
        let n = 4_000u64;
        let both = (0..n)
            .filter(|&salt| m.decide(salt, 0).is_some() && f.decide(salt).is_some())
            .count();
        let frac = both as f64 / n as f64;
        // Independent 0.3 × 0.3 ≈ 0.09; perfectly correlated would be 0.3.
        assert!(frac < 0.15, "mangle and fault draws correlate: {frac}");
    }
}
