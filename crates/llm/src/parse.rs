//! Lenient parsers for rendered stage responses.
//!
//! The simulated LLM renders every structured answer as the text a served
//! model would produce ([`crate::prompts`]): labelling answers as numbered
//! `clean`/`error` lines, augmentation answers as one value per line,
//! criteria as `def is_clean_…(row, attr):` function listings, and the
//! distribution analysis as a key–value summary block. These parsers walk
//! the *text* back into typed values, tolerating everything a corrupted or
//! truncated response can throw at them: garbage bytes, missing markers,
//! half lines, interleaved noise.
//!
//! The contract — exercised by the byte-mutation fuzz tests below — is that
//! no input, however malformed, panics a parser. Malformed input degrades to
//! *fewer* parsed items (possibly none), which the pipeline's repair layer
//! then treats like any other arity violation: repair, re-ask, or default.
//! Parsers never invent items that the text does not contain.

/// Parses a batch-labelling response: numbered `clean`/`error` lines
/// (see [`crate::prompts::render_labels_response`]).
///
/// A line counts as an answer when it contains `error` or `clean` (case
/// insensitive); lines with neither marker — or with both, which is
/// ambiguous — are skipped. Truncated or noisy responses therefore yield a
/// short answer vector, which the repair layer catches as an arity scar.
pub fn parse_labels(text: &str) -> Vec<bool> {
    text.lines()
        .filter_map(|line| {
            let lower = line.to_ascii_lowercase();
            match (lower.contains("error"), lower.contains("clean")) {
                (true, false) => Some(true),
                (false, true) => Some(false),
                _ => None,
            }
        })
        .collect()
}

/// Parses an error-augmentation response: one fabricated value per line
/// (see [`crate::prompts::render_augment_response`]).
///
/// Augmented values may legitimately be empty strings (missing-value
/// placeholders), so blank lines are kept — only an entirely empty body
/// parses to no values.
pub fn parse_values(text: &str) -> Vec<String> {
    if text.is_empty() {
        return Vec::new();
    }
    text.lines().map(str::to_string).collect()
}

/// Parses the function names out of a criteria response: every
/// `def name(…` line yields its `name`
/// (see [`crate::prompts::render_criteria_response`]).
///
/// Anything between `def ` and the first `(` is taken verbatim (trimmed);
/// lines without both markers are ignored. Drifted names — ones that lost
/// the `is_clean_` prefix — are still extracted, so the repair layer can
/// see (and re-prefix) them instead of losing the criterion.
pub fn parse_criteria_names(text: &str) -> Vec<String> {
    text.lines()
        .filter_map(|line| {
            let rest = line.trim_start().strip_prefix("def ")?;
            let name = rest.split('(').next()?.trim();
            if name.is_empty() {
                None
            } else {
                Some(name.to_string())
            }
        })
        .collect()
}

/// Summary counts recovered from a rendered distribution analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AnalysisSummary {
    /// `Total records: N`, if present and numeric.
    pub total_records: Option<usize>,
    /// `Distinct values: N`, if present and numeric.
    pub distinct_values: Option<usize>,
    /// `Missing values: X%` as a ratio in `[0, 1]`, if present and numeric.
    pub missing_ratio: Option<f64>,
}

/// Parses the key–value header of a distribution-analysis response
/// (see [`crate::prompts::render_analysis`]).
///
/// Each field is recovered independently; a corrupted line simply leaves
/// its field `None`. A non-finite or out-of-range percentage is treated as
/// absent rather than trusted.
pub fn parse_analysis_summary(text: &str) -> AnalysisSummary {
    let mut summary = AnalysisSummary::default();
    for line in text.lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match key.trim() {
            "Total records" => summary.total_records = value.parse().ok(),
            "Distinct values" => summary.distinct_values = value.parse().ok(),
            "Missing values" => {
                summary.missing_ratio = value
                    .strip_suffix('%')
                    .and_then(|v| v.trim().parse::<f64>().ok())
                    .map(|pct| pct / 100.0)
                    .filter(|r| r.is_finite() && (0.0..=1.0).contains(r));
            }
            _ => {}
        }
    }
    summary
}

/// Parses the FM_ED per-tuple response: whitespace-separated `yes`/`no`
/// tokens (see [`crate::prompts::render_tuple_response`]). Unknown tokens
/// are skipped.
pub fn parse_tuple_flags(text: &str) -> Vec<bool> {
    text.split_whitespace()
        .filter_map(|tok| match tok.to_ascii_lowercase().as_str() {
            "yes" => Some(true),
            "no" => Some(false),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompts;

    #[test]
    fn round_trips_healthy_responses() {
        let labels = vec![true, false, false, true];
        assert_eq!(
            parse_labels(&prompts::render_labels_response(&labels)),
            labels
        );

        let values = vec!["7:45 am".to_string(), String::new(), "N/A".to_string()];
        assert_eq!(
            parse_values(&prompts::render_augment_response(&values)),
            values
        );

        let mut set = zeroed_criteria::CriteriaSet::new(0);
        for name in ["is_clean_city_not_missing", "is_clean_city_format"] {
            set.criteria.push(zeroed_criteria::Criterion::new(
                name,
                "rationale",
                zeroed_criteria::Check::NotMissing,
            ));
        }
        assert_eq!(
            parse_criteria_names(&prompts::render_criteria_response(&set)),
            vec!["is_clean_city_not_missing", "is_clean_city_format"]
        );

        let flags = vec![false, true, false];
        assert_eq!(
            parse_tuple_flags(&prompts::render_tuple_response(&flags)),
            flags
        );
    }

    #[test]
    fn parses_analysis_header_fields_independently() {
        let text = "**Analysis of 'city'**\nTotal records: 120\nDistinct values: 3\nMissing values: 2.50%\n";
        let s = parse_analysis_summary(text);
        assert_eq!(s.total_records, Some(120));
        assert_eq!(s.distinct_values, Some(3));
        assert!((s.missing_ratio.unwrap() - 0.025).abs() < 1e-12);
        // A corrupted percentage is dropped, the other fields survive.
        let bad = "Total records: 120\nDistinct values: x\nMissing values: NaN%\n";
        let s = parse_analysis_summary(bad);
        assert_eq!(s.total_records, Some(120));
        assert_eq!(s.distinct_values, None);
        assert_eq!(s.missing_ratio, None);
    }

    #[test]
    fn ambiguous_or_noisy_lines_are_skipped_not_guessed() {
        assert_eq!(parse_labels("1. clean error\n2. ???\n3. error"), vec![true]);
        assert!(parse_criteria_names("def (row, attr):\nreturn 1\n").is_empty());
        assert!(parse_tuple_flags("maybe perhaps").is_empty());
        assert!(parse_values("").is_empty());
    }

    /// Deterministic splitmix64 stream for the fuzz mutations.
    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Applies `n` seeded byte-level mutations (overwrite, insert, delete,
    /// truncate) to a well-formed response, then repairs it back to UTF-8
    /// lossily — exactly what a transport layer handing us corrupted bytes
    /// would do.
    fn mutate(text: &str, seed: u64, n: usize) -> String {
        let mut draw = rng(seed);
        let mut bytes = text.as_bytes().to_vec();
        for _ in 0..n {
            if bytes.is_empty() {
                bytes.push((draw() % 256) as u8);
                continue;
            }
            let pos = (draw() as usize) % bytes.len();
            match draw() % 4 {
                0 => bytes[pos] = (draw() % 256) as u8,
                1 => bytes.insert(pos, (draw() % 256) as u8),
                2 => {
                    bytes.remove(pos);
                }
                _ => bytes.truncate(pos),
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    #[test]
    fn mutated_responses_never_panic_any_parser() {
        let labels = prompts::render_labels_response(&[true, false, true, false, true]);
        let values = prompts::render_augment_response(&[
            "7:45 am".into(),
            "NULL".into(),
            "Boston##".into(),
        ]);
        let mut set = zeroed_criteria::CriteriaSet::new(1);
        set.criteria.push(zeroed_criteria::Criterion::new(
            "is_clean_city_not_missing",
            "values should be present",
            zeroed_criteria::Check::NotMissing,
        ));
        let criteria = prompts::render_criteria_response(&set);
        let analysis =
            "**Analysis of 'city'**\nTotal records: 120\nDistinct values: 3\nMissing values: 2.50%\n";
        let tuple = prompts::render_tuple_response(&[true, false, false]);

        for seed in 0..200u64 {
            for &n in &[1usize, 4, 16, 64] {
                // Parsed output may shrink but never exceeds what the text
                // holds, and no input panics.
                let l = parse_labels(&mutate(&labels, seed, n));
                assert!(l.len() <= labels.lines().count());
                let _ = parse_values(&mutate(&values, seed ^ 1, n));
                let c = parse_criteria_names(&mutate(&criteria, seed ^ 2, n));
                assert!(c.iter().all(|name| !name.is_empty()));
                let s = parse_analysis_summary(&mutate(analysis, seed ^ 3, n));
                if let Some(r) = s.missing_ratio {
                    assert!(r.is_finite() && (0.0..=1.0).contains(&r));
                }
                let _ = parse_tuple_flags(&mutate(&tuple, seed ^ 4, n));
            }
        }
    }
}
