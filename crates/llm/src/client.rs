//! The [`LlmClient`] trait and the structured request/response types shared by
//! the ZeroED pipeline, the FM_ED baseline and the simulated model.

use crate::token::TokenLedger;
use serde::{Deserialize, Serialize};
use zeroed_criteria::CriteriaSet;
use zeroed_table::{ErrorType, Table};

/// Everything an LLM call needs to know about the attribute it is working on.
#[derive(Debug, Clone, Copy)]
pub struct AttributeContext<'a> {
    /// The dirty table being cleaned.
    pub table: &'a Table,
    /// Index of the attribute under consideration.
    pub column: usize,
    /// Indices of the attribute's top correlated attributes (by NMI), used to
    /// provide cross-attribute context in prompts and reasoning.
    pub correlated: &'a [usize],
    /// Row indices of the representative samples selected by clustering.
    pub sample_rows: &'a [usize],
}

impl<'a> AttributeContext<'a> {
    /// Name of the attribute.
    pub fn column_name(&self) -> &str {
        &self.table.columns()[self.column]
    }

    /// Serialises one sample row restricted to this attribute and its
    /// correlated attributes — the batch format used in labelling prompts.
    pub fn serialize_row(&self, row: usize) -> String {
        let mut parts = vec![format!(
            "{}: {}",
            self.column_name(),
            self.table.cell(row, self.column)
        )];
        for &q in self.correlated {
            parts.push(format!(
                "{}: {}",
                self.table.columns()[q],
                self.table.cell(row, q)
            ));
        }
        parts.join(" | ")
    }
}

/// The outcome of executing the LLM-written distribution-analysis functions
/// over the full dataset (paper Fig. 5, step 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistributionAnalysis {
    /// Attribute the analysis describes.
    pub column: String,
    /// Total number of records analysed.
    pub total_records: usize,
    /// Number of distinct values.
    pub distinct_values: usize,
    /// Fraction of missing values.
    pub missing_ratio: f64,
    /// Most frequent values with their counts.
    pub frequent_values: Vec<(String, usize)>,
    /// Rare values (candidates for outliers/typos).
    pub rare_values: Vec<String>,
    /// Most frequent generalised formats with their counts.
    pub frequent_patterns: Vec<(String, usize)>,
    /// `(min, mean, max)` for numeric attributes.
    pub numeric_summary: Option<(f64, f64, f64)>,
    /// Free-text findings, one line per analysis perspective.
    pub findings: Vec<String>,
}

/// Guidance for detecting one error type on one attribute.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorTypeGuide {
    /// Which error type this entry covers.
    pub error_type: ErrorType,
    /// Concrete example values that would be erroneous.
    pub examples: Vec<String>,
    /// Likely causes.
    pub causes: String,
    /// How to detect this error type on this attribute.
    pub detection: String,
}

/// The attribute-specific error-detection guideline produced by the two-step
/// reasoning process (paper §III-C).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Guideline {
    /// Attribute the guideline applies to.
    pub column: String,
    /// Natural-language explanation of the attribute's meaning.
    pub explanation: String,
    /// Per-error-type guidance.
    pub error_types: Vec<ErrorTypeGuide>,
}

impl Guideline {
    /// Renders the guideline as the text block inserted into labelling
    /// prompts.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Attribute '{}': {}\n\nError types and analysis:\n",
            self.column, self.explanation
        );
        for (i, guide) in self.error_types.iter().enumerate() {
            out.push_str(&format!(
                "{}. {}\n   - examples: {}\n   - causes: {}\n   - detection: {}\n",
                i + 1,
                guide.error_type,
                guide.examples.join(", "),
                guide.causes,
                guide.detection
            ));
        }
        out
    }
}

/// The interface between ZeroED and a large language model.
///
/// Every method corresponds to one prompt family in the paper. Implementations
/// must be deterministic for a fixed seed so that experiments are
/// reproducible, and must account for their token usage in [`LlmClient::ledger`].
pub trait LlmClient: Send + Sync {
    /// Model name (e.g. `Qwen2.5-72b`).
    fn name(&self) -> &str;

    /// The shared token ledger for this client.
    fn ledger(&self) -> &TokenLedger;

    /// Reasons about error causes for an attribute and emits executable
    /// error-checking criteria (paper §III-B, Fig. 4).
    fn generate_criteria(&self, ctx: &AttributeContext<'_>) -> CriteriaSet;

    /// Writes and "executes" data-distribution analysis functions for an
    /// attribute, returning the aggregated analysis (paper Fig. 5, step 1).
    fn analyze_distribution(&self, ctx: &AttributeContext<'_>) -> DistributionAnalysis;

    /// Generates the attribute-specific error-detection guideline from the
    /// distribution analysis and representative samples (paper Fig. 5, step 2).
    fn generate_guideline(
        &self,
        ctx: &AttributeContext<'_>,
        analysis: &DistributionAnalysis,
    ) -> Guideline;

    /// Labels a batch of sampled cells in context; `true` marks an error.
    /// `guideline` is `None` in the "w/o Guid." ablation.
    fn label_batch(
        &self,
        ctx: &AttributeContext<'_>,
        guideline: Option<&Guideline>,
        rows: &[usize],
    ) -> Vec<bool>;

    /// Refines an attribute's criteria through contrastive in-context
    /// learning, given examples of values labelled clean and erroneous
    /// (Algorithm 1 lines 4–7).
    fn refine_criteria(
        &self,
        ctx: &AttributeContext<'_>,
        clean_examples: &[String],
        error_examples: &[String],
        existing: &CriteriaSet,
    ) -> CriteriaSet;

    /// Generates additional realistic error values for an attribute, based on
    /// verified clean examples (Algorithm 1 line 25).
    fn augment_errors(
        &self,
        ctx: &AttributeContext<'_>,
        clean_examples: &[String],
        count: usize,
    ) -> Vec<String>;

    /// FM_ED-style per-tuple detection: answers "is there an error in this
    /// tuple?" for every attribute of one tuple, without any dataset-level
    /// context. Returns one flag per column (`true` = error).
    fn detect_tuple(&self, table: &Table, row: usize) -> Vec<bool>;

    /// The model identity a caching layer folds into its content-addressed
    /// request keys (and persists with stored responses).
    ///
    /// Defaults to [`LlmClient::name`]. Composite clients whose *responses*
    /// are those of an underlying model override this: the multi-backend
    /// router in `zeroed-runtime` answers with whatever its
    /// response-equivalent backends answer, so it reports the backends'
    /// identity rather than its own `router[...]` display name — a routed run
    /// and a single-backend run then share cache entries (and cross-process
    /// store entries), which is what makes warm starts work across execution
    /// modes.
    fn cache_identity(&self) -> &str {
        self.name()
    }

    /// Hash of any *hidden* per-request state a caching layer must fold into
    /// its content-addressed request keys.
    ///
    /// A served model at temperature 0 is a pure function of the prompt, so
    /// the default is `0` (prompt content alone identifies the response). The
    /// simulated model is not: its answers additionally depend on its seed and
    /// on the ground-truth oracle for the referenced cells, so it overrides
    /// this to hash that state. Without the override, two content-identical
    /// requests about different cells could share a cache entry and break the
    /// bit-identical-to-sequential guarantee of `zeroed-runtime`.
    ///
    /// `column` is `None` for whole-tuple requests (FM_ED).
    fn request_salt(&self, table: &Table, column: Option<usize>, rows: &[usize]) -> u64 {
        let _ = (table, column, rows);
        0
    }

    /// Marks the request identified by `salt` as being re-issued on
    /// `attempt` (1 = the repair layer's single bounded re-ask; 0 clears the
    /// mark once the re-ask returns).
    ///
    /// A served client needs no notion of attempts — retrying simply issues
    /// the same request again — so the default is a no-op. The simulator
    /// overrides it: its seeded [`crate::MangleSchedule`] folds the attempt
    /// number into the corruption draw, so a re-ask of a mangled request
    /// redraws independently (usually healthy, occasionally re-mangled), and
    /// its ledger books the re-ask's tokens on the distinct `reask` line.
    /// Composite clients forward the mark: a caching layer to its inner
    /// client, the multi-backend router to *all* backends (any of them may
    /// end up executing the re-ask).
    fn note_reask(&self, salt: u64, attempt: u32) {
        let _ = (salt, attempt);
    }

    /// Simulated-fault probe for the request identified by `salt` (the value
    /// [`LlmClient::request_salt`] returns for it).
    ///
    /// Orchestration layers — in particular the multi-backend router in
    /// `zeroed-runtime` — consult this *before* executing a request so a
    /// backend scheduled to error or time out can be skipped, counted against
    /// its circuit breaker and failed over deterministically. The default is
    /// `None` (a served client's failures are real, not injected); the
    /// simulator answers from its seeded [`crate::FaultSchedule`], which keys
    /// the decision off the salt so runs stay reproducible regardless of
    /// scheduling.
    fn injected_fault(&self, salt: u64) -> Option<crate::FaultKind> {
        let _ = salt;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_serialization_includes_correlated_attributes() {
        let table = Table::new(
            "t",
            vec!["name".into(), "gender".into(), "salary".into()],
            vec![vec!["Bob".into(), "M".into(), "80000".into()]],
        )
        .unwrap();
        let corr = vec![1usize];
        let ctx = AttributeContext {
            table: &table,
            column: 0,
            correlated: &corr,
            sample_rows: &[0],
        };
        assert_eq!(ctx.column_name(), "name");
        assert_eq!(ctx.serialize_row(0), "name: Bob | gender: M");
    }

    #[test]
    fn guideline_rendering_mentions_every_error_type() {
        let g = Guideline {
            column: "zip".into(),
            explanation: "US postal code".into(),
            error_types: vec![
                ErrorTypeGuide {
                    error_type: ErrorType::MissingValue,
                    examples: vec!["".into(), "N/A".into()],
                    causes: "form left blank".into(),
                    detection: "flag empty or placeholder values".into(),
                },
                ErrorTypeGuide {
                    error_type: ErrorType::PatternViolation,
                    examples: vec!["9021".into()],
                    causes: "truncated on import".into(),
                    detection: "values must be exactly five digits".into(),
                },
            ],
        };
        let text = g.render();
        assert!(text.contains("missing value"));
        assert!(text.contains("pattern violation"));
        assert!(text.contains("five digits"));
    }
}
