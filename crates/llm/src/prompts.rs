//! Prompt templates.
//!
//! These reproduce the prompt structures described in the paper (Fig. 5 and
//! §III-B/C/D): criteria-reasoning prompts, distribution-analysis prompts,
//! guideline-generation prompts, batched labelling prompts, contrastive
//! refinement prompts, error-augmentation prompts, and the single-tuple
//! prompt used by the FM_ED baseline. The simulated LLM renders them for
//! every call so that token accounting matches what a real deployment would
//! send and receive.

use crate::client::{AttributeContext, DistributionAnalysis, Guideline};

/// Standard description of the five common error types, inserted into
/// criteria-reasoning and guideline-generation prompts.
pub const ERROR_DESCRIPTIONS: &str = "Common error types:\n\
 1. Missing values: empty fields or null placeholders such as 'NULL', 'N/A' or '-'.\n\
 2. Typos: misspellings or character-level corruptions of otherwise valid values.\n\
 3. Pattern violations: values whose format differs from the attribute's expected format.\n\
 4. Outliers: values far outside the attribute's usual distribution or domain.\n\
 5. Rule violations: values inconsistent with related attributes (e.g. broken functional dependencies).";

fn serialize_samples(ctx: &AttributeContext<'_>, max_rows: usize) -> String {
    ctx.sample_rows
        .iter()
        .take(max_rows)
        .map(|&r| ctx.serialize_row(r))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Prompt asking the model to reason about error causes and emit executable
/// error-checking criteria for one attribute (paper §III-B).
pub fn criteria_prompt(ctx: &AttributeContext<'_>) -> String {
    format!(
        "You are a top data scientist in data cleaning. Reason about the possible error causes \
for the attribute '{attr}' of the '{table}' table and write executable error-checking \
functions. Each function takes a row and the attribute name, and returns true when the value \
looks clean with respect to one specific error reason.\n\n{errors}\n\nSampled tuples:\n{samples}\n\n\
Return only the functions.",
        attr = ctx.column_name(),
        table = ctx.table.name(),
        errors = ERROR_DESCRIPTIONS,
        samples = serialize_samples(ctx, 20),
    )
}

/// Prompt asking the model to write data-distribution analysis functions for
/// one attribute (paper Fig. 5, left).
pub fn analysis_prompt(ctx: &AttributeContext<'_>) -> String {
    format!(
        "Based on the column '{attr}' with examples:\n{samples}\n\n\
Please generate Python functions to analyze the data distribution from various perspectives, \
so that we can verify whether an error is reasonable or not. Each function should:\n\
1. Take parameters (dirty_csv, attr_name)\n2. Return a string containing the detailed analysis results\n\
3. Do not enumerate all values, showing representative ones\n4. Also import necessary libraries",
        attr = ctx.column_name(),
        samples = serialize_samples(ctx, 20),
    )
}

/// Prompt asking the model to produce an attribute-specific error-detection
/// guideline from the distribution analysis (paper Fig. 5, right).
pub fn guideline_prompt(ctx: &AttributeContext<'_>, analysis: &DistributionAnalysis) -> String {
    format!(
        "You are a top data scientist in data cleaning. Please generate a comprehensive guideline \
for identifying and analyzing common errors in the '{attr}' attribute of the '{table}' table.\n\n\
Here is the data distribution analysis for '{attr}':\n{analysis}\n\n\
Here are examples for '{attr}' with strongly correlated attribute values:\n{samples}\n\n\
Please first explain the meaning of attribute '{attr}'. Then, for each error type below, \
considering the data distribution analysis results, provide specific causes, examples, and \
detection methods for '{attr}'.\n\n{errors}\n\n\
NOTE: When analyzing potential errors, only flag values as errors when you have high confidence.",
        attr = ctx.column_name(),
        table = ctx.table.name(),
        analysis = render_analysis(analysis),
        samples = serialize_samples(ctx, 20),
        errors = ERROR_DESCRIPTIONS,
    )
}

/// Renders the distribution analysis as the text block embedded in the
/// guideline prompt (and counted as output tokens of the analysis step).
pub fn render_analysis(analysis: &DistributionAnalysis) -> String {
    let mut out = format!(
        "**Analysis of '{}'**\nTotal records: {}\nDistinct values: {}\nMissing values: {:.2}%\n",
        analysis.column,
        analysis.total_records,
        analysis.distinct_values,
        analysis.missing_ratio * 100.0
    );
    if let Some((min, mean, max)) = analysis.numeric_summary {
        out.push_str(&format!(
            "Numeric range: min {min:.2}, mean {mean:.2}, max {max:.2}\n"
        ));
    }
    if !analysis.frequent_values.is_empty() {
        out.push_str("Most frequent values: ");
        out.push_str(
            &analysis
                .frequent_values
                .iter()
                .map(|(v, c)| format!("'{v}' ({c})"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push('\n');
    }
    if !analysis.frequent_patterns.is_empty() {
        out.push_str("Most frequent formats: ");
        out.push_str(
            &analysis
                .frequent_patterns
                .iter()
                .map(|(p, c)| format!("{p} ({c})"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push('\n');
    }
    if !analysis.rare_values.is_empty() {
        out.push_str(&format!(
            "Rare values: {}\n",
            analysis.rare_values.join(", ")
        ));
    }
    for finding in &analysis.findings {
        out.push_str(finding);
        out.push('\n');
    }
    out
}

/// Renders a criteria set the way the simulated model "writes" it back: one
/// checking function per criterion. Shared by [`crate::SimLlm`] and response
/// caches so that replayed responses account for exactly the output tokens the
/// original call charged.
pub fn render_criteria_response(set: &zeroed_criteria::CriteriaSet) -> String {
    set.criteria
        .iter()
        .map(|c| {
            format!(
                "def {}(row, attr):\n    # {}\n    return check(row[attr])\n",
                c.name, c.rationale
            )
        })
        .collect()
}

/// Renders a labelling response: one `clean`/`error` line per batch entry.
pub fn render_labels_response(labels: &[bool]) -> String {
    labels
        .iter()
        .enumerate()
        .map(|(i, &e)| format!("{}. {}\n", i + 1, if e { "error" } else { "clean" }))
        .collect()
}

/// Renders an error-augmentation response: one fabricated value per line.
pub fn render_augment_response(values: &[String]) -> String {
    values.join("\n")
}

/// Renders the FM_ED per-tuple response: `yes`/`no` per attribute.
pub fn render_tuple_response(flags: &[bool]) -> String {
    flags.iter().map(|&e| if e { "yes " } else { "no " }).collect()
}

/// Prompt asking the model to label one batch of sampled values (paper
/// §III-C, context-aware LLM labelling).
pub fn labeling_prompt(
    ctx: &AttributeContext<'_>,
    guideline: Option<&Guideline>,
    rows: &[usize],
) -> String {
    let guideline_text = guideline
        .map(|g| g.render())
        .unwrap_or_else(|| ERROR_DESCRIPTIONS.to_string());
    let batch = rows
        .iter()
        .enumerate()
        .map(|(i, &r)| format!("{}. {}", i + 1, ctx.serialize_row(r)))
        .collect::<Vec<_>>()
        .join("\n");
    format!(
        "Task: decide for each value of attribute '{attr}' below whether it is clean or erroneous, \
following the detection guideline. Answer with one line per value: 'clean' or 'error'.\n\n\
Guideline:\n{guideline_text}\n\nValues (with correlated attribute context):\n{batch}",
        attr = ctx.column_name(),
    )
}

/// Prompt asking the model to refine criteria by contrasting clean and
/// erroneous examples (Algorithm 1, contrastive in-context prompting).
pub fn contrastive_prompt(
    ctx: &AttributeContext<'_>,
    clean_examples: &[String],
    error_examples: &[String],
) -> String {
    format!(
        "Below are values of attribute '{attr}' labelled clean and erroneous. Compare the two \
groups, identify the distinguishing error reasons, and update the error-checking functions \
accordingly.\n\nClean values:\n{clean}\n\nErroneous values:\n{dirty}\n\nReturn only the functions.",
        attr = ctx.column_name(),
        clean = clean_examples.join("\n"),
        dirty = error_examples.join("\n"),
    )
}

/// Prompt asking the model to synthesise additional realistic error values
/// (Algorithm 1, error augmentation).
pub fn augmentation_prompt(
    ctx: &AttributeContext<'_>,
    clean_examples: &[String],
    count: usize,
) -> String {
    format!(
        "Task: generate {count} realistic erroneous values for attribute '{attr}', based on the \
error reasons observed in this table (typos, missing placeholders, format corruption, outliers, \
inconsistent values). The errors should stay semantically close to the clean examples.\n\n\
Example clean values:\n{examples}",
        attr = ctx.column_name(),
        examples = clean_examples.join("\n"),
    )
}

/// The single-tuple prompt used by the FM_ED baseline ("Is there an error in
/// this tuple?").
pub fn tuple_prompt(table: &zeroed_table::Table, row: usize) -> String {
    format!(
        "Is there an error in this tuple from table '{name}'? Answer per attribute with yes or no.\n{tuple}",
        name = table.name(),
        tuple = table.serialize_tuple(row).unwrap_or_default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_table::Table;

    fn ctx_fixture() -> (Table, Vec<usize>, Vec<usize>) {
        let table = Table::new(
            "Flights",
            vec!["flight".into(), "sched_dep_time".into()],
            vec![
                vec!["AA-101".into(), "7:45 am".into()],
                vec!["UA-202".into(), "9:05 pm".into()],
            ],
        )
        .unwrap();
        (table, vec![1usize], vec![0usize, 1usize])
    }

    #[test]
    fn prompts_mention_attribute_and_samples() {
        let (table, corr, samples) = ctx_fixture();
        let ctx = AttributeContext {
            table: &table,
            column: 0,
            correlated: &corr,
            sample_rows: &samples,
        };
        for prompt in [
            criteria_prompt(&ctx),
            analysis_prompt(&ctx),
            labeling_prompt(&ctx, None, &samples),
        ] {
            assert!(prompt.contains("flight"), "{prompt}");
            assert!(prompt.contains("AA-101"), "{prompt}");
        }
        assert!(criteria_prompt(&ctx).contains("Rule violations"));
        let tuple = tuple_prompt(&table, 0);
        assert!(tuple.contains("sched_dep_time: 7:45 am"));
    }

    #[test]
    fn guideline_prompt_embeds_analysis() {
        let (table, corr, samples) = ctx_fixture();
        let ctx = AttributeContext {
            table: &table,
            column: 1,
            correlated: &corr,
            sample_rows: &samples,
        };
        let analysis = DistributionAnalysis {
            column: "sched_dep_time".into(),
            total_records: 2,
            distinct_values: 2,
            missing_ratio: 0.0,
            frequent_values: vec![("7:45 am".into(), 1)],
            rare_values: vec![],
            frequent_patterns: vec![("D[1]S[1]D[2]S[1]u[2]".into(), 2)],
            numeric_summary: None,
            findings: vec!["All values are 12-hour clock times.".into()],
        };
        let prompt = guideline_prompt(&ctx, &analysis);
        assert!(prompt.contains("12-hour clock times"));
        assert!(prompt.contains("Most frequent formats"));
        assert!(prompt.contains("only flag values as errors when you have high confidence"));
    }

    #[test]
    fn contrastive_and_augmentation_prompts() {
        let (table, corr, samples) = ctx_fixture();
        let ctx = AttributeContext {
            table: &table,
            column: 0,
            correlated: &corr,
            sample_rows: &samples,
        };
        let c = contrastive_prompt(&ctx, &["AA-101".into()], &["AA101".into()]);
        assert!(c.contains("Clean values"));
        assert!(c.contains("AA101"));
        let a = augmentation_prompt(&ctx, &["AA-101".into()], 5);
        assert!(a.contains("generate 5 realistic erroneous values"));
    }
}
