//! Seeded, deterministic fault injection for simulated LLM backends.
//!
//! Multi-backend routing (see `zeroed-runtime`'s router) must be tested
//! against unhealthy backends: hard errors, timeouts and latency slow-tails.
//! A [`FaultSchedule`] decides, *purely as a function of its own seed and the
//! request's hidden-state salt* ([`crate::LlmClient::request_salt`]), whether a
//! given backend fails a given request. Keying off the salt rather than a call
//! counter makes runs reproducible regardless of scheduling: the same request
//! faults (or not) on the same backend no matter which worker thread issues it
//! or in what order, which is what lets the router conformance suite assert
//! bit-identical masks and exactly reconciled token ledgers under every fault
//! schedule.
//!
//! The simulator itself stays infallible: [`crate::SimLlm`] surfaces
//! error/timeout decisions through [`crate::LlmClient::injected_fault`] for
//! orchestration layers to act on, and applies slow-tail penalties to its own
//! simulated serving latency. A served (real) client never faults through this
//! path — its failures are real and reach the router as such.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One kind of injected backend fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The backend answers the request with a hard error (connection reset,
    /// HTTP 5xx, malformed completion). No response is produced.
    Error,
    /// The backend never answers within the caller's deadline. No response is
    /// produced; the caller pays the deadline before failing over.
    Timeout,
    /// The backend answers correctly but lands in its latency slow-tail
    /// (queueing, preemption, long prefill). The response is valid; only its
    /// serving latency suffers — the case hedged requests exist for.
    SlowTail,
}

/// A seeded per-backend fault schedule.
///
/// Rates are independent probabilities partitioning a single uniform draw:
/// `error_rate` first, then `timeout_rate`, then `slow_tail_rate`; whatever
/// remains is a healthy call. The draw is a deterministic hash of
/// `(seed, salt)`, so two schedules with different seeds fault on
/// (statistically) disjoint request sets — exactly the backbone-diversity
/// setup the router's failover and hedging exploit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Seed separating this backend's fault pattern from its replicas'.
    pub seed: u64,
    /// Probability of a hard error.
    pub error_rate: f64,
    /// Probability of a timeout.
    pub timeout_rate: f64,
    /// Probability of a slow-tail (valid but slow) response.
    pub slow_tail_rate: f64,
    /// Extra serving latency, in milliseconds, a slow-tail call suffers on
    /// top of the profile's normal cost.
    pub slow_tail_ms: f64,
}

impl FaultSchedule {
    /// A schedule that never faults (the default for healthy backends).
    pub fn healthy(seed: u64) -> Self {
        Self {
            seed,
            error_rate: 0.0,
            timeout_rate: 0.0,
            slow_tail_rate: 0.0,
            slow_tail_ms: 0.0,
        }
    }

    /// A schedule whose only pathology is a latency slow-tail.
    pub fn slow_tail(seed: u64, rate: f64, slow_tail_ms: f64) -> Self {
        Self {
            seed,
            slow_tail_rate: rate,
            slow_tail_ms,
            ..Self::healthy(seed)
        }
    }

    /// Whether this schedule can ever fault.
    pub fn is_healthy(&self) -> bool {
        self.error_rate <= 0.0 && self.timeout_rate <= 0.0 && self.slow_tail_rate <= 0.0
    }

    /// The extra latency a slow-tail call suffers.
    pub fn slow_tail_penalty(&self) -> Duration {
        Duration::from_nanos((self.slow_tail_ms.max(0.0) * 1e6) as u64)
    }

    /// Deterministically decides the fate of the request identified by
    /// `salt`: `None` is a healthy call.
    pub fn decide(&self, salt: u64) -> Option<FaultKind> {
        if self.is_healthy() {
            return None;
        }
        // splitmix64 over (seed, salt) — one high-quality uniform draw.
        let mut x = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(salt);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.error_rate {
            Some(FaultKind::Error)
        } else if u < self.error_rate + self.timeout_rate {
            Some(FaultKind::Timeout)
        } else if u < self.error_rate + self.timeout_rate + self.slow_tail_rate {
            Some(FaultKind::SlowTail)
        } else {
            None
        }
    }
}

impl Default for FaultSchedule {
    fn default() -> Self {
        Self::healthy(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_schedule_never_faults() {
        let s = FaultSchedule::healthy(7);
        assert!(s.is_healthy());
        for salt in 0..1_000u64 {
            assert_eq!(s.decide(salt), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_in_seed_and_salt() {
        let s = FaultSchedule {
            seed: 3,
            error_rate: 0.2,
            timeout_rate: 0.2,
            slow_tail_rate: 0.2,
            slow_tail_ms: 10.0,
        };
        for salt in 0..200u64 {
            assert_eq!(s.decide(salt), s.decide(salt));
        }
        // A different seed produces a different fault pattern.
        let other = FaultSchedule { seed: 4, ..s };
        let differs = (0..200u64).any(|salt| s.decide(salt) != other.decide(salt));
        assert!(differs, "seeds must separate fault patterns");
    }

    #[test]
    fn rates_are_approximately_respected() {
        let s = FaultSchedule {
            seed: 11,
            error_rate: 0.25,
            timeout_rate: 0.25,
            slow_tail_rate: 0.25,
            slow_tail_ms: 5.0,
        };
        let n = 4_000u64;
        let mut counts = [0usize; 4];
        for salt in 0..n {
            match s.decide(salt.wrapping_mul(0x1234_5678_9abc_def1)) {
                Some(FaultKind::Error) => counts[0] += 1,
                Some(FaultKind::Timeout) => counts[1] += 1,
                Some(FaultKind::SlowTail) => counts[2] += 1,
                None => counts[3] += 1,
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!(
                (frac - 0.25).abs() < 0.05,
                "bucket {i} off: {frac} vs 0.25"
            );
        }
    }

    #[test]
    fn slow_tail_penalty_converts_millis() {
        let s = FaultSchedule::slow_tail(1, 0.1, 2.5);
        assert_eq!(s.slow_tail_penalty(), Duration::from_micros(2_500));
        assert_eq!(FaultSchedule::healthy(0).slow_tail_penalty(), Duration::ZERO);
    }
}
