//! Cross-process warm-start conformance: a second `ZeroEd` instance opening
//! the persisted response store must reproduce bit-identical masks with
//! **zero** LLM requests, and its token ledger must reconcile — the warm
//! run's reported savings equal exactly the cold run's bill.
//!
//! "Cross-process" is exercised the way a second process would see it: the
//! cold detector (and with it the store's writer thread and file handles) is
//! fully dropped, then a *fresh* detector re-opens the directory and runs
//! recovery + preload from the bytes on disk alone. The matrix covers the
//! runtime execution modes: cold runs on the concurrent and routed paths
//! (the sequential oracle path deliberately bypasses cache and store — it
//! is the correctness baseline all arms are compared against), warm runs on
//! the concurrent and routed paths, in all combinations.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use zeroed_core::{RouterConfig, RouterLlm, RuntimeConfig, ZeroEd, ZeroEdConfig};
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
use zeroed_llm::{FaultSchedule, LlmClient, SimLlm, TokenUsage};
use zeroed_table::ErrorMask;

static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

fn temp_dir() -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("zeroed-warm-start-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset() -> zeroed_datagen::GeneratedDataset {
    generate(
        DatasetSpec::Hospital,
        &GenerateOptions {
            n_rows: 200,
            seed: 11,
            error_spec: None,
        },
    )
}

fn oracle_llm(ds: &zeroed_datagen::GeneratedDataset, seed: u64) -> SimLlm {
    let types: Vec<_> = ds
        .injected
        .iter()
        .map(|e| ((e.row, e.col), e.error_type))
        .collect();
    SimLlm::default_model(seed)
        .with_oracle(ds.mask.clone())
        .with_error_types(types)
}

fn base_config(dir: &std::path::Path) -> ZeroEdConfig {
    ZeroEdConfig {
        label_rate: 0.08,
        ..ZeroEdConfig::fast()
    }
    .with_runtime(RuntimeConfig {
        workers: 4,
        ..RuntimeConfig::default()
    })
    .with_store_dir(dir.to_str().unwrap())
}

/// How one arm of the matrix executes detection.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Arm {
    Concurrent,
    Routed,
}

/// Runs one detection in the given mode against a fresh oracle client,
/// returning (mask, usage, outcome stats).
fn run_arm(
    arm: Arm,
    detector: &ZeroEd,
    ds: &zeroed_datagen::GeneratedDataset,
    seed: u64,
) -> (ErrorMask, TokenUsage, zeroed_core::PipelineStats) {
    match arm {
        Arm::Concurrent => {
            let llm = oracle_llm(ds, seed);
            let outcome = detector.detect(&ds.dirty, &llm);
            (outcome.mask, llm.ledger().usage(), outcome.stats)
        }
        Arm::Routed => {
            // Two response-equivalent backends, one scheduled with faults, so
            // the routed arm exercises failover on top of persistence.
            let faults = FaultSchedule {
                error_rate: 0.2,
                timeout_rate: 0.1,
                ..FaultSchedule::healthy(3)
            };
            let primary = oracle_llm(ds, seed).with_faults(faults);
            let replica = oracle_llm(ds, seed);
            let clients: Vec<&dyn LlmClient> = vec![&primary, &replica];
            let router = RouterLlm::from_runtime(
                &RuntimeConfig {
                    router: Some(RouterConfig::for_backends(2)),
                    ..detector.config().runtime.clone()
                },
                clients,
            );
            let outcome = detector.detect_routed(&ds.dirty, &router);
            let mut usage = primary.ledger().usage();
            let replica_usage = replica.ledger().usage();
            usage.requests += replica_usage.requests;
            usage.input_tokens += replica_usage.input_tokens;
            usage.output_tokens += replica_usage.output_tokens;
            (outcome.mask, usage, outcome.stats)
        }
    }
}

/// The full cold→warm matrix for one (cold arm, warm arm) pair.
fn check_matrix(cold_arm: Arm, warm_arm: Arm) {
    let ds = dataset();
    let dir = temp_dir();
    let seed = 11;

    // The sequential oracle every arm must match (no cache, no store).
    let llm_seq = oracle_llm(&ds, seed);
    let seq = ZeroEd::new(
        ZeroEdConfig {
            label_rate: 0.08,
            ..ZeroEdConfig::fast()
        }
        .sequential_runtime(),
    )
    .detect(&ds.dirty, &llm_seq);
    let seq_usage = llm_seq.ledger().usage();

    // Cold run: fresh store directory, every request hits the model once and
    // is written through.
    let (cold_mask, cold_usage, cold_stats) = {
        let detector = ZeroEd::new(base_config(&dir));
        let result = run_arm(cold_arm, &detector, &ds, seed);
        assert_eq!(
            result.2.store_preloaded_records, 0,
            "[{cold_arm:?}→{warm_arm:?}] cold run preloads nothing"
        );
        assert_eq!(
            result.2.store_persisted_records, result.2.cache_misses,
            "[{cold_arm:?}→{warm_arm:?}] every miss must be written through"
        );
        assert!(result.2.store_persisted_bytes > 0);
        assert_eq!(result.2.store_hits, 0);
        result
        // ← the detector (and the store writer) drops here: the "process"
        //   exits, leaving only the bytes on disk.
    };
    assert_eq!(
        seq.mask, cold_mask,
        "[{cold_arm:?}→{warm_arm:?}] cold mask diverged from the sequential oracle"
    );
    assert_eq!(
        cold_usage.input_tokens + cold_usage.output_tokens + cold_stats.cache_tokens_saved,
        seq_usage.input_tokens + seq_usage.output_tokens,
        "[{cold_arm:?}→{warm_arm:?}] cold tokens + dedup savings = sequential bill"
    );

    // Warm run: a brand-new detector (fresh cache) re-opens the store.
    let warm_detector = ZeroEd::new(base_config(&dir));
    let (warm_mask, warm_usage, warm_stats) = run_arm(warm_arm, &warm_detector, &ds, seed);

    // 1. Bit-identical masks.
    assert_eq!(
        seq.mask, warm_mask,
        "[{cold_arm:?}→{warm_arm:?}] warm mask diverged"
    );
    // 2. Zero LLM requests — the model is never consulted.
    assert_eq!(
        warm_usage,
        TokenUsage::default(),
        "[{cold_arm:?}→{warm_arm:?}] warm run must not touch any backend"
    );
    if warm_arm == Arm::Routed {
        assert_eq!(
            warm_stats.router_requests, 0,
            "cache hits must short-circuit before routing"
        );
    }
    // 3. Every request is a store hit; nothing is re-persisted.
    assert_eq!(warm_stats.cache_misses, 0);
    assert_eq!(warm_stats.cache_hits, warm_stats.store_hits);
    assert_eq!(warm_stats.store_persisted_records, 0);
    assert_eq!(
        warm_stats.store_preloaded_records, cold_stats.store_persisted_records,
        "[{cold_arm:?}→{warm_arm:?}] preload must replay the whole cold store"
    );
    assert_eq!(warm_stats.store_recovered_records, cold_stats.store_persisted_records);
    // 4. Ledger reconciliation: the warm run's reported savings are exactly
    //    the sequential bill (= what the cold run paid in total, dedup
    //    savings included).
    assert_eq!(
        warm_stats.cache_tokens_saved,
        seq_usage.input_tokens + seq_usage.output_tokens,
        "[{cold_arm:?}→{warm_arm:?}] warm savings must equal the full sequential token bill"
    );
    assert_eq!(warm_stats.cache_hits, seq_usage.requests);

    drop(warm_detector);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_start_concurrent_to_concurrent() {
    check_matrix(Arm::Concurrent, Arm::Concurrent);
}

#[test]
fn warm_start_concurrent_to_routed() {
    check_matrix(Arm::Concurrent, Arm::Routed);
}

#[test]
fn warm_start_routed_to_concurrent() {
    check_matrix(Arm::Routed, Arm::Concurrent);
}

#[test]
fn warm_start_routed_to_routed() {
    check_matrix(Arm::Routed, Arm::Routed);
}

#[test]
fn warm_start_survives_truncation_of_the_last_segment() {
    // Chop bytes off the persisted store's final segment, then warm-start:
    // recovery truncates the torn tail and the missing responses are simply
    // recomputed — the mask must stay bit-identical and the store usable.
    let ds = dataset();
    let dir = temp_dir();
    let seed = 13;

    let cold_stats = {
        let detector = ZeroEd::new(base_config(&dir));
        let llm = oracle_llm(&ds, seed);
        detector.detect(&ds.dirty, &llm).stats
    };
    assert!(cold_stats.store_persisted_records > 0);
    let oracle_mask = {
        let llm = oracle_llm(&ds, seed);
        ZeroEd::new(
            ZeroEdConfig {
                label_rate: 0.08,
                ..ZeroEdConfig::fast()
            }
            .sequential_runtime(),
        )
        .detect(&ds.dirty, &llm)
        .mask
    };

    // Damage the newest segment: drop the last 30% of its bytes.
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segments.sort();
    let last = segments.last().unwrap();
    let bytes = std::fs::read(last).unwrap();
    std::fs::write(last, &bytes[..bytes.len() * 7 / 10]).unwrap();

    let detector = ZeroEd::new(base_config(&dir));
    let llm = oracle_llm(&ds, seed);
    let outcome = detector.detect(&ds.dirty, &llm);
    assert_eq!(outcome.mask, oracle_mask, "recovered warm run must stay bit-identical");
    assert!(
        outcome.stats.store_recovered_records < cold_stats.store_persisted_records,
        "truncation must have cost some records"
    );
    assert!(outcome.stats.store_discarded_tails >= 1);
    assert!(outcome.stats.store_hits > 0, "the surviving prefix still serves");
    assert!(
        outcome.stats.cache_misses > 0,
        "lost responses are recomputed, not lost"
    );
    assert_eq!(
        outcome.stats.store_persisted_records, outcome.stats.cache_misses,
        "recomputed responses are re-persisted"
    );
    drop(detector);

    // Third generation: fully warm again (recomputed entries were written).
    let detector = ZeroEd::new(base_config(&dir));
    let llm = oracle_llm(&ds, seed);
    let outcome = detector.detect(&ds.dirty, &llm);
    assert_eq!(outcome.mask, oracle_mask);
    assert_eq!(outcome.stats.cache_misses, 0);
    assert_eq!(llm.ledger().usage(), TokenUsage::default());
    drop(detector);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sequential_mode_ignores_the_store_by_design() {
    // The sequential path is the correctness oracle: no scheduler, no cache,
    // no store — even when a store directory is configured.
    let ds = dataset();
    let dir = temp_dir();
    let llm = oracle_llm(&ds, 17);
    let detector = ZeroEd::new(
        ZeroEdConfig {
            label_rate: 0.08,
            ..ZeroEdConfig::fast()
        }
        .sequential_runtime()
        .with_store_dir(dir.to_str().unwrap()),
    );
    let outcome = detector.detect(&ds.dirty, &llm);
    assert!(llm.ledger().usage().requests > 0);
    assert_eq!(outcome.stats.store_persisted_records, 0);
    assert_eq!(outcome.stats.store_hits, 0);
    drop(detector);
    // Nothing was written: a later open recovers zero records.
    let detector = ZeroEd::new(base_config(&dir));
    assert_eq!(detector.store().unwrap().recovery().records_recovered, 0);
    drop(detector);
    let _ = std::fs::remove_dir_all(&dir);
}
