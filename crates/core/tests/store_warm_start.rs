//! Cross-process warm-start conformance: a second `ZeroEd` instance opening
//! the persisted response store must reproduce bit-identical masks with
//! **zero** LLM requests, and its token ledger must reconcile — the warm
//! run's reported savings equal exactly the cold run's bill.
//!
//! "Cross-process" is exercised the way a second process would see it: the
//! cold detector (and with it the store's writer thread and file handles) is
//! fully dropped, then a *fresh* detector re-opens the directory and runs
//! recovery + preload from the bytes on disk alone. The matrix covers the
//! runtime execution modes: cold runs on the concurrent and routed paths
//! (the sequential oracle path deliberately bypasses cache and store — it
//! is the correctness baseline all arms are compared against), warm runs on
//! the concurrent and routed paths, in all combinations.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use zeroed_core::{RouterConfig, RouterLlm, RuntimeConfig, StoreConfig, ZeroEd, ZeroEdConfig};
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
use zeroed_llm::{FaultSchedule, LlmClient, SimLlm, TokenUsage};
use zeroed_table::ErrorMask;

static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

fn temp_dir() -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("zeroed-warm-start-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset() -> zeroed_datagen::GeneratedDataset {
    generate(
        DatasetSpec::Hospital,
        &GenerateOptions {
            n_rows: 200,
            seed: 11,
            error_spec: None,
        },
    )
}

fn oracle_llm(ds: &zeroed_datagen::GeneratedDataset, seed: u64) -> SimLlm {
    let types: Vec<_> = ds
        .injected
        .iter()
        .map(|e| ((e.row, e.col), e.error_type))
        .collect();
    SimLlm::default_model(seed)
        .with_oracle(ds.mask.clone())
        .with_error_types(types)
}

fn base_config(dir: &std::path::Path) -> ZeroEdConfig {
    ZeroEdConfig {
        label_rate: 0.08,
        ..ZeroEdConfig::fast()
    }
    .with_runtime(RuntimeConfig {
        workers: 4,
        ..RuntimeConfig::default()
    })
    .with_store_dir(dir.to_str().unwrap())
}

/// How one arm of the matrix executes detection.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Arm {
    Concurrent,
    Routed,
}

/// Runs one detection in the given mode against a fresh oracle client,
/// returning (mask, usage, outcome stats).
fn run_arm(
    arm: Arm,
    detector: &ZeroEd,
    ds: &zeroed_datagen::GeneratedDataset,
    seed: u64,
) -> (ErrorMask, TokenUsage, zeroed_core::PipelineStats) {
    match arm {
        Arm::Concurrent => {
            let llm = oracle_llm(ds, seed);
            let outcome = detector.detect(&ds.dirty, &llm);
            (outcome.mask, llm.ledger().usage(), outcome.stats)
        }
        Arm::Routed => {
            // Two response-equivalent backends, one scheduled with faults, so
            // the routed arm exercises failover on top of persistence.
            let faults = FaultSchedule {
                error_rate: 0.2,
                timeout_rate: 0.1,
                ..FaultSchedule::healthy(3)
            };
            let primary = oracle_llm(ds, seed).with_faults(faults);
            let replica = oracle_llm(ds, seed);
            let clients: Vec<&dyn LlmClient> = vec![&primary, &replica];
            let router = RouterLlm::from_runtime(
                &RuntimeConfig {
                    router: Some(RouterConfig::for_backends(2)),
                    ..detector.config().runtime.clone()
                },
                clients,
            );
            let outcome = detector.detect_routed(&ds.dirty, &router);
            let mut usage = primary.ledger().usage();
            let replica_usage = replica.ledger().usage();
            usage.requests += replica_usage.requests;
            usage.input_tokens += replica_usage.input_tokens;
            usage.output_tokens += replica_usage.output_tokens;
            (outcome.mask, usage, outcome.stats)
        }
    }
}

/// The full cold→warm matrix for one (cold arm, warm arm) pair.
fn check_matrix(cold_arm: Arm, warm_arm: Arm) {
    let ds = dataset();
    let dir = temp_dir();
    let seed = 11;

    // The sequential oracle every arm must match (no cache, no store).
    let llm_seq = oracle_llm(&ds, seed);
    let seq = ZeroEd::new(
        ZeroEdConfig {
            label_rate: 0.08,
            ..ZeroEdConfig::fast()
        }
        .sequential_runtime(),
    )
    .detect(&ds.dirty, &llm_seq);
    let seq_usage = llm_seq.ledger().usage();

    // Cold run: fresh store directory, every request hits the model once and
    // is written through.
    let (cold_mask, cold_usage, cold_stats) = {
        let detector = ZeroEd::new(base_config(&dir));
        let result = run_arm(cold_arm, &detector, &ds, seed);
        assert_eq!(
            result.2.store_preloaded_records, 0,
            "[{cold_arm:?}→{warm_arm:?}] cold run preloads nothing"
        );
        assert_eq!(
            result.2.store_persisted_records, result.2.cache_misses,
            "[{cold_arm:?}→{warm_arm:?}] every miss must be written through"
        );
        assert!(result.2.store_persisted_bytes > 0);
        assert_eq!(result.2.store_hits, 0);
        result
        // ← the detector (and the store writer) drops here: the "process"
        //   exits, leaving only the bytes on disk.
    };
    assert_eq!(
        seq.mask, cold_mask,
        "[{cold_arm:?}→{warm_arm:?}] cold mask diverged from the sequential oracle"
    );
    assert_eq!(
        cold_usage.input_tokens + cold_usage.output_tokens + cold_stats.cache_tokens_saved,
        seq_usage.input_tokens + seq_usage.output_tokens,
        "[{cold_arm:?}→{warm_arm:?}] cold tokens + dedup savings = sequential bill"
    );

    // Warm run: a brand-new detector (fresh cache) re-opens the store.
    let warm_detector = ZeroEd::new(base_config(&dir));
    let (warm_mask, warm_usage, warm_stats) = run_arm(warm_arm, &warm_detector, &ds, seed);

    // 1. Bit-identical masks.
    assert_eq!(
        seq.mask, warm_mask,
        "[{cold_arm:?}→{warm_arm:?}] warm mask diverged"
    );
    // 2. Zero LLM requests — the model is never consulted.
    assert_eq!(
        warm_usage,
        TokenUsage::default(),
        "[{cold_arm:?}→{warm_arm:?}] warm run must not touch any backend"
    );
    if warm_arm == Arm::Routed {
        assert_eq!(
            warm_stats.router_requests, 0,
            "cache hits must short-circuit before routing"
        );
    }
    // 3. Every request is a store hit; nothing is re-persisted.
    assert_eq!(warm_stats.cache_misses, 0);
    assert_eq!(warm_stats.cache_hits, warm_stats.store_hits);
    assert_eq!(warm_stats.store_persisted_records, 0);
    assert_eq!(
        warm_stats.store_preloaded_records, cold_stats.store_persisted_records,
        "[{cold_arm:?}→{warm_arm:?}] preload must replay the whole cold store"
    );
    assert_eq!(warm_stats.store_recovered_records, cold_stats.store_persisted_records);
    // 4. Ledger reconciliation: the warm run's reported savings are exactly
    //    the sequential bill (= what the cold run paid in total, dedup
    //    savings included).
    assert_eq!(
        warm_stats.cache_tokens_saved,
        seq_usage.input_tokens + seq_usage.output_tokens,
        "[{cold_arm:?}→{warm_arm:?}] warm savings must equal the full sequential token bill"
    );
    assert_eq!(warm_stats.cache_hits, seq_usage.requests);

    drop(warm_detector);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_start_concurrent_to_concurrent() {
    check_matrix(Arm::Concurrent, Arm::Concurrent);
}

#[test]
fn warm_start_concurrent_to_routed() {
    check_matrix(Arm::Concurrent, Arm::Routed);
}

#[test]
fn warm_start_routed_to_concurrent() {
    check_matrix(Arm::Routed, Arm::Concurrent);
}

#[test]
fn warm_start_routed_to_routed() {
    check_matrix(Arm::Routed, Arm::Routed);
}

#[test]
fn warm_start_survives_truncation_of_the_last_segment() {
    // Chop bytes off the persisted store's final segment, then warm-start:
    // recovery truncates the torn tail and the missing responses are simply
    // recomputed — the mask must stay bit-identical and the store usable.
    let ds = dataset();
    let dir = temp_dir();
    let seed = 13;

    let cold_stats = {
        let detector = ZeroEd::new(base_config(&dir));
        let llm = oracle_llm(&ds, seed);
        detector.detect(&ds.dirty, &llm).stats
    };
    assert!(cold_stats.store_persisted_records > 0);
    let oracle_mask = {
        let llm = oracle_llm(&ds, seed);
        ZeroEd::new(
            ZeroEdConfig {
                label_rate: 0.08,
                ..ZeroEdConfig::fast()
            }
            .sequential_runtime(),
        )
        .detect(&ds.dirty, &llm)
        .mask
    };

    // Damage the newest segment: drop the last 30% of its bytes.
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segments.sort();
    let last = segments.last().unwrap();
    let bytes = std::fs::read(last).unwrap();
    std::fs::write(last, &bytes[..bytes.len() * 7 / 10]).unwrap();

    let detector = ZeroEd::new(base_config(&dir));
    let llm = oracle_llm(&ds, seed);
    let outcome = detector.detect(&ds.dirty, &llm);
    assert_eq!(outcome.mask, oracle_mask, "recovered warm run must stay bit-identical");
    assert!(
        outcome.stats.store_recovered_records < cold_stats.store_persisted_records,
        "truncation must have cost some records"
    );
    assert!(outcome.stats.store_discarded_tails >= 1);
    assert!(outcome.stats.store_hits > 0, "the surviving prefix still serves");
    assert!(
        outcome.stats.cache_misses > 0,
        "lost responses are recomputed, not lost"
    );
    assert_eq!(
        outcome.stats.store_persisted_records, outcome.stats.cache_misses,
        "recomputed responses are re-persisted"
    );
    drop(detector);

    // Third generation: fully warm again (recomputed entries were written).
    let detector = ZeroEd::new(base_config(&dir));
    let llm = oracle_llm(&ds, seed);
    let outcome = detector.detect(&ds.dirty, &llm);
    assert_eq!(outcome.mask, oracle_mask);
    assert_eq!(outcome.stats.cache_misses, 0);
    assert_eq!(llm.ledger().usage(), TokenUsage::default());
    drop(detector);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Byte-level store surgery helpers (simulating other builds / older stores).
// ---------------------------------------------------------------------------

/// Walks every `seg-*.zseg` under `dir` (recursively, so sharded layouts
/// work too) and applies `rewrite` to its bytes.
fn rewrite_segments(dir: &std::path::Path, rewrite: &dyn Fn(&[u8]) -> Vec<u8>) {
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in std::fs::read_dir(&current).unwrap().flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "zseg") {
                let bytes = std::fs::read(&path).unwrap();
                std::fs::write(&path, rewrite(&bytes)).unwrap();
            }
        }
    }
}

/// Down-converts a v2 segment image to the exact v1 format: header stamped
/// format 1, every frame's payload stripped of its epoch bytes (offset
/// 32..40), lengths and checksums recomputed. This reproduces byte-for-byte
/// what a PR 4-era build wrote, so opening the result exercises the real
/// read-compat path.
fn downconvert_segment_to_v1(bytes: &[u8]) -> Vec<u8> {
    use zeroed_store::{checksum64, HEADER_LEN};
    assert!(bytes.len() >= HEADER_LEN, "segment too short to convert");
    let mut out = bytes[..HEADER_LEN].to_vec();
    out[8..10].copy_from_slice(&1u16.to_le_bytes());
    let header_checksum = checksum64(&out[0..20]);
    out[20..28].copy_from_slice(&header_checksum.to_le_bytes());
    let mut pos = HEADER_LEN;
    while pos < bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let payload = &bytes[pos + 12..pos + 12 + len];
        let mut v1_payload = payload[..32].to_vec();
        v1_payload.extend_from_slice(&payload[40..]);
        out.extend_from_slice(&(v1_payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&checksum64(&v1_payload).to_le_bytes());
        out.extend_from_slice(&v1_payload);
        pos += 12 + len;
    }
    out
}

/// Rewrites every frame's written-at epoch in a v2 segment image (checksums
/// recomputed) — the test's way of aging records deterministically.
fn rewrite_epochs(bytes: &[u8], epoch: u64) -> Vec<u8> {
    use zeroed_store::{checksum64, HEADER_LEN};
    let mut out = bytes[..HEADER_LEN].to_vec();
    let mut pos = HEADER_LEN;
    while pos < bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let mut payload = bytes[pos + 12..pos + 12 + len].to_vec();
        payload[32..40].copy_from_slice(&epoch.to_le_bytes());
        out.extend_from_slice(&(len as u32).to_le_bytes());
        out.extend_from_slice(&checksum64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        pos += 12 + len;
    }
    out
}

/// The tentpole conformance: K processes-worth of writers — distinct
/// `ShardedStore` handles via distinct detectors, each with its own cache
/// and store layer — persist *concurrently* into one sharded root, then a
/// fresh detector reopens the directory and reproduces every writer's mask
/// bit-identically with **zero** LLM requests, having merged records across
/// all writer slots.
#[test]
fn sharded_concurrent_writers_warm_start_with_zero_requests() {
    const WRITERS: u64 = 3;
    let ds = dataset();
    let dir = temp_dir();
    let sharded = |dir: &std::path::Path| {
        ZeroEdConfig {
            label_rate: 0.08,
            ..ZeroEdConfig::fast()
        }
        .with_runtime(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        })
        .with_store(StoreConfig::new(dir.to_str().unwrap()).with_shards(4))
    };

    // K concurrent writers. Each uses a different LLM seed, so the request
    // salts (and with them every RequestKey) are disjoint between writers:
    // the warm detector can only succeed by reading *all* the slots.
    //
    // Every detector is constructed (claiming its writer slots) *before* any
    // detection starts — otherwise a fast writer could finish and release
    // its slots before a slow one opens, which would let the slow one
    // reclaim the freed slot instead of exercising true concurrency.
    let detectors: Vec<ZeroEd> = (0..WRITERS).map(|_| ZeroEd::new(sharded(&dir))).collect();
    let cold: Vec<(zeroed_table::ErrorMask, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = detectors
            .into_iter()
            .enumerate()
            .map(|(w, detector)| {
                let w = w as u64;
                let ds = &ds;
                scope.spawn(move || {
                    let llm = oracle_llm(ds, 100 + w);
                    let outcome = detector.detect(&ds.dirty, &llm);
                    assert_eq!(
                        outcome.stats.store_persisted_records, outcome.stats.cache_misses,
                        "writer {w}: every miss must be written through"
                    );
                    assert_eq!(outcome.stats.store_shards, 4);
                    (outcome.mask, outcome.stats.store_persisted_records)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total_persisted: usize = cold.iter().map(|(_, persisted)| persisted).sum();
    assert!(total_persisted > 0);

    // The root must actually be sharded, with one claimed slot per writer.
    assert!(dir.join("sharding.meta").exists());
    for k in 0..4 {
        let shard_dir = dir.join(format!("shard-{k:02}"));
        assert!(shard_dir.is_dir(), "shard {k} exists");
        let slots = std::fs::read_dir(&shard_dir).unwrap().count();
        assert_eq!(slots, WRITERS as usize, "shard {k}: one slot per concurrent writer");
    }

    // Fresh detector: one handle, every slot's records preloaded (the
    // writers' key sets are disjoint, so the preload count proves the merge
    // crossed writer slots).
    let warm_detector = ZeroEd::new(sharded(&dir));
    let mut checked_preload = false;
    for (w, (cold_mask, _)) in cold.iter().enumerate() {
        let llm = oracle_llm(&ds, 100 + w as u64);
        let outcome = warm_detector.detect(&ds.dirty, &llm);
        assert_eq!(
            &outcome.mask, cold_mask,
            "writer {w}: warm mask must be bit-identical"
        );
        assert_eq!(
            llm.ledger().usage(),
            TokenUsage::default(),
            "writer {w}: warm run must issue zero LLM requests"
        );
        assert_eq!(outcome.stats.cache_misses, 0);
        assert_eq!(outcome.stats.store_persisted_records, 0);
        if !checked_preload {
            assert_eq!(
                outcome.stats.store_preloaded_records, total_persisted,
                "the preload must merge all {WRITERS} writers' disjoint records"
            );
            checked_preload = true;
        }
    }
    drop(warm_detector);
    let _ = std::fs::remove_dir_all(&dir);
}

/// v1 (unsharded, epoch-less) stores written by PR 4-era builds still open
/// and warm-start: the detector reads them through the v1 frame layout and
/// replays every response without touching the model.
#[test]
fn v1_era_stores_still_open_and_warm_start() {
    let ds = dataset();
    let dir = temp_dir();
    let seed = 19;

    let (cold_mask, cold_persisted) = {
        let detector = ZeroEd::new(base_config(&dir));
        let llm = oracle_llm(&ds, seed);
        let outcome = detector.detect(&ds.dirty, &llm);
        (outcome.mask, outcome.stats.store_persisted_records)
    };
    assert!(cold_persisted > 0);

    // Rewrite the store on disk into the exact v1 format.
    rewrite_segments(&dir, &downconvert_segment_to_v1);

    let warm_detector = ZeroEd::new(base_config(&dir));
    let llm = oracle_llm(&ds, seed);
    let outcome = warm_detector.detect(&ds.dirty, &llm);
    assert_eq!(outcome.mask, cold_mask, "v1 warm mask must be bit-identical");
    assert_eq!(
        llm.ledger().usage(),
        TokenUsage::default(),
        "v1 warm start must issue zero LLM requests"
    );
    assert_eq!(outcome.stats.cache_misses, 0);
    assert_eq!(outcome.stats.store_preloaded_records, cold_persisted);
    assert_eq!(outcome.stats.store_recovered_records, cold_persisted);
    drop(warm_detector);
    let _ = std::fs::remove_dir_all(&dir);
}

/// TTL/GC conformance: a store whose records have outlived the TTL serves
/// nothing — the stale bin is reclaimed, the expiry is reconciled in
/// `PipelineStats`, the lost responses are recomputed and re-persisted, and
/// the *next* open is fully warm again.
#[test]
fn expired_records_are_gone_after_gc_with_counts_reconciled() {
    let ds = dataset();
    let dir = temp_dir();
    let seed = 23;
    let ttl_config = |dir: &std::path::Path| {
        ZeroEdConfig {
            label_rate: 0.08,
            ..ZeroEdConfig::fast()
        }
        .with_runtime(RuntimeConfig {
            workers: 4,
            ..RuntimeConfig::default()
        })
        .with_store(
            StoreConfig::new(dir.to_str().unwrap()).with_ttl_secs(3_600),
        )
    };

    let cold_persisted = {
        let detector = ZeroEd::new(ttl_config(&dir));
        let llm = oracle_llm(&ds, seed);
        let outcome = detector.detect(&ds.dirty, &llm);
        assert_eq!(outcome.stats.store_expired_records, 0, "fresh records don't expire");
        outcome.stats.store_persisted_records
    };
    assert!(cold_persisted > 0);

    // Age every record far past the TTL.
    let stale_epoch = zeroed_store::now_epoch().saturating_sub(100_000);
    rewrite_segments(&dir, &|bytes| rewrite_epochs(bytes, stale_epoch));

    // Second run: the whole bin is expired at open — every record is
    // recomputed (paying the model) and re-persisted at a fresh epoch.
    let detector = ZeroEd::new(ttl_config(&dir));
    let llm = oracle_llm(&ds, seed);
    let outcome = detector.detect(&ds.dirty, &llm);
    assert_eq!(
        outcome.stats.store_expired_records, cold_persisted,
        "every stale record must be accounted as expired"
    );
    assert_eq!(outcome.stats.store_preloaded_records, 0, "expired records never preload");
    assert_eq!(outcome.stats.store_hits, 0);
    assert_eq!(
        outcome.stats.cache_misses, cold_persisted,
        "every response is recomputed, none lost"
    );
    assert_eq!(outcome.stats.store_persisted_records, cold_persisted);
    assert!(llm.ledger().usage().requests > 0, "the model was consulted again");
    drop(detector);

    // The reclaimed bin holds only fresh records: the expired frames are
    // physically gone from disk (compacted away), and a third open is fully
    // warm with zero expiries.
    let report = zeroed_store::inspect(&dir).unwrap();
    assert_eq!(report.live.len(), cold_persisted);
    let (min_epoch, _) = report.epoch_range().unwrap();
    assert!(min_epoch > stale_epoch, "no stale frame survives on disk");

    let detector = ZeroEd::new(ttl_config(&dir));
    let llm = oracle_llm(&ds, seed);
    let outcome = detector.detect(&ds.dirty, &llm);
    assert_eq!(outcome.stats.store_expired_records, 0);
    assert_eq!(outcome.stats.cache_misses, 0);
    assert_eq!(llm.ledger().usage(), TokenUsage::default());
    drop(detector);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `zeroed-store-tool verify` (via its library entry point) flags a
/// deliberately truncated segment — with the exact recovered prefix — while
/// leaving every byte on disk untouched.
#[test]
fn store_tool_verify_flags_truncation_without_modifying_the_store() {
    let ds = dataset();
    let dir = temp_dir();
    {
        let detector = ZeroEd::new(base_config(&dir));
        let llm = oracle_llm(&ds, 29);
        let outcome = detector.detect(&ds.dirty, &llm);
        assert!(outcome.stats.store_persisted_records > 0);
    }
    assert!(zeroed_store::verify(&dir).unwrap().is_empty(), "fresh store verifies clean");

    // Truncate the last segment mid-frame.
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "zseg"))
        .collect();
    segments.sort();
    let last = segments.last().unwrap();
    let full = std::fs::read(last).unwrap();
    std::fs::write(last, &full[..full.len() - 9]).unwrap();

    let before: Vec<(PathBuf, Vec<u8>)> = segments
        .iter()
        .map(|p| (p.clone(), std::fs::read(p).unwrap()))
        .collect();
    let issues = zeroed_store::verify(&dir).unwrap();
    let after: Vec<(PathBuf, Vec<u8>)> = segments
        .iter()
        .map(|p| (p.clone(), std::fs::read(p).unwrap()))
        .collect();
    assert_eq!(before, after, "verify must not modify the store");
    assert_eq!(issues.len(), 1);
    match &issues[0] {
        zeroed_store::VerifyIssue::TornTail {
            path,
            discarded_bytes,
            ..
        } => {
            assert_eq!(path, last);
            assert!(*discarded_bytes > 0, "the torn tail is measured, not repaired");
        }
        other => panic!("expected a torn tail, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sequential_mode_ignores_the_store_by_design() {
    // The sequential path is the correctness oracle: no scheduler, no cache,
    // no store — even when a store directory is configured.
    let ds = dataset();
    let dir = temp_dir();
    let llm = oracle_llm(&ds, 17);
    let detector = ZeroEd::new(
        ZeroEdConfig {
            label_rate: 0.08,
            ..ZeroEdConfig::fast()
        }
        .sequential_runtime()
        .with_store_dir(dir.to_str().unwrap()),
    );
    let outcome = detector.detect(&ds.dirty, &llm);
    assert!(llm.ledger().usage().requests > 0);
    assert_eq!(outcome.stats.store_persisted_records, 0);
    assert_eq!(outcome.stats.store_hits, 0);
    drop(detector);
    // Nothing was written: a later open recovers zero records.
    let detector = ZeroEd::new(base_config(&dir));
    assert_eq!(detector.store().unwrap().recovery().records_recovered, 0);
    drop(detector);
    let _ = std::fs::remove_dir_all(&dir);
}
