//! The orchestration-runtime correctness contract: concurrent and cached
//! execution must be *bit-identical* to the sequential oracle path, and the
//! token ledger must account for every request — cached runs may only differ
//! by exactly the savings the cache reports.

use zeroed_core::{RuntimeConfig, ZeroEd, ZeroEdConfig};
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
use zeroed_llm::{LlmClient, SimLlm, TokenUsage};

fn dataset(spec: DatasetSpec, rows: usize, seed: u64) -> zeroed_datagen::GeneratedDataset {
    generate(
        spec,
        &GenerateOptions {
            n_rows: rows,
            seed,
            error_spec: None,
        },
    )
}

fn oracle_llm(ds: &zeroed_datagen::GeneratedDataset, seed: u64) -> SimLlm {
    let types: Vec<_> = ds
        .injected
        .iter()
        .map(|e| ((e.row, e.col), e.error_type))
        .collect();
    SimLlm::default_model(seed)
        .with_oracle(ds.mask.clone())
        .with_error_types(types)
}

fn base_config() -> ZeroEdConfig {
    ZeroEdConfig {
        label_rate: 0.08,
        ..ZeroEdConfig::fast()
    }
}

/// Runs sequential vs concurrent+cached (including a warm re-run) on one
/// dataset and checks masks, stats and ledger accounting.
fn check_equivalence(spec: DatasetSpec, rows: usize, seed: u64) {
    let ds = dataset(spec, rows, seed);

    // Sequential oracle path.
    let llm_seq = oracle_llm(&ds, seed);
    let seq = ZeroEd::new(base_config().sequential_runtime()).detect(&ds.dirty, &llm_seq);
    let seq_usage = llm_seq.ledger().usage();
    let seq_cost = llm_seq.ledger().sim_cost();

    // Concurrent + cached path (fixed worker count so the test exercises real
    // fan-out even on single-core CI machines).
    let detector = ZeroEd::new(base_config().with_runtime(RuntimeConfig {
        workers: 4,
        ..RuntimeConfig::default()
    }));
    let llm_conc = oracle_llm(&ds, seed);
    let conc = detector.detect(&ds.dirty, &llm_conc);
    let conc_usage = llm_conc.ledger().usage();

    // 1. The mask is bit-identical.
    assert_eq!(
        seq.mask,
        conc.mask,
        "{}: concurrent+cached mask diverged from sequential",
        spec.name()
    );
    // 2. Pipeline statistics agree (the cache/runtime counters are extra).
    assert_eq!(seq.stats.llm_labeled_cells, conc.stats.llm_labeled_cells);
    assert_eq!(seq.stats.propagated_cells, conc.stats.propagated_cells);
    assert_eq!(seq.stats.verified_clean_rows, conc.stats.verified_clean_rows);
    assert_eq!(seq.stats.error_rows, conc.stats.error_rows);
    assert_eq!(seq.stats.augmented_rows, conc.stats.augmented_rows);
    assert_eq!(seq.stats.criteria_count, conc.stats.criteria_count);
    // 3. Ledger totals are identical minus the (exactly accounted) dedup
    //    savings. A single cold run has no duplicate requests, so savings are
    //    zero and the totals match outright — asserted in the general form.
    assert_eq!(
        conc_usage.input_tokens + conc_usage.output_tokens + conc.stats.cache_tokens_saved,
        seq_usage.input_tokens + seq_usage.output_tokens,
        "{}: tokens + savings must equal the sequential total",
        spec.name()
    );
    assert_eq!(
        conc_usage.requests + conc.stats.cache_hits,
        seq_usage.requests,
        "{}: requests + hits must equal the sequential request count",
        spec.name()
    );
    assert_eq!(llm_conc.ledger().sim_cost(), seq_cost, "{}: serial model cost", spec.name());

    // Warm re-run on the same detector with a fresh client: every request
    // replays from the cache.
    let llm_warm = oracle_llm(&ds, seed);
    let warm = detector.detect(&ds.dirty, &llm_warm);
    let warm_usage = llm_warm.ledger().usage();
    assert_eq!(seq.mask, warm.mask, "{}: warm mask diverged", spec.name());
    assert_eq!(
        warm_usage,
        TokenUsage::default(),
        "{}: warm run must charge nothing",
        spec.name()
    );
    assert_eq!(warm.stats.cache_misses, 0, "{}", spec.name());
    assert_eq!(warm.stats.cache_hits, seq_usage.requests, "{}", spec.name());
    assert_eq!(
        warm.stats.cache_tokens_saved,
        seq_usage.input_tokens + seq_usage.output_tokens,
        "{}: warm savings must equal the full sequential token bill",
        spec.name()
    );
}

#[test]
fn concurrent_cached_detection_is_bit_identical_on_beers() {
    check_equivalence(DatasetSpec::Beers, 250, 5);
}

#[test]
fn concurrent_cached_detection_is_bit_identical_on_flights() {
    check_equivalence(DatasetSpec::Flights, 250, 9);
}

#[test]
fn uncached_concurrent_run_matches_too() {
    let ds = dataset(DatasetSpec::Hospital, 200, 3);
    let llm_seq = oracle_llm(&ds, 3);
    let seq = ZeroEd::new(base_config().sequential_runtime()).detect(&ds.dirty, &llm_seq);
    let llm_conc = oracle_llm(&ds, 3);
    let conc = ZeroEd::new(base_config().with_runtime(RuntimeConfig {
        workers: 4,
        ..RuntimeConfig::concurrent_uncached()
    }))
    .detect(&ds.dirty, &llm_conc);
    assert_eq!(seq.mask, conc.mask);
    assert_eq!(llm_seq.ledger().usage(), llm_conc.ledger().usage());
    assert_eq!(conc.stats.cache_hits, 0);
    assert_eq!(conc.stats.cache_misses, 0);
    assert!(conc.stats.runtime_tasks > 0);
}
