//! Flight-recorder conformance across the pipeline's execution modes: every
//! run publishes a [`zeroed_obs::TraceSummary`] whose journal (a) passes the
//! causality checker and (b) reconciles **exactly** — zero tolerance —
//! against the independently maintained cache, scheduler, router, repair and
//! store counters in [`zeroed_core::PipelineStats`]. The trace is not a
//! sample: for every counter the pipeline reports there is an equal number
//! of journaled events, in {sequential, concurrent+cached (cold and warm),
//! routed-with-faults, mangled} runs alike.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use zeroed_core::{
    PipelineStats, RouterConfig, RouterLlm, RuntimeConfig, ZeroEd, ZeroEdConfig,
};
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
use zeroed_llm::{FaultSchedule, LlmClient, MangleSchedule, SimLlm};
use zeroed_obs::EventKind;

static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

fn temp_dir() -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("zeroed-trace-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset() -> zeroed_datagen::GeneratedDataset {
    generate(
        DatasetSpec::Hospital,
        &GenerateOptions {
            n_rows: 180,
            seed: 13,
            error_spec: None,
        },
    )
}

fn oracle_llm(ds: &zeroed_datagen::GeneratedDataset, seed: u64) -> SimLlm {
    let types: Vec<_> = ds
        .injected
        .iter()
        .map(|e| ((e.row, e.col), e.error_type))
        .collect();
    SimLlm::default_model(seed)
        .with_oracle(ds.mask.clone())
        .with_error_types(types)
}

fn config() -> ZeroEdConfig {
    ZeroEdConfig {
        label_rate: 0.08,
        ..ZeroEdConfig::fast()
    }
}

/// The zero-tolerance ledger: journal counts == pipeline counters, and the
/// journal itself is causally consistent. Returns the summary for
/// mode-specific follow-up assertions.
fn assert_trace_reconciles(stats: &PipelineStats, label: &str) -> zeroed_obs::TraceSummary {
    let trace = stats
        .trace
        .clone()
        .unwrap_or_else(|| panic!("[{label}] run must publish a trace summary"));
    assert_eq!(trace.dropped_events, 0, "[{label}] ring must not evict");
    if let Err(why) = trace.verify() {
        panic!("[{label}] causality check failed: {why}");
    }

    // Scheduler: every task journaled exactly once per lifecycle stage.
    let tasks = stats.runtime_tasks as u64;
    assert_eq!(trace.count(EventKind::TaskSubmit), tasks, "[{label}] submits");
    assert_eq!(trace.count(EventKind::TaskStart), tasks, "[{label}] starts");
    assert_eq!(trace.count(EventKind::TaskEnd), tasks, "[{label}] ends");

    // Cache: the per-adapter counters and the journal were written on the
    // same code paths but through independent mechanisms.
    assert_eq!(
        trace.count(EventKind::CacheHit),
        stats.cache_hits as u64,
        "[{label}] hits"
    );
    assert_eq!(
        trace.count(EventKind::CacheMiss),
        stats.cache_misses as u64,
        "[{label}] misses"
    );
    assert_eq!(
        trace.count(EventKind::CacheCoalesced),
        stats.cache_coalesced as u64,
        "[{label}] coalesced"
    );
    assert_eq!(
        trace.count(EventKind::CachePublish),
        stats.cache_misses as u64,
        "[{label}] every miss publishes exactly once"
    );

    // Router: one RouterDone per routed request, faults/failovers exact.
    assert_eq!(
        trace.count(EventKind::RouterDone),
        stats.router_requests as u64,
        "[{label}] routed requests"
    );
    assert_eq!(
        trace.count(EventKind::RouterFailover),
        stats.router_failovers as u64,
        "[{label}] failovers"
    );
    assert_eq!(
        trace.count(EventKind::HedgeFired),
        stats.router_hedges_fired as u64,
        "[{label}] hedges fired"
    );
    assert_eq!(
        trace.count(EventKind::HedgeWon),
        stats.router_hedges_won as u64,
        "[{label}] hedges won"
    );
    assert_eq!(
        trace.count(EventKind::BreakerTrip),
        stats.router_breaker_trips as u64,
        "[{label}] breaker trips"
    );

    // Repair: the degradation ledger and the journal agree bucket by bucket.
    let (salvaged, reasked, defaulted) = stats.repair.total_handled();
    assert_eq!(
        trace.count(EventKind::RepairMangled),
        stats.repair.total_mangled() as u64,
        "[{label}] mangled"
    );
    assert_eq!(
        trace.count(EventKind::RepairSalvaged),
        salvaged as u64,
        "[{label}] salvaged"
    );
    assert_eq!(
        trace.count(EventKind::RepairReasked),
        reasked as u64,
        "[{label}] reasked"
    );
    assert_eq!(
        trace.count(EventKind::RepairDefaulted),
        defaulted as u64,
        "[{label}] defaulted"
    );

    // Store: one persist event per persisted record (journaled from the
    // background writer thread, exact after the drain barrier).
    assert_eq!(
        trace.count(EventKind::StorePersist),
        stats.store_persisted_records as u64,
        "[{label}] persists"
    );

    trace
}

#[test]
fn sequential_run_traces_repair_only() {
    let ds = dataset();
    let llm = oracle_llm(&ds, 13);
    let outcome = ZeroEd::new(config().sequential_runtime()).detect(&ds.dirty, &llm);
    let trace = assert_trace_reconciles(&outcome.stats, "sequential");
    // The oracle path has no scheduler, cache, router or store...
    assert_eq!(outcome.stats.runtime_tasks, 0);
    assert_eq!(trace.count(EventKind::CacheHit), 0);
    assert_eq!(trace.count(EventKind::RouterDone), 0);
    assert_eq!(trace.count(EventKind::StorePersist), 0);
    assert_eq!(trace.count(EventKind::StorePreload), 0);
}

#[test]
fn concurrent_cached_run_traces_every_layer_exactly() {
    let ds = dataset();
    let detector = ZeroEd::new(config().with_runtime(RuntimeConfig {
        workers: 4,
        ..RuntimeConfig::default()
    }));

    let llm = oracle_llm(&ds, 13);
    let cold = detector.detect(&ds.dirty, &llm);
    let trace = assert_trace_reconciles(&cold.stats, "concurrent cold");
    assert!(cold.stats.runtime_tasks > 0, "fan-out must happen");
    assert!(cold.stats.cache_misses > 0, "cold run must miss");
    assert!(
        !trace.exemplars.is_empty(),
        "request-rooted traces must yield exemplars"
    );
    // Each exemplar belongs to a real request and spans at least its own
    // cache lookup.
    for ex in &trace.exemplars {
        assert!(!ex.trace.is_none());
        assert!(ex.end_nanos >= ex.begin_nanos);
    }

    // Warm re-run on the same detector: all hits, still exact.
    let llm_warm = oracle_llm(&ds, 13);
    let warm = detector.detect(&ds.dirty, &llm_warm);
    let trace = assert_trace_reconciles(&warm.stats, "concurrent warm");
    assert_eq!(warm.stats.cache_misses, 0);
    assert!(warm.stats.cache_hits > 0);
    assert_eq!(trace.count(EventKind::CachePublish), 0);
}

#[test]
fn routed_run_with_faults_traces_router_decisions() {
    let ds = dataset();
    let faults = FaultSchedule {
        error_rate: 0.2,
        timeout_rate: 0.1,
        ..FaultSchedule::healthy(3)
    };
    let primary = oracle_llm(&ds, 13).with_faults(faults);
    let replica = oracle_llm(&ds, 13);
    let clients: Vec<&dyn LlmClient> = vec![&primary, &replica];
    let runtime = RuntimeConfig {
        workers: 4,
        router: Some(RouterConfig::for_backends(2)),
        ..RuntimeConfig::default()
    };
    let router = RouterLlm::from_runtime(&runtime, clients);
    let outcome = ZeroEd::new(config().with_runtime(runtime.clone())).detect_routed(&ds.dirty, &router);
    let trace = assert_trace_reconciles(&outcome.stats, "routed");
    assert!(outcome.stats.router_requests > 0);
    assert!(
        outcome.stats.router_failovers > 0,
        "the fault schedule must force failovers"
    );
    // Every routed request chose a primary before anything else happened.
    assert_eq!(
        trace.count(EventKind::RouterPrimary),
        outcome.stats.router_requests as u64
    );
    // Faults journaled at the injection site are at least the failovers
    // (slow-tail faults add more, and hedged losers add none).
    assert!(trace.count(EventKind::FaultInjected) >= trace.count(EventKind::RouterFailover));
}

#[test]
fn mangled_run_traces_the_degradation_ledger() {
    let ds = dataset();
    let types: Vec<_> = ds
        .injected
        .iter()
        .map(|e| ((e.row, e.col), e.error_type))
        .collect();
    let llm = SimLlm::default_model(13)
        .with_oracle(ds.mask.clone())
        .with_error_types(types)
        .with_mangling(MangleSchedule::uniform(17, 0.5));
    let outcome = ZeroEd::new(config().with_runtime(RuntimeConfig {
        workers: 4,
        ..RuntimeConfig::default()
    }))
    .detect(&ds.dirty, &llm);
    let trace = assert_trace_reconciles(&outcome.stats, "mangled");
    assert!(
        outcome.stats.repair.total_mangled() > 0,
        "rate 0.5 must corrupt something"
    );
    assert_eq!(
        trace.count(EventKind::RepairMangled),
        llm.mangled_responses() as u64,
        "journal must agree with the simulator's own corruption count"
    );
}

#[test]
fn persisted_run_traces_store_writes_and_the_preload() {
    let ds = dataset();
    let dir = temp_dir();
    let store_config = || config().with_store_dir(dir.to_str().unwrap());

    let cold = {
        let llm = oracle_llm(&ds, 13);
        let outcome = ZeroEd::new(store_config()).detect(&ds.dirty, &llm);
        let trace = assert_trace_reconciles(&outcome.stats, "cold store");
        assert!(outcome.stats.store_persisted_records > 0);
        // The preload marker is journaled exactly once, carrying the
        // warm-start size this run saw (zero: the directory was fresh).
        assert_eq!(trace.count(EventKind::StorePreload), 1);
        let preload = trace
            .events
            .iter()
            .find(|e| e.kind == EventKind::StorePreload)
            .expect("preload event must survive in the ring");
        assert_eq!(preload.arg, 0);
        outcome
    };

    // Fresh detector, same directory: preload arg now equals the cold run's
    // persisted count, and no new persists are journaled.
    let llm = oracle_llm(&ds, 13);
    let outcome = ZeroEd::new(store_config()).detect(&ds.dirty, &llm);
    let trace = assert_trace_reconciles(&outcome.stats, "warm store");
    assert_eq!(trace.count(EventKind::StorePersist), 0);
    let preload = trace
        .events
        .iter()
        .find(|e| e.kind == EventKind::StorePreload)
        .expect("preload event must survive in the ring");
    assert_eq!(preload.arg, cold.stats.store_persisted_records as u64);
    assert_eq!(
        outcome.stats.store_preloaded_records,
        cold.stats.store_persisted_records
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Trace ids are minted from (request key, run nonce): two runs under the
/// same seed journal the same id set, and a different seed shifts every id.
#[test]
fn trace_ids_are_deterministic_per_seed() {
    let ds = dataset();
    let ids_of = |seed_cfg: u64| {
        let detector = ZeroEd::new(ZeroEdConfig {
            seed: seed_cfg,
            ..config()
        });
        let llm = oracle_llm(&ds, 13);
        let outcome = detector.detect(&ds.dirty, &llm);
        let trace = outcome.stats.trace.expect("trace");
        let mut ids: Vec<u64> = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::CacheMiss)
            .map(|e| e.trace.raw())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    let a = ids_of(42);
    let b = ids_of(42);
    let c = ids_of(43);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed, same request keys → identical trace ids");
    assert_ne!(a, c, "the run nonce must shift every minted id");
}
