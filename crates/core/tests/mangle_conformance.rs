//! Content-corruption conformance: seeded mangle schedules swept across the
//! execution modes.
//!
//! For every seeded [`MangleSchedule`] the pipeline must degrade
//! *predictably*:
//!
//! 1. **No panics, on any mode** — corrupted responses are repaired,
//!    re-asked or defaulted, never crash the pipeline.
//! 2. **Bit-identical masks across modes** — sequential, concurrent and
//!    routed runs under the *same* schedule agree exactly (the corruption
//!    draw is keyed off the request salt, not off execution order).
//! 3. **Exact accounting** — per stage `mangled == repaired + reasked +
//!    defaulted`, and the sum of stage `mangled` counters equals the number
//!    of corruptions the simulator actually applied: zero silent drops.
//! 4. **Repaired responses are what gets persisted** — a warm start from a
//!    store written under mangling replays bit-identically with zero LLM
//!    requests and zero new repairs.
//!
//! The routed leg runs failover-only (hedging disabled): a hedged request
//! executes on *two* backends and would legitimately double-count
//! `mangled_responses`, breaking invariant 3's equality without indicating a
//! real drop.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use zeroed_core::{
    HedgePolicy, PipelineStats, RouterConfig, RouterLlm, RuntimeConfig, ZeroEd, ZeroEdConfig,
};
use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
use zeroed_llm::{LlmClient, MangleSchedule, SimLlm};
use zeroed_table::ErrorMask;

static DIR_COUNTER: AtomicU32 = AtomicU32::new(0);

fn temp_dir() -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("zeroed-mangle-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset() -> zeroed_datagen::GeneratedDataset {
    generate(
        DatasetSpec::Beers,
        &GenerateOptions {
            n_rows: 140,
            seed: 7,
            error_spec: None,
        },
    )
}

fn mangled_llm(ds: &zeroed_datagen::GeneratedDataset, schedule: MangleSchedule) -> SimLlm {
    let types: Vec<_> = ds
        .injected
        .iter()
        .map(|e| ((e.row, e.col), e.error_type))
        .collect();
    SimLlm::default_model(5)
        .with_oracle(ds.mask.clone())
        .with_error_types(types)
        .with_mangling(schedule)
}

fn config() -> ZeroEdConfig {
    ZeroEdConfig {
        label_rate: 0.08,
        ..ZeroEdConfig::fast()
    }
}

/// A failover-only router config: no hedging, so every request executes on
/// exactly one backend and simulator-side corruption counts stay comparable
/// with the repair layer's.
fn failover_only(n: usize) -> RouterConfig {
    RouterConfig {
        hedge: HedgePolicy {
            enabled: false,
            ..HedgePolicy::default()
        },
        ..RouterConfig::for_backends(n)
    }
}

#[derive(Clone, Copy, Debug)]
enum Mode {
    Sequential,
    Concurrent,
    Routed,
}

/// Runs detection under `schedule` in the given mode with fresh clients,
/// returning the mask, the stats, and the simulator-side corruption count
/// summed across every backend that served requests.
fn run_mode(
    mode: Mode,
    ds: &zeroed_datagen::GeneratedDataset,
    schedule: MangleSchedule,
) -> (ErrorMask, PipelineStats, usize) {
    match mode {
        Mode::Sequential => {
            let llm = mangled_llm(ds, schedule);
            let outcome = ZeroEd::new(config().sequential_runtime()).detect(&ds.dirty, &llm);
            (outcome.mask, outcome.stats, llm.mangled_responses())
        }
        Mode::Concurrent => {
            let llm = mangled_llm(ds, schedule);
            let outcome = ZeroEd::new(config()).detect(&ds.dirty, &llm);
            (outcome.mask, outcome.stats, llm.mangled_responses())
        }
        Mode::Routed => {
            let primary = mangled_llm(ds, schedule);
            let replica = mangled_llm(ds, schedule);
            let clients: Vec<&dyn LlmClient> = vec![&primary, &replica];
            let runtime = RuntimeConfig {
                router: Some(failover_only(2)),
                ..RuntimeConfig::default()
            };
            let router = RouterLlm::from_runtime(&runtime, clients);
            let outcome =
                ZeroEd::new(config().with_runtime(runtime.clone())).detect_routed(&ds.dirty, &router);
            (
                outcome.mask,
                outcome.stats,
                primary.mangled_responses() + replica.mangled_responses(),
            )
        }
    }
}

fn assert_reconciles(stats: &PipelineStats, sim_mangled: usize, label: &str) {
    let repair = stats.repair;
    assert!(
        repair.reconciles(),
        "[{label}] a corrupted response escaped its bucket: {repair:?}"
    );
    assert_eq!(
        repair.total_mangled(),
        sim_mangled,
        "[{label}] repair-layer detections must equal simulator corruptions (zero silent \
         drops): {repair:?}"
    );
}

/// The tentpole sweep: schedules × modes, masks bit-identical, accounting
/// exact in every cell of the matrix.
#[test]
fn seeded_schedules_degrade_identically_across_modes() {
    let ds = dataset();
    for (seed, rate) in [(3u64, 0.3f64), (17, 1.0)] {
        let schedule = MangleSchedule::uniform(seed, rate);
        let (seq_mask, seq_stats, seq_mangled) = run_mode(Mode::Sequential, &ds, schedule);
        assert_reconciles(&seq_stats, seq_mangled, &format!("seq s{seed} r{rate}"));
        assert!(
            seq_stats.repair.total_mangled() > 0,
            "rate {rate} must corrupt something"
        );

        for mode in [Mode::Concurrent, Mode::Routed] {
            let label = format!("{mode:?} s{seed} r{rate}");
            let (mask, stats, sim_mangled) = run_mode(mode, &ds, schedule);
            assert_eq!(
                mask, seq_mask,
                "[{label}] mask diverged from the sequential oracle under mangling"
            );
            assert_reconciles(&stats, sim_mangled, &label);
            // The corruption draw is salt-keyed, so every mode detects the
            // same corruptions (the cache dedups identical requests, but a
            // deduped request was corrupted — and repaired — exactly once).
            assert_eq!(
                stats.repair, seq_stats.repair,
                "[{label}] per-stage counters must not depend on the execution mode"
            );
        }
    }
}

/// A healthy schedule (rate 0) must leave zero fingerprints: no corruption,
/// no repairs, bit-identical mask to a run without any schedule at all.
#[test]
fn zero_rate_schedule_is_a_no_op() {
    let ds = dataset();
    let unscheduled = {
        // No schedule at all: same oracle, same seed.
        let types: Vec<_> = ds
            .injected
            .iter()
            .map(|e| ((e.row, e.col), e.error_type))
            .collect();
        let plain = SimLlm::default_model(5)
            .with_oracle(ds.mask.clone())
            .with_error_types(types);
        ZeroEd::new(config().sequential_runtime()).detect(&ds.dirty, &plain)
    };
    let llm = mangled_llm(&ds, MangleSchedule::uniform(1, 0.0));
    let outcome = ZeroEd::new(config().sequential_runtime()).detect(&ds.dirty, &llm);
    assert_eq!(outcome.mask, unscheduled.mask);
    assert_eq!(llm.mangled_responses(), 0);
    assert_eq!(outcome.stats.repair.total_mangled(), 0);
}

/// Re-ask budget 0 never re-asks (no re-ask ledger traffic), yet still
/// reconciles and still completes on every mode; the re-ask line otherwise
/// bills exactly the attempts the ladder made.
#[test]
fn reask_budget_bounds_the_ledger_reask_line() {
    let ds = dataset();
    let schedule = MangleSchedule::uniform(23, 0.6);

    let llm = mangled_llm(&ds, schedule);
    let zero_budget = ZeroEdConfig {
        reask_budget: 0,
        ..config()
    };
    let outcome = ZeroEd::new(zero_budget.sequential_runtime()).detect(&ds.dirty, &llm);
    assert_reconciles(&outcome.stats, llm.mangled_responses(), "budget 0");
    let (_, reasked, _) = outcome.stats.repair.total_handled();
    assert_eq!(reasked, 0, "budget 0 must never re-ask");
    assert_eq!(llm.ledger().reask_usage().requests, 0);

    let llm = mangled_llm(&ds, schedule);
    let outcome = ZeroEd::new(config().sequential_runtime()).detect(&ds.dirty, &llm);
    assert_reconciles(&outcome.stats, llm.mangled_responses(), "budget 1");
    let (_, reasked, defaulted) = outcome.stats.repair.total_handled();
    // With budget 1 every resolved re-ask burned one attempt and every
    // defaulted request burned its single (failed) attempt.
    assert_eq!(
        llm.ledger().reask_usage().requests,
        reasked + defaulted,
        "re-ask attempts must be billed on the distinct ledger line: {:?}",
        outcome.stats.repair
    );
    let usage = llm.ledger().usage();
    assert!(
        usage.requests > reasked + defaulted,
        "the re-ask line is a subset of total usage"
    );
}

/// Invariant 4: the cache — and the store behind it — hold *repaired*
/// responses, so a warm start from a store written under heavy mangling
/// replays bit-identically with zero requests and zero new repairs.
#[test]
fn warm_start_from_a_mangled_store_replays_repaired_responses() {
    let ds = dataset();
    let dir = temp_dir();
    let schedule = MangleSchedule::uniform(41, 0.5);
    let store_config = || config().with_store_dir(dir.to_str().unwrap());

    let (cold_mask, cold_stats) = {
        let llm = mangled_llm(&ds, schedule);
        let outcome = ZeroEd::new(store_config()).detect(&ds.dirty, &llm);
        assert_reconciles(&outcome.stats, llm.mangled_responses(), "cold mangled store");
        assert!(outcome.stats.repair.total_mangled() > 0);
        assert!(outcome.stats.store_persisted_records > 0);
        (outcome.mask, outcome.stats)
        // ← detector drops: writes drained and synced, "process" exits.
    };

    let llm = mangled_llm(&ds, schedule);
    let outcome = ZeroEd::new(store_config()).detect(&ds.dirty, &llm);
    assert_eq!(outcome.mask, cold_mask, "warm mask must replay bit-identically");
    assert_eq!(
        llm.ledger().usage().requests, 0,
        "warm start must issue zero LLM requests"
    );
    assert_eq!(llm.mangled_responses(), 0, "the simulator is never consulted");
    assert_eq!(
        outcome.stats.repair.total_mangled(),
        0,
        "cached responses are already repaired — nothing to do again"
    );
    assert_eq!(outcome.stats.cache_misses, 0);
    assert_eq!(
        outcome.stats.store_preloaded_records,
        cold_stats.store_persisted_records
    );
    let _ = std::fs::remove_dir_all(&dir);
}
