//! Step 2 — clustering-based representative sampling (paper §III-C).

use zeroed_cluster::{assign_to_nearest, cluster, Clustering, SamplingMethod};
use zeroed_features::FeatureMatrix;

/// The clustering of one attribute's cells plus the representative (closest to
/// centroid) row per cluster.
#[derive(Debug, Clone)]
pub struct ColumnSampling {
    /// Cluster assignment of every row of the attribute.
    pub clustering: Clustering,
    /// Row indices of the representatives sent to the LLM.
    pub representatives: Vec<usize>,
}

/// Clusters one attribute's unified features into `k` clusters and picks the
/// centroid representatives.
///
/// For attributes with more than `max_rows` cells the clustering itself runs
/// on an evenly strided subsample and the remaining rows are assigned to their
/// nearest centroid, which keeps the step linear for the 200k-row Tax dataset
/// while leaving representative selection unchanged.
pub fn sample_column(
    features: &FeatureMatrix,
    k: usize,
    method: SamplingMethod,
    seed: u64,
    max_rows: usize,
) -> ColumnSampling {
    let n_rows = features.n_rows();
    if n_rows == 0 {
        return ColumnSampling {
            clustering: Clustering {
                k: 0,
                assignments: Vec::new(),
                centroids: Vec::new(),
            },
            representatives: Vec::new(),
        };
    }
    let k = k.clamp(1, n_rows);

    if n_rows <= max_rows {
        let rows = features.row_refs();
        let clustering = cluster(method, &rows, k, seed);
        let representatives = clustering.representatives(&rows);
        return ColumnSampling {
            clustering,
            representatives,
        };
    }

    // Subsampled clustering for very large attributes.
    let stride = (n_rows / max_rows).max(1);
    let sample_indices: Vec<usize> = (0..n_rows).step_by(stride).collect();
    let sample_rows: Vec<&[f32]> = sample_indices.iter().map(|&i| features.row(i)).collect();
    let sub = cluster(method, &sample_rows, k, seed);
    // Assign *all* rows to the nearest centroid of the subsampled clustering.
    let all_rows = features.row_refs();
    let assignments = assign_to_nearest(&all_rows, &sub.centroids);
    let clustering = Clustering {
        k: sub.k,
        assignments,
        centroids: sub.centroids,
    };
    let representatives = clustering.representatives(&all_rows);
    ColumnSampling {
        clustering,
        representatives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feature_matrix(n: usize) -> FeatureMatrix {
        // Two obvious groups: small values and large values.
        FeatureMatrix::from_rows(
            (0..n)
                .map(|i| {
                    let base = if i % 2 == 0 { 0.0f32 } else { 10.0 };
                    vec![base + (i % 5) as f32 * 0.01, base]
                })
                .collect(),
        )
    }

    #[test]
    fn samples_one_representative_per_cluster() {
        let feats = feature_matrix(200);
        let s = sample_column(&feats, 2, SamplingMethod::KMeans, 1, 10_000);
        assert_eq!(s.clustering.k, 2);
        assert_eq!(s.representatives.len(), 2);
        assert_eq!(s.clustering.assignments.len(), 200);
        // The two representatives come from different groups.
        let a = s.clustering.assignments[s.representatives[0]];
        let b = s.clustering.assignments[s.representatives[1]];
        assert_ne!(a, b);
    }

    #[test]
    fn subsampled_path_covers_all_rows() {
        let feats = feature_matrix(2_000);
        let s = sample_column(&feats, 4, SamplingMethod::KMeans, 2, 500);
        assert_eq!(s.clustering.assignments.len(), 2_000);
        assert!(s.representatives.len() <= 4 && !s.representatives.is_empty());
        for &r in &s.representatives {
            assert!(r < 2_000);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = FeatureMatrix::zeros(0, 3);
        let s = sample_column(&empty, 5, SamplingMethod::KMeans, 0, 100);
        assert!(s.representatives.is_empty());
        let one = FeatureMatrix::from_rows(vec![vec![1.0, 2.0]]);
        let s = sample_column(&one, 5, SamplingMethod::Random, 0, 100);
        assert_eq!(s.representatives, vec![0]);
    }
}
