//! Step 2 — clustering-based representative sampling (paper §III-C).
//!
//! This stage dominated the non-LLM wall at 50k rows, so the hot path runs
//! over *deduplicated* feature rows: per-attribute vectors are assembled per
//! distinct value and scattered to rows (`zeroed-features`), so an attribute
//! with `n` rows carries only `u ≪ n` distinct vectors. [`sample_column`]
//! factors the matrix through [`DedupPoints`] once and then
//!
//! * k-means runs its Lloyd loops per distinct vector
//!   ([`zeroed_cluster::kmeans_dedup`]), weighting centroid updates by
//!   multiplicity,
//! * the final full-column assignment evaluates one distance per distinct
//!   vector and scatters by code, and
//! * representative selection scans distincts instead of rows.
//!
//! All three are bit-identical to their full-row counterparts (see
//! `zeroed_cluster::dedup`), which the scalar paths — retained as equivalence
//! oracles — assert in the cluster crate's test suite.
//!
//! Two compute policies bound the stage: the `max_cluster_rows` cap applies
//! to the *distinct* count (only attributes whose cardinality exceeds it
//! fall back to a strided row subsample), and the stage's k-means runs under
//! a reduced Lloyd budget (`sampling_kmeans_config`) — representative
//! selection stabilises long before full convergence.

use zeroed_cluster::{
    cluster, kmeans, kmeans_dedup, Clustering, DedupPoints, KMeansConfig, SamplingMethod,
};
use zeroed_features::FeatureMatrix;

/// The clustering of one attribute's cells plus the representative (closest to
/// centroid) row per cluster.
#[derive(Debug, Clone)]
pub struct ColumnSampling {
    /// Cluster assignment of every row of the attribute.
    pub clustering: Clustering,
    /// Row indices of the representatives sent to the LLM.
    pub representatives: Vec<usize>,
}

/// Stride for the strided subsample of an oversized attribute, chosen by
/// ceiling division so the sample never exceeds `max_rows`.
///
/// The former floor division (`n_rows / max_rows`) yielded stride 1 for every
/// `n_rows < 2 * max_rows`, so the "capped" clustering silently ran over the
/// full attribute until twice the cap.
fn subsample_stride(n_rows: usize, max_rows: usize) -> usize {
    n_rows.div_ceil(max_rows.max(1)).max(1)
}

/// The k-means budget for the sampling stage. Sampling clusters an attribute
/// to *pick representatives*, not to report a converged partition: after a
/// handful of Lloyd iterations the per-cluster closest-to-centroid cell is
/// stable for the table shapes the pipeline sees, while the default budget
/// (40 iterations at tolerance 1e-4, which f32 movement noise rarely
/// reaches) spends most of its time polishing centroids to the fourth
/// decimal. The equivalence oracles in `zeroed-cluster` are config-generic,
/// so the dedup fast path keeps its bit-identity guarantees under this
/// budget too.
fn sampling_kmeans_config() -> KMeansConfig {
    KMeansConfig {
        max_iters: 12,
        tolerance: 1e-3,
    }
}

/// Clusters one attribute's unified features into `k` clusters and picks the
/// centroid representatives.
///
/// `max_rows` caps the clustering *compute*, and compute on the dedup path
/// scales with the distinct count: an attribute whose `n_unique()` fits the
/// cap clusters exactly over its weighted distincts no matter how many rows
/// it has. Only high-cardinality attributes exceeding the cap cluster an
/// evenly strided row subsample, with the remaining rows assigned to their
/// nearest centroid — which keeps the step linear for the 200k-row Tax
/// dataset while leaving representative selection unchanged.
pub fn sample_column(
    features: &FeatureMatrix,
    k: usize,
    method: SamplingMethod,
    seed: u64,
    max_rows: usize,
) -> ColumnSampling {
    let n_rows = features.n_rows();
    if n_rows == 0 {
        return ColumnSampling {
            clustering: Clustering {
                k: 0,
                assignments: Vec::new(),
                centroids: Vec::new(),
            },
            representatives: Vec::new(),
        };
    }
    let k = k.clamp(1, n_rows);
    let rows = features.row_refs();
    let dd = DedupPoints::build(&rows);

    // The Lloyd cost of the dedup path scales with the *distinct* count, so
    // the `max_rows` compute cap applies to `n_unique()`, not to `n_rows`:
    // a million-row attribute with 2k distinct values clusters exactly (all
    // rows weighted in) instead of over a strided sample.
    let direct_kmeans =
        matches!(method, SamplingMethod::KMeans) && dd.n_unique() <= max_rows.max(1);
    if n_rows <= max_rows || direct_kmeans {
        let clustering = match method {
            // The paper-default method gets the dedup-weighted Lloyd loop.
            SamplingMethod::KMeans => kmeans_dedup(&dd, k, &sampling_kmeans_config(), seed),
            _ => cluster(method, &rows, k, seed),
        };
        let representatives = dd.representatives(&clustering);
        return ColumnSampling {
            clustering,
            representatives,
        };
    }

    // Subsampled clustering for very large high-cardinality attributes.
    let stride = subsample_stride(n_rows, max_rows);
    let sample_indices: Vec<usize> = (0..n_rows).step_by(stride).collect();
    let sample_rows: Vec<&[f32]> = sample_indices.iter().map(|&i| features.row(i)).collect();
    let sub = match method {
        SamplingMethod::KMeans => kmeans(&sample_rows, k, &sampling_kmeans_config(), seed),
        _ => cluster(method, &sample_rows, k, seed),
    };
    // Assign *all* rows to the nearest centroid of the subsampled clustering
    // (one distance evaluation per distinct vector, scattered by code).
    let assignments = dd.assign_to_nearest(&sub.centroids);
    let clustering = Clustering {
        k: sub.k,
        assignments,
        centroids: sub.centroids,
    };
    let representatives = dd.representatives(&clustering);
    ColumnSampling {
        clustering,
        representatives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feature_matrix(n: usize) -> FeatureMatrix {
        // Two obvious groups: small values and large values.
        FeatureMatrix::from_rows(
            (0..n)
                .map(|i| {
                    let base = if i % 2 == 0 { 0.0f32 } else { 10.0 };
                    vec![base + (i % 5) as f32 * 0.01, base]
                })
                .collect(),
        )
    }

    #[test]
    fn samples_one_representative_per_cluster() {
        let feats = feature_matrix(200);
        let s = sample_column(&feats, 2, SamplingMethod::KMeans, 1, 10_000);
        assert_eq!(s.clustering.k, 2);
        assert_eq!(s.representatives.len(), 2);
        assert_eq!(s.clustering.assignments.len(), 200);
        // The two representatives come from different groups.
        let a = s.clustering.assignments[s.representatives[0]];
        let b = s.clustering.assignments[s.representatives[1]];
        assert_ne!(a, b);
    }

    #[test]
    fn subsampled_path_covers_all_rows() {
        let feats = feature_matrix(2_000);
        let s = sample_column(&feats, 4, SamplingMethod::KMeans, 2, 500);
        assert_eq!(s.clustering.assignments.len(), 2_000);
        assert!(s.representatives.len() <= 4 && !s.representatives.is_empty());
        for &r in &s.representatives {
            assert!(r < 2_000);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = FeatureMatrix::zeros(0, 3);
        let s = sample_column(&empty, 5, SamplingMethod::KMeans, 0, 100);
        assert!(s.representatives.is_empty());
        let one = FeatureMatrix::from_rows(vec![vec![1.0, 2.0]]);
        let s = sample_column(&one, 5, SamplingMethod::Random, 0, 100);
        assert_eq!(s.representatives, vec![0]);
    }

    /// A low-cardinality attribute far above `max_rows` must still take the
    /// exact dedup path (the compute cap applies to distincts): every row is
    /// assigned, both groups get a representative, and the clustering
    /// matches the uncapped run exactly.
    #[test]
    fn low_cardinality_column_clusters_exactly_past_the_row_cap() {
        let feats = feature_matrix(5_000); // 10 distinct vectors
        let capped = sample_column(&feats, 2, SamplingMethod::KMeans, 3, 100);
        let uncapped = sample_column(&feats, 2, SamplingMethod::KMeans, 3, usize::MAX);
        assert_eq!(capped.clustering.assignments.len(), 5_000);
        assert_eq!(capped.clustering.assignments, uncapped.clustering.assignments);
        assert_eq!(capped.clustering.centroids, uncapped.clustering.centroids);
        assert_eq!(capped.representatives, uncapped.representatives);
        let a = capped.clustering.assignments[capped.representatives[0]];
        let b = capped.clustering.assignments[capped.representatives[1]];
        assert_ne!(a, b);
    }

    /// Boundary regression for the subsample cap: at `n = max_rows + 1` the
    /// floor-division stride was 1, so the "capped" clustering ran over all
    /// rows. Ceiling division must keep the sample within `max_rows` for
    /// every oversized `n`.
    #[test]
    fn subsample_never_exceeds_max_rows_at_the_boundary() {
        for max_rows in [1usize, 2, 7, 500] {
            for n_rows in [max_rows + 1, 2 * max_rows - 1, 2 * max_rows, 3 * max_rows + 1] {
                if n_rows <= max_rows {
                    continue;
                }
                let stride = subsample_stride(n_rows, max_rows);
                let sampled = (0..n_rows).step_by(stride).count();
                assert!(
                    sampled <= max_rows,
                    "n={n_rows} max={max_rows}: stride {stride} samples {sampled} rows"
                );
            }
        }
        // The exact boundary the bug hid behind.
        assert_eq!(subsample_stride(501, 500), 2);
    }
}
