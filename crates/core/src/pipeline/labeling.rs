//! Step 3 — guideline generation and holistic LLM labelling (paper §III-C).

use crate::config::ZeroEdConfig;
use std::collections::HashMap;
use zeroed_llm::{AttributeContext, LlmClient};

/// Labels the representative cells of one attribute.
///
/// When guidelines are enabled the two-step process of the paper runs first:
/// the LLM writes distribution-analysis functions (whose execution over the
/// full data is summarised in a [`zeroed_llm::DistributionAnalysis`]) and then
/// derives an attribute-specific detection guideline, which is included in
/// every labelling prompt. Representatives are labelled in batches of
/// `config.batch_size`.
///
/// Returns a map `row index → is_error`.
pub fn label_representatives(
    ctx: &AttributeContext<'_>,
    config: &ZeroEdConfig,
    llm: &dyn LlmClient,
    representatives: &[usize],
) -> HashMap<usize, bool> {
    let mut labels = HashMap::with_capacity(representatives.len());
    if representatives.is_empty() {
        return labels;
    }
    let guideline = if config.use_guidelines {
        let analysis = llm.analyze_distribution(ctx);
        Some(llm.generate_guideline(ctx, &analysis))
    } else {
        None
    };
    for batch in representatives.chunks(config.batch_size.max(1)) {
        let batch_labels = llm.label_batch(ctx, guideline.as_ref(), batch);
        for (&row, &is_error) in batch.iter().zip(batch_labels.iter()) {
            labels.insert(row, is_error);
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
    use zeroed_llm::SimLlm;

    fn fixture() -> (zeroed_datagen::GeneratedDataset, SimLlm) {
        let ds = generate(
            DatasetSpec::Hospital,
            &GenerateOptions {
                n_rows: 120,
                seed: 5,
                error_spec: None,
            },
        );
        let llm = SimLlm::default_model(3).with_oracle(ds.mask.clone());
        (ds, llm)
    }

    #[test]
    fn labels_every_representative_exactly_once() {
        let (ds, llm) = fixture();
        let corr = vec![0usize];
        let reps: Vec<usize> = (0..30).collect();
        let ctx = AttributeContext {
            table: &ds.dirty,
            column: 3,
            correlated: &corr,
            sample_rows: &reps,
        };
        let config = ZeroEdConfig::fast();
        let labels = label_representatives(&ctx, &config, &llm, &reps);
        assert_eq!(labels.len(), 30);
        for row in 0..30 {
            assert!(labels.contains_key(&row));
        }
    }

    #[test]
    fn guideline_ablation_skips_analysis_calls() {
        let (ds, _) = fixture();
        let corr = vec![0usize];
        let reps: Vec<usize> = (0..10).collect();
        let ctx = AttributeContext {
            table: &ds.dirty,
            column: 2,
            correlated: &corr,
            sample_rows: &reps,
        };
        // With guidelines: analysis + guideline + 1 labelling batch = 3 requests.
        let with_llm = SimLlm::default_model(1);
        let _ = label_representatives(&ctx, &ZeroEdConfig::fast(), &with_llm, &reps);
        let with_requests = with_llm.ledger().usage().requests;
        // Without guidelines: only the labelling batch.
        let without_llm = SimLlm::default_model(1);
        let _ = label_representatives(
            &ctx,
            &ZeroEdConfig::fast().without_guidelines(),
            &without_llm,
            &reps,
        );
        let without_requests = without_llm.ledger().usage().requests;
        assert!(with_requests > without_requests);
        assert_eq!(without_requests, 1);
    }

    #[test]
    fn batching_splits_requests() {
        let (ds, _) = fixture();
        let corr: Vec<usize> = vec![];
        let reps: Vec<usize> = (0..45).collect();
        let ctx = AttributeContext {
            table: &ds.dirty,
            column: 1,
            correlated: &corr,
            sample_rows: &reps,
        };
        let llm = SimLlm::default_model(2);
        let config = ZeroEdConfig {
            batch_size: 20,
            ..ZeroEdConfig::fast().without_guidelines()
        };
        let labels = label_representatives(&ctx, &config, &llm, &reps);
        assert_eq!(labels.len(), 45);
        // ceil(45 / 20) = 3 labelling requests.
        assert_eq!(llm.ledger().usage().requests, 3);
    }

    #[test]
    fn empty_representatives_short_circuit() {
        let (ds, llm) = fixture();
        let corr: Vec<usize> = vec![];
        let ctx = AttributeContext {
            table: &ds.dirty,
            column: 0,
            correlated: &corr,
            sample_rows: &[],
        };
        let labels = label_representatives(&ctx, &ZeroEdConfig::fast(), &llm, &[]);
        assert!(labels.is_empty());
    }
}
