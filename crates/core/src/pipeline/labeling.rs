//! Step 3 — guideline generation and holistic LLM labelling (paper §III-C).
//!
//! On the concurrent runtime path each attribute's chain (distribution
//! analysis → guideline → label batches) runs as one scheduler task, so the
//! calls below stay ordered within the attribute while attributes proceed in
//! parallel.

use crate::config::ZeroEdConfig;
use crate::pipeline::repair;
use std::collections::HashMap;
use zeroed_llm::{AttributeContext, LlmClient};

/// The labels of one attribute's representatives plus the bookkeeping of any
/// short labelling responses that were repaired.
#[derive(Debug, Clone, Default)]
pub struct LabelOutcome {
    /// `row index → is_error` for every representative.
    pub labels: HashMap<usize, bool>,
    /// Representatives relabelled one-by-one because their batch returned
    /// fewer labels than requested.
    pub fallback_cells: usize,
    /// Representatives defaulted to clean because even the individual
    /// relabelling returned no label.
    pub defaulted_cells: usize,
}

/// Labels the representative cells of one attribute.
///
/// When guidelines are enabled the two-step process of the paper runs first:
/// the LLM writes distribution-analysis functions (whose execution over the
/// full data is summarised in a [`zeroed_llm::DistributionAnalysis`]) and then
/// derives an attribute-specific detection guideline, which is included in
/// every labelling prompt. Representatives are labelled in batches of
/// `config.batch_size`.
///
/// A model may answer a batch with fewer labels than it was asked for (a
/// truncated or malformed response). Those rows are never dropped silently:
/// they are relabelled individually, and rows that still come back empty are
/// recorded as defaulted-to-clean in the outcome's counters.
pub fn label_representatives(
    ctx: &AttributeContext<'_>,
    config: &ZeroEdConfig,
    llm: &dyn LlmClient,
    representatives: &[usize],
) -> LabelOutcome {
    let mut outcome = LabelOutcome {
        labels: HashMap::with_capacity(representatives.len()),
        ..LabelOutcome::default()
    };
    if representatives.is_empty() {
        return outcome;
    }
    let guideline = if config.use_guidelines {
        let analysis = llm.analyze_distribution(ctx);
        Some(llm.generate_guideline(ctx, &analysis))
    } else {
        None
    };
    for batch in representatives.chunks(config.batch_size.max(1)) {
        let batch_labels = llm.label_batch(ctx, guideline.as_ref(), batch);
        for (&row, &is_error) in batch.iter().zip(batch_labels.iter()) {
            outcome.labels.insert(row, is_error);
        }
        // Short response: the zip above consumed the answered prefix; the
        // unanswered suffix goes through the shared per-row repair helper.
        let unanswered = &batch[batch_labels.len().min(batch.len())..];
        outcome.fallback_cells += unanswered.len();
        for (row, is_error, defaulted) in
            repair::relabel_rows_individually(llm, ctx, guideline.as_ref(), unanswered)
        {
            if defaulted {
                outcome.defaulted_cells += 1;
            }
            outcome.labels.insert(row, is_error);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
    use zeroed_llm::SimLlm;

    fn fixture() -> (zeroed_datagen::GeneratedDataset, SimLlm) {
        let ds = generate(
            DatasetSpec::Hospital,
            &GenerateOptions {
                n_rows: 120,
                seed: 5,
                error_spec: None,
            },
        );
        let llm = SimLlm::default_model(3).with_oracle(ds.mask.clone());
        (ds, llm)
    }

    #[test]
    fn labels_every_representative_exactly_once() {
        let (ds, llm) = fixture();
        let corr = vec![0usize];
        let reps: Vec<usize> = (0..30).collect();
        let ctx = AttributeContext {
            table: &ds.dirty,
            column: 3,
            correlated: &corr,
            sample_rows: &reps,
        };
        let config = ZeroEdConfig::fast();
        let outcome = label_representatives(&ctx, &config, &llm, &reps);
        assert_eq!(outcome.labels.len(), 30);
        for row in 0..30 {
            assert!(outcome.labels.contains_key(&row));
        }
        assert_eq!(outcome.fallback_cells, 0);
        assert_eq!(outcome.defaulted_cells, 0);
    }

    #[test]
    fn guideline_ablation_skips_analysis_calls() {
        let (ds, _) = fixture();
        let corr = vec![0usize];
        let reps: Vec<usize> = (0..10).collect();
        let ctx = AttributeContext {
            table: &ds.dirty,
            column: 2,
            correlated: &corr,
            sample_rows: &reps,
        };
        // With guidelines: analysis + guideline + 1 labelling batch = 3 requests.
        let with_llm = SimLlm::default_model(1);
        let _ = label_representatives(&ctx, &ZeroEdConfig::fast(), &with_llm, &reps);
        let with_requests = with_llm.ledger().usage().requests;
        // Without guidelines: only the labelling batch.
        let without_llm = SimLlm::default_model(1);
        let _ = label_representatives(
            &ctx,
            &ZeroEdConfig::fast().without_guidelines(),
            &without_llm,
            &reps,
        );
        let without_requests = without_llm.ledger().usage().requests;
        assert!(with_requests > without_requests);
        assert_eq!(without_requests, 1);
    }

    #[test]
    fn batching_splits_requests() {
        let (ds, _) = fixture();
        let corr: Vec<usize> = vec![];
        let reps: Vec<usize> = (0..45).collect();
        let ctx = AttributeContext {
            table: &ds.dirty,
            column: 1,
            correlated: &corr,
            sample_rows: &reps,
        };
        let llm = SimLlm::default_model(2);
        let config = ZeroEdConfig {
            batch_size: 20,
            ..ZeroEdConfig::fast().without_guidelines()
        };
        let outcome = label_representatives(&ctx, &config, &llm, &reps);
        assert_eq!(outcome.labels.len(), 45);
        // ceil(45 / 20) = 3 labelling requests.
        assert_eq!(llm.ledger().usage().requests, 3);
    }

    #[test]
    fn empty_representatives_short_circuit() {
        let (ds, llm) = fixture();
        let corr: Vec<usize> = vec![];
        let ctx = AttributeContext {
            table: &ds.dirty,
            column: 0,
            correlated: &corr,
            sample_rows: &[],
        };
        let outcome = label_representatives(&ctx, &ZeroEdConfig::fast(), &llm, &[]);
        assert!(outcome.labels.is_empty());
    }

    /// An [`LlmClient`] whose batch answers are truncated: full batches get
    /// only `keep` labels back, single-row repair requests answer normally,
    /// except rows in `mute` which never get an answer at all.
    struct TruncatingLlm {
        inner: SimLlm,
        keep: usize,
        mute: Vec<usize>,
    }

    impl LlmClient for TruncatingLlm {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn ledger(&self) -> &zeroed_llm::TokenLedger {
            self.inner.ledger()
        }
        fn generate_criteria(&self, ctx: &AttributeContext<'_>) -> zeroed_criteria::CriteriaSet {
            self.inner.generate_criteria(ctx)
        }
        fn analyze_distribution(&self, ctx: &AttributeContext<'_>) -> zeroed_llm::DistributionAnalysis {
            self.inner.analyze_distribution(ctx)
        }
        fn generate_guideline(
            &self,
            ctx: &AttributeContext<'_>,
            analysis: &zeroed_llm::DistributionAnalysis,
        ) -> zeroed_llm::Guideline {
            self.inner.generate_guideline(ctx, analysis)
        }
        fn label_batch(
            &self,
            ctx: &AttributeContext<'_>,
            guideline: Option<&zeroed_llm::Guideline>,
            rows: &[usize],
        ) -> Vec<bool> {
            if rows.len() == 1 && self.mute.contains(&rows[0]) {
                return Vec::new();
            }
            let mut labels = self.inner.label_batch(ctx, guideline, rows);
            if rows.len() > 1 {
                labels.truncate(self.keep);
            }
            labels
        }
        fn refine_criteria(
            &self,
            ctx: &AttributeContext<'_>,
            clean: &[String],
            error: &[String],
            existing: &zeroed_criteria::CriteriaSet,
        ) -> zeroed_criteria::CriteriaSet {
            self.inner.refine_criteria(ctx, clean, error, existing)
        }
        fn augment_errors(
            &self,
            ctx: &AttributeContext<'_>,
            clean: &[String],
            count: usize,
        ) -> Vec<String> {
            self.inner.augment_errors(ctx, clean, count)
        }
        fn detect_tuple(&self, table: &zeroed_table::Table, row: usize) -> Vec<bool> {
            self.inner.detect_tuple(table, row)
        }
    }

    #[test]
    fn truncated_batches_are_repaired_row_by_row() {
        let (ds, _) = fixture();
        let llm = TruncatingLlm {
            inner: SimLlm::default_model(2).with_oracle(ds.mask.clone()),
            keep: 6,
            mute: vec![8],
        };
        let corr: Vec<usize> = vec![];
        let reps: Vec<usize> = (0..10).collect();
        let ctx = AttributeContext {
            table: &ds.dirty,
            column: 1,
            correlated: &corr,
            sample_rows: &reps,
        };
        let config = ZeroEdConfig {
            batch_size: 10,
            ..ZeroEdConfig::fast().without_guidelines()
        };
        let outcome = label_representatives(&ctx, &config, &llm, &reps);
        // Every representative is labelled despite the truncated batch.
        assert_eq!(outcome.labels.len(), 10);
        for row in 0..10 {
            assert!(outcome.labels.contains_key(&row), "row {row} lost");
        }
        // Rows 6..10 fell back to individual labelling; row 8 never answered
        // and defaulted to clean.
        assert_eq!(outcome.fallback_cells, 4);
        assert_eq!(outcome.defaulted_cells, 1);
        assert_eq!(outcome.labels[&8], false);
        // The repaired labels agree with what the model answers individually.
        let single = llm.label_batch(&ctx, None, &[7]);
        assert_eq!(outcome.labels[&7], single[0]);
    }
}
