//! Step 4 — training-data construction (paper Algorithm 1).
//!
//! The LLM labels of the cluster representatives are propagated to every cell
//! of the same cluster; the attribute's criteria are refined contrastively on
//! the labelled examples; criteria and propagated labels then verify each
//! other (criteria with low accuracy on clean-labelled data are dropped,
//! clean-labelled cells failing most surviving criteria are discarded); and
//! finally the LLM augments the minority error class with synthetic error
//! values.
//!
//! On the concurrent runtime path [`construct`] runs as one scheduler task
//! per attribute (the refinement → verification → augmentation chain stays
//! ordered within the attribute); it makes no cross-attribute reads, which is
//! what keeps the fan-out bit-identical to the sequential loop.

use super::sampling::ColumnSampling;
use crate::config::{CriteriaEngine, ZeroEdConfig};
use std::collections::HashMap;
use zeroed_criteria::verify::oracle;
use zeroed_criteria::{filter_criteria_dict, filter_rows_dict, CriteriaSet};
use zeroed_llm::{AttributeContext, LlmClient};
use zeroed_obs::Span;
use zeroed_table::TableDict;

/// The per-attribute training data produced by Algorithm 1.
#[derive(Debug, Clone, Default)]
pub struct ColumnTrainingData {
    /// Rows whose (verified) label is clean.
    pub clean_rows: Vec<usize>,
    /// Rows whose propagated label is erroneous.
    pub error_rows: Vec<usize>,
    /// Synthetic error examples: `(context row, fabricated value)`.
    pub augmented: Vec<(usize, String)>,
    /// The refined and verified criteria for the attribute (None when the
    /// criteria component is ablated).
    pub criteria: Option<CriteriaSet>,
    /// Number of cells that received a label through propagation.
    pub propagated_cells: usize,
}

/// Runs Algorithm 1 for one attribute.
///
/// `dict` is the run-wide distinct-value dictionary of `ctx.table` (built
/// once by the pipeline); the compiled criteria engine verifies per distinct
/// code against it. `verify_span`, when given, accrues the wall time of the
/// mutual-verification passes (the `criteria_verify` distribution in the
/// stage profile).
pub fn construct(
    ctx: &AttributeContext<'_>,
    config: &ZeroEdConfig,
    llm: &dyn LlmClient,
    sampling: &ColumnSampling,
    llm_labels: &HashMap<usize, bool>,
    criteria: Option<CriteriaSet>,
    dict: &TableDict,
    verify_span: Option<&Span>,
) -> ColumnTrainingData {
    let table = ctx.table;
    let col = ctx.column;

    // ---- Line 1: propagate labels within clusters. -----------------------
    // Propagation touches every row of the column; reserve up front so the
    // pushes below never reallocate mid-loop.
    let n_assignments = sampling.clustering.assignments.len();
    let mut clean_rows: Vec<usize> = Vec::with_capacity(n_assignments);
    let mut error_rows: Vec<usize> = Vec::with_capacity(n_assignments / 4);
    let mut propagated_cells = 0usize;
    // Label of each cluster = label of its representative (when labelled).
    let mut cluster_label: HashMap<usize, bool> = HashMap::new();
    for (&row, &label) in llm_labels {
        if let Some(&cluster) = sampling.clustering.assignments.get(row) {
            cluster_label.insert(cluster, label);
        }
    }
    for (row, &cluster) in sampling.clustering.assignments.iter().enumerate() {
        let Some(&label) = cluster_label.get(&cluster) else {
            continue;
        };
        if !llm_labels.contains_key(&row) {
            propagated_cells += 1;
        }
        if label {
            error_rows.push(row);
        } else {
            clean_rows.push(row);
        }
    }

    // ---- Lines 4–7: contrastive criteria refinement. ----------------------
    // Iterate the LLM labels in row order so the pipeline stays deterministic
    // regardless of hash-map iteration order.
    let mut sorted_labels: Vec<(usize, bool)> =
        llm_labels.iter().map(|(&row, &label)| (row, label)).collect();
    sorted_labels.sort_unstable();
    let clean_examples: Vec<String> = sorted_labels
        .iter()
        .filter(|(_, e)| !e)
        .take(20)
        .map(|(row, _)| table.cell(*row, col).to_string())
        .collect();
    let error_examples: Vec<String> = sorted_labels
        .iter()
        .filter(|(_, e)| *e)
        .take(20)
        .map(|(row, _)| table.cell(*row, col).to_string())
        .collect();
    let mut refined = criteria.map(|set| {
        if config.use_verification && !clean_examples.is_empty() {
            llm.refine_criteria(ctx, &clean_examples, &error_examples, &set)
        } else {
            set
        }
    });

    // ---- Lines 8–20: mutual verification. ---------------------------------
    if config.use_verification {
        if let Some(set) = refined.take() {
            let t_verify = std::time::Instant::now();
            // Verify criteria on a bounded sample of clean-labelled rows.
            let check_rows: Vec<usize> = clean_rows.iter().copied().take(500).collect();
            let threshold = config.verification_threshold;
            let (verified_criteria, kept_rows) = match config.criteria_engine {
                CriteriaEngine::Compiled => {
                    let verified = filter_criteria_dict(&set, dict, &check_rows, threshold);
                    // Verify propagated clean labels with the surviving
                    // criteria.
                    let kept = filter_rows_dict(&verified, dict, &clean_rows, threshold);
                    (verified, kept)
                }
                CriteriaEngine::AstOracle => {
                    let verified = oracle::filter_criteria(&set, table, &check_rows, threshold);
                    let kept = oracle::filter_rows(&verified, table, &clean_rows, threshold);
                    (verified, kept)
                }
            };
            clean_rows = kept_rows;
            refined = Some(verified_criteria);
            if let Some(span) = verify_span {
                span.record(t_verify.elapsed());
            }
        }
    }

    // ---- Lines 24–26: LLM error augmentation for class balance. -----------
    let mut augmented: Vec<(usize, String)> = Vec::new();
    if config.use_verification && !clean_rows.is_empty() {
        let deficit = clean_rows.len().saturating_sub(error_rows.len());
        let target = deficit
            .min(config.max_augment_per_column)
            .min(clean_rows.len());
        if target > 0 {
            let example_values: Vec<String> = clean_rows
                .iter()
                .take(20)
                .map(|&row| table.cell(row, col).to_string())
                .collect();
            let generated = llm.augment_errors(ctx, &example_values, target);
            for (i, value) in generated.into_iter().enumerate() {
                let context_row = clean_rows[i % clean_rows.len()];
                augmented.push((context_row, value));
            }
        }
    }

    ColumnTrainingData {
        clean_rows,
        error_rows,
        augmented,
        criteria: refined,
        propagated_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::features;
    use crate::pipeline::sampling::sample_column;
    use zeroed_cluster::SamplingMethod;
    use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
    use zeroed_features::{FeatureBuilder, FeatureConfig};
    use zeroed_llm::{LlmClient, SimLlm};

    struct Fixture {
        ds: zeroed_datagen::GeneratedDataset,
        llm: SimLlm,
        sampling: ColumnSampling,
        labels: HashMap<usize, bool>,
        correlated: Vec<Vec<usize>>,
        criteria: Vec<Option<CriteriaSet>>,
        column: usize,
    }

    fn fixture() -> Fixture {
        let ds = generate(
            DatasetSpec::Beers,
            &GenerateOptions {
                n_rows: 200,
                seed: 9,
                error_spec: None,
            },
        );
        let types: Vec<_> = ds
            .injected
            .iter()
            .map(|e| ((e.row, e.col), e.error_type))
            .collect();
        let llm = SimLlm::default_model(4)
            .with_oracle(ds.mask.clone())
            .with_error_types(types);
        let config = ZeroEdConfig::fast();
        let column = ds.dirty.column_index("state").unwrap();
        let correlated = features::compute_correlated(&ds.dirty, &config);
        let criteria = features::generate_criteria(&ds.dirty, &correlated, &config, &llm);
        let extra = features::criteria_extra(&criteria, &ds.dirty);
        let feats = FeatureBuilder::new(FeatureConfig {
            embed_dim: 8,
            top_k_corr: 2,
            ..FeatureConfig::default()
        })
        .build(&ds.dirty, &extra);
        let sampling = sample_column(
            &feats.unified[column],
            20,
            SamplingMethod::KMeans,
            7,
            20_000,
        );
        let reps = sampling.representatives.clone();
        let ctx = AttributeContext {
            table: &ds.dirty,
            column,
            correlated: &correlated[column],
            sample_rows: &reps,
        };
        let labels: HashMap<usize, bool> = reps
            .iter()
            .zip(llm.label_batch(&ctx, None, &reps))
            .map(|(&r, l)| (r, l))
            .collect();
        Fixture {
            ds,
            llm,
            sampling,
            labels,
            correlated,
            criteria,
            column,
        }
    }

    #[test]
    fn propagation_expands_the_labeled_set() {
        let f = fixture();
        let ctx = AttributeContext {
            table: &f.ds.dirty,
            column: f.column,
            correlated: &f.correlated[f.column],
            sample_rows: &f.sampling.representatives,
        };
        let data = construct(
            &ctx,
            &ZeroEdConfig::fast(),
            &f.llm,
            &f.sampling,
            &f.labels,
            f.criteria[f.column].clone(),
            &f.ds.dirty.intern(),
            None,
        );
        let labeled = data.clean_rows.len() + data.error_rows.len();
        assert!(
            labeled > f.labels.len(),
            "propagation should label more cells than the LLM did directly"
        );
        assert!(data.propagated_cells > 0);
        assert!(data.criteria.is_some());
    }

    #[test]
    fn augmentation_balances_classes_and_respects_ablation() {
        let f = fixture();
        let ctx = AttributeContext {
            table: &f.ds.dirty,
            column: f.column,
            correlated: &f.correlated[f.column],
            sample_rows: &f.sampling.representatives,
        };
        let dict = f.ds.dirty.intern();
        let with = construct(
            &ctx,
            &ZeroEdConfig::fast(),
            &f.llm,
            &f.sampling,
            &f.labels,
            f.criteria[f.column].clone(),
            &dict,
            None,
        );
        assert!(
            !with.augmented.is_empty(),
            "clean rows should outnumber error rows, triggering augmentation"
        );
        assert!(with.augmented.len() <= ZeroEdConfig::fast().max_augment_per_column);
        for (row, value) in &with.augmented {
            assert!(*row < f.ds.dirty.n_rows());
            assert!(value.len() < 200);
        }
        let without = construct(
            &ctx,
            &ZeroEdConfig::fast().without_verification(),
            &f.llm,
            &f.sampling,
            &f.labels,
            f.criteria[f.column].clone(),
            &dict,
            None,
        );
        assert!(without.augmented.is_empty());
    }

    #[test]
    fn compiled_and_oracle_engines_construct_identical_training_data() {
        let f = fixture();
        let ctx = AttributeContext {
            table: &f.ds.dirty,
            column: f.column,
            correlated: &f.correlated[f.column],
            sample_rows: &f.sampling.representatives,
        };
        let dict = f.ds.dirty.intern();
        let compiled = construct(
            &ctx,
            &ZeroEdConfig::fast(),
            &f.llm,
            &f.sampling,
            &f.labels,
            f.criteria[f.column].clone(),
            &dict,
            None,
        );
        let oracle = construct(
            &ctx,
            &ZeroEdConfig::fast().with_criteria_oracle(),
            &f.llm,
            &f.sampling,
            &f.labels,
            f.criteria[f.column].clone(),
            &dict,
            None,
        );
        assert_eq!(compiled.clean_rows, oracle.clean_rows);
        assert_eq!(compiled.error_rows, oracle.error_rows);
        assert_eq!(compiled.criteria, oracle.criteria);
        assert_eq!(compiled.augmented, oracle.augmented);
    }

    #[test]
    fn works_without_criteria() {
        let f = fixture();
        let ctx = AttributeContext {
            table: &f.ds.dirty,
            column: f.column,
            correlated: &f.correlated[f.column],
            sample_rows: &f.sampling.representatives,
        };
        let data = construct(
            &ctx,
            &ZeroEdConfig::fast().without_criteria(),
            &f.llm,
            &f.sampling,
            &f.labels,
            None,
            &f.ds.dirty.intern(),
            None,
        );
        assert!(data.criteria.is_none());
        assert!(!data.clean_rows.is_empty());
    }
}
