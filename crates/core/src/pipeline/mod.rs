//! The four-step ZeroED pipeline.

pub mod detector;
pub mod features;
pub mod labeling;
pub mod sampling;
pub mod training_data;

use crate::config::ZeroEdConfig;
use crate::report::{DetectionOutcome, PipelineStats, StepTimings};
use std::sync::Arc;
use std::time::Instant;
use zeroed_features::{FeatureBuilder, FeatureConfig};
use zeroed_llm::{AttributeContext, LlmClient};
use zeroed_table::{ErrorMask, Table};

/// The ZeroED error detector.
///
/// Construct with a [`ZeroEdConfig`] and call [`ZeroEd::detect`] with the
/// dirty table and an [`LlmClient`]. The detector never looks at ground truth;
/// any oracle knowledge lives exclusively inside the (simulated) LLM client
/// supplied by the caller.
#[derive(Debug, Clone)]
pub struct ZeroEd {
    config: ZeroEdConfig,
}

impl ZeroEd {
    /// Creates a detector with the given configuration.
    pub fn new(config: ZeroEdConfig) -> Self {
        Self { config }
    }

    /// Creates a detector with the paper's default configuration.
    pub fn with_defaults() -> Self {
        Self::new(ZeroEdConfig::default())
    }

    /// The detector's configuration.
    pub fn config(&self) -> &ZeroEdConfig {
        &self.config
    }

    /// Runs the full pipeline on a dirty table and returns the predicted
    /// error mask together with timings and statistics.
    pub fn detect(&self, dirty: &Table, llm: &dyn LlmClient) -> DetectionOutcome {
        let config = &self.config;
        let n_rows = dirty.n_rows();
        let n_cols = dirty.n_cols();
        let mut stats = PipelineStats::default();
        let mut timings = StepTimings::default();

        if n_rows == 0 || n_cols == 0 {
            return DetectionOutcome {
                mask: ErrorMask::for_table(dirty),
                timings,
                stats,
            };
        }

        // ------------------------------------------------------------------
        // Step 1 — feature representation with criteria reasoning (§III-B).
        // ------------------------------------------------------------------
        let t0 = Instant::now();
        // Intern the table once; the dictionary is shared by correlated-
        // attribute selection, the frequency model and the feature caches.
        let dict = Arc::new(dirty.intern());
        let correlated = features::compute_correlated_dict(&dict, config);
        let criteria = features::generate_criteria(dirty, &correlated, config, llm);
        let extra = features::criteria_extra(&criteria, dirty);
        let feature_config = FeatureConfig {
            embed_dim: config.embed_dim,
            top_k_corr: config.effective_top_k(),
            ..FeatureConfig::default()
        };
        let builder = FeatureBuilder::new(feature_config);
        // Reuse the correlated attributes computed above (the same lists the
        // LLM prompt contexts describe) — the NMI sweep runs exactly once.
        let fitted = builder.fit_prepared(dirty, dict, correlated.clone(), &extra);
        let feats = fitted.build_all();
        stats.criteria_count = criteria.iter().flatten().map(|c| c.len()).sum();
        timings.features = t0.elapsed();

        // ------------------------------------------------------------------
        // Step 2 — representative sampling (§III-C).
        // ------------------------------------------------------------------
        let t1 = Instant::now();
        let samplings: Vec<sampling::ColumnSampling> = (0..n_cols)
            .map(|j| {
                sampling::sample_column(
                    &feats.unified[j],
                    config.clusters_for(n_rows),
                    config.sampling.into(),
                    config.seed.wrapping_add(j as u64),
                    config.max_cluster_rows,
                )
            })
            .collect();
        timings.sampling = t1.elapsed();

        // ------------------------------------------------------------------
        // Step 3 — holistic LLM labelling (§III-C).
        // ------------------------------------------------------------------
        let t2 = Instant::now();
        let mut column_labels = Vec::with_capacity(n_cols);
        for j in 0..n_cols {
            let ctx = AttributeContext {
                table: dirty,
                column: j,
                correlated: &correlated[j],
                sample_rows: &samplings[j].representatives,
            };
            let labels = labeling::label_representatives(
                &ctx,
                config,
                llm,
                &samplings[j].representatives,
            );
            stats.llm_labeled_cells += labels.len();
            column_labels.push(labels);
        }
        timings.labeling = t2.elapsed();

        // ------------------------------------------------------------------
        // Step 4 — training-data construction (Algorithm 1).
        // ------------------------------------------------------------------
        let t3 = Instant::now();
        let mut training: Vec<training_data::ColumnTrainingData> = Vec::with_capacity(n_cols);
        for j in 0..n_cols {
            let ctx = AttributeContext {
                table: dirty,
                column: j,
                correlated: &correlated[j],
                sample_rows: &samplings[j].representatives,
            };
            let data = training_data::construct(
                &ctx,
                config,
                llm,
                &samplings[j],
                &column_labels[j],
                criteria[j].clone(),
            );
            stats.propagated_cells += data.propagated_cells;
            stats.verified_clean_rows += data.clean_rows.len();
            stats.error_rows += data.error_rows.len();
            stats.augmented_rows += data.augmented.len();
            training.push(data);
        }
        stats.criteria_count = training
            .iter()
            .filter_map(|d| d.criteria.as_ref().map(|c| c.len()))
            .sum();
        timings.training_data = t3.elapsed();

        // ------------------------------------------------------------------
        // Step 5 — detector training and prediction (§III-D).
        // ------------------------------------------------------------------
        let t4 = Instant::now();
        let mut mask = ErrorMask::for_table(dirty);
        let predictions: Vec<Vec<bool>> = (0..n_cols)
            .map(|j| {
                detector::train_and_predict(
                    dirty,
                    j,
                    &fitted,
                    &feats.unified[j],
                    &training[j],
                    config,
                )
            })
            .collect();
        for (j, column_pred) in predictions.iter().enumerate() {
            for (i, &flag) in column_pred.iter().enumerate() {
                if flag {
                    mask.set(i, j, true);
                }
            }
        }
        timings.detector = t4.elapsed();

        DetectionOutcome {
            mask,
            timings,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
    use zeroed_llm::SimLlm;

    fn small_dataset() -> zeroed_datagen::GeneratedDataset {
        generate(
            DatasetSpec::Beers,
            &GenerateOptions {
                n_rows: 150,
                seed: 3,
                error_spec: None,
            },
        )
    }

    #[test]
    fn pipeline_produces_a_useful_mask_with_oracle_llm() {
        let ds = small_dataset();
        let types = ds
            .injected
            .iter()
            .map(|e| ((e.row, e.col), e.error_type))
            .collect::<Vec<_>>();
        let llm = SimLlm::default_model(1)
            .with_oracle(ds.mask.clone())
            .with_error_types(types);
        let config = ZeroEdConfig {
            label_rate: 0.1,
            ..ZeroEdConfig::fast()
        };
        let outcome = ZeroEd::new(config).detect(&ds.dirty, &llm);
        let report = outcome.mask.score_against(&ds.mask).unwrap();
        assert!(
            report.f1 > 0.45,
            "expected a reasonable F1 on an easy dataset, got {report}"
        );
        assert!(outcome.stats.llm_labeled_cells > 0);
        assert!(outcome.stats.verified_clean_rows > 0);
        assert!(outcome.timings.total().as_nanos() > 0);
        // The LLM labelled far fewer cells than the table contains.
        assert!(outcome.stats.llm_labeled_cells < ds.dirty.n_cells() / 2);
    }

    #[test]
    fn pipeline_handles_empty_table() {
        let empty = Table::empty("e", vec!["a".into(), "b".into()]);
        let llm = SimLlm::default_model(0);
        let outcome = ZeroEd::with_defaults().detect(&empty, &llm);
        assert_eq!(outcome.mask.error_count(), 0);
    }

    #[test]
    fn ablations_run_and_disable_their_component() {
        let ds = small_dataset();
        let llm = SimLlm::default_model(2).with_oracle(ds.mask.clone());
        let base_config = ZeroEdConfig {
            label_rate: 0.08,
            ..ZeroEdConfig::fast()
        };
        let no_crit = ZeroEd::new(base_config.clone().without_criteria()).detect(&ds.dirty, &llm);
        assert_eq!(no_crit.stats.criteria_count, 0);
        let no_corr = ZeroEd::new(base_config.clone().without_correlated());
        assert_eq!(no_corr.config().effective_top_k(), 0);
        let no_veri =
            ZeroEd::new(base_config.clone().without_verification()).detect(&ds.dirty, &llm);
        assert_eq!(no_veri.stats.augmented_rows, 0);
    }
}
