//! The four-step ZeroED pipeline.
//!
//! Since the orchestration-runtime refactor the pipeline has two execution
//! paths selected by [`ZeroEdConfig::runtime`]:
//!
//! * **Concurrent** (default) — per-attribute work is fanned out across the
//!   [`zeroed_runtime::Scheduler`] worker pool. Each attribute's LLM stage
//!   chain (distribution analysis → guideline → label batches, then
//!   refinement → augmentation) runs as one task, preserving stage order
//!   within the attribute while attributes proceed in parallel. When the
//!   request cache is enabled, the [`zeroed_llm::LlmClient`] is wrapped in a
//!   [`zeroed_runtime::CachedLlm`], so identical requests (retries, re-runs
//!   of the same detection) replay stored responses instead of calling the
//!   model.
//! * **Sequential** — the seed behaviour: plain loops on the calling thread,
//!   no scheduler, no cache. Kept as the correctness oracle; the concurrent
//!   path must produce a bit-identical [`ErrorMask`] (asserted by the
//!   `runtime_equivalence` integration tests), the same discipline
//!   `zeroed_features::reference` established for the featuriser.
//!
//! With [`ZeroEdConfig::with_store`] the concurrent+cache path additionally
//! persists every published response to a crash-safe on-disk store
//! (`zeroed-store`) and preloads it at construction, so a *fresh process*
//! re-running the same detection issues zero LLM requests (asserted by the
//! `store_warm_start` conformance tests). The sequential oracle ignores the
//! store by design.
//!
//! The two *local* hot stages run dedup-weighted fast paths — [`sampling`]
//! clusters each attribute over its distinct feature vectors and
//! [`detector`] trains/predicts per distinct row with multiplicity weights —
//! with their scalar predecessors retained as equivalence oracles (see
//! ARCHITECTURE.md, "The non-LLM wall").

pub mod detector;
pub mod features;
pub mod labeling;
pub mod repair;
pub mod sampling;
pub mod training_data;

use crate::config::ZeroEdConfig;
use crate::report::{DetectionOutcome, PipelineStats, StepTimings};
use std::sync::Arc;
use std::time::{Duration, Instant};
use zeroed_features::{FeatureBuilder, FeatureConfig};
use zeroed_llm::{AttributeContext, LlmClient};
use zeroed_obs::{EventKind, Profiler, StageProfile, TraceId, TraceRecorder};
use zeroed_runtime::{CachedLlm, ExecMode, ResponseCache, RouterLlm, Scheduler, StoreLayer};
use zeroed_table::{ErrorMask, Table};

/// A parallel leaf node for a grafted maintenance timing (store opens,
/// fsyncs, compactions): its total is wall time spent off the critical
/// path or on another thread, so it must not count against the parent's
/// sequential accounting.
fn parallel_leaf(name: &str, nanos: u64, count: u64) -> StageProfile {
    let mut leaf = StageProfile::leaf(name, Duration::from_nanos(nanos), count);
    leaf.parallel = true;
    leaf
}

/// The ZeroED error detector.
///
/// Construct with a [`ZeroEdConfig`] and call [`ZeroEd::detect`] with the
/// dirty table and an [`LlmClient`]. The detector never looks at ground truth;
/// any oracle knowledge lives exclusively inside the (simulated) LLM client
/// supplied by the caller.
///
/// The detector owns the runtime's response cache, which persists across
/// [`ZeroEd::detect`] calls (and is shared by clones): re-running detection
/// over the same table and model replays cached responses instead of paying
/// for the LLM again. With [`ZeroEdConfig::with_store`] the cache is also
/// backed by a crash-safe on-disk store: published responses are written
/// through in the background, and construction preloads every persisted
/// response — a *new process* pointed at the same store directory replays
/// the previous run's answers with zero LLM requests.
#[derive(Debug, Clone)]
pub struct ZeroEd {
    config: ZeroEdConfig,
    cache: Arc<ResponseCache>,
    /// Persistence layer (shared by clones; the last drop drains pending
    /// writes and syncs the store).
    store: Option<Arc<StoreLayer>>,
    /// Records preloaded into the cache from the store at construction.
    store_preloaded: usize,
}

impl ZeroEd {
    /// Creates a detector with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if [`ZeroEdConfig::runtime`] names a response-store directory
    /// that cannot be opened (real I/O errors only — damaged store *content*
    /// is recovered, never fatal). Use [`ZeroEd::try_new`] to handle the
    /// error instead.
    pub fn new(config: ZeroEdConfig) -> Self {
        Self::try_new(config).expect("failed to open the configured response store")
    }

    /// Creates a detector, surfacing response-store I/O errors.
    pub fn try_new(config: ZeroEdConfig) -> std::io::Result<Self> {
        let cache = Arc::new(ResponseCache::new(config.runtime.cache_capacity));
        let (store, store_preloaded) = match &config.runtime.store {
            Some(store_config) => {
                let layer = StoreLayer::open(store_config.clone())?;
                let preloaded = layer.preload_into(&cache)?;
                (Some(Arc::new(layer)), preloaded)
            }
            None => (None, 0),
        };
        Ok(Self {
            config,
            cache,
            store,
            store_preloaded,
        })
    }

    /// Creates a detector with the paper's default configuration.
    pub fn with_defaults() -> Self {
        Self::new(ZeroEdConfig::default())
    }

    /// The detector's configuration.
    pub fn config(&self) -> &ZeroEdConfig {
        &self.config
    }

    /// The runtime response cache (shared with clones of this detector).
    pub fn cache(&self) -> &Arc<ResponseCache> {
        &self.cache
    }

    /// The persistence layer backing the cache, when a store is configured
    /// (shared with clones of this detector).
    pub fn store(&self) -> Option<&Arc<StoreLayer>> {
        self.store.as_ref()
    }

    /// Runs the full pipeline on a dirty table and returns the predicted
    /// error mask together with timings and statistics.
    ///
    /// Every stage response flows through the repair/re-ask layer
    /// ([`repair::RepairLlm`]) before the pipeline — or the response cache —
    /// sees it: corrupted responses are structurally repaired, re-asked
    /// within [`ZeroEdConfig::reask_budget`], or replaced by deterministic
    /// stage defaults, with exact per-stage accounting in
    /// [`PipelineStats::repair`]. Because the cache wraps the *repaired*
    /// client, persisted stores always hold repaired responses and warm
    /// starts replay them bit-identically with zero requests.
    pub fn detect(&self, dirty: &Table, llm: &dyn LlmClient) -> DetectionOutcome {
        // One flight recorder per run, seeded with the config seed so trace
        // ids are stable across execution modes (same request key + same
        // nonce → same [`TraceId`] whether the run is sequential, concurrent
        // or routed).
        let recorder = TraceRecorder::new(self.config.seed);
        self.detect_recorded(dirty, llm, &recorder)
    }

    /// [`ZeroEd::detect`] with a caller-supplied flight recorder (so routed
    /// runs can pre-install the same recorder on the router).
    fn detect_recorded(
        &self,
        dirty: &Table,
        llm: &dyn LlmClient,
        recorder: &Arc<TraceRecorder>,
    ) -> DetectionOutcome {
        // One profiler per run: the five pipeline steps record sequential
        // stage spans under the root, while the repair ladder, the
        // scheduler, the response cache and the store graft *parallel*
        // distribution nodes (their totals are CPU time across workers or
        // cache-lifetime sums, not coordinating-thread wall time).
        let profiler = Profiler::new("detect");
        let repairing = repair::RepairLlm::new(llm, self.config.reask_budget)
            .with_span(profiler.root().child_parallel("repair"))
            .with_recorder(Arc::clone(recorder));
        let mut outcome = match self.config.runtime.mode {
            ExecMode::Sequential => self.detect_sequential(dirty, &repairing, &profiler),
            ExecMode::Concurrent if self.config.runtime.cache => {
                let mut cached = CachedLlm::for_table(&repairing, Arc::clone(&self.cache), dirty)
                    .with_recorder(Arc::clone(recorder));
                // A fresh sink per run: its counters attribute write-through
                // activity to this run alone, even when cloned detectors
                // share the layer and persist concurrently.
                let sink = self
                    .store
                    .as_ref()
                    .map(|layer| layer.sink().with_recorder(Arc::clone(recorder)));
                if let Some(sink) = &sink {
                    cached = cached.with_persistence(sink.clone());
                }
                if self.store.is_some() {
                    // The preload itself ran at construction (before this
                    // recorder existed); journal it here so the trace ledger
                    // carries the warm-start size this run actually saw.
                    recorder.emit(
                        TraceId::NONE,
                        EventKind::StorePreload,
                        self.store_preloaded as u64,
                    );
                }
                let mut outcome = self.detect_concurrent(dirty, &cached, &profiler, recorder);
                // Per-adapter counters, not a delta of the shared cache's
                // global stats: clones of this detector share the cache and
                // may detect concurrently, and their activity must not leak
                // into this run's accounting.
                let stats = cached.stats();
                outcome.stats.cache_hits = stats.hits as usize;
                outcome.stats.cache_misses = stats.misses as usize;
                outcome.stats.cache_coalesced = stats.coalesced as usize;
                outcome.stats.cache_tokens_saved = stats.tokens_saved() as usize;
                outcome.stats.store_hits = stats.store_hits as usize;
                if let (Some(layer), Some(sink)) = (&self.store, &sink) {
                    // Wait for the background writer to drain this run's
                    // offers so the persisted counters are exact (a queue
                    // barrier, not an fsync — the hot path stayed unblocked).
                    layer.drain();
                    let persisted = sink.stats();
                    outcome.stats.store_persisted_records =
                        persisted.persisted_records as usize;
                    outcome.stats.store_persisted_bytes = persisted.persisted_bytes as usize;
                    outcome.stats.store_preloaded_records = self.store_preloaded;
                    let recovery = layer.recovery();
                    outcome.stats.store_recovered_records = recovery.records_recovered;
                    outcome.stats.store_discarded_tails =
                        recovery.tails_truncated + recovery.segments_skipped;
                    // TTL/GC accounting: expiries at open plus any a
                    // compaction performed while this run appended.
                    outcome.stats.store_expired_records =
                        layer.store_stats().expired_records as usize;
                    outcome.stats.store_shards = layer.store().shard_count();
                }
                outcome
            }
            ExecMode::Concurrent => self.detect_concurrent(dirty, &repairing, &profiler, recorder),
        };
        outcome.stats.repair = repairing.counters();
        // Summarised after every layer has settled: the store drain above is
        // the last event producer (its writer thread journals persists), so
        // the counts below reconcile exactly against the layer stats.
        outcome.stats.trace = Some(recorder.summary(5));
        if let Some(profile) = outcome.stats.stage_profile.as_mut() {
            // Graft the response-cache and store distributions. Both live
            // longer than one run (clones share the cache; the store is
            // opened at construction), so their totals are lifetime sums —
            // flagged parallel, they never count against run accounting.
            let ct = self.cache.timings();
            let mut cache_node = StageProfile::new("llm_cache");
            cache_node.parallel = true;
            cache_node.count = ct.lock_hold.count;
            cache_node.wall_nanos =
                ct.lock_hold.total_nanos + ct.park_wait.total_nanos + ct.preload.total_nanos;
            cache_node.children.push(ct.lock_hold.to_stage("lock_hold"));
            cache_node.children.push(ct.park_wait.to_stage("park_wait"));
            cache_node.children.push(ct.preload.to_stage("preload"));
            profile.children.push(cache_node);
            if let Some(layer) = &self.store {
                let lt = layer.timings();
                let ss = layer.store_stats();
                let mut store_node = StageProfile::new("store");
                store_node.parallel = true;
                store_node.wall_nanos = lt.open_nanos
                    + lt.preload_nanos
                    + ss.fsync_nanos
                    + ss.compaction_nanos
                    + ss.gc_nanos;
                store_node.children.push(parallel_leaf("open", lt.open_nanos, 1));
                store_node.children.push(parallel_leaf(
                    "preload",
                    lt.preload_nanos,
                    u64::from(lt.preload_nanos > 0),
                ));
                store_node
                    .children
                    .push(parallel_leaf("fsync", ss.fsync_nanos, ss.fsyncs));
                store_node.children.push(parallel_leaf(
                    "compaction",
                    ss.compaction_nanos,
                    ss.compactions,
                ));
                store_node.children.push(parallel_leaf(
                    "gc",
                    ss.gc_nanos,
                    u64::from(ss.gc_nanos > 0),
                ));
                profile.children.push(store_node);
            }
        }
        outcome
    }

    /// Runs detection across several LLM backends through a
    /// [`zeroed_runtime::RouterLlm`] built by the caller (typically via
    /// [`RouterLlm::from_runtime`] with this detector's
    /// [`ZeroEdConfig::runtime`] policy).
    ///
    /// The router is an ordinary [`LlmClient`], so the pipeline itself runs
    /// unchanged — [`ZeroEd::detect`] handles mode and caching exactly as for
    /// a single backend. On top of that, this entry point folds the router's
    /// activity (requests, failovers, hedges, breaker trips, hedge waste)
    /// into the returned [`PipelineStats`].
    ///
    /// Routing never changes the detection result: with response-equivalent
    /// backends, the mask is bit-identical to a single-backend sequential run
    /// under every fault schedule (asserted by the router conformance suite
    /// in `crates/runtime/tests/router_conformance.rs`).
    pub fn detect_routed(&self, dirty: &Table, router: &RouterLlm<'_>) -> DetectionOutcome {
        let before = router.stats();
        // Pre-install the run's flight recorder on the router so its
        // admission/failover/hedge decisions land in the same journal as the
        // scheduler, cache, repair and store events.
        let recorder = TraceRecorder::new(self.config.seed);
        router.install_recorder(Arc::clone(&recorder));
        let mut outcome = self.detect_recorded(dirty, router, &recorder);
        router.clear_recorder();
        let delta_of = |now: u64, then: u64| (now - then) as usize;
        let after = router.stats();
        outcome.stats.router_backends = router.backend_count();
        outcome.stats.router_requests = delta_of(after.requests, before.requests);
        outcome.stats.router_failovers = delta_of(after.failovers, before.failovers);
        outcome.stats.router_hedges_fired = delta_of(after.hedges_fired, before.hedges_fired);
        outcome.stats.router_hedges_won =
            delta_of(after.hedges_won_by_hedge, before.hedges_won_by_hedge);
        outcome.stats.router_breaker_trips =
            delta_of(after.breaker_trips, before.breaker_trips);
        outcome.stats.router_hedge_waste_tokens =
            delta_of(after.hedge_waste_tokens, before.hedge_waste_tokens);
        outcome
    }

    /// The concurrent path: per-attribute fan-out on the scheduler.
    fn detect_concurrent(
        &self,
        dirty: &Table,
        llm: &dyn LlmClient,
        profiler: &Profiler,
        recorder: &Arc<TraceRecorder>,
    ) -> DetectionOutcome {
        let config = &self.config;
        let n_rows = dirty.n_rows();
        let n_cols = dirty.n_cols();
        let mut stats = PipelineStats::default();
        let mut timings = StepTimings::default();

        if n_rows == 0 || n_cols == 0 {
            return DetectionOutcome {
                mask: ErrorMask::for_table(dirty),
                timings,
                stats,
            };
        }

        let root = profiler.root();
        let t_run = Instant::now();
        let scheduler = Scheduler::from_config(&config.runtime).with_recorder(Arc::clone(recorder));

        // ------------------------------------------------------------------
        // Step 1 — feature representation with criteria reasoning (§III-B).
        // ------------------------------------------------------------------
        let t0 = Instant::now();
        let step = root.child("features");
        let dict = step.child("intern").time(|| Arc::new(dirty.intern()));
        let correlated = step
            .child("correlated_nmi")
            .time(|| features::compute_correlated_dict(&dict, config));
        let criteria = step
            .child("criteria_llm")
            .time(|| features::generate_criteria_on(&scheduler, dirty, &correlated, config, llm));
        let extra = step.child("criteria_features").time(|| {
            features::criteria_extra_dict_on(
                &scheduler,
                &criteria,
                dirty,
                &dict,
                config.criteria_engine,
            )
        });
        let feature_config = FeatureConfig {
            embed_dim: config.embed_dim,
            top_k_corr: config.effective_top_k(),
            ..FeatureConfig::default()
        };
        let builder = FeatureBuilder::new(feature_config);
        let fitted = step
            .child("fit")
            .time(|| builder.fit_prepared(dirty, Arc::clone(&dict), correlated.clone(), &extra));
        let feats = step.child("build_matrices").time(|| fitted.build_all());
        timings.features = t0.elapsed();
        step.record(timings.features);

        // ------------------------------------------------------------------
        // Step 2 — representative sampling (§III-C).
        // ------------------------------------------------------------------
        let t1 = Instant::now();
        let step = root.child("sampling");
        let per_col = step.child_dist("sample_column");
        let samplings: Vec<sampling::ColumnSampling> = scheduler.run(n_cols, |j| {
            per_col.time(|| {
                sampling::sample_column(
                    &feats.unified[j],
                    config.clusters_for(n_rows),
                    config.sampling.into(),
                    config.seed.wrapping_add(j as u64),
                    config.max_cluster_rows,
                )
            })
        });
        timings.sampling = t1.elapsed();
        step.record(timings.sampling);

        // ------------------------------------------------------------------
        // Step 3 — holistic LLM labelling (§III-C). One task per attribute:
        // analysis → guideline → label batches, ordered within the task.
        // ------------------------------------------------------------------
        let t2 = Instant::now();
        let step = root.child("labeling");
        let per_col = step.child_dist("label_attribute");
        let label_outcomes: Vec<labeling::LabelOutcome> = scheduler.run(n_cols, |j| {
            per_col.time(|| {
                let ctx = AttributeContext {
                    table: dirty,
                    column: j,
                    correlated: &correlated[j],
                    sample_rows: &samplings[j].representatives,
                };
                labeling::label_representatives(&ctx, config, llm, &samplings[j].representatives)
            })
        });
        for outcome in &label_outcomes {
            stats.llm_labeled_cells += outcome.labels.len();
            stats.label_fallback_cells += outcome.fallback_cells;
            stats.label_defaulted_cells += outcome.defaulted_cells;
        }
        timings.labeling = t2.elapsed();
        step.record(timings.labeling);

        // ------------------------------------------------------------------
        // Step 4 — training-data construction (Algorithm 1). One task per
        // attribute: propagation → refinement → verification → augmentation.
        // ------------------------------------------------------------------
        let t3 = Instant::now();
        let step = root.child("training_data");
        let per_col = step.child_dist("construct_attribute");
        let verify_dist = step.child_dist("criteria_verify");
        let training: Vec<training_data::ColumnTrainingData> = scheduler.run(n_cols, |j| {
            per_col.time(|| {
                let ctx = AttributeContext {
                    table: dirty,
                    column: j,
                    correlated: &correlated[j],
                    sample_rows: &samplings[j].representatives,
                };
                training_data::construct(
                    &ctx,
                    config,
                    llm,
                    &samplings[j],
                    &label_outcomes[j].labels,
                    criteria[j].clone(),
                    &dict,
                    Some(&verify_dist),
                )
            })
        });
        for data in &training {
            stats.propagated_cells += data.propagated_cells;
            stats.verified_clean_rows += data.clean_rows.len();
            stats.error_rows += data.error_rows.len();
            stats.augmented_rows += data.augmented.len();
        }
        stats.criteria_count = training
            .iter()
            .filter_map(|d| d.criteria.as_ref().map(|c| c.len()))
            .sum();
        timings.training_data = t3.elapsed();
        step.record(timings.training_data);

        // ------------------------------------------------------------------
        // Step 5 — detector training and prediction (§III-D).
        // ------------------------------------------------------------------
        let t4 = Instant::now();
        let step = root.child("detector");
        let per_col = step.child_dist("train_predict");
        let mut mask = ErrorMask::for_table(dirty);
        let predictions: Vec<Vec<bool>> = scheduler.run(n_cols, |j| {
            per_col.time(|| {
                detector::train_and_predict(
                    dirty,
                    j,
                    &fitted,
                    &feats.unified[j],
                    &training[j],
                    config,
                )
            })
        });
        for (j, column_pred) in predictions.iter().enumerate() {
            for (i, &flag) in column_pred.iter().enumerate() {
                if flag {
                    mask.set(i, j, true);
                }
            }
        }
        timings.detector = t4.elapsed();
        step.record(timings.detector);

        let sched_stats = scheduler.stats();
        stats.runtime_tasks = sched_stats.tasks as usize;
        stats.runtime_retries = sched_stats.retries as usize;

        root.record(t_run.elapsed());
        let mut profile = profiler.snapshot();
        // Graft the scheduler's per-task distributions: queue wait (submit →
        // pickup) and execute (task body) across all five fan-outs. CPU time
        // summed over workers, so the node is parallel.
        let st = scheduler.timings();
        let mut runtime_node = StageProfile::new("runtime");
        runtime_node.parallel = true;
        runtime_node.count = st.execute.count;
        runtime_node.wall_nanos = st.queue_wait.total_nanos + st.execute.total_nanos;
        runtime_node.children.push(st.queue_wait.to_stage("queue_wait"));
        runtime_node.children.push(st.execute.to_stage("execute"));
        profile.children.push(runtime_node);
        stats.stage_profile = Some(profile);

        DetectionOutcome {
            mask,
            timings,
            stats,
        }
    }

    /// The sequential oracle path: the seed behaviour, plain loops on the
    /// calling thread, no scheduler, no cache. Stage spans mirror the
    /// concurrent path's names so breakdowns compare across modes (the
    /// per-attribute distribution nodes stay flagged parallel for symmetry
    /// even though this path runs them on the calling thread).
    fn detect_sequential(
        &self,
        dirty: &Table,
        llm: &dyn LlmClient,
        profiler: &Profiler,
    ) -> DetectionOutcome {
        let config = &self.config;
        let n_rows = dirty.n_rows();
        let n_cols = dirty.n_cols();
        let mut stats = PipelineStats::default();
        let mut timings = StepTimings::default();

        if n_rows == 0 || n_cols == 0 {
            return DetectionOutcome {
                mask: ErrorMask::for_table(dirty),
                timings,
                stats,
            };
        }

        let root = profiler.root();
        let t_run = Instant::now();

        // ------------------------------------------------------------------
        // Step 1 — feature representation with criteria reasoning (§III-B).
        // ------------------------------------------------------------------
        let t0 = Instant::now();
        let step = root.child("features");
        // Intern the table once; the dictionary is shared by correlated-
        // attribute selection, the frequency model and the feature caches.
        let dict = step.child("intern").time(|| Arc::new(dirty.intern()));
        let correlated = step
            .child("correlated_nmi")
            .time(|| features::compute_correlated_dict(&dict, config));
        let criteria = step
            .child("criteria_llm")
            .time(|| features::generate_criteria(dirty, &correlated, config, llm));
        let extra = step
            .child("criteria_features")
            .time(|| features::criteria_extra_dict(&criteria, dirty, &dict, config.criteria_engine));
        let feature_config = FeatureConfig {
            embed_dim: config.embed_dim,
            top_k_corr: config.effective_top_k(),
            ..FeatureConfig::default()
        };
        let builder = FeatureBuilder::new(feature_config);
        // Reuse the correlated attributes computed above (the same lists the
        // LLM prompt contexts describe) — the NMI sweep runs exactly once.
        let fitted = step
            .child("fit")
            .time(|| builder.fit_prepared(dirty, Arc::clone(&dict), correlated.clone(), &extra));
        let feats = step.child("build_matrices").time(|| fitted.build_all());
        timings.features = t0.elapsed();
        step.record(timings.features);

        // ------------------------------------------------------------------
        // Step 2 — representative sampling (§III-C).
        // ------------------------------------------------------------------
        let t1 = Instant::now();
        let step = root.child("sampling");
        let per_col = step.child_dist("sample_column");
        let samplings: Vec<sampling::ColumnSampling> = (0..n_cols)
            .map(|j| {
                per_col.time(|| {
                    sampling::sample_column(
                        &feats.unified[j],
                        config.clusters_for(n_rows),
                        config.sampling.into(),
                        config.seed.wrapping_add(j as u64),
                        config.max_cluster_rows,
                    )
                })
            })
            .collect();
        timings.sampling = t1.elapsed();
        step.record(timings.sampling);

        // ------------------------------------------------------------------
        // Step 3 — holistic LLM labelling (§III-C).
        // ------------------------------------------------------------------
        let t2 = Instant::now();
        let step = root.child("labeling");
        let per_col = step.child_dist("label_attribute");
        let mut label_outcomes = Vec::with_capacity(n_cols);
        for j in 0..n_cols {
            let ctx = AttributeContext {
                table: dirty,
                column: j,
                correlated: &correlated[j],
                sample_rows: &samplings[j].representatives,
            };
            let outcome = per_col.time(|| {
                labeling::label_representatives(&ctx, config, llm, &samplings[j].representatives)
            });
            stats.llm_labeled_cells += outcome.labels.len();
            stats.label_fallback_cells += outcome.fallback_cells;
            stats.label_defaulted_cells += outcome.defaulted_cells;
            label_outcomes.push(outcome);
        }
        timings.labeling = t2.elapsed();
        step.record(timings.labeling);

        // ------------------------------------------------------------------
        // Step 4 — training-data construction (Algorithm 1).
        // ------------------------------------------------------------------
        let t3 = Instant::now();
        let step = root.child("training_data");
        let per_col = step.child_dist("construct_attribute");
        let verify_dist = step.child_dist("criteria_verify");
        let mut training: Vec<training_data::ColumnTrainingData> = Vec::with_capacity(n_cols);
        for j in 0..n_cols {
            let ctx = AttributeContext {
                table: dirty,
                column: j,
                correlated: &correlated[j],
                sample_rows: &samplings[j].representatives,
            };
            let data = per_col.time(|| {
                training_data::construct(
                    &ctx,
                    config,
                    llm,
                    &samplings[j],
                    &label_outcomes[j].labels,
                    criteria[j].clone(),
                    &dict,
                    Some(&verify_dist),
                )
            });
            stats.propagated_cells += data.propagated_cells;
            stats.verified_clean_rows += data.clean_rows.len();
            stats.error_rows += data.error_rows.len();
            stats.augmented_rows += data.augmented.len();
            training.push(data);
        }
        stats.criteria_count = training
            .iter()
            .filter_map(|d| d.criteria.as_ref().map(|c| c.len()))
            .sum();
        timings.training_data = t3.elapsed();
        step.record(timings.training_data);

        // ------------------------------------------------------------------
        // Step 5 — detector training and prediction (§III-D).
        // ------------------------------------------------------------------
        let t4 = Instant::now();
        let step = root.child("detector");
        let per_col = step.child_dist("train_predict");
        let mut mask = ErrorMask::for_table(dirty);
        let predictions: Vec<Vec<bool>> = (0..n_cols)
            .map(|j| {
                per_col.time(|| {
                    detector::train_and_predict(
                        dirty,
                        j,
                        &fitted,
                        &feats.unified[j],
                        &training[j],
                        config,
                    )
                })
            })
            .collect();
        for (j, column_pred) in predictions.iter().enumerate() {
            for (i, &flag) in column_pred.iter().enumerate() {
                if flag {
                    mask.set(i, j, true);
                }
            }
        }
        timings.detector = t4.elapsed();
        step.record(timings.detector);

        root.record(t_run.elapsed());
        stats.stage_profile = Some(profiler.snapshot());

        DetectionOutcome {
            mask,
            timings,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
    use zeroed_llm::SimLlm;

    fn small_dataset() -> zeroed_datagen::GeneratedDataset {
        generate(
            DatasetSpec::Beers,
            &GenerateOptions {
                n_rows: 150,
                seed: 3,
                error_spec: None,
            },
        )
    }

    #[test]
    fn pipeline_produces_a_useful_mask_with_oracle_llm() {
        let ds = small_dataset();
        let types = ds
            .injected
            .iter()
            .map(|e| ((e.row, e.col), e.error_type))
            .collect::<Vec<_>>();
        let llm = SimLlm::default_model(1)
            .with_oracle(ds.mask.clone())
            .with_error_types(types);
        let config = ZeroEdConfig {
            label_rate: 0.1,
            ..ZeroEdConfig::fast()
        };
        let outcome = ZeroEd::new(config).detect(&ds.dirty, &llm);
        let report = outcome.mask.score_against(&ds.mask).unwrap();
        assert!(
            report.f1 > 0.45,
            "expected a reasonable F1 on an easy dataset, got {report}"
        );
        assert!(outcome.stats.llm_labeled_cells > 0);
        assert!(outcome.stats.verified_clean_rows > 0);
        assert!(outcome.timings.total().as_nanos() > 0);
        // The LLM labelled far fewer cells than the table contains.
        assert!(outcome.stats.llm_labeled_cells < ds.dirty.n_cells() / 2);
        // The default path went through the scheduler.
        assert!(outcome.stats.runtime_tasks > 0);
    }

    #[test]
    fn stage_profile_accounts_for_the_run() {
        let ds = small_dataset();
        let llm = SimLlm::default_model(9).with_oracle(ds.mask.clone());
        let config = ZeroEdConfig {
            label_rate: 0.08,
            ..ZeroEdConfig::fast()
        };
        let outcome = ZeroEd::new(config.clone()).detect(&ds.dirty, &llm);
        let profile = outcome
            .stats
            .stage_profile
            .as_ref()
            .expect("a non-empty run must carry a stage profile");
        assert!(profile.accounting_ok(), "\n{}", profile.render_table());
        assert!(
            profile.coverage() >= 0.9,
            "top-level stages cover {:.3} of root wall\n{}",
            profile.coverage(),
            profile.render_table()
        );
        for name in ["features", "sampling", "labeling", "training_data", "detector"] {
            assert!(profile.child(name).is_some(), "missing stage {name}");
        }
        assert!(profile.find("features/criteria_llm").is_some());
        let execute = profile.find("runtime/execute").expect("scheduler node");
        assert!(execute.parallel && execute.count > 0);
        // Every stage response passes through the ladder's validate step.
        let validate = profile.find("repair/validate").expect("repair node");
        assert!(validate.count > 0);
        let cache = profile.find("llm_cache/lock_hold").expect("cache node");
        assert!(cache.parallel);

        // The sequential oracle profiles the same stage names.
        let seq = ZeroEd::new(config.sequential_runtime()).detect(&ds.dirty, &llm);
        let seq_profile = seq.stats.stage_profile.as_ref().unwrap();
        assert!(seq_profile.accounting_ok());
        assert!(seq_profile.coverage() >= 0.9);
        assert!(seq_profile.find("labeling/label_attribute").is_some());
        assert!(seq_profile.find("runtime").is_none(), "no scheduler node");
    }

    #[test]
    fn pipeline_handles_empty_table() {
        let empty = Table::empty("e", vec!["a".into(), "b".into()]);
        let llm = SimLlm::default_model(0);
        let outcome = ZeroEd::with_defaults().detect(&empty, &llm);
        assert_eq!(outcome.mask.error_count(), 0);
        let seq = ZeroEd::new(ZeroEdConfig::default().sequential_runtime()).detect(&empty, &llm);
        assert_eq!(seq.mask.error_count(), 0);
    }

    #[test]
    fn ablations_run_and_disable_their_component() {
        let ds = small_dataset();
        let llm = SimLlm::default_model(2).with_oracle(ds.mask.clone());
        let base_config = ZeroEdConfig {
            label_rate: 0.08,
            ..ZeroEdConfig::fast()
        };
        let no_crit = ZeroEd::new(base_config.clone().without_criteria()).detect(&ds.dirty, &llm);
        assert_eq!(no_crit.stats.criteria_count, 0);
        let no_corr = ZeroEd::new(base_config.clone().without_correlated());
        assert_eq!(no_corr.config().effective_top_k(), 0);
        let no_veri =
            ZeroEd::new(base_config.clone().without_verification()).detect(&ds.dirty, &llm);
        assert_eq!(no_veri.stats.augmented_rows, 0);
    }

    #[test]
    fn repeated_detection_replays_the_cache() {
        let ds = small_dataset();
        let detector = ZeroEd::new(ZeroEdConfig {
            label_rate: 0.08,
            ..ZeroEdConfig::fast()
        });
        let llm_cold = SimLlm::default_model(4).with_oracle(ds.mask.clone());
        let cold = detector.detect(&ds.dirty, &llm_cold);
        assert_eq!(cold.stats.cache_hits, 0, "first run cannot hit");
        assert!(cold.stats.cache_misses > 0);

        // Fresh client, same seed and oracle: every request replays.
        let llm_warm = SimLlm::default_model(4).with_oracle(ds.mask.clone());
        let warm = detector.detect(&ds.dirty, &llm_warm);
        assert_eq!(warm.mask, cold.mask, "replayed run must be bit-identical");
        assert_eq!(warm.stats.cache_misses, 0, "warm run must be all hits");
        assert_eq!(warm.stats.cache_hits, cold.stats.cache_misses);
        assert!(warm.stats.cache_tokens_saved > 0);
        assert_eq!(
            llm_warm.ledger().usage().requests,
            0,
            "warm run must not call the model"
        );
    }
}
