//! The generalized repair/re-ask layer ([`RepairLlm`]).
//!
//! A served model can return content that *parses* but violates its stage's
//! contract: truncated lists, wrong-arity answers, hallucinated column names,
//! drifted schemas, empty bodies (the corruption taxonomy simulated by
//! `zeroed_llm::mangle`). Every stage response the pipeline consumes flows
//! through this layer, which applies one shared **repair ladder**:
//!
//! 1. **validate** — check the stage contract (arity, column identity,
//!    canonical structure). Healthy responses always pass and flow through
//!    untouched.
//! 2. **repair** — attempt a structural salvage: trim over-arity answers,
//!    restore the column identity, drop unusable items, dedup, re-prefix
//!    drifted names. Counted as `repaired` when the salvaged value passes
//!    validation.
//! 3. **re-ask** — re-issue the request once per unit of
//!    [`crate::ZeroEdConfig::reask_budget`] (default 1), marking the attempt
//!    through [`zeroed_llm::LlmClient::note_reask`] so a simulated backend
//!    redraws its corruption independently and books the extra tokens on the
//!    ledger's distinct re-ask line. A valid (or salvageable) retry is
//!    counted as `reasked`.
//! 4. **default** — fall back to a deterministic stage-specific default
//!    (`defaulted`): an empty criteria set / the pre-refinement criteria, a
//!    minimal analysis, a generic five-type guideline, answered-prefix labels
//!    padded clean, augmented values padded empty.
//!
//! The accounting invariant the conformance suite pins: every response that
//! failed validation lands in **exactly one** bucket, so per stage
//! `mangled == repaired + reasked + defaulted` — and the sum of stage
//! `mangled` counters equals the number of corruptions the simulator applied
//! (zero silent drops).
//!
//! [`crate::ZeroEd::detect`] stacks the layer *below* the response cache
//! (`SimLlm → RouterLlm → RepairLlm → CachedLlm`), so the cache — and the
//! persisted `zeroed-store` — always hold the repaired response. A warm start
//! from a store written under mangling therefore replays bit-identically with
//! zero LLM requests and zero new repairs.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Mutex;
use zeroed_criteria::{Check, CriteriaSet, Criterion};
use zeroed_llm::{
    AttributeContext, DistributionAnalysis, ErrorTypeGuide, Guideline, LlmClient, TokenLedger,
};
use zeroed_table::{ErrorType, Table};

/// Repair-ladder counters for one stage. Every response that failed its
/// stage validator is counted in `mangled` and in exactly one of the other
/// three buckets, so `mangled == repaired + reasked + defaulted` always.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageRepair {
    /// Responses that failed validation (detected corruptions).
    pub mangled: usize,
    /// Corruptions fixed by structural salvage alone.
    pub repaired: usize,
    /// Corruptions resolved by re-asking the model (valid or salvageable
    /// retry).
    pub reasked: usize,
    /// Corruptions that fell through to the deterministic stage default.
    pub defaulted: usize,
}

impl StageRepair {
    /// `mangled == repaired + reasked + defaulted` — the exact-accounting
    /// invariant of the repair ladder.
    pub fn reconciles(&self) -> bool {
        self.mangled == self.repaired + self.reasked + self.defaulted
    }
}

/// Per-stage repair counters, nested into [`crate::PipelineStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairCounters {
    /// Criteria generation *and* contrastive refinement (both answer with a
    /// [`CriteriaSet`] and share one validator).
    pub criteria: StageRepair,
    /// Distribution analysis.
    pub analysis: StageRepair,
    /// Guideline generation.
    pub guideline: StageRepair,
    /// Batch labelling.
    pub labels: StageRepair,
    /// Error augmentation.
    pub augment: StageRepair,
}

impl RepairCounters {
    /// All stages as an array, in pipeline order.
    pub fn stages(&self) -> [StageRepair; 5] {
        [
            self.criteria,
            self.analysis,
            self.guideline,
            self.labels,
            self.augment,
        ]
    }

    /// Total detected corruptions across all stages.
    pub fn total_mangled(&self) -> usize {
        self.stages().iter().map(|s| s.mangled).sum()
    }

    /// Total repairs/re-asks/defaults across all stages.
    pub fn total_handled(&self) -> (usize, usize, usize) {
        let mut totals = (0, 0, 0);
        for s in self.stages() {
            totals.0 += s.repaired;
            totals.1 += s.reasked;
            totals.2 += s.defaulted;
        }
        totals
    }

    /// Whether every stage's counters reconcile exactly.
    pub fn reconciles(&self) -> bool {
        self.stages().iter().all(StageRepair::reconciles)
    }
}

/// The canonical per-error-type order of a guideline response — the order
/// the two-step reasoning emits its entries in (missing → typo → pattern →
/// outlier → rule). Note this differs from [`ErrorType::ALL`], which lists
/// types in injection-frequency order.
const GUIDELINE_ERROR_ORDER: [ErrorType; 5] = [
    ErrorType::MissingValue,
    ErrorType::Typo,
    ErrorType::PatternViolation,
    ErrorType::Outlier,
    ErrorType::RuleViolation,
];

/// An [`LlmClient`] adapter running every stage response through the repair
/// ladder (see module docs). Wraps any client — the simulator, the
/// multi-backend router — and is itself wrapped by the response cache, so
/// cached and persisted responses are always the repaired ones.
pub struct RepairLlm<'a> {
    inner: &'a dyn LlmClient,
    /// Re-asks allowed per request (step 3 of the ladder); 0 skips straight
    /// from failed salvage to the stage default.
    reask_budget: usize,
    counters: Mutex<RepairCounters>,
    /// Optional profiling span; when set, `validate`/`salvage`/`reask`
    /// ladder steps record their durations as parallel distribution children
    /// (the ladder runs on scheduler workers, so step totals are CPU time
    /// across threads, not coordinating-thread wall time).
    span: Option<zeroed_obs::Span>,
    /// Optional flight recorder; when set, each ladder outcome journals one
    /// `repair_*` [`zeroed_obs::TraceEvent`], stamped with the caller's
    /// current trace scope id (requests resolved through the cache run inside
    /// a scope; sequential-mode events carry [`zeroed_obs::TraceId::NONE`]).
    recorder: Option<std::sync::Arc<zeroed_obs::TraceRecorder>>,
}

impl std::fmt::Debug for RepairLlm<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepairLlm")
            .field("model", &self.inner.name())
            .field("reask_budget", &self.reask_budget)
            .field("counters", &self.counters())
            .finish()
    }
}

impl<'a> RepairLlm<'a> {
    /// Wraps `inner`, allowing `reask_budget` re-asks per request.
    pub fn new(inner: &'a dyn LlmClient, reask_budget: usize) -> Self {
        Self {
            inner,
            reask_budget,
            counters: Mutex::new(RepairCounters::default()),
            span: None,
            recorder: None,
        }
    }

    /// Attach a profiling span under which the ladder's `validate`,
    /// `salvage` and `reask` steps record per-call durations.
    pub fn with_span(mut self, span: zeroed_obs::Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attach a flight recorder: every ladder outcome (`mangled`, `repaired`,
    /// `reasked`, `defaulted`) journals a matching `repair_*` trace event.
    pub fn with_recorder(mut self, recorder: std::sync::Arc<zeroed_obs::TraceRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// A snapshot of the per-stage repair counters.
    pub fn counters(&self) -> RepairCounters {
        *self.counters.lock().unwrap()
    }

    /// Time one ladder step into the attached span (no-op without one).
    fn time_step<T>(&self, step: &str, f: impl FnOnce() -> T) -> T {
        match &self.span {
            Some(span) => span.child_dist(step).time(f),
            None => f(),
        }
    }

    fn bump(
        &self,
        stage: fn(&mut RepairCounters) -> &mut StageRepair,
        apply: impl FnOnce(&mut StageRepair),
    ) {
        apply(stage(&mut self.counters.lock().unwrap()));
    }

    /// Journal one ladder outcome into the attached recorder (no-op without
    /// one), under the caller's current trace scope id.
    fn journal(&self, kind: zeroed_obs::EventKind) {
        if let Some(rec) = &self.recorder {
            rec.emit(zeroed_obs::current_id(), kind, 0);
        }
    }

    /// The shared repair ladder (module docs): validate → salvage → re-ask →
    /// default. `salvage` returns `Ok` with a value that passes `validate`,
    /// or `Err` handing the unsalvageable value back; `better` decides
    /// whether a failed retry supersedes the kept value (stages whose default
    /// reuses the answered prefix keep the longest one); `default` builds the
    /// deterministic fallback from the best unsalvageable value.
    fn run_ladder<T>(
        &self,
        stage: fn(&mut RepairCounters) -> &mut StageRepair,
        salt: u64,
        fetch: impl Fn() -> T,
        validate: impl Fn(&T) -> bool,
        salvage: impl Fn(T) -> Result<T, T>,
        better: impl Fn(&T, &T) -> bool,
        default: impl FnOnce(T) -> T,
    ) -> T {
        let raw = fetch();
        if self.time_step("validate", || validate(&raw)) {
            return raw;
        }
        self.bump(stage, |s| s.mangled += 1);
        self.journal(zeroed_obs::EventKind::RepairMangled);
        let mut best = match self.time_step("salvage", || salvage(raw)) {
            Ok(fixed) => {
                debug_assert!(validate(&fixed), "salvage must produce a valid value");
                self.bump(stage, |s| s.repaired += 1);
                self.journal(zeroed_obs::EventKind::RepairSalvaged);
                return fixed;
            }
            Err(raw) => raw,
        };
        for attempt in 1..=self.reask_budget as u32 {
            let retry = self.time_step("reask", || {
                self.inner.note_reask(salt, attempt);
                let retry = fetch();
                self.inner.note_reask(salt, 0);
                retry
            });
            if self.time_step("validate", || validate(&retry)) {
                self.bump(stage, |s| s.reasked += 1);
                self.journal(zeroed_obs::EventKind::RepairReasked);
                return retry;
            }
            match self.time_step("salvage", || salvage(retry)) {
                Ok(fixed) => {
                    self.bump(stage, |s| s.reasked += 1);
                    self.journal(zeroed_obs::EventKind::RepairReasked);
                    return fixed;
                }
                Err(retry) => {
                    if better(&retry, &best) {
                        best = retry;
                    }
                }
            }
        }
        self.bump(stage, |s| s.defaulted += 1);
        self.journal(zeroed_obs::EventKind::RepairDefaulted);
        default(best)
    }
}

// ---------------------------------------------------------------------------
// Stage validators, salvages and defaults.
// ---------------------------------------------------------------------------

fn criterion_refs_in_range(c: &Criterion, n_cols: usize) -> bool {
    match &c.check {
        Check::FdLookup {
            determinant_col, ..
        } => *determinant_col < n_cols,
        Check::CrossKeyword { other_col, .. } => *other_col < n_cols,
        _ => true,
    }
}

/// Criteria contract: the set names this attribute, every criterion has a
/// unique non-empty `is_clean_`-namespaced name, and embedded column
/// references stay inside the schema. An empty set is valid — some
/// attributes legitimately yield no executable checks.
fn valid_criteria(set: &CriteriaSet, ctx: &AttributeContext<'_>) -> bool {
    if set.column != ctx.column {
        return false;
    }
    let n_cols = ctx.table.n_cols();
    let mut seen = HashSet::with_capacity(set.criteria.len());
    set.criteria.iter().all(|c| {
        !c.name.is_empty()
            && c.name.starts_with("is_clean_")
            && criterion_refs_in_range(c, n_cols)
            && seen.insert(c.name.as_str())
    })
}

/// Structural salvage of a criteria response: restore the column identity,
/// drop unusable criteria (unnamed, out-of-schema references), re-prefix
/// drifted names back into the `is_clean_` namespace, dedup keep-first. A
/// salvage that ends empty is indistinguishable from unparseable garbage and
/// is handed back for a re-ask.
fn salvage_criteria(
    mut set: CriteriaSet,
    ctx: &AttributeContext<'_>,
) -> Result<CriteriaSet, CriteriaSet> {
    let n_cols = ctx.table.n_cols();
    set.column = ctx.column;
    let mut seen = HashSet::new();
    let mut kept = Vec::with_capacity(set.criteria.len());
    for mut c in std::mem::take(&mut set.criteria) {
        if c.name.is_empty() || !criterion_refs_in_range(&c, n_cols) {
            continue;
        }
        if !c.name.starts_with("is_clean_") {
            c.name = format!("is_clean_{}", c.name);
        }
        if seen.insert(c.name.clone()) {
            kept.push(c);
        }
    }
    set.criteria = kept;
    if set.criteria.is_empty() {
        Err(set)
    } else {
        Ok(set)
    }
}

/// Analysis contract: names this attribute, record counts match the analysed
/// table, a finite in-range missing ratio, at least one finding.
fn valid_analysis(a: &DistributionAnalysis, ctx: &AttributeContext<'_>) -> bool {
    a.column == ctx.column_name()
        && a.total_records == ctx.table.n_rows()
        && a.distinct_values <= a.total_records
        && a.missing_ratio.is_finite()
        && (0.0..=1.0).contains(&a.missing_ratio)
        && !a.findings.is_empty()
}

/// Structural salvage of an analysis: the counts and the column identity are
/// derivable from the analysed table, so they are restored in place; a
/// truncated findings list gets a placeholder entry. A corrupt missing
/// ratio cannot be reconstructed — the value is handed back for a re-ask.
fn salvage_analysis(
    mut a: DistributionAnalysis,
    ctx: &AttributeContext<'_>,
) -> Result<DistributionAnalysis, DistributionAnalysis> {
    if !a.missing_ratio.is_finite() || !(0.0..=1.0).contains(&a.missing_ratio) {
        return Err(a);
    }
    a.column = ctx.column_name().to_string();
    a.total_records = ctx.table.n_rows();
    a.distinct_values = a.distinct_values.min(a.total_records);
    if a.findings.is_empty() {
        a.findings.push(
            "The analysis response was truncated; only summary statistics were recovered."
                .to_string(),
        );
    }
    Ok(a)
}

/// The deterministic analysis default: minimal but valid.
fn default_analysis(ctx: &AttributeContext<'_>) -> DistributionAnalysis {
    DistributionAnalysis {
        column: ctx.column_name().to_string(),
        total_records: ctx.table.n_rows(),
        distinct_values: 0,
        missing_ratio: 0.0,
        frequent_values: Vec::new(),
        rare_values: Vec::new(),
        frequent_patterns: Vec::new(),
        numeric_summary: None,
        findings: vec![
            "Distribution analysis unavailable: the response could not be repaired.".to_string(),
        ],
    }
}

/// Guideline contract: names this attribute and covers exactly the five
/// error types in canonical emission order.
fn valid_guideline(g: &Guideline, ctx: &AttributeContext<'_>) -> bool {
    g.column == ctx.column_name()
        && g.error_types.len() == GUIDELINE_ERROR_ORDER.len()
        && g.error_types
            .iter()
            .zip(GUIDELINE_ERROR_ORDER)
            .all(|(e, ty)| e.error_type == ty)
}

/// A generic, attribute-agnostic guide for one error type — the filler for
/// entries a corrupted guideline lost.
fn generic_guide(ty: ErrorType, attr: &str) -> ErrorTypeGuide {
    let (causes, detection) = match ty {
        ErrorType::MissingValue => (
            "fields left blank at entry time or lost during integration",
            "flag empty strings and common null placeholders",
        ),
        ErrorType::Typo => (
            "manual entry mistakes producing rare, near-duplicate strings",
            "flag rare values that are close to frequent values",
        ),
        ErrorType::PatternViolation => (
            "format drift between data sources",
            "flag values whose character format deviates from the dominant format",
        ),
        ErrorType::Outlier => (
            "unit mistakes, sensor faults or corrupted numeric entries",
            "flag values far outside the attribute's usual domain",
        ),
        ErrorType::RuleViolation => (
            "updates applied to one attribute but not its dependent attributes",
            "cross-check the value against related attributes in the same tuple",
        ),
    };
    ErrorTypeGuide {
        error_type: ty,
        examples: vec![format!("an implausible '{attr}' value")],
        causes: causes.to_string(),
        detection: detection.to_string(),
    }
}

/// Structural salvage of a guideline: restore the column identity, rebuild
/// the entries in canonical order (dedup keep-first), fill lost error types
/// with generic guides. A guideline with *no* entries at all is
/// indistinguishable from garbage and is handed back for a re-ask.
fn salvage_guideline(
    mut g: Guideline,
    ctx: &AttributeContext<'_>,
) -> Result<Guideline, Guideline> {
    if g.error_types.is_empty() {
        return Err(g);
    }
    g.column = ctx.column_name().to_string();
    let entries = std::mem::take(&mut g.error_types);
    g.error_types = GUIDELINE_ERROR_ORDER
        .iter()
        .map(|&ty| {
            entries
                .iter()
                .find(|e| e.error_type == ty)
                .cloned()
                .unwrap_or_else(|| generic_guide(ty, ctx.column_name()))
        })
        .collect();
    Ok(g)
}

/// The deterministic guideline default: a generic five-type guideline.
fn default_guideline(ctx: &AttributeContext<'_>) -> Guideline {
    let attr = ctx.column_name();
    Guideline {
        column: attr.to_string(),
        explanation: format!(
            "'{attr}' is an attribute whose detection guideline could not be generated; \
             generic per-error-type guidance applies."
        ),
        error_types: GUIDELINE_ERROR_ORDER
            .iter()
            .map(|&ty| generic_guide(ty, attr))
            .collect(),
    }
}

/// Row-by-row repair of a short labelling batch: each unanswered row is
/// relabelled individually; rows whose individual request also returns
/// nothing are defaulted to clean. Returns `(row, label, defaulted)` per
/// input row.
///
/// This is the repair [`crate::pipeline::labeling`] applies when it talks to
/// a client *without* the [`RepairLlm`] wrapper (which pads short batches
/// itself, at batch granularity) — the per-row variant trades extra requests
/// for per-cell fidelity and per-cell accounting.
pub fn relabel_rows_individually(
    llm: &dyn LlmClient,
    ctx: &AttributeContext<'_>,
    guideline: Option<&Guideline>,
    rows: &[usize],
) -> Vec<(usize, bool, bool)> {
    rows.iter()
        .map(|&row| match llm.label_batch(ctx, guideline, &[row]).first() {
            Some(&is_error) => (row, is_error, false),
            None => (row, false, true),
        })
        .collect()
}

impl LlmClient for RepairLlm<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn ledger(&self) -> &TokenLedger {
        self.inner.ledger()
    }

    fn generate_criteria(&self, ctx: &AttributeContext<'_>) -> CriteriaSet {
        let salt = self
            .inner
            .request_salt(ctx.table, Some(ctx.column), ctx.sample_rows);
        self.run_ladder(
            |c| &mut c.criteria,
            salt,
            || self.inner.generate_criteria(ctx),
            |set| valid_criteria(set, ctx),
            |set| salvage_criteria(set, ctx),
            |_, _| false,
            |_| CriteriaSet::new(ctx.column),
        )
    }

    fn analyze_distribution(&self, ctx: &AttributeContext<'_>) -> DistributionAnalysis {
        let salt = self
            .inner
            .request_salt(ctx.table, Some(ctx.column), ctx.sample_rows);
        self.run_ladder(
            |c| &mut c.analysis,
            salt,
            || self.inner.analyze_distribution(ctx),
            |a| valid_analysis(a, ctx),
            |a| salvage_analysis(a, ctx),
            |_, _| false,
            |_| default_analysis(ctx),
        )
    }

    fn generate_guideline(
        &self,
        ctx: &AttributeContext<'_>,
        analysis: &DistributionAnalysis,
    ) -> Guideline {
        let salt = self
            .inner
            .request_salt(ctx.table, Some(ctx.column), ctx.sample_rows);
        self.run_ladder(
            |c| &mut c.guideline,
            salt,
            || self.inner.generate_guideline(ctx, analysis),
            |g| valid_guideline(g, ctx),
            |g| salvage_guideline(g, ctx),
            |_, _| false,
            |_| default_guideline(ctx),
        )
    }

    fn label_batch(
        &self,
        ctx: &AttributeContext<'_>,
        guideline: Option<&Guideline>,
        rows: &[usize],
    ) -> Vec<bool> {
        let salt = self.inner.request_salt(ctx.table, Some(ctx.column), rows);
        let want = rows.len();
        self.run_ladder(
            |c| &mut c.labels,
            salt,
            || self.inner.label_batch(ctx, guideline, rows),
            |labels: &Vec<bool>| labels.len() == want,
            |mut labels| {
                // Over-arity answers keep a correct prefix (extra labels were
                // invented beyond the batch); trimming recovers it exactly.
                // Under-arity answers lost real labels — not salvageable.
                if labels.len() > want {
                    labels.truncate(want);
                    Ok(labels)
                } else {
                    Err(labels)
                }
            },
            // The default pads the answered prefix clean, so keep the retry
            // with the most answers.
            |retry, best| retry.len() > best.len(),
            |mut best| {
                best.resize(want, false);
                best
            },
        )
    }

    fn refine_criteria(
        &self,
        ctx: &AttributeContext<'_>,
        clean_examples: &[String],
        error_examples: &[String],
        existing: &CriteriaSet,
    ) -> CriteriaSet {
        let salt = self.inner.request_salt(ctx.table, Some(ctx.column), &[]);
        self.run_ladder(
            |c| &mut c.criteria,
            salt,
            || {
                self.inner
                    .refine_criteria(ctx, clean_examples, error_examples, existing)
            },
            |set| valid_criteria(set, ctx),
            |set| salvage_criteria(set, ctx),
            |_, _| false,
            // Refinement only ever adds criteria, so the pre-refinement set
            // is the natural deterministic fallback.
            |_| existing.clone(),
        )
    }

    fn augment_errors(
        &self,
        ctx: &AttributeContext<'_>,
        clean_examples: &[String],
        count: usize,
    ) -> Vec<String> {
        let salt = self.inner.request_salt(ctx.table, Some(ctx.column), &[]);
        // Contract: one value per requested error — except that a request
        // with nothing to imitate (no clean examples) or nothing requested
        // legitimately answers empty.
        let want = if clean_examples.is_empty() || count == 0 {
            0
        } else {
            count
        };
        self.run_ladder(
            |c| &mut c.augment,
            salt,
            || self.inner.augment_errors(ctx, clean_examples, count),
            |values: &Vec<String>| values.len() == want,
            |mut values| {
                if values.len() > want {
                    values.truncate(want);
                    Ok(values)
                } else {
                    Err(values)
                }
            },
            |retry, best| retry.len() > best.len(),
            |mut best| {
                // Pad with empty strings — missing-value placeholders are
                // legitimate error examples, and the choice is deterministic.
                best.resize(want, String::new());
                best
            },
        )
    }

    fn detect_tuple(&self, table: &Table, row: usize) -> Vec<bool> {
        // The FM_ED baseline sits outside the pipeline's repair layer by
        // design (it has no stage contract to repair against).
        self.inner.detect_tuple(table, row)
    }

    fn request_salt(&self, table: &Table, column: Option<usize>, rows: &[usize]) -> u64 {
        self.inner.request_salt(table, column, rows)
    }

    fn note_reask(&self, salt: u64, attempt: u32) {
        self.inner.note_reask(salt, attempt);
    }

    fn cache_identity(&self) -> &str {
        self.inner.cache_identity()
    }

    fn injected_fault(&self, salt: u64) -> Option<zeroed_llm::FaultKind> {
        self.inner.injected_fault(salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_llm::{MangleSchedule, SimLlm};

    fn fixture() -> zeroed_table::Table {
        let rows: Vec<Vec<String>> = (0..120)
            .map(|i| {
                vec![
                    ["Boston", "Denver", "Phoenix"][i % 3].to_string(),
                    ["MA", "CO", "AZ"][i % 3].to_string(),
                ]
            })
            .collect();
        Table::new("cities", vec!["city".into(), "state".into()], rows).unwrap()
    }

    fn run_all_stages(llm: &RepairLlm<'_>, table: &Table) {
        let corr = vec![0usize];
        let samples: Vec<usize> = (0..12).collect();
        for column in 0..table.n_cols() {
            let ctx = AttributeContext {
                table,
                column,
                correlated: &corr,
                sample_rows: &samples,
            };
            let criteria = llm.generate_criteria(&ctx);
            assert!(valid_criteria(&criteria, &ctx));
            let analysis = llm.analyze_distribution(&ctx);
            assert!(valid_analysis(&analysis, &ctx));
            let guideline = llm.generate_guideline(&ctx, &analysis);
            assert!(valid_guideline(&guideline, &ctx));
            let labels = llm.label_batch(&ctx, Some(&guideline), &samples);
            assert_eq!(labels.len(), samples.len());
            let refined =
                llm.refine_criteria(&ctx, &["MA".into(), "CO".into()], &["".into()], &criteria);
            assert!(valid_criteria(&refined, &ctx));
            let values = llm.augment_errors(&ctx, &["MA".into(), "CO".into()], 6);
            assert_eq!(values.len(), 6);
            assert!(llm.augment_errors(&ctx, &[], 6).is_empty());
        }
    }

    #[test]
    fn healthy_responses_flow_through_untouched() {
        let table = fixture();
        let sim = SimLlm::default_model(3);
        let repair = RepairLlm::new(&sim, 1);
        run_all_stages(&repair, &table);
        assert_eq!(repair.counters(), RepairCounters::default());
        assert_eq!(sim.mangled_responses(), 0);
        // Pass-through responses are identical to the unwrapped client's.
        let direct = SimLlm::default_model(3);
        let corr = vec![0usize];
        let samples: Vec<usize> = (0..12).collect();
        let ctx = AttributeContext {
            table: &table,
            column: 1,
            correlated: &corr,
            sample_rows: &samples,
        };
        assert_eq!(
            repair.label_batch(&ctx, None, &samples),
            direct.label_batch(&ctx, None, &samples)
        );
    }

    #[test]
    fn every_corruption_lands_in_exactly_one_bucket() {
        let table = fixture();
        let sim = SimLlm::default_model(3).with_mangling(MangleSchedule::uniform(11, 1.0));
        let repair = RepairLlm::new(&sim, 1);
        run_all_stages(&repair, &table);
        let counters = repair.counters();
        assert!(counters.reconciles(), "{counters:?}");
        assert!(counters.total_mangled() > 0);
        // Zero silent drops: every corruption the simulator applied was
        // detected by a stage validator.
        assert_eq!(counters.total_mangled(), sim.mangled_responses());
    }

    #[test]
    fn zero_budget_still_degrades_predictably() {
        let table = fixture();
        let sim = SimLlm::default_model(3).with_mangling(MangleSchedule::uniform(11, 1.0));
        let repair = RepairLlm::new(&sim, 0);
        run_all_stages(&repair, &table);
        let counters = repair.counters();
        assert!(counters.reconciles(), "{counters:?}");
        let (_, reasked, _) = counters.total_handled();
        assert_eq!(reasked, 0, "budget 0 must never re-ask");
        assert_eq!(counters.total_mangled(), sim.mangled_responses());
        assert_eq!(sim.ledger().reask_usage().requests, 0);
    }

    #[test]
    fn reasks_charge_the_distinct_ledger_line() {
        let table = fixture();
        let sim = SimLlm::default_model(3).with_mangling(MangleSchedule::uniform(11, 1.0));
        let repair = RepairLlm::new(&sim, 1);
        run_all_stages(&repair, &table);
        let counters = repair.counters();
        let (_, reasked, defaulted) = counters.total_handled();
        // Every re-ask attempt (successful or ending in a default) charged
        // the ledger's re-ask line. With budget 1, attempts = reasked +
        // defaulted (each defaulted request burned its one re-ask).
        assert_eq!(
            sim.ledger().reask_usage().requests,
            reasked + defaulted,
            "{counters:?}"
        );
        // Re-ask tokens are included in the main usage too.
        assert!(sim.ledger().usage().requests > 0);
    }

    /// A client answering labelling batches with a scripted arity offset:
    /// attempt 0 responses get `delta_first` labels relative to the batch,
    /// re-asks get `delta_retry`. Everything else passes through healthy.
    struct ArityLlm {
        inner: SimLlm,
        delta_first: isize,
        delta_retry: isize,
        attempts: Mutex<std::collections::HashMap<u64, u32>>,
    }

    impl ArityLlm {
        fn new(seed: u64, delta_first: isize, delta_retry: isize) -> Self {
            Self {
                inner: SimLlm::default_model(seed),
                delta_first,
                delta_retry,
                attempts: Mutex::new(std::collections::HashMap::new()),
            }
        }
        fn apply(&self, mut labels: Vec<bool>, delta: isize) -> Vec<bool> {
            if delta >= 0 {
                labels.extend(std::iter::repeat(true).take(delta as usize));
            } else {
                labels.truncate(labels.len().saturating_sub((-delta) as usize));
            }
            labels
        }
    }

    impl LlmClient for ArityLlm {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn ledger(&self) -> &TokenLedger {
            self.inner.ledger()
        }
        fn generate_criteria(&self, ctx: &AttributeContext<'_>) -> CriteriaSet {
            self.inner.generate_criteria(ctx)
        }
        fn analyze_distribution(&self, ctx: &AttributeContext<'_>) -> DistributionAnalysis {
            self.inner.analyze_distribution(ctx)
        }
        fn generate_guideline(
            &self,
            ctx: &AttributeContext<'_>,
            analysis: &DistributionAnalysis,
        ) -> Guideline {
            self.inner.generate_guideline(ctx, analysis)
        }
        fn label_batch(
            &self,
            ctx: &AttributeContext<'_>,
            guideline: Option<&Guideline>,
            rows: &[usize],
        ) -> Vec<bool> {
            let salt = self.request_salt(ctx.table, Some(ctx.column), rows);
            let attempt = self.attempts.lock().unwrap().get(&salt).copied().unwrap_or(0);
            let labels = self.inner.label_batch(ctx, guideline, rows);
            let delta = if attempt == 0 {
                self.delta_first
            } else {
                self.delta_retry
            };
            self.apply(labels, delta)
        }
        fn refine_criteria(
            &self,
            ctx: &AttributeContext<'_>,
            clean: &[String],
            error: &[String],
            existing: &CriteriaSet,
        ) -> CriteriaSet {
            self.inner.refine_criteria(ctx, clean, error, existing)
        }
        fn augment_errors(
            &self,
            ctx: &AttributeContext<'_>,
            clean: &[String],
            count: usize,
        ) -> Vec<String> {
            self.inner.augment_errors(ctx, clean, count)
        }
        fn detect_tuple(&self, table: &Table, row: usize) -> Vec<bool> {
            self.inner.detect_tuple(table, row)
        }
        fn request_salt(&self, table: &Table, column: Option<usize>, rows: &[usize]) -> u64 {
            self.inner.request_salt(table, column, rows)
        }
        fn note_reask(&self, salt: u64, attempt: u32) {
            if attempt == 0 {
                self.attempts.lock().unwrap().remove(&salt);
            } else {
                self.attempts.lock().unwrap().insert(salt, attempt);
            }
        }
    }

    #[test]
    fn over_arity_labels_are_trimmed_to_the_exact_healthy_prefix() {
        let table = fixture();
        let scripted = ArityLlm::new(7, 3, 0);
        let repair = RepairLlm::new(&scripted, 1);
        let corr = vec![0usize];
        let rows: Vec<usize> = (0..10).collect();
        let ctx = AttributeContext {
            table: &table,
            column: 1,
            correlated: &corr,
            sample_rows: &rows,
        };
        let repaired = repair.label_batch(&ctx, None, &rows);
        let healthy = scripted.inner.label_batch(&ctx, None, &rows);
        assert_eq!(repaired, healthy, "trim must recover the healthy answer");
        let c = repair.counters().labels;
        assert_eq!((c.mangled, c.repaired, c.reasked, c.defaulted), (1, 1, 0, 0));
    }

    #[test]
    fn under_arity_labels_reask_then_default_with_padding() {
        let table = fixture();
        let corr = vec![0usize];
        let rows: Vec<usize> = (0..10).collect();
        let ctx = AttributeContext {
            table: &table,
            column: 1,
            correlated: &corr,
            sample_rows: &rows,
        };
        // Truncated first ask, healthy retry: resolved by the re-ask.
        let recovers = ArityLlm::new(7, -4, 0);
        let repair = RepairLlm::new(&recovers, 1);
        let labels = repair.label_batch(&ctx, None, &rows);
        assert_eq!(labels, recovers.inner.label_batch(&ctx, None, &rows));
        let c = repair.counters().labels;
        assert_eq!((c.mangled, c.repaired, c.reasked, c.defaulted), (1, 0, 1, 0));

        // Truncated on every attempt: the answered prefix is padded clean.
        let stuck = ArityLlm::new(7, -4, -4);
        let repair = RepairLlm::new(&stuck, 1);
        let labels = repair.label_batch(&ctx, None, &rows);
        let healthy = stuck.inner.label_batch(&ctx, None, &rows);
        assert_eq!(labels.len(), rows.len());
        assert_eq!(&labels[..6], &healthy[..6], "answered prefix preserved");
        assert!(labels[6..].iter().all(|&l| !l), "padding defaults to clean");
        let c = repair.counters().labels;
        assert_eq!((c.mangled, c.repaired, c.reasked, c.defaulted), (1, 0, 0, 1));
    }

    #[test]
    fn row_by_row_relabelling_reports_defaults() {
        let table = fixture();
        let sim = SimLlm::default_model(5);
        let corr = vec![0usize];
        let rows: Vec<usize> = (0..4).collect();
        let ctx = AttributeContext {
            table: &table,
            column: 1,
            correlated: &corr,
            sample_rows: &rows,
        };
        let relabelled = relabel_rows_individually(&sim, &ctx, None, &rows);
        assert_eq!(relabelled.len(), rows.len());
        for (i, (row, label, defaulted)) in relabelled.iter().enumerate() {
            assert_eq!(*row, rows[i]);
            assert!(!defaulted, "a healthy client answers every row");
            assert_eq!(*label, sim.label_batch(&ctx, None, &[rows[i]])[0]);
        }
    }
}
