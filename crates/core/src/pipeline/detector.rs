//! Step 5 — detector training and prediction (paper §III-D).
//!
//! One two-layer MLP is trained per attribute on the verified training data
//! (propagated clean rows, propagated error rows, and LLM-augmented error
//! examples) and then classifies every cell of the attribute. Features are
//! standardised per attribute before training.
//!
//! This stage shared the non-LLM wall with sampling at 50k rows, so
//! [`train_and_predict`] runs in *dedup-weighted* form: the column's unified
//! feature matrix is factored through its distinct rows once
//! ([`DedupPoints`]), the scaler fits weighted moments over distinct training
//! vectors ([`StandardScaler::fit_weighted`]), the MLP trains on distinct
//! `(vector, label)` pairs weighted by multiplicity through the batched
//! trainer ([`Mlp::fit_weighted`]), and prediction standardises + forwards
//! each distinct vector exactly once, scattering flags back by code — so the
//! per-column cost scales with the number of *distinct* values, not rows, and
//! no per-cell `to_vec` copies remain. The scalar trainer is retained in
//! `zeroed-ml` as the batched path's bit-identity oracle.
//!
//! [`train_and_predict`] is free of cross-attribute state and seeds its MLP
//! from `(config seed, column)` alone, so the concurrent runtime path fans it
//! out per attribute with bit-identical predictions to the sequential loop.

use super::training_data::ColumnTrainingData;
use crate::config::{CriteriaEngine, ZeroEdConfig};
use std::collections::HashMap;
use zeroed_criteria::CompiledSet;
use zeroed_cluster::DedupPoints;
use zeroed_features::{FeatureMatrix, FittedFeatures};
use zeroed_ml::{Mlp, MlpConfig, StandardScaler};
use zeroed_table::Table;

/// Trains the per-attribute detector and predicts every cell of the column.
/// Returns one `is_error` flag per row.
pub fn train_and_predict(
    table: &Table,
    column: usize,
    fitted: &FittedFeatures<'_>,
    unified: &FeatureMatrix,
    data: &ColumnTrainingData,
    config: &ZeroEdConfig,
) -> Vec<bool> {
    let n_rows = table.n_rows();
    if n_rows == 0 {
        return Vec::new();
    }

    // Factor the column's features through their distinct rows once; training,
    // scaling and prediction below all run per distinct vector.
    let row_refs = unified.row_refs();
    let dd = DedupPoints::build(&row_refs);

    // Augmented error examples: featurise the fabricated value in the context
    // of its source row. When criteria features are in use, the fabricated
    // value is re-checked against the column's criteria so the extra block
    // stays consistent. On the compiled engine the set is lowered once here
    // and reused for every augmented example.
    let compiled_criteria: Option<CompiledSet> = match (config.criteria_engine, &data.criteria) {
        (CriteriaEngine::Compiled, Some(set)) => Some(zeroed_criteria::compile_set(set)),
        _ => None,
    };
    let mut augmented_rows: Vec<Vec<f32>> = Vec::new();
    for (context_row, value) in &data.augmented {
        let extra_override: Option<Vec<f32>> = data.criteria.as_ref().map(|set| {
            augmented_criteria_features(
                table,
                set,
                compiled_criteria.as_ref(),
                *context_row,
                column,
                value,
            )
        });
        let feat = fitted.unified_row(
            *context_row,
            column,
            Some(value.as_str()),
            extra_override.as_deref(),
        );
        // Guard against dimension drift (e.g. refined criteria adding checks):
        // only use the example when its dimensionality matches the matrix.
        if feat.len() == unified.n_cols() {
            augmented_rows.push(feat);
        }
    }

    let n_error = data.error_rows.len() + augmented_rows.len();
    let n_clean = data.clean_rows.len();
    if n_error == 0 || n_clean == 0 {
        // Degenerate training data: predict the majority class we saw (or
        // "clean" when we saw nothing at all), mirroring the behaviour of a
        // classifier trained on a single class.
        let default_flag = n_error > 0;
        return vec![default_flag; n_rows];
    }

    // Weighted dedup training set: one slot per (distinct vector, label) —
    // the label is part of the key because identical feature vectors can
    // legitimately carry both labels — weighted by how many training rows
    // fold into it. Slots are created in first-occurrence order (clean rows,
    // then error rows, then augmented examples), keeping the set
    // deterministic.
    let mut slot_of: HashMap<(u32, bool), usize> = HashMap::new();
    let mut slot_codes: Vec<u32> = Vec::new();
    let mut labels: Vec<f32> = Vec::new();
    let mut weights: Vec<f32> = Vec::new();
    let mut upsert = |row: usize, is_error: bool| {
        let code = dd.codes()[row];
        match slot_of.entry((code, is_error)) {
            std::collections::hash_map::Entry::Occupied(e) => weights[*e.get()] += 1.0,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(slot_codes.len());
                slot_codes.push(code);
                labels.push(if is_error { 1.0 } else { 0.0 });
                weights.push(1.0);
            }
        }
    };
    for &row in &data.clean_rows {
        upsert(row, false);
    }
    for &row in &data.error_rows {
        upsert(row, true);
    }

    // Oversample the minority error class (at most 4x) so the cross-entropy
    // objective does not collapse to the majority class; this complements the
    // LLM augmentation, which is capped per column. In weighted form the
    // oversample ratio simply multiplies every error example's weight.
    let oversample = if n_error * 2 < n_clean {
        ((n_clean / n_error).min(4)).max(1) as f32
    } else {
        1.0
    };
    for (w, l) in weights.iter_mut().zip(labels.iter()) {
        if *l > 0.5 {
            *w *= oversample;
        }
    }

    // Fit the scaler on the weighted training set (distinct training vectors
    // plus the augmented examples), mirroring the former fit over the
    // oversampled expanded rows.
    let mut train_refs: Vec<&[f32]> = slot_codes
        .iter()
        .map(|&c| dd.unique_row(c as usize))
        .collect();
    for row in &augmented_rows {
        train_refs.push(row.as_slice());
        labels.push(1.0);
        weights.push(oversample);
    }
    let scaler = StandardScaler::fit_weighted(&train_refs, &weights);

    // Standardise the distinct matrix once; it serves both training (slots
    // reference their scaled distinct row) and prediction below.
    let scaled_uniques: Vec<Vec<f32>> = (0..dd.n_unique())
        .map(|u| scaler.transform(dd.unique_row(u)))
        .collect();
    let scaled_augmented: Vec<Vec<f32>> = augmented_rows
        .iter()
        .map(|r| scaler.transform(r))
        .collect();
    let scaled_train: Vec<&[f32]> = slot_codes
        .iter()
        .map(|&c| scaled_uniques[c as usize].as_slice())
        .chain(scaled_augmented.iter().map(|r| r.as_slice()))
        .collect();
    // The dedup set holds `t` slots standing in for `expanded` virtual rows,
    // so one epoch now provides `t/expanded` of the former optimiser steps —
    // running the configured epochs unchanged would underfit badly. Scale the
    // epoch count to reach the former step count, capped at
    // `DEDUP_STEP_CAP`: the capped regime is (near-)full-batch gradient
    // descent over the small weighted problem, which converges in far fewer
    // steps than the per-row SGD sweep it replaces. When the column is
    // mostly distinct (t ≈ expanded) the clamp floor keeps the configured
    // epochs and this degenerates to the former schedule.
    const DEDUP_STEP_CAP: usize = 512;
    // Hard ceiling on the Adam steps any single attribute may spend. The
    // configured schedule (epochs × rows / batch) grows linearly with the
    // table, so at 50k rows a high-cardinality attribute would pay ~9400
    // steps — ~19x what the 24-hidden-unit detector needs to converge. The
    // budget (~2.6 passes over 50k rows at batch 64) only binds on large
    // attributes; every configured schedule below it is untouched, so
    // small-table behaviour — and every quality test — is unchanged.
    const TRAIN_STEP_BUDGET: usize = 2_048;
    let batch = config.mlp.batch_size.max(1);
    let expanded = weights.iter().sum::<f32>().round() as usize;
    let steps_per_epoch = scaled_train.len().div_ceil(batch).max(1);
    let expanded_steps = config.mlp.epochs * expanded.div_ceil(batch).max(1);
    let config_steps = config.mlp.epochs * steps_per_epoch;
    let target_steps = expanded_steps
        .clamp(config_steps, DEDUP_STEP_CAP.max(config_steps))
        .min(TRAIN_STEP_BUDGET.max(DEDUP_STEP_CAP));
    let mlp_config = MlpConfig {
        epochs: target_steps.div_ceil(steps_per_epoch),
        seed: config
            .mlp
            .seed
            .wrapping_add(config.seed)
            .wrapping_add(column as u64),
        ..config.mlp.clone()
    };
    let mlp = Mlp::fit_weighted(&scaled_train, &labels, &weights, &mlp_config);

    // Predict each distinct vector once (parallel batch) and scatter the
    // flags back to rows by code.
    let scaled_refs: Vec<&[f32]> = scaled_uniques.iter().map(|r| r.as_slice()).collect();
    let flags: Vec<bool> = mlp
        .predict_proba_batch(&scaled_refs)
        .into_iter()
        .map(|p| p >= 0.5)
        .collect();
    dd.scatter(&flags)
}

/// Evaluates the column's criteria for a fabricated value placed in the
/// context of an existing row, producing the extra (criteria) feature block
/// for that synthetic cell. When `compiled` is given the pre-lowered VM
/// programs run instead of the AST walk (bit-identical by the differential
/// contract).
fn augmented_criteria_features(
    table: &Table,
    criteria: &zeroed_criteria::CriteriaSet,
    compiled: Option<&CompiledSet>,
    context_row: usize,
    column: usize,
    value: &str,
) -> Vec<f32> {
    // Build a single-row scratch table holding the context row with the
    // fabricated value substituted, so row-level checks (FD lookups, keyword
    // consistency) still see the correct surrounding values.
    let mut row = table
        .row(context_row)
        .map(|r| r.to_vec())
        .unwrap_or_else(|_| vec![String::new(); table.n_cols()]);
    if column < row.len() {
        row[column] = value.to_string();
    }
    let scratch = Table::new("scratch", table.columns().to_vec(), vec![row])
        .expect("scratch row matches the schema");
    let verdicts = match compiled {
        Some(compiled) => compiled.eval_cell(&scratch, 0),
        None => criteria.evaluate_cell(&scratch, 0),
    };
    verdicts
        .into_iter()
        .map(|b| if b { 1.0 } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_criteria::{Check, CriteriaSet, Criterion};
    use zeroed_features::{FeatureBuilder, FeatureConfig};

    fn table() -> Table {
        let rows: Vec<Vec<String>> = (0..120)
            .map(|i| {
                let city = ["Boston", "Denver", "Phoenix"][i % 3];
                let state = if i == 5 || i == 17 {
                    "XX"
                } else {
                    ["MA", "CO", "AZ"][i % 3]
                };
                vec![city.to_string(), state.to_string()]
            })
            .collect();
        Table::new("t", vec!["city".into(), "state".into()], rows).unwrap()
    }

    fn training_data() -> ColumnTrainingData {
        ColumnTrainingData {
            clean_rows: (0..120).filter(|&i| i != 5 && i != 17).collect(),
            error_rows: vec![5, 17],
            augmented: vec![(0, "".to_string()), (1, "Q9".to_string())],
            criteria: Some(CriteriaSet {
                column: 1,
                criteria: vec![Criterion::new(
                    "is_clean_state_domain",
                    "known states",
                    Check::Domain {
                        allowed: ["ma", "co", "az"].iter().map(|s| s.to_string()).collect(),
                    },
                )],
            }),
            propagated_cells: 100,
        }
    }

    #[test]
    fn detector_finds_the_planted_errors() {
        let t = table();
        let data = training_data();
        let extra = vec![
            Vec::new(),
            zeroed_criteria::criteria_features(data.criteria.as_ref().unwrap(), &t),
        ];
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 8,
            top_k_corr: 1,
            ..FeatureConfig::default()
        });
        let fitted = builder.fit(&t, &extra);
        let feats = fitted.build_all();
        let config = ZeroEdConfig::fast();
        let preds = train_and_predict(&t, 1, &fitted, &feats.unified[1], &data, &config);
        assert_eq!(preds.len(), 120);
        assert!(preds[5], "row 5 should be flagged");
        assert!(preds[17], "row 17 should be flagged");
        let false_positives = preds
            .iter()
            .enumerate()
            .filter(|(i, &p)| p && *i != 5 && *i != 17)
            .count();
        assert!(false_positives < 12, "too many false positives: {false_positives}");
    }

    #[test]
    fn degenerate_training_data_predicts_single_class() {
        let t = table();
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 4,
            top_k_corr: 0,
            ..FeatureConfig::default()
        });
        let fitted = builder.fit(&t, &[]);
        let feats = fitted.build_all();
        let config = ZeroEdConfig::fast();
        // Only clean rows → everything predicted clean.
        let clean_only = ColumnTrainingData {
            clean_rows: (0..50).collect(),
            ..Default::default()
        };
        let preds = train_and_predict(&t, 1, &fitted, &feats.unified[1], &clean_only, &config);
        assert!(preds.iter().all(|&p| !p));
        // No training data at all → everything clean as well.
        let none = ColumnTrainingData::default();
        let preds = train_and_predict(&t, 1, &fitted, &feats.unified[1], &none, &config);
        assert!(preds.iter().all(|&p| !p));
    }

    #[test]
    fn augmented_criteria_features_reflect_the_substituted_value() {
        let t = table();
        let set = training_data().criteria.unwrap();
        let compiled = zeroed_criteria::compile_set(&set);
        for (value, expect) in [("MA", vec![1.0]), ("not-a-state", vec![0.0])] {
            let vm = augmented_criteria_features(&t, &set, Some(&compiled), 0, 1, value);
            let ast = augmented_criteria_features(&t, &set, None, 0, 1, value);
            assert_eq!(vm, expect);
            assert_eq!(vm, ast, "engines must agree on {value:?}");
        }
    }
}
