//! Step 5 — detector training and prediction (paper §III-D).
//!
//! One two-layer MLP is trained per attribute on the verified training data
//! (propagated clean rows, propagated error rows, and LLM-augmented error
//! examples) and then classifies every cell of the attribute. Features are
//! standardised per attribute before training.
//!
//! [`train_and_predict`] is free of cross-attribute state and seeds its MLP
//! from `(config seed, column)` alone, so the concurrent runtime path fans it
//! out per attribute with bit-identical predictions to the sequential loop.

use super::training_data::ColumnTrainingData;
use crate::config::ZeroEdConfig;
use zeroed_features::{FeatureMatrix, FittedFeatures};
use zeroed_ml::{Mlp, MlpConfig, StandardScaler};
use zeroed_table::Table;

/// Trains the per-attribute detector and predicts every cell of the column.
/// Returns one `is_error` flag per row.
pub fn train_and_predict(
    table: &Table,
    column: usize,
    fitted: &FittedFeatures<'_>,
    unified: &FeatureMatrix,
    data: &ColumnTrainingData,
    config: &ZeroEdConfig,
) -> Vec<bool> {
    let n_rows = table.n_rows();
    if n_rows == 0 {
        return Vec::new();
    }

    // Assemble the training set.
    let mut train_rows: Vec<Vec<f32>> = Vec::new();
    let mut labels: Vec<f32> = Vec::new();
    for &row in &data.clean_rows {
        train_rows.push(unified.row(row).to_vec());
        labels.push(0.0);
    }
    for &row in &data.error_rows {
        train_rows.push(unified.row(row).to_vec());
        labels.push(1.0);
    }
    // Augmented error examples: featurise the fabricated value in the context
    // of its source row. When criteria features are in use, the fabricated
    // value is re-checked against the column's criteria so the extra block
    // stays consistent.
    for (context_row, value) in &data.augmented {
        let extra_override: Option<Vec<f32>> = data.criteria.as_ref().map(|set| {
            augmented_criteria_features(table, set, *context_row, column, value)
        });
        let feat = fitted.unified_row(
            *context_row,
            column,
            Some(value.as_str()),
            extra_override.as_deref(),
        );
        // Guard against dimension drift (e.g. refined criteria adding checks):
        // only use the example when its dimensionality matches the matrix.
        if feat.len() == unified.n_cols() {
            train_rows.push(feat);
            labels.push(1.0);
        }
    }

    let n_error = labels.iter().filter(|&&l| l > 0.5).count();
    let n_clean = labels.len() - n_error;
    let has_error = n_error > 0;
    let has_clean = n_clean > 0;
    if train_rows.is_empty() || !has_error || !has_clean {
        // Degenerate training data: predict the majority class we saw (or
        // "clean" when we saw nothing at all), mirroring the behaviour of a
        // classifier trained on a single class.
        let default_flag = has_error && !has_clean;
        return vec![default_flag; n_rows];
    }

    // Oversample the minority error class (at most 4x) so the cross-entropy
    // objective does not collapse to the majority class; this complements the
    // LLM augmentation, which is capped per column.
    if n_error * 2 < n_clean {
        let ratio = ((n_clean / n_error.max(1)).min(4)).max(1);
        let error_indices: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0.5)
            .map(|(i, _)| i)
            .collect();
        for _ in 1..ratio {
            for &i in &error_indices {
                train_rows.push(train_rows[i].clone());
                labels.push(1.0);
            }
        }
    }

    // Standardise and train.
    let train_refs: Vec<&[f32]> = train_rows.iter().map(|r| r.as_slice()).collect();
    let scaler = StandardScaler::fit(&train_refs);
    let scaled: Vec<Vec<f32>> = train_refs.iter().map(|r| scaler.transform(r)).collect();
    let scaled_refs: Vec<&[f32]> = scaled.iter().map(|r| r.as_slice()).collect();
    let mlp_config = MlpConfig {
        seed: config
            .mlp
            .seed
            .wrapping_add(config.seed)
            .wrapping_add(column as u64),
        ..config.mlp.clone()
    };
    let mlp = Mlp::fit(&scaled_refs, &labels, &mlp_config);

    // Predict every cell of the column, standardising into one reused buffer
    // instead of allocating a fresh vector per cell.
    let mut scratch = vec![0.0f32; scaler.dim()];
    (0..n_rows)
        .map(|row| {
            scaler.transform_into(unified.row(row), &mut scratch);
            mlp.predict(&scratch)
        })
        .collect()
}

/// Evaluates the column's criteria for a fabricated value placed in the
/// context of an existing row, producing the extra (criteria) feature block
/// for that synthetic cell.
fn augmented_criteria_features(
    table: &Table,
    criteria: &zeroed_criteria::CriteriaSet,
    context_row: usize,
    column: usize,
    value: &str,
) -> Vec<f32> {
    // Build a single-row scratch table holding the context row with the
    // fabricated value substituted, so row-level checks (FD lookups, keyword
    // consistency) still see the correct surrounding values.
    let mut row = table
        .row(context_row)
        .map(|r| r.to_vec())
        .unwrap_or_else(|_| vec![String::new(); table.n_cols()]);
    if column < row.len() {
        row[column] = value.to_string();
    }
    let scratch = Table::new("scratch", table.columns().to_vec(), vec![row])
        .expect("scratch row matches the schema");
    criteria
        .evaluate_cell(&scratch, 0)
        .into_iter()
        .map(|b| if b { 1.0 } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_criteria::{Check, CriteriaSet, Criterion};
    use zeroed_features::{FeatureBuilder, FeatureConfig};

    fn table() -> Table {
        let rows: Vec<Vec<String>> = (0..120)
            .map(|i| {
                let city = ["Boston", "Denver", "Phoenix"][i % 3];
                let state = if i == 5 || i == 17 {
                    "XX"
                } else {
                    ["MA", "CO", "AZ"][i % 3]
                };
                vec![city.to_string(), state.to_string()]
            })
            .collect();
        Table::new("t", vec!["city".into(), "state".into()], rows).unwrap()
    }

    fn training_data() -> ColumnTrainingData {
        ColumnTrainingData {
            clean_rows: (0..120).filter(|&i| i != 5 && i != 17).collect(),
            error_rows: vec![5, 17],
            augmented: vec![(0, "".to_string()), (1, "Q9".to_string())],
            criteria: Some(CriteriaSet {
                column: 1,
                criteria: vec![Criterion::new(
                    "is_clean_state_domain",
                    "known states",
                    Check::Domain {
                        allowed: ["ma", "co", "az"].iter().map(|s| s.to_string()).collect(),
                    },
                )],
            }),
            propagated_cells: 100,
        }
    }

    #[test]
    fn detector_finds_the_planted_errors() {
        let t = table();
        let data = training_data();
        let extra = vec![
            Vec::new(),
            zeroed_criteria::criteria_features(data.criteria.as_ref().unwrap(), &t),
        ];
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 8,
            top_k_corr: 1,
            ..FeatureConfig::default()
        });
        let fitted = builder.fit(&t, &extra);
        let feats = fitted.build_all();
        let config = ZeroEdConfig::fast();
        let preds = train_and_predict(&t, 1, &fitted, &feats.unified[1], &data, &config);
        assert_eq!(preds.len(), 120);
        assert!(preds[5], "row 5 should be flagged");
        assert!(preds[17], "row 17 should be flagged");
        let false_positives = preds
            .iter()
            .enumerate()
            .filter(|(i, &p)| p && *i != 5 && *i != 17)
            .count();
        assert!(false_positives < 12, "too many false positives: {false_positives}");
    }

    #[test]
    fn degenerate_training_data_predicts_single_class() {
        let t = table();
        let builder = FeatureBuilder::new(FeatureConfig {
            embed_dim: 4,
            top_k_corr: 0,
            ..FeatureConfig::default()
        });
        let fitted = builder.fit(&t, &[]);
        let feats = fitted.build_all();
        let config = ZeroEdConfig::fast();
        // Only clean rows → everything predicted clean.
        let clean_only = ColumnTrainingData {
            clean_rows: (0..50).collect(),
            ..Default::default()
        };
        let preds = train_and_predict(&t, 1, &fitted, &feats.unified[1], &clean_only, &config);
        assert!(preds.iter().all(|&p| !p));
        // No training data at all → everything clean as well.
        let none = ColumnTrainingData::default();
        let preds = train_and_predict(&t, 1, &fitted, &feats.unified[1], &none, &config);
        assert!(preds.iter().all(|&p| !p));
    }

    #[test]
    fn augmented_criteria_features_reflect_the_substituted_value() {
        let t = table();
        let set = training_data().criteria.unwrap();
        let ok = augmented_criteria_features(&t, &set, 0, 1, "MA");
        assert_eq!(ok, vec![1.0]);
        let bad = augmented_criteria_features(&t, &set, 0, 1, "not-a-state");
        assert_eq!(bad, vec![0.0]);
    }
}
