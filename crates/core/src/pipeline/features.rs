//! Step 1 — feature representation with criteria reasoning (paper §III-B).
//!
//! This module computes the correlated attributes, asks the LLM for
//! error-checking criteria per attribute, and turns those criteria into the
//! binary feature block passed to `zeroed-features` as `extra` features.

use crate::config::{CriteriaEngine, ZeroEdConfig};
use zeroed_criteria::{criteria_features, criteria_features_dict, CriteriaSet};
use zeroed_features::nmi::top_k_correlated_dict;
use zeroed_llm::{AttributeContext, LlmClient};
use zeroed_table::{Table, TableDict};

/// Computes the top-`k` correlated attributes for every column (empty lists
/// when the correlated-attribute component is ablated). Interns the table
/// internally; the pipeline itself uses [`compute_correlated_dict`] so the
/// dictionary is built exactly once per detection run.
pub fn compute_correlated(table: &Table, config: &ZeroEdConfig) -> Vec<Vec<usize>> {
    compute_correlated_dict(&table.intern(), config)
}

/// [`compute_correlated`] over a pre-built distinct-value dictionary: NMI is
/// estimated on interned `u32` codes instead of string columns.
pub fn compute_correlated_dict(dict: &TableDict, config: &ZeroEdConfig) -> Vec<Vec<usize>> {
    let k = config.effective_top_k();
    (0..dict.n_cols())
        .map(|j| top_k_correlated_dict(dict, j, k, 5_000))
        .collect()
}

/// Row indices used as examples in criteria/analysis prompts: an even stride
/// through the table capped at 20 rows (the paper serialises "randomly sampled
/// tuples"; a stride keeps the choice deterministic).
pub fn prompt_sample_rows(n_rows: usize) -> Vec<usize> {
    if n_rows == 0 {
        return Vec::new();
    }
    let take = n_rows.min(20);
    let stride = (n_rows / take).max(1);
    (0..n_rows).step_by(stride).take(take).collect()
}

/// Asks the LLM for error-checking criteria for every attribute. Returns
/// `None` per column when the criteria component is ablated.
pub fn generate_criteria(
    table: &Table,
    correlated: &[Vec<usize>],
    config: &ZeroEdConfig,
    llm: &dyn LlmClient,
) -> Vec<Option<CriteriaSet>> {
    if !config.use_criteria {
        return vec![None; table.n_cols()];
    }
    let samples = prompt_sample_rows(table.n_rows());
    (0..table.n_cols())
        .map(|j| {
            let ctx = AttributeContext {
                table,
                column: j,
                correlated: &correlated[j],
                sample_rows: &samples,
            };
            Some(llm.generate_criteria(&ctx))
        })
        .collect()
}

/// [`generate_criteria`] fanned out over the runtime scheduler: one task per
/// attribute, results in column order (bit-identical to the serial loop).
pub fn generate_criteria_on(
    scheduler: &zeroed_runtime::Scheduler,
    table: &Table,
    correlated: &[Vec<usize>],
    config: &ZeroEdConfig,
    llm: &dyn LlmClient,
) -> Vec<Option<CriteriaSet>> {
    if !config.use_criteria {
        return vec![None; table.n_cols()];
    }
    let samples = prompt_sample_rows(table.n_rows());
    scheduler.run(table.n_cols(), |j| {
        let ctx = AttributeContext {
            table,
            column: j,
            correlated: &correlated[j],
            sample_rows: &samples,
        };
        Some(llm.generate_criteria(&ctx))
    })
}

/// Evaluates every column's criteria over the full table, producing the
/// per-column extra feature blocks for the feature builder. Columns without
/// criteria get an empty block. Runs on the compiled VM path (interning the
/// touched columns internally); the pipeline uses [`criteria_extra_dict`]
/// with its run-wide dictionary and engine switch.
pub fn criteria_extra(criteria: &[Option<CriteriaSet>], table: &Table) -> Vec<Vec<Vec<f32>>> {
    criteria
        .iter()
        .map(|set| match set {
            Some(set) if !set.is_empty() => criteria_features(set, table),
            _ => Vec::new(),
        })
        .collect()
}

fn column_extra(
    set: &CriteriaSet,
    table: &Table,
    dict: &TableDict,
    engine: CriteriaEngine,
) -> Vec<Vec<f32>> {
    match engine {
        CriteriaEngine::Compiled => criteria_features_dict(set, dict),
        CriteriaEngine::AstOracle => zeroed_criteria::verify::oracle::criteria_features(set, table),
    }
}

/// [`criteria_extra`] over the pipeline's pre-built dictionary, honouring the
/// configured evaluation engine: compiled-VM per-distinct evaluation by
/// default, the per-cell AST oracle when pinned. `dict` must describe
/// `table`.
pub fn criteria_extra_dict(
    criteria: &[Option<CriteriaSet>],
    table: &Table,
    dict: &TableDict,
    engine: CriteriaEngine,
) -> Vec<Vec<Vec<f32>>> {
    criteria
        .iter()
        .map(|set| match set {
            Some(set) if !set.is_empty() => column_extra(set, table, dict, engine),
            _ => Vec::new(),
        })
        .collect()
}

/// [`criteria_extra_dict`] fanned out over the runtime scheduler (criteria
/// evaluation is CPU-bound and embarrassingly parallel per column).
pub fn criteria_extra_dict_on(
    scheduler: &zeroed_runtime::Scheduler,
    criteria: &[Option<CriteriaSet>],
    table: &Table,
    dict: &TableDict,
    engine: CriteriaEngine,
) -> Vec<Vec<Vec<f32>>> {
    scheduler.run(criteria.len(), |j| match &criteria[j] {
        Some(set) if !set.is_empty() => column_extra(set, table, dict, engine),
        _ => Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
    use zeroed_llm::SimLlm;

    #[test]
    fn prompt_rows_are_bounded_and_spread() {
        assert!(prompt_sample_rows(0).is_empty());
        assert_eq!(prompt_sample_rows(5), vec![0, 1, 2, 3, 4]);
        let rows = prompt_sample_rows(1_000);
        assert_eq!(rows.len(), 20);
        assert!(rows.windows(2).all(|w| w[1] > w[0]));
        assert!(*rows.last().unwrap() >= 900);
    }

    #[test]
    fn criteria_generation_respects_ablation() {
        let ds = generate(
            DatasetSpec::Flights,
            &GenerateOptions {
                n_rows: 100,
                seed: 1,
                error_spec: None,
            },
        );
        let llm = SimLlm::default_model(0);
        let config = ZeroEdConfig::fast();
        let corr = compute_correlated(&ds.dirty, &config);
        assert_eq!(corr.len(), ds.dirty.n_cols());
        assert!(corr.iter().all(|c| c.len() <= 2));

        let crit = generate_criteria(&ds.dirty, &corr, &config, &llm);
        assert!(crit.iter().all(|c| c.as_ref().map(|s| !s.is_empty()).unwrap_or(false)));
        let extra = criteria_extra(&crit, &ds.dirty);
        assert_eq!(extra.len(), ds.dirty.n_cols());
        assert_eq!(extra[0].len(), ds.dirty.n_rows());

        let none = generate_criteria(
            &ds.dirty,
            &corr,
            &config.clone().without_criteria(),
            &llm,
        );
        assert!(none.iter().all(|c| c.is_none()));
        assert!(criteria_extra(&none, &ds.dirty).iter().all(|e| e.is_empty()));
    }

    #[test]
    fn ablated_correlation_gives_empty_lists() {
        let ds = generate(
            DatasetSpec::Beers,
            &GenerateOptions {
                n_rows: 80,
                seed: 2,
                error_spec: None,
            },
        );
        let corr = compute_correlated(&ds.dirty, &ZeroEdConfig::fast().without_correlated());
        assert!(corr.iter().all(|c| c.is_empty()));
    }
}
