//! # zeroed-core
//!
//! The ZeroED pipeline: hybrid zero-shot error detection through (simulated)
//! LLM reasoning, as described in *ZeroED: Hybrid Zero-shot Error Detection
//! through Large Language Model Reasoning* (ICDE 2025).
//!
//! ZeroED detects erroneous cells in a dirty table without any pre-existing
//! labels or manually defined criteria. It proceeds in four steps
//! (paper §III):
//!
//! 1. **Feature representation** — statistical, semantic and error-reason-aware
//!    (LLM-derived criteria) features per cell, concatenated with the features
//!    of the top-`k` NMI-correlated attributes ([`pipeline::features`]).
//! 2. **Representative sampling and holistic LLM labelling** — per-attribute
//!    clustering over the features, centroid representatives are labelled by
//!    the LLM guided by a two-step generated detection guideline
//!    ([`pipeline::sampling`], [`pipeline::labeling`]).
//! 3. **Training-data construction** — in-cluster label propagation,
//!    contrastive criteria refinement, mutual verification, and LLM error
//!    augmentation (Algorithm 1; [`pipeline::training_data`]).
//! 4. **Detector training and prediction** — a per-attribute MLP classifies
//!    every cell as clean or erroneous ([`pipeline::detector`]).
//!
//! ## Quick start
//!
//! ```
//! use zeroed_core::{ZeroEd, ZeroEdConfig};
//! use zeroed_llm::SimLlm;
//! use zeroed_table::Table;
//!
//! // A small dirty table: the state of the third row disagrees with its city.
//! let rows: Vec<Vec<String>> = (0..120)
//!     .map(|i| {
//!         let city = ["Boston", "Denver", "Phoenix"][i % 3];
//!         let state = if i == 5 { "CO" } else { ["MA", "CO", "AZ"][i % 3] };
//!         vec![city.to_string(), state.to_string()]
//!     })
//!     .collect();
//! let dirty = Table::new("cities", vec!["city".into(), "state".into()], rows).unwrap();
//!
//! let llm = SimLlm::default_model(7); // zero-knowledge heuristic mode
//! let config = ZeroEdConfig { label_rate: 0.1, ..ZeroEdConfig::fast() };
//! let outcome = ZeroEd::new(config).detect(&dirty, &llm);
//! assert_eq!(outcome.mask.n_rows(), 120);
//! ```

pub mod config;
pub mod pipeline;
pub mod report;

pub use config::{CriteriaEngine, ZeroEdConfig};
pub use pipeline::repair::{RepairCounters, RepairLlm, StageRepair};
pub use pipeline::ZeroEd;
pub use report::{DetectionOutcome, PipelineStats, StepTimings};
// Re-export the runtime configuration types so callers can tune execution
// without a separate `zeroed-runtime` dependency.
pub use zeroed_runtime::{
    BackendConfig, BreakerPolicy, ExecMode, FsyncPolicy, HedgePolicy, RouterConfig, RouterLlm,
    RouterStats, RuntimeConfig, StoreConfig, StoreLayer,
};
