//! ZeroED pipeline configuration, including the ablation switches evaluated in
//! the paper's Table IV.

use serde::{Deserialize, Serialize};
use zeroed_cluster::SamplingMethod;
use zeroed_ml::MlpConfig;
use zeroed_runtime::RuntimeConfig;

/// Configuration of the ZeroED pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZeroEdConfig {
    /// Fraction of cells per attribute the LLM labels (the paper's default is
    /// 5%); also determines the number of clusters.
    pub label_rate: f64,
    /// Hard cap on the number of clusters (and therefore LLM-labelled cells)
    /// per attribute. Purely an engineering guard for very large tables; the
    /// paper's settings never reach it on the six comparison datasets.
    pub max_clusters_per_column: usize,
    /// Number of correlated attributes whose features are concatenated
    /// (paper default 2). Ignored when [`ZeroEdConfig::use_corr`] is false.
    pub top_k_corr: usize,
    /// Clustering/sampling strategy (paper default k-means; Table VI evaluates
    /// alternatives).
    pub sampling: SamplingMethodConfig,
    /// Number of sampled cells per labelling prompt (paper default 20).
    pub batch_size: usize,
    /// Semantic embedding dimensionality.
    pub embed_dim: usize,
    /// Detector (MLP) hyper-parameters.
    pub mlp: MlpConfig,
    /// Accuracy / pass-rate threshold of the mutual-verification step
    /// (Algorithm 1 uses 0.5).
    pub verification_threshold: f64,
    /// Upper bound on LLM-augmented error examples per attribute.
    pub max_augment_per_column: usize,
    /// Rows used when clustering very large attributes; remaining rows are
    /// assigned to the nearest centroid.
    pub max_cluster_rows: usize,
    /// Ablation switch: generate and use detection guidelines ("w/o Guid."
    /// disables this).
    pub use_guidelines: bool,
    /// Ablation switch: generate error-checking criteria, their features and
    /// their role in verification ("w/o Crit." disables this).
    pub use_criteria: bool,
    /// Ablation switch: concatenate correlated-attribute features ("w/o
    /// Corr." disables this).
    pub use_corr: bool,
    /// Ablation switch: mutual verification and error augmentation ("w/o
    /// Veri." disables this).
    pub use_verification: bool,
    /// Master seed for clustering, the detector and tie-breaking.
    pub seed: u64,
    /// Criteria evaluation engine: the compiled bytecode VM (default) or the
    /// per-cell AST-walking oracle. Both are bit-identical (the differential
    /// suite in `zeroed-criteria` enforces it); the oracle is retained as the
    /// specification and for A/B timing in `bench_runtime`.
    #[serde(default)]
    pub criteria_engine: CriteriaEngine,
    /// Re-asks the repair layer ([`crate::pipeline::repair::RepairLlm`]) may
    /// issue per corrupted response before falling back to the deterministic
    /// stage default (default 1). Re-ask tokens are booked on the ledger's
    /// distinct re-ask line. 0 disables re-asking entirely.
    #[serde(default = "default_reask_budget")]
    pub reask_budget: usize,
    /// LLM orchestration runtime: execution mode (concurrent by default,
    /// sequential as the correctness oracle), worker pool sizing and the
    /// request-dedup response cache. Scheduling never changes the detection
    /// result — concurrent runs are bit-identical to sequential ones.
    pub runtime: RuntimeConfig,
}

fn default_reask_budget() -> usize {
    1
}

/// Which engine evaluates error-checking criteria (`zeroed-criteria`).
///
/// The two engines are bit-identical by contract — the compiled VM is held
/// to the AST oracle by `zeroed-criteria`'s differential suite — so this
/// switch never changes a detection result, only how fast `criteria_features`
/// and Algorithm-1 mutual verification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CriteriaEngine {
    /// Lower each check to bytecode once and evaluate per distinct interned
    /// value (the default).
    #[default]
    Compiled,
    /// Walk the `Check` AST per cell — the original implementation, kept as
    /// the specification oracle.
    AstOracle,
}

/// Serialisable mirror of [`SamplingMethod`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingMethodConfig {
    /// k-means clustering (paper default).
    KMeans,
    /// Ward-linkage agglomerative clustering.
    Agglomerative,
    /// Random centre selection.
    Random,
}

impl From<SamplingMethodConfig> for SamplingMethod {
    fn from(value: SamplingMethodConfig) -> Self {
        match value {
            SamplingMethodConfig::KMeans => SamplingMethod::KMeans,
            SamplingMethodConfig::Agglomerative => SamplingMethod::Agglomerative,
            SamplingMethodConfig::Random => SamplingMethod::Random,
        }
    }
}

impl Default for ZeroEdConfig {
    fn default() -> Self {
        Self {
            label_rate: 0.05,
            max_clusters_per_column: 400,
            top_k_corr: 2,
            sampling: SamplingMethodConfig::KMeans,
            batch_size: 20,
            embed_dim: 24,
            mlp: MlpConfig::default(),
            verification_threshold: 0.5,
            max_augment_per_column: 200,
            max_cluster_rows: 20_000,
            use_guidelines: true,
            use_criteria: true,
            use_corr: true,
            use_verification: true,
            seed: 42,
            criteria_engine: CriteriaEngine::default(),
            reask_budget: default_reask_budget(),
            runtime: RuntimeConfig::default(),
        }
    }
}

impl ZeroEdConfig {
    /// A configuration tuned for unit tests and doc examples: smaller
    /// embeddings, fewer training epochs, smaller caps. Detection quality is
    /// slightly lower but runtime drops by an order of magnitude.
    pub fn fast() -> Self {
        Self {
            embed_dim: 12,
            max_clusters_per_column: 60,
            max_augment_per_column: 40,
            // Representative selection needs a *sketch* of each attribute,
            // not an exact clustering: a 4k strided sample (plus the exact
            // dedup path for attributes whose distinct count fits the cap)
            // picks the same kind of representatives at a tenth of the
            // Lloyd cost of the 20k default.
            max_cluster_rows: 4_000,
            mlp: MlpConfig {
                hidden: 24,
                epochs: 12,
                ..MlpConfig::default()
            },
            ..Self::default()
        }
    }

    /// The "w/o Guid." ablation of Table IV.
    pub fn without_guidelines(mut self) -> Self {
        self.use_guidelines = false;
        self
    }

    /// The "w/o Crit." ablation of Table IV.
    pub fn without_criteria(mut self) -> Self {
        self.use_criteria = false;
        self
    }

    /// The "w/o Corr." ablation of Table IV.
    pub fn without_correlated(mut self) -> Self {
        self.use_corr = false;
        self
    }

    /// The "w/o Veri." ablation of Table IV.
    pub fn without_verification(mut self) -> Self {
        self.use_verification = false;
        self
    }

    /// Pins criteria evaluation to the AST-walking specification oracle
    /// instead of the compiled VM (bit-identical, slower; used for A/B
    /// timing and belt-and-braces verification runs).
    pub fn with_criteria_oracle(mut self) -> Self {
        self.criteria_engine = CriteriaEngine::AstOracle;
        self
    }

    /// Selects the criteria evaluation engine explicitly.
    pub fn with_criteria_engine(mut self, engine: CriteriaEngine) -> Self {
        self.criteria_engine = engine;
        self
    }

    /// Runs the pipeline on the sequential oracle path (no scheduler, no
    /// cache) — the seed behaviour concurrent runs are verified against.
    pub fn sequential_runtime(mut self) -> Self {
        self.runtime = RuntimeConfig::sequential();
        self
    }

    /// Replaces the runtime configuration.
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Attaches a multi-backend router policy (backends, budgets, hedging,
    /// circuit breaking) to the runtime configuration. Consumed by
    /// [`zeroed_runtime::RouterLlm::from_runtime`] /
    /// [`crate::ZeroEd::detect_routed`].
    pub fn with_router(mut self, router: zeroed_runtime::RouterConfig) -> Self {
        self.runtime.router = Some(router);
        self
    }

    /// Attaches a crash-safe on-disk response store: published responses are
    /// persisted write-through and a new [`crate::ZeroEd`] pointed at the
    /// same directory warm-starts from it, issuing zero LLM requests for
    /// already-answered prompts — across process boundaries. Requires the
    /// cache (the default); the sequential oracle path ignores the store.
    ///
    /// The persistence quickstart, compiler-checked:
    ///
    /// ```
    /// use zeroed_core::{ZeroEd, ZeroEdConfig};
    /// use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
    /// use zeroed_llm::{LlmClient, SimLlm};
    /// use zeroed_runtime::StoreConfig;
    ///
    /// let dir = std::env::temp_dir().join(format!("zeroed-doc-store-{}", std::process::id()));
    /// let _ = std::fs::remove_dir_all(&dir);
    /// // Tuning knobs ride on StoreConfig: `shards` lets several detector
    /// // processes share the root, `ttl_secs` expires stale experiment bins.
    /// let store = StoreConfig::new(dir.to_str().unwrap())
    ///     .with_shards(2)
    ///     .with_ttl_secs(7 * 24 * 3600);
    /// let config = ZeroEdConfig::fast().with_store(store);
    ///
    /// let ds = generate(DatasetSpec::Beers, &GenerateOptions { n_rows: 60, seed: 5, error_spec: None });
    /// let cold = ZeroEd::new(config.clone()).detect(&ds.dirty, &SimLlm::default_model(1));
    /// // ^ detector dropped: its writes are drained and synced to `dir`.
    ///
    /// // A fresh detector — a new process, as far as the store is concerned —
    /// // replays every response: bit-identical mask, zero LLM requests.
    /// let warm_llm = SimLlm::default_model(1);
    /// let warm = ZeroEd::new(config).detect(&ds.dirty, &warm_llm);
    /// assert_eq!(warm.mask, cold.mask);
    /// assert_eq!(warm.stats.cache_misses, 0);
    /// assert_eq!(warm_llm.ledger().usage().requests, 0);
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// ```
    pub fn with_store(mut self, store: zeroed_runtime::StoreConfig) -> Self {
        self.runtime.store = Some(store);
        self
    }

    /// [`ZeroEdConfig::with_store`] with default store tuning for `dir`.
    pub fn with_store_dir(self, dir: impl Into<String>) -> Self {
        self.with_store(zeroed_runtime::StoreConfig::new(dir))
    }

    /// Effective number of correlated attributes after the ablation switch.
    pub fn effective_top_k(&self) -> usize {
        if self.use_corr {
            self.top_k_corr
        } else {
            0
        }
    }

    /// Number of clusters (labelled cells) for an attribute with `n_rows`
    /// values.
    pub fn clusters_for(&self, n_rows: usize) -> usize {
        let raw = (self.label_rate * n_rows as f64).ceil() as usize;
        raw.clamp(2, self.max_clusters_per_column.max(2)).min(n_rows.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = ZeroEdConfig::default();
        assert!((c.label_rate - 0.05).abs() < 1e-12);
        assert_eq!(c.top_k_corr, 2);
        assert_eq!(c.batch_size, 20);
        assert!((c.verification_threshold - 0.5).abs() < 1e-12);
        assert!(c.use_guidelines && c.use_criteria && c.use_corr && c.use_verification);
        assert_eq!(c.reask_budget, 1, "one re-ask per corrupted response");
    }

    #[test]
    fn ablation_builders_flip_one_switch_each() {
        assert!(!ZeroEdConfig::default().without_guidelines().use_guidelines);
        assert!(!ZeroEdConfig::default().without_criteria().use_criteria);
        assert!(!ZeroEdConfig::default().without_correlated().use_corr);
        assert!(!ZeroEdConfig::default().without_verification().use_verification);
        assert_eq!(ZeroEdConfig::default().without_correlated().effective_top_k(), 0);
        assert_eq!(ZeroEdConfig::default().effective_top_k(), 2);
    }

    #[test]
    fn cluster_count_follows_label_rate_with_caps() {
        let c = ZeroEdConfig::default();
        assert_eq!(c.clusters_for(1_000), 50);
        assert_eq!(c.clusters_for(10), 2);
        assert_eq!(c.clusters_for(1_000_000), 400);
        let fast = ZeroEdConfig::fast();
        assert_eq!(fast.clusters_for(10_000), 60);
    }

    #[test]
    fn runtime_defaults_and_builders() {
        use zeroed_runtime::ExecMode;
        let c = ZeroEdConfig::default();
        assert_eq!(c.runtime.mode, ExecMode::Concurrent);
        assert!(c.runtime.cache);
        let seq = ZeroEdConfig::default().sequential_runtime();
        assert_eq!(seq.runtime.mode, ExecMode::Sequential);
        assert!(!seq.runtime.cache);
        let custom = ZeroEdConfig::default().with_runtime(zeroed_runtime::RuntimeConfig {
            workers: 4,
            ..zeroed_runtime::RuntimeConfig::default()
        });
        assert_eq!(custom.runtime.effective_workers(), 4);
    }

    #[test]
    fn store_builders_attach_a_store_config() {
        let c = ZeroEdConfig::default();
        assert!(c.runtime.store.is_none());
        let with = ZeroEdConfig::default().with_store_dir("/tmp/zeroed-store-test");
        let store = with.runtime.store.as_ref().expect("store configured");
        assert_eq!(store.dir, "/tmp/zeroed-store-test");
        let custom = ZeroEdConfig::default().with_store(zeroed_runtime::StoreConfig {
            capacity: 128,
            ..zeroed_runtime::StoreConfig::new("d")
        });
        assert_eq!(custom.runtime.store.unwrap().capacity, 128);
    }

    #[test]
    fn criteria_engine_defaults_to_compiled() {
        let c = ZeroEdConfig::default();
        assert_eq!(c.criteria_engine, CriteriaEngine::Compiled);
        assert_eq!(
            ZeroEdConfig::default().with_criteria_oracle().criteria_engine,
            CriteriaEngine::AstOracle
        );
        assert_eq!(
            ZeroEdConfig::default()
                .with_criteria_engine(CriteriaEngine::Compiled)
                .criteria_engine,
            CriteriaEngine::Compiled
        );
    }

    #[test]
    fn sampling_config_converts() {
        assert_eq!(
            SamplingMethod::from(SamplingMethodConfig::Agglomerative),
            SamplingMethod::Agglomerative
        );
        assert_eq!(
            SamplingMethod::from(SamplingMethodConfig::Random),
            SamplingMethod::Random
        );
    }
}
