//! Pipeline outputs: the predicted error mask, per-step timings and summary
//! statistics.

use crate::pipeline::repair::RepairCounters;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use zeroed_table::ErrorMask;

/// Wall-clock time spent in each pipeline step.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StepTimings {
    /// Feature representation (criteria generation + feature matrices).
    pub features: Duration,
    /// Clustering-based sampling.
    pub sampling: Duration,
    /// Guideline generation and LLM labelling.
    pub labeling: Duration,
    /// Training-data construction (Algorithm 1).
    pub training_data: Duration,
    /// Detector training and prediction.
    pub detector: Duration,
}

impl StepTimings {
    /// Total wall-clock time across all steps.
    pub fn total(&self) -> Duration {
        self.features + self.sampling + self.labeling + self.training_data + self.detector
    }
}

/// Summary counters describing what the pipeline did.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Cells labelled directly by the LLM.
    pub llm_labeled_cells: usize,
    /// Cells that received a label through in-cluster propagation.
    pub propagated_cells: usize,
    /// Training rows that survived mutual verification (clean class).
    pub verified_clean_rows: usize,
    /// Training rows labelled as errors (propagated error class).
    pub error_rows: usize,
    /// LLM-augmented synthetic error examples.
    pub augmented_rows: usize,
    /// Total error-checking criteria in use after refinement/verification.
    pub criteria_count: usize,
    /// Cells relabelled individually because a labelling batch returned
    /// fewer labels than requested (never dropped silently).
    pub label_fallback_cells: usize,
    /// Cells defaulted to clean because even the individual relabelling
    /// returned nothing.
    pub label_defaulted_cells: usize,
    /// Response-cache hits during this run (requests answered without a
    /// model call).
    pub cache_hits: usize,
    /// Response-cache misses (requests that executed the model).
    pub cache_misses: usize,
    /// Hits that coalesced onto an in-flight identical request.
    pub cache_coalesced: usize,
    /// Input + output tokens the cache hits avoided.
    pub cache_tokens_saved: usize,
    /// Tasks executed by the runtime scheduler (0 on the sequential path).
    pub runtime_tasks: usize,
    /// Scheduler retry attempts.
    pub runtime_retries: usize,
    /// Backends registered with the multi-backend router (0 when detection
    /// ran on a single client; the remaining `router_*` fields are only
    /// populated by [`crate::ZeroEd::detect_routed`]).
    pub router_backends: usize,
    /// Requests the router dispatched (cache hits never reach it).
    pub router_requests: usize,
    /// Failover skips over backends scheduled to error or time out.
    pub router_failovers: usize,
    /// Hedged requests fired against a second backend.
    pub router_hedges_fired: usize,
    /// Hedged races won by the hedge rather than the slow primary.
    pub router_hedges_won: usize,
    /// Circuit-breaker trips across all backends.
    pub router_breaker_trips: usize,
    /// Tokens charged to cancelled hedge losers (the price of the tail-latency
    /// win; excluded from the useful-token ledger).
    pub router_hedge_waste_tokens: usize,
    /// Requests served by responses preloaded from the persisted on-disk
    /// store (subset of `cache_hits`; 0 when no store is configured). A warm
    /// cross-process run reports every request here.
    pub store_hits: usize,
    /// Persisted records preloaded into the cache when this detector opened
    /// its store.
    pub store_preloaded_records: usize,
    /// Responses written through to the store during this run (the background
    /// writer is drained before detection returns, so the count is exact).
    pub store_persisted_records: usize,
    /// Frame bytes appended to the store during this run.
    pub store_persisted_bytes: usize,
    /// Records the store's crash recovery salvaged when it was opened.
    pub store_recovered_records: usize,
    /// Records/segments the store's crash recovery had to discard (torn or
    /// corrupt tails, version-mismatched segments) — truncation events, not
    /// data this run produced.
    pub store_discarded_tails: usize,
    /// Records the store's TTL policy expired (at open, by compaction, or by
    /// an explicit GC sweep) — stale experiment bins reclaimed, aggregated
    /// across shards. 0 when no TTL is configured.
    pub store_expired_records: usize,
    /// Key-space shards of the configured store (1 = unsharded flat layout;
    /// 0 when no store is configured). Shards let several detector
    /// *processes* write one store root concurrently.
    pub store_shards: usize,
    /// Per-stage repair-ladder counters: corrupted responses detected and
    /// how each was resolved (structural repair, re-ask, or deterministic
    /// default). Every stage reconciles exactly:
    /// `mangled == repaired + reasked + defaulted`.
    #[serde(default)]
    pub repair: RepairCounters,
    /// Hierarchical stage profile of this run: a tree of wall-clock spans
    /// covering the five pipeline steps and their sub-stages, with grafted
    /// parallel distribution nodes for per-attribute work, the scheduler
    /// (queue-wait / execute), the response cache (lock-hold / park-wait /
    /// preload) and the persisted store (open / preload / fsync / compaction
    /// / GC). `None` only for the degenerate empty-table early return.
    /// Sequential (non-parallel) children of any node sum to at most the
    /// node's own wall time — `zeroed_obs::StageProfile::accounting_ok`
    /// checks the whole tree.
    #[serde(default)]
    pub stage_profile: Option<zeroed_obs::StageProfile>,
    /// Per-request causal trace for the run: exact per-kind event counts,
    /// ring drop count (0 in every shipped configuration), the journal and
    /// the slowest request-rooted exemplars. `TraceSummary::verify` checks
    /// the journal's causality invariants; the bench reconciles its counts
    /// against the cache / router / repair / store stats with zero
    /// tolerance.
    #[serde(default)]
    pub trace: Option<zeroed_obs::TraceSummary>,
}

/// The result of running ZeroED on a dirty table.
#[derive(Debug, Clone)]
pub struct DetectionOutcome {
    /// Predicted error mask (one flag per cell).
    pub mask: ErrorMask,
    /// Per-step wall-clock timings.
    pub timings: StepTimings,
    /// Summary statistics.
    pub stats: PipelineStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_total_sums_steps() {
        let t = StepTimings {
            features: Duration::from_millis(10),
            sampling: Duration::from_millis(20),
            labeling: Duration::from_millis(30),
            training_data: Duration::from_millis(40),
            detector: Duration::from_millis(50),
        };
        assert_eq!(t.total(), Duration::from_millis(150));
        assert_eq!(StepTimings::default().total(), Duration::ZERO);
    }
}
