//! Per-dataset metadata consumed by criteria-based baselines and by the error
//! injector.
//!
//! The ZeroED paper gives the manual-criteria baselines (NADEEF, KATARA,
//! dBoost) their integrity constraints, regex-like patterns and knowledge
//! bases "from existing public code". In this reproduction the dataset
//! generators know their own ground-truth dependencies and formats, so they
//! export them here; ZeroED itself never reads this metadata (it is zero-shot).

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A functional dependency `determinant → dependent` between two columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionalDependency {
    /// Left-hand-side (determining) column name.
    pub determinant: String,
    /// Right-hand-side (determined) column name.
    pub dependent: String,
}

impl FunctionalDependency {
    /// Convenience constructor.
    pub fn new(determinant: impl Into<String>, dependent: impl Into<String>) -> Self {
        Self {
            determinant: determinant.into(),
            dependent: dependent.into(),
        }
    }
}

/// Format/domain constraint kinds attachable to a column.
///
/// Each kind knows how to check a value ([`PatternKind::matches`]); NADEEF uses
/// them as pattern rules, dBoost uses the numeric ranges, and the injector uses
/// them to produce *pattern violations* that are guaranteed to break the
/// format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PatternKind {
    /// A 12-hour clock time such as `7:45 am` / `11:05 pm`.
    Time12H,
    /// A date formatted `YYYY-MM-DD`.
    IsoDate,
    /// A 5-digit ZIP code.
    ZipCode,
    /// A US-style phone number `(ddd) ddd-dddd`.
    Phone,
    /// An ISSN `dddd-dddx`.
    Issn,
    /// A flight number: two-letter airline code + 1-4 digits (e.g. `AA-1234`).
    FlightNumber,
    /// Integer within an inclusive range.
    IntRange {
        /// Minimum allowed value.
        min: i64,
        /// Maximum allowed value.
        max: i64,
    },
    /// Float within an inclusive range.
    FloatRange {
        /// Minimum allowed value.
        min: f64,
        /// Maximum allowed value.
        max: f64,
    },
    /// Value must belong to a fixed domain (case-insensitive comparison).
    OneOf(Vec<String>),
    /// Value must be non-empty.
    NonEmpty,
}

impl PatternKind {
    /// Checks whether a value conforms to the pattern. Missing values never
    /// conform (except for `NonEmpty`, which they also fail).
    pub fn matches(&self, value: &str) -> bool {
        let v = value.trim();
        match self {
            PatternKind::NonEmpty => !zeroed_table::value::is_missing(v),
            PatternKind::Time12H => matches_time12h(v),
            PatternKind::IsoDate => matches_iso_date(v),
            PatternKind::ZipCode => v.len() == 5 && v.chars().all(|c| c.is_ascii_digit()),
            PatternKind::Phone => matches_phone(v),
            PatternKind::Issn => matches_issn(v),
            PatternKind::FlightNumber => matches_flight(v),
            PatternKind::IntRange { min, max } => v
                .parse::<i64>()
                .map(|x| x >= *min && x <= *max)
                .unwrap_or(false),
            PatternKind::FloatRange { min, max } => zeroed_table::value::parse_numeric(v)
                .map(|x| x >= *min && x <= *max)
                .unwrap_or(false),
            PatternKind::OneOf(domain) => {
                let lower = v.to_ascii_lowercase();
                domain.iter().any(|d| d.to_ascii_lowercase() == lower)
            }
        }
    }
}

fn matches_time12h(v: &str) -> bool {
    // "H:MM am" or "HH:MM pm"
    let lower = v.to_ascii_lowercase();
    let Some((time, ampm)) = lower.rsplit_once(' ') else {
        return false;
    };
    if ampm != "am" && ampm != "pm" {
        return false;
    }
    let Some((h, m)) = time.split_once(':') else {
        return false;
    };
    let Ok(h) = h.parse::<u32>() else { return false };
    let Ok(m) = m.parse::<u32>() else { return false };
    m.to_string().len() <= 2 && (1..=12).contains(&h) && m < 60
}

fn matches_iso_date(v: &str) -> bool {
    let parts: Vec<&str> = v.split('-').collect();
    if parts.len() != 3 {
        return false;
    }
    let (y, m, d) = (parts[0], parts[1], parts[2]);
    if y.len() != 4 || m.len() != 2 || d.len() != 2 {
        return false;
    }
    let (Ok(_), Ok(m), Ok(d)) = (y.parse::<u32>(), m.parse::<u32>(), d.parse::<u32>()) else {
        return false;
    };
    (1..=12).contains(&m) && (1..=31).contains(&d)
}

fn matches_phone(v: &str) -> bool {
    // "(ddd) ddd-dddd"
    let bytes: Vec<char> = v.chars().collect();
    if bytes.len() != 14 {
        return false;
    }
    let digits_at = |idx: std::ops::Range<usize>| bytes[idx].iter().all(|c| c.is_ascii_digit());
    bytes[0] == '('
        && digits_at(1..4)
        && bytes[4] == ')'
        && bytes[5] == ' '
        && digits_at(6..9)
        && bytes[9] == '-'
        && digits_at(10..14)
}

fn matches_issn(v: &str) -> bool {
    let Some((a, b)) = v.split_once('-') else {
        return false;
    };
    a.len() == 4
        && b.len() == 4
        && a.chars().all(|c| c.is_ascii_digit())
        && b.chars().take(3).all(|c| c.is_ascii_digit())
        && b.chars()
            .nth(3)
            .map(|c| c.is_ascii_digit() || c == 'X')
            .unwrap_or(false)
}

fn matches_flight(v: &str) -> bool {
    let Some((code, num)) = v.split_once('-') else {
        return false;
    };
    code.len() == 2
        && code.chars().all(|c| c.is_ascii_alphanumeric() && !c.is_ascii_lowercase())
        && !num.is_empty()
        && num.len() <= 4
        && num.chars().all(|c| c.is_ascii_digit())
}

/// A format constraint attached to one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnPattern {
    /// Column name the pattern applies to.
    pub column: String,
    /// The pattern itself.
    pub kind: PatternKind,
}

impl ColumnPattern {
    /// Convenience constructor.
    pub fn new(column: impl Into<String>, kind: PatternKind) -> Self {
        Self {
            column: column.into(),
            kind,
        }
    }
}

/// One knowledge-base relation for the KATARA baseline: the set of valid
/// values of a column (optionally keyed by another column's value).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeBaseEntry {
    /// Column whose values the KB constrains.
    pub column: String,
    /// Valid standalone values (lower-cased).
    pub valid_values: HashSet<String>,
    /// Optional relational knowledge: `(context_column, context_value) → valid
    /// values` (e.g. country → capital). Keys and values are lower-cased.
    pub conditioned_on: Option<(String, HashMap<String, String>)>,
}

impl KnowledgeBaseEntry {
    /// KB entry with a plain domain of valid values.
    pub fn domain(column: impl Into<String>, values: impl IntoIterator<Item = String>) -> Self {
        Self {
            column: column.into(),
            valid_values: values.into_iter().map(|v| v.to_lowercase()).collect(),
            conditioned_on: None,
        }
    }
}

/// Everything the criteria-based baselines know about a dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DatasetMetadata {
    /// Functional dependencies that hold on the clean data.
    pub fds: Vec<FunctionalDependency>,
    /// Format/domain constraints per column.
    pub patterns: Vec<ColumnPattern>,
    /// Knowledge-base relations (KATARA).
    pub kb: Vec<KnowledgeBaseEntry>,
    /// Names of columns that are numeric measurements (dBoost outlier checks).
    pub numeric_columns: Vec<String>,
    /// Names of columns holding free text (generators use this to skip outlier
    /// injection where it would be meaningless).
    pub text_columns: Vec<String>,
}

impl DatasetMetadata {
    /// Returns the pattern attached to `column`, if any.
    pub fn pattern_for(&self, column: &str) -> Option<&PatternKind> {
        self.patterns
            .iter()
            .find(|p| p.column == column)
            .map(|p| &p.kind)
    }

    /// Returns all FDs whose dependent side is `column`.
    pub fn fds_determining(&self, column: &str) -> Vec<&FunctionalDependency> {
        self.fds.iter().filter(|fd| fd.dependent == column).collect()
    }

    /// Returns `true` when the column participates in at least one FD (either
    /// side).
    pub fn in_fd(&self, column: &str) -> bool {
        self.fds
            .iter()
            .any(|fd| fd.determinant == column || fd.dependent == column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_pattern() {
        let p = PatternKind::Time12H;
        assert!(p.matches("7:45 am"));
        assert!(p.matches("11:05 PM"));
        assert!(!p.matches("13:45 pm"));
        assert!(!p.matches("7:75 am"));
        assert!(!p.matches("745 am"));
        assert!(!p.matches("7:45"));
        assert!(!p.matches(""));
    }

    #[test]
    fn date_zip_phone_issn_flight() {
        assert!(PatternKind::IsoDate.matches("2015-04-30"));
        assert!(!PatternKind::IsoDate.matches("2015-13-30"));
        assert!(!PatternKind::IsoDate.matches("30/04/2015"));
        assert!(PatternKind::ZipCode.matches("35233"));
        assert!(!PatternKind::ZipCode.matches("3523"));
        assert!(!PatternKind::ZipCode.matches("3523a"));
        assert!(PatternKind::Phone.matches("(205) 325-8100"));
        assert!(!PatternKind::Phone.matches("205-325-8100"));
        assert!(PatternKind::Issn.matches("1234-567X"));
        assert!(PatternKind::Issn.matches("0140-6736"));
        assert!(!PatternKind::Issn.matches("01406736"));
        assert!(PatternKind::FlightNumber.matches("AA-1234"));
        assert!(PatternKind::FlightNumber.matches("B6-98"));
        assert!(!PatternKind::FlightNumber.matches("AAA-1234"));
        assert!(!PatternKind::FlightNumber.matches("AA1234"));
    }

    #[test]
    fn ranges_and_domains() {
        assert!(PatternKind::IntRange { min: 0, max: 10 }.matches("7"));
        assert!(!PatternKind::IntRange { min: 0, max: 10 }.matches("11"));
        assert!(!PatternKind::IntRange { min: 0, max: 10 }.matches("7.5"));
        assert!(PatternKind::FloatRange { min: 0.0, max: 1.0 }.matches("0.35"));
        assert!(!PatternKind::FloatRange { min: 0.0, max: 1.0 }.matches("-2"));
        let dom = PatternKind::OneOf(vec!["M".into(), "F".into()]);
        assert!(dom.matches("m"));
        assert!(!dom.matches("X"));
        assert!(PatternKind::NonEmpty.matches("x"));
        assert!(!PatternKind::NonEmpty.matches("NULL"));
    }

    #[test]
    fn metadata_lookups() {
        let meta = DatasetMetadata {
            fds: vec![
                FunctionalDependency::new("zip", "city"),
                FunctionalDependency::new("zip", "state"),
            ],
            patterns: vec![ColumnPattern::new("zip", PatternKind::ZipCode)],
            kb: vec![KnowledgeBaseEntry::domain(
                "state",
                ["AL".to_string(), "CA".to_string()],
            )],
            numeric_columns: vec!["salary".into()],
            text_columns: vec!["name".into()],
        };
        assert!(meta.pattern_for("zip").is_some());
        assert!(meta.pattern_for("city").is_none());
        assert_eq!(meta.fds_determining("city").len(), 1);
        assert!(meta.in_fd("zip"));
        assert!(!meta.in_fd("salary"));
        assert!(meta.kb[0].valid_values.contains("al"));
    }
}
