//! The Beers benchmark: craft beers and the breweries that make them.
//!
//! Schema (11 attributes): beer id, beer name, style, ounces, ABV, IBU,
//! brewery id, brewery name, city, state, serving. Functional dependencies:
//! `brewery_id → brewery_name, city, state` and `city → state`.

use super::skewed_index;
use crate::metadata::{
    ColumnPattern, DatasetMetadata, FunctionalDependency, KnowledgeBaseEntry, PatternKind,
};
use crate::vocab;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use zeroed_table::Table;

/// Column names of the generated Beers table.
pub const COLUMNS: [&str; 11] = [
    "id",
    "beer_name",
    "style",
    "ounces",
    "abv",
    "ibu",
    "brewery_id",
    "brewery_name",
    "city",
    "state",
    "serving",
];

struct Brewery {
    id: String,
    name: String,
    city: String,
    state: String,
}

/// Generates a clean Beers table with `n_rows` tuples.
pub fn clean(n_rows: usize, rng: &mut ChaCha8Rng) -> (Table, DatasetMetadata) {
    let n_breweries = (n_rows / 10).clamp(5, 80);
    let breweries: Vec<Brewery> = (0..n_breweries)
        .map(|i| {
            let city_idx = rng.gen_range(0..vocab::CITIES.len());
            Brewery {
                id: format!("{}", 100 + i),
                // Index-based composition keeps brewery names unique so that
                // the FD brewery_name -> city holds on clean data.
                name: format!(
                    "{} {} brewing company",
                    vocab::pick(vocab::BREWERY_WORDS, i),
                    vocab::pick(vocab::BEER_NOUNS, i / vocab::BREWERY_WORDS.len())
                ),
                city: vocab::CITIES[city_idx].to_string(),
                state: vocab::STATES_FOR_CITIES[city_idx].to_string(),
            }
        })
        .collect();

    let mut rows = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let b = &breweries[skewed_index(rng, breweries.len())];
        let style = vocab::BEER_STYLES[rng.gen_range(0..vocab::BEER_STYLES.len())];
        let abv = 3.5 + rng.gen_range(0..80) as f64 * 0.1;
        let ibu = 10 + rng.gen_range(0..110);
        let ounces = [12.0, 16.0, 19.2, 24.0][rng.gen_range(0..4)];
        rows.push(vec![
            format!("{}", 1000 + i),
            format!(
                "{} {}",
                vocab::pick(vocab::BEER_WORDS, rng.gen_range(0..vocab::BEER_WORDS.len())),
                vocab::pick(vocab::BEER_NOUNS, rng.gen_range(0..vocab::BEER_NOUNS.len()))
            ),
            style.to_string(),
            format!("{ounces:.1}"),
            format!("{abv:.1}"),
            format!("{ibu}"),
            b.id.clone(),
            b.name.clone(),
            b.city.clone(),
            b.state.clone(),
            if ounces <= 12.0 { "can" } else { "bottle" }.to_string(),
        ]);
    }

    let table = Table::new(
        "Beers",
        COLUMNS.iter().map(|s| s.to_string()).collect(),
        rows,
    )
    .expect("generated rows match the schema");

    let metadata = DatasetMetadata {
        fds: vec![
            FunctionalDependency::new("brewery_id", "brewery_name"),
            FunctionalDependency::new("brewery_id", "city"),
            FunctionalDependency::new("brewery_id", "state"),
            FunctionalDependency::new("brewery_name", "city"),
            FunctionalDependency::new("city", "state"),
        ],
        patterns: vec![
            ColumnPattern::new("abv", PatternKind::FloatRange { min: 0.0, max: 15.0 }),
            ColumnPattern::new("ibu", PatternKind::IntRange { min: 0, max: 150 }),
            ColumnPattern::new("ounces", PatternKind::FloatRange { min: 8.0, max: 32.0 }),
            ColumnPattern::new("id", PatternKind::IntRange { min: 0, max: 1_000_000 }),
            ColumnPattern::new("brewery_id", PatternKind::IntRange { min: 0, max: 10_000 }),
            ColumnPattern::new(
                "style",
                PatternKind::OneOf(vocab::BEER_STYLES.iter().map(|s| s.to_string()).collect()),
            ),
            ColumnPattern::new(
                "serving",
                PatternKind::OneOf(vec!["can".into(), "bottle".into()]),
            ),
        ],
        kb: vec![
            KnowledgeBaseEntry::domain(
                "state",
                vocab::STATES_FOR_CITIES.iter().map(|s| s.to_string()),
            ),
            KnowledgeBaseEntry::domain("city", vocab::CITIES.iter().map(|s| s.to_string())),
            KnowledgeBaseEntry::domain(
                "style",
                vocab::BEER_STYLES.iter().map(|s| s.to_string()),
            ),
        ],
        numeric_columns: vec!["abv".into(), "ibu".into(), "ounces".into()],
        text_columns: vec!["beer_name".into(), "brewery_name".into()],
    };
    (table, metadata)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::testutil::assert_fd_holds;
    use rand::SeedableRng;

    #[test]
    fn shape_and_fds() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let (table, meta) = clean(600, &mut rng);
        assert_eq!(table.n_rows(), 600);
        assert_eq!(table.n_cols(), 11);
        for fd in &meta.fds {
            assert_fd_holds(&table, &fd.determinant, &fd.dependent);
        }
    }

    #[test]
    fn numeric_columns_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let (table, meta) = clean(200, &mut rng);
        for pat in &meta.patterns {
            let col = table.column_index(&pat.column).unwrap();
            for row in table.rows() {
                assert!(pat.kind.matches(&row[col]), "{}: {:?}", pat.column, row[col]);
            }
        }
    }
}
