//! The Flights benchmark: flight departure/arrival times aggregated from
//! several websites.
//!
//! Schema (7 attributes): data source, flight number, scheduled/actual
//! departure time, scheduled/actual arrival time, gate. The key functional
//! dependencies mirror the original benchmark: a flight number determines its
//! scheduled departure and arrival time (every website should agree on the
//! schedule), while actual times vary slightly per source.

use super::{format_time_12h, skewed_index};
use crate::metadata::{
    ColumnPattern, DatasetMetadata, FunctionalDependency, KnowledgeBaseEntry, PatternKind,
};
use crate::vocab;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use zeroed_table::Table;

/// Column names of the generated Flights table.
pub const COLUMNS: [&str; 7] = [
    "src",
    "flight",
    "sched_dep_time",
    "act_dep_time",
    "sched_arr_time",
    "act_arr_time",
    "gate",
];

struct FlightEntity {
    number: String,
    sched_dep: u32,
    sched_arr: u32,
    gate: String,
}

/// Generates a clean Flights table with `n_rows` tuples.
pub fn clean(n_rows: usize, rng: &mut ChaCha8Rng) -> (Table, DatasetMetadata) {
    let n_flights = (n_rows / 8).clamp(5, 120);
    let flights: Vec<FlightEntity> = (0..n_flights)
        .map(|i| {
            let airline = vocab::AIRLINES[i % vocab::AIRLINES.len()];
            let dep = rng.gen_range(5 * 60..22 * 60);
            let duration = rng.gen_range(45..360);
            FlightEntity {
                number: format!("{airline}-{}", 100 + rng.gen_range(0..4000)),
                sched_dep: dep,
                sched_arr: (dep + duration) % (24 * 60),
                gate: format!("{}{}", [b'A', b'B', b'C', b'D'][i % 4] as char, 1 + i % 40),
            }
        })
        .collect();

    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let f = &flights[skewed_index(rng, flights.len())];
        let src = vocab::FLIGHT_SOURCES[rng.gen_range(0..vocab::FLIGHT_SOURCES.len())];
        // Actual times: the flight's schedule plus a delay that is a pure
        // function of the flight (so the table stays consistent/clean).
        let delay = (f.sched_dep % 7) * 5;
        let act_dep = f.sched_dep + delay;
        let act_arr = f.sched_arr + delay;
        rows.push(vec![
            src.to_string(),
            f.number.clone(),
            format_time_12h(f.sched_dep),
            format_time_12h(act_dep),
            format_time_12h(f.sched_arr),
            format_time_12h(act_arr),
            f.gate.clone(),
        ]);
    }

    let table = Table::new(
        "Flights",
        COLUMNS.iter().map(|s| s.to_string()).collect(),
        rows,
    )
    .expect("generated rows match the schema");

    let metadata = DatasetMetadata {
        fds: vec![
            FunctionalDependency::new("flight", "sched_dep_time"),
            FunctionalDependency::new("flight", "sched_arr_time"),
            FunctionalDependency::new("flight", "act_dep_time"),
            FunctionalDependency::new("flight", "act_arr_time"),
            FunctionalDependency::new("flight", "gate"),
        ],
        patterns: vec![
            ColumnPattern::new("flight", PatternKind::FlightNumber),
            ColumnPattern::new("sched_dep_time", PatternKind::Time12H),
            ColumnPattern::new("act_dep_time", PatternKind::Time12H),
            ColumnPattern::new("sched_arr_time", PatternKind::Time12H),
            ColumnPattern::new("act_arr_time", PatternKind::Time12H),
            ColumnPattern::new(
                "src",
                PatternKind::OneOf(vocab::FLIGHT_SOURCES.iter().map(|s| s.to_string()).collect()),
            ),
        ],
        kb: vec![KnowledgeBaseEntry::domain(
            "src",
            vocab::FLIGHT_SOURCES.iter().map(|s| s.to_string()),
        )],
        numeric_columns: vec![],
        text_columns: vec!["gate".into()],
    };
    (table, metadata)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::testutil::assert_fd_holds;
    use rand::SeedableRng;

    #[test]
    fn shape_fds_and_patterns() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (table, meta) = clean(500, &mut rng);
        assert_eq!(table.n_rows(), 500);
        assert_eq!(table.n_cols(), 7);
        for fd in &meta.fds {
            assert_fd_holds(&table, &fd.determinant, &fd.dependent);
        }
        for pat in &meta.patterns {
            let col = table.column_index(&pat.column).unwrap();
            for row in table.rows() {
                assert!(pat.kind.matches(&row[col]), "{} -> {:?}", pat.column, row[col]);
            }
        }
    }

    #[test]
    fn times_are_valid_12h_format() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (table, _) = clean(100, &mut rng);
        let col = table.column_index("sched_dep_time").unwrap();
        for row in table.rows() {
            assert!(PatternKind::Time12H.matches(&row[col]));
        }
    }
}
