//! The Hospital benchmark: US hospital quality measures.
//!
//! Schema (20 attributes, as in the original Hospital benchmark): provider
//! number, hospital identity (name, address, city, state, zip, county, phone),
//! facility descriptors, and quality-measure fields (condition, measure code,
//! measure name, score, sample, state average). Hospitals and measures are
//! entity pools, so several functional dependencies hold exactly:
//!
//! * `HospitalName → Address, City, State, ZipCode, CountyName, PhoneNumber`
//! * `MeasureCode → MeasureName, Condition`
//! * `City → State`
//! * `State, MeasureCode → StateAvg`

use super::skewed_index;
use crate::metadata::{
    ColumnPattern, DatasetMetadata, FunctionalDependency, KnowledgeBaseEntry, PatternKind,
};
use crate::vocab;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use zeroed_table::Table;

struct HospitalEntity {
    provider_number: String,
    name: String,
    address: String,
    city: String,
    state: String,
    zip: String,
    county: String,
    phone: String,
    hospital_type: String,
    owner: String,
    emergency: String,
}

struct MeasureEntity {
    code: String,
    name: String,
    condition: String,
}

/// Column names of the generated Hospital table.
pub const COLUMNS: [&str; 20] = [
    "ProviderNumber",
    "HospitalName",
    "Address1",
    "City",
    "State",
    "ZipCode",
    "CountyName",
    "PhoneNumber",
    "HospitalType",
    "HospitalOwner",
    "EmergencyService",
    "Condition",
    "MeasureCode",
    "MeasureName",
    "Score",
    "Sample",
    "StateAvg",
    "Stateavg2",
    "CertifiedBeds",
    "SurveyDate",
];

/// Generates a clean Hospital table with `n_rows` tuples.
pub fn clean(n_rows: usize, rng: &mut ChaCha8Rng) -> (Table, DatasetMetadata) {
    let n_hospitals = (n_rows / 12).clamp(6, 60);
    let hospitals: Vec<HospitalEntity> = (0..n_hospitals)
        .map(|i| {
            let city_idx = rng.gen_range(0..vocab::CITIES.len());
            let city = vocab::CITIES[city_idx];
            let state = vocab::STATES_FOR_CITIES[city_idx];
            let last = vocab::pick(vocab::LAST_NAMES, rng.gen_range(0..vocab::LAST_NAMES.len()));
            HospitalEntity {
                provider_number: format!("{:05}", 10000 + i * 7),
                name: format!("{last} {} medical center", city.to_lowercase()),
                address: format!(
                    "{} {}",
                    100 + rng.gen_range(0..900),
                    vocab::pick(vocab::STREETS, rng.gen_range(0..vocab::STREETS.len()))
                        .to_lowercase()
                ),
                city: city.to_lowercase(),
                state: state.to_lowercase(),
                zip: format!("{:05}", 10000 + city_idx * 137 + 11),
                county: format!("{} county", last.to_lowercase()),
                phone: format!(
                    "({:03}) {:03}-{:04}",
                    200 + city_idx,
                    300 + rng.gen_range(0..600),
                    1000 + rng.gen_range(0..9000)
                ),
                hospital_type: vocab::HOSPITAL_TYPES[rng.gen_range(0..vocab::HOSPITAL_TYPES.len())]
                    .to_string(),
                owner: vocab::HOSPITAL_OWNERS[rng.gen_range(0..vocab::HOSPITAL_OWNERS.len())]
                    .to_string(),
                emergency: if rng.gen_bool(0.8) { "yes" } else { "no" }.to_string(),
            }
        })
        .collect();

    let measures: Vec<MeasureEntity> = vocab::MEASURE_NAMES
        .iter()
        .enumerate()
        .map(|(i, (prefix, name))| {
            let condition = vocab::CONDITIONS
                .iter()
                .find(|(_, p)| p == prefix)
                .map(|(c, _)| *c)
                .unwrap_or("pneumonia");
            MeasureEntity {
                code: format!("{}-card-{}", prefix.to_lowercase(), i + 1),
                name: name.to_string(),
                condition: condition.to_string(),
            }
        })
        .collect();

    // Fixed per (state, measure) average so the FD State,MeasureCode → StateAvg holds.
    let state_avg = |state: &str, code: &str| -> String {
        let h = state
            .bytes()
            .chain(code.bytes())
            .fold(0u32, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u32));
        format!("{}%", 60 + (h % 40))
    };

    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let h = &hospitals[skewed_index(rng, hospitals.len())];
        let m = &measures[rng.gen_range(0..measures.len())];
        let score = format!("{}%", 55 + rng.gen_range(0..45));
        let sample = format!("{} patients", 10 + rng.gen_range(0..400));
        let avg = state_avg(&h.state, &m.code);
        rows.push(vec![
            h.provider_number.clone(),
            h.name.clone(),
            h.address.clone(),
            h.city.clone(),
            h.state.clone(),
            h.zip.clone(),
            h.county.clone(),
            h.phone.clone(),
            h.hospital_type.clone(),
            h.owner.clone(),
            h.emergency.clone(),
            m.condition.clone(),
            m.code.clone(),
            m.name.clone(),
            score,
            sample,
            avg.clone(),
            avg,
            format!("{}", 50 + rng.gen_range(0..500)),
            super::format_iso_date(2011, 1 + rng.gen_range(0..12), 1 + rng.gen_range(0..28)),
        ]);
    }

    let table = Table::new(
        "Hospital",
        COLUMNS.iter().map(|s| s.to_string()).collect(),
        rows,
    )
    .expect("generated rows match the schema");

    let metadata = DatasetMetadata {
        fds: vec![
            FunctionalDependency::new("HospitalName", "Address1"),
            FunctionalDependency::new("HospitalName", "City"),
            FunctionalDependency::new("HospitalName", "State"),
            FunctionalDependency::new("HospitalName", "ZipCode"),
            FunctionalDependency::new("HospitalName", "CountyName"),
            FunctionalDependency::new("HospitalName", "PhoneNumber"),
            FunctionalDependency::new("MeasureCode", "MeasureName"),
            FunctionalDependency::new("MeasureCode", "Condition"),
            FunctionalDependency::new("City", "State"),
            FunctionalDependency::new("ZipCode", "City"),
        ],
        patterns: vec![
            ColumnPattern::new("ZipCode", PatternKind::ZipCode),
            ColumnPattern::new("PhoneNumber", PatternKind::Phone),
            ColumnPattern::new("ProviderNumber", PatternKind::IntRange { min: 10000, max: 99999 }),
            ColumnPattern::new("SurveyDate", PatternKind::IsoDate),
            ColumnPattern::new(
                "EmergencyService",
                PatternKind::OneOf(vec!["yes".into(), "no".into()]),
            ),
            ColumnPattern::new(
                "HospitalType",
                PatternKind::OneOf(vocab::HOSPITAL_TYPES.iter().map(|s| s.to_string()).collect()),
            ),
            ColumnPattern::new("CertifiedBeds", PatternKind::IntRange { min: 1, max: 2000 }),
        ],
        kb: vec![
            KnowledgeBaseEntry::domain(
                "State",
                vocab::STATES_FOR_CITIES.iter().map(|s| s.to_lowercase()),
            ),
            KnowledgeBaseEntry::domain(
                "City",
                vocab::CITIES.iter().map(|s| s.to_lowercase()),
            ),
            KnowledgeBaseEntry::domain(
                "Condition",
                vocab::CONDITIONS.iter().map(|(c, _)| c.to_string()),
            ),
        ],
        numeric_columns: vec!["CertifiedBeds".into(), "ProviderNumber".into()],
        text_columns: vec!["HospitalName".into(), "MeasureName".into(), "Address1".into()],
    };
    (table, metadata)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::testutil::assert_fd_holds;
    use rand::SeedableRng;

    #[test]
    fn generates_expected_shape_and_fds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (table, meta) = clean(400, &mut rng);
        assert_eq!(table.n_rows(), 400);
        assert_eq!(table.n_cols(), 20);
        for fd in &meta.fds {
            assert_fd_holds(&table, &fd.determinant, &fd.dependent);
        }
    }

    #[test]
    fn clean_values_match_patterns() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (table, meta) = clean(200, &mut rng);
        for pat in &meta.patterns {
            let col = table.column_index(&pat.column).unwrap();
            for row in table.rows() {
                assert!(
                    pat.kind.matches(&row[col]),
                    "value {:?} violates pattern of {}",
                    row[col],
                    pat.column
                );
            }
        }
    }

    #[test]
    fn hospitals_repeat_for_frequency_signal() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (table, _) = clean(300, &mut rng);
        let names = table.column_values(1).unwrap();
        let distinct: std::collections::HashSet<_> = names.iter().collect();
        assert!(distinct.len() < 80, "hospital entities should repeat");
    }
}
