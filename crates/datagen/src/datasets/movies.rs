//! The Movies benchmark (Magellan movies metadata).
//!
//! Schema (17 attributes): title, year, director, creators, cast, genre,
//! duration, content rating, language, country, release date, description and
//! ratings. Functional dependencies: `title → director, year, language,
//! country` (each movie entity appears on several aggregator rows).

use super::{format_iso_date, skewed_index};
use crate::metadata::{
    ColumnPattern, DatasetMetadata, FunctionalDependency, KnowledgeBaseEntry, PatternKind,
};
use crate::vocab;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use zeroed_table::Table;

/// Column names of the generated Movies table.
pub const COLUMNS: [&str; 17] = [
    "id",
    "title",
    "year",
    "director",
    "creator",
    "cast",
    "genre",
    "duration_minutes",
    "content_rating",
    "language",
    "country",
    "release_date",
    "description",
    "imdb_rating",
    "metascore",
    "votes",
    "source_site",
];

struct Movie {
    title: String,
    year: u32,
    director: String,
    creator: String,
    genre: String,
    language: String,
    country: String,
    duration: u32,
    rating: String,
}

/// Generates a clean Movies table with `n_rows` tuples.
pub fn clean(n_rows: usize, rng: &mut ChaCha8Rng) -> (Table, DatasetMetadata) {
    let n_movies = (n_rows / 5).clamp(10, 400);
    let movies: Vec<Movie> = (0..n_movies)
        .map(|i| {
            let country_idx = rng.gen_range(0..vocab::COUNTRIES.len());
            Movie {
                title: format!(
                    "{} {} {}",
                    vocab::pick(vocab::MOVIE_WORDS, rng.gen_range(0..vocab::MOVIE_WORDS.len())),
                    vocab::pick(vocab::MOVIE_NOUNS, rng.gen_range(0..vocab::MOVIE_NOUNS.len())),
                    i
                ),
                year: 1960 + rng.gen_range(0..64),
                director: format!(
                    "{} {}",
                    vocab::pick(vocab::FIRST_NAMES, rng.gen_range(0..vocab::FIRST_NAMES.len())),
                    vocab::pick(vocab::LAST_NAMES, rng.gen_range(0..vocab::LAST_NAMES.len()))
                ),
                creator: format!(
                    "{} {}",
                    vocab::pick(vocab::FIRST_NAMES, rng.gen_range(0..vocab::FIRST_NAMES.len())),
                    vocab::pick(vocab::LAST_NAMES, rng.gen_range(0..vocab::LAST_NAMES.len()))
                ),
                genre: vocab::GENRES[rng.gen_range(0..vocab::GENRES.len())].to_string(),
                language: ["English", "French", "Spanish", "Mandarin", "Hindi", "Japanese"]
                    [rng.gen_range(0..6)]
                .to_string(),
                country: vocab::COUNTRIES[country_idx].to_string(),
                duration: 70 + rng.gen_range(0..120),
                rating: vocab::RATINGS[rng.gen_range(0..vocab::RATINGS.len())].to_string(),
            }
        })
        .collect();

    let mut rows = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let m = &movies[skewed_index(rng, movies.len())];
        let n_cast = 2 + rng.gen_range(0..3);
        let cast: Vec<String> = (0..n_cast)
            .map(|_| {
                format!(
                    "{} {}",
                    vocab::pick(vocab::FIRST_NAMES, rng.gen_range(0..vocab::FIRST_NAMES.len())),
                    vocab::pick(vocab::LAST_NAMES, rng.gen_range(0..vocab::LAST_NAMES.len()))
                )
            })
            .collect();
        rows.push(vec![
            format!("m{:06}", i),
            m.title.clone(),
            format!("{}", m.year),
            m.director.clone(),
            m.creator.clone(),
            cast.join(", "),
            m.genre.clone(),
            format!("{}", m.duration),
            m.rating.clone(),
            m.language.clone(),
            m.country.clone(),
            format_iso_date(m.year, 1 + rng.gen_range(0..12), 1 + rng.gen_range(0..28)),
            format!(
                "a {} story about the {} of {}",
                m.genre.to_lowercase(),
                vocab::pick(vocab::MOVIE_NOUNS, rng.gen_range(0..vocab::MOVIE_NOUNS.len()))
                    .to_lowercase(),
                vocab::pick(vocab::MOVIE_WORDS, rng.gen_range(0..vocab::MOVIE_WORDS.len()))
                    .to_lowercase()
            ),
            format!("{:.1}", 3.0 + rng.gen_range(0..70) as f64 * 0.1),
            format!("{}", 20 + rng.gen_range(0..80)),
            format!("{}", 100 + rng.gen_range(0..500_000)),
            if rng.gen_bool(0.5) { "imdb" } else { "rottentomatoes" }.to_string(),
        ]);
    }

    let table = Table::new(
        "Movies",
        COLUMNS.iter().map(|s| s.to_string()).collect(),
        rows,
    )
    .expect("generated rows match the schema");

    let metadata = DatasetMetadata {
        fds: vec![
            FunctionalDependency::new("title", "director"),
            FunctionalDependency::new("title", "year"),
            FunctionalDependency::new("title", "language"),
            FunctionalDependency::new("title", "country"),
            FunctionalDependency::new("title", "genre"),
            FunctionalDependency::new("title", "content_rating"),
        ],
        patterns: vec![
            ColumnPattern::new("year", PatternKind::IntRange { min: 1900, max: 2030 }),
            ColumnPattern::new("duration_minutes", PatternKind::IntRange { min: 30, max: 300 }),
            ColumnPattern::new("imdb_rating", PatternKind::FloatRange { min: 0.0, max: 10.0 }),
            ColumnPattern::new("metascore", PatternKind::IntRange { min: 0, max: 100 }),
            ColumnPattern::new("release_date", PatternKind::IsoDate),
            ColumnPattern::new(
                "content_rating",
                PatternKind::OneOf(vocab::RATINGS.iter().map(|s| s.to_string()).collect()),
            ),
            ColumnPattern::new(
                "genre",
                PatternKind::OneOf(vocab::GENRES.iter().map(|s| s.to_string()).collect()),
            ),
        ],
        kb: vec![
            KnowledgeBaseEntry::domain("genre", vocab::GENRES.iter().map(|s| s.to_string())),
            KnowledgeBaseEntry::domain(
                "content_rating",
                vocab::RATINGS.iter().map(|s| s.to_string()),
            ),
            KnowledgeBaseEntry::domain(
                "country",
                vocab::COUNTRIES.iter().map(|s| s.to_string()),
            ),
        ],
        numeric_columns: vec![
            "duration_minutes".into(),
            "imdb_rating".into(),
            "metascore".into(),
            "votes".into(),
        ],
        text_columns: vec![
            "title".into(),
            "description".into(),
            "cast".into(),
            "director".into(),
        ],
    };
    (table, metadata)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::testutil::assert_fd_holds;
    use rand::SeedableRng;

    #[test]
    fn shape_and_fds() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let (table, meta) = clean(700, &mut rng);
        assert_eq!(table.n_rows(), 700);
        assert_eq!(table.n_cols(), 17);
        for fd in &meta.fds {
            assert_fd_holds(&table, &fd.determinant, &fd.dependent);
        }
    }

    #[test]
    fn patterns_hold() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let (table, meta) = clean(250, &mut rng);
        for pat in &meta.patterns {
            let col = table.column_index(&pat.column).unwrap();
            for row in table.rows() {
                assert!(pat.kind.matches(&row[col]), "{}: {:?}", pat.column, row[col]);
            }
        }
    }
}
