//! The Billionaire benchmark (CORGIS billionaires list) with synthetic errors.
//!
//! Schema (22 attributes): person identity (name, age, gender, citizenship),
//! wealth fields (rank, net worth, source, industry, company facts) and
//! location fields (country, region, capital). Functional dependencies:
//! `name → gender, citizenship`, `country → region, capital`,
//! `company_name → industry, company_founded`.

use super::skewed_index;
use crate::metadata::{
    ColumnPattern, DatasetMetadata, FunctionalDependency, KnowledgeBaseEntry, PatternKind,
};
use crate::vocab;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use zeroed_table::Table;

/// Column names of the generated Billionaire table.
pub const COLUMNS: [&str; 22] = [
    "name",
    "rank",
    "year",
    "company_name",
    "company_founded",
    "company_relationship",
    "industry",
    "country",
    "region",
    "capital",
    "citizenship",
    "networth_billions",
    "source",
    "age",
    "gender",
    "was_founder",
    "inherited",
    "wealth_type",
    "gdp",
    "sector",
    "selfmade_score",
    "decade",
];

struct Person {
    name: String,
    gender: String,
    citizenship: String,
    age_base: u32,
}

struct Company {
    name: String,
    industry: String,
    founded: u32,
}

/// Generates a clean Billionaire table with `n_rows` tuples.
pub fn clean(n_rows: usize, rng: &mut ChaCha8Rng) -> (Table, DatasetMetadata) {
    let n_people = (n_rows / 4).clamp(10, 200);
    let people: Vec<Person> = (0..n_people)
        .map(|i| {
            let first = vocab::pick(vocab::FIRST_NAMES, rng.gen_range(0..vocab::FIRST_NAMES.len()));
            let last = vocab::pick(vocab::LAST_NAMES, rng.gen_range(0..vocab::LAST_NAMES.len()));
            let country_idx = rng.gen_range(0..vocab::COUNTRIES.len());
            Person {
                name: format!("{first} {last} {}", i),
                gender: if i % 5 == 0 { "female" } else { "male" }.to_string(),
                citizenship: vocab::COUNTRIES[country_idx].to_string(),
                age_base: 35 + rng.gen_range(0..55),
            }
        })
        .collect();
    let n_companies = (n_people / 2).max(8);
    let companies: Vec<Company> = (0..n_companies)
        .map(|i| Company {
            // Index-based composition keeps company names unique so that the
            // FD company_name -> industry holds on clean data.
            name: format!(
                "{} {} group",
                vocab::pick(vocab::BREWERY_WORDS, i),
                vocab::pick(vocab::MOVIE_NOUNS, i / vocab::BREWERY_WORDS.len())
            ),
            industry: vocab::INDUSTRIES[rng.gen_range(0..vocab::INDUSTRIES.len())].to_string(),
            founded: 1900 + rng.gen_range(0..120),
        })
        .collect();

    let mut rows = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let p = &people[skewed_index(rng, people.len())];
        let c = &companies[rng.gen_range(0..companies.len())];
        let country_idx = vocab::COUNTRIES
            .iter()
            .position(|x| *x == p.citizenship)
            .unwrap_or(0);
        let year = 2001 + (i % 14) as u32;
        let networth = 1.0 + rng.gen_range(0..800) as f64 * 0.1;
        rows.push(vec![
            p.name.clone(),
            format!("{}", 1 + rng.gen_range(0..500)),
            format!("{year}"),
            c.name.clone(),
            format!("{}", c.founded),
            if rng.gen_bool(0.5) { "founder" } else { "relation" }.to_string(),
            c.industry.clone(),
            p.citizenship.clone(),
            vocab::REGIONS_FOR_COUNTRIES[country_idx].to_string(),
            vocab::CAPITALS_FOR_COUNTRIES[country_idx].to_string(),
            p.citizenship.clone(),
            format!("{networth:.1}"),
            c.industry.to_lowercase(),
            format!("{}", p.age_base + (year - 2001)),
            p.gender.clone(),
            if rng.gen_bool(0.6) { "true" } else { "false" }.to_string(),
            if rng.gen_bool(0.3) { "inherited" } else { "not inherited" }.to_string(),
            if rng.gen_bool(0.5) { "self-made finance" } else { "founder non-finance" }.to_string(),
            format!("{}", 100 + rng.gen_range(0..20000)),
            c.industry.clone(),
            format!("{}", 1 + rng.gen_range(0..10)),
            format!("{}", (year / 10) * 10),
        ]);
    }

    let table = Table::new(
        "Billionaire",
        COLUMNS.iter().map(|s| s.to_string()).collect(),
        rows,
    )
    .expect("generated rows match the schema");

    let metadata = DatasetMetadata {
        fds: vec![
            FunctionalDependency::new("name", "gender"),
            FunctionalDependency::new("name", "citizenship"),
            FunctionalDependency::new("country", "region"),
            FunctionalDependency::new("country", "capital"),
            FunctionalDependency::new("company_name", "industry"),
            FunctionalDependency::new("company_name", "company_founded"),
        ],
        patterns: vec![
            ColumnPattern::new("rank", PatternKind::IntRange { min: 1, max: 2000 }),
            ColumnPattern::new("year", PatternKind::IntRange { min: 1990, max: 2030 }),
            ColumnPattern::new("age", PatternKind::IntRange { min: 18, max: 110 }),
            ColumnPattern::new(
                "networth_billions",
                PatternKind::FloatRange { min: 0.5, max: 300.0 },
            ),
            ColumnPattern::new(
                "gender",
                PatternKind::OneOf(vec!["male".into(), "female".into()]),
            ),
            ColumnPattern::new(
                "industry",
                PatternKind::OneOf(vocab::INDUSTRIES.iter().map(|s| s.to_string()).collect()),
            ),
            ColumnPattern::new(
                "country",
                PatternKind::OneOf(vocab::COUNTRIES.iter().map(|s| s.to_string()).collect()),
            ),
            ColumnPattern::new("company_founded", PatternKind::IntRange { min: 1800, max: 2025 }),
        ],
        kb: vec![
            KnowledgeBaseEntry::domain(
                "country",
                vocab::COUNTRIES.iter().map(|s| s.to_string()),
            ),
            KnowledgeBaseEntry::domain(
                "region",
                vocab::REGIONS_FOR_COUNTRIES.iter().map(|s| s.to_string()),
            ),
            KnowledgeBaseEntry::domain(
                "capital",
                vocab::CAPITALS_FOR_COUNTRIES.iter().map(|s| s.to_string()),
            ),
            KnowledgeBaseEntry::domain(
                "industry",
                vocab::INDUSTRIES.iter().map(|s| s.to_string()),
            ),
        ],
        numeric_columns: vec![
            "networth_billions".into(),
            "age".into(),
            "gdp".into(),
            "rank".into(),
        ],
        text_columns: vec!["name".into(), "company_name".into(), "source".into()],
    };
    (table, metadata)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::testutil::assert_fd_holds;
    use rand::SeedableRng;

    #[test]
    fn shape_and_fds() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let (table, meta) = clean(500, &mut rng);
        assert_eq!(table.n_rows(), 500);
        assert_eq!(table.n_cols(), 22);
        for fd in &meta.fds {
            assert_fd_holds(&table, &fd.determinant, &fd.dependent);
        }
    }

    #[test]
    fn patterns_hold_on_clean_data() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let (table, meta) = clean(300, &mut rng);
        for pat in &meta.patterns {
            let col = table.column_index(&pat.column).unwrap();
            for row in table.rows() {
                assert!(pat.kind.matches(&row[col]), "{}: {:?}", pat.column, row[col]);
            }
        }
    }
}
