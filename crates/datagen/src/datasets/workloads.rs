//! Synthetic *workload-shape* scenarios: tables built to stress specific
//! pipeline dimensions rather than to mirror a paper benchmark.
//!
//! Three named shapes (see [`crate::DatasetSpec`]):
//!
//! * **Wide** — a very wide table (30 attributes): many metric, code, date
//!   and time columns over one FD anchor. Stresses per-attribute fan-out —
//!   criteria generation, sampling and labelling all scale with the column
//!   count, so the scheduler's task queue and the response cache see an
//!   order of magnitude more distinct requests per row than the paper
//!   benchmarks produce.
//! * **HighDistinct** — columns whose values are (nearly) unique per row:
//!   identifiers, e-mail-like handles, timestamps, free-text notes, and
//!   high-precision amounts, next to one low-distinct city→state anchor.
//!   Stresses the frequency/interning fast paths and clustering, which get
//!   no duplicate signal to lean on.
//! * **MixedSchema** — batches of heterogeneous records in one table: a
//!   `kind` discriminator selects which *format* the `payload` and `tag`
//!   columns carry per row (numeric readings, clock times, or free text).
//!   Stresses pattern features and guideline generation, since no single
//!   format dominates a column.
//!
//! Like every dataset module, each generator returns *clean* data — FDs hold
//! exactly and every value matches its declared pattern — and the standard
//! [`crate::inject::Injector`] dirties it afterwards.

use super::skewed_index;
use crate::metadata::{
    ColumnPattern, DatasetMetadata, FunctionalDependency, KnowledgeBaseEntry, PatternKind,
};
use crate::vocab;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use zeroed_table::Table;

/// Code-column domains for the Wide shape, rotated per column.
const CODE_DOMAINS: [&[&str]; 3] = [
    &["alpha", "beta", "gamma", "delta"],
    &["low", "medium", "high", "critical"],
    &["north", "south", "east", "west"],
];

/// Generates the **Wide** workload: 30 attributes over one city→state anchor.
pub fn wide(n_rows: usize, rng: &mut ChaCha8Rng) -> (Table, DatasetMetadata) {
    const N_METRICS: usize = 10;
    const N_CODES: usize = 10;
    const N_DATES: usize = 4;
    const N_TIMES: usize = 3;

    let mut columns = vec!["record_id".to_string(), "city".to_string(), "state".to_string()];
    columns.extend((0..N_METRICS).map(|k| format!("metric_{k:02}")));
    columns.extend((0..N_CODES).map(|k| format!("code_{k:02}")));
    columns.extend((0..N_DATES).map(|k| format!("date_{k}")));
    columns.extend((0..N_TIMES).map(|k| format!("slot_{k}")));

    let mut rows = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let city_idx = skewed_index(rng, vocab::CITIES.len());
        let mut row = vec![
            format!("{}", 10_000 + i),
            vocab::CITIES[city_idx].to_string(),
            vocab::STATES_FOR_CITIES[city_idx].to_string(),
        ];
        for k in 0..N_METRICS {
            // Per-column offset keeps the metric distributions distinct.
            let value = (k as f64) * 10.0 + rng.gen_range(0..1_000) as f64 * 0.01;
            row.push(format!("{value:.2}"));
        }
        for k in 0..N_CODES {
            let domain = CODE_DOMAINS[k % CODE_DOMAINS.len()];
            row.push(domain[skewed_index(rng, domain.len())].to_string());
        }
        for k in 0..N_DATES {
            let year = 2018 + (k as u32) % 3;
            row.push(super::format_iso_date(
                year,
                1 + rng.gen_range(0..12),
                1 + rng.gen_range(0..28),
            ));
        }
        for _ in 0..N_TIMES {
            row.push(super::format_time_12h(rng.gen_range(0..24 * 60)));
        }
        rows.push(row);
    }

    let table = Table::new("Wide", columns.clone(), rows).expect("generated rows match the schema");

    let mut patterns = vec![ColumnPattern::new(
        "record_id",
        PatternKind::IntRange { min: 0, max: 1_000_000 },
    )];
    for k in 0..N_METRICS {
        patterns.push(ColumnPattern::new(
            format!("metric_{k:02}"),
            PatternKind::FloatRange { min: 0.0, max: 110.0 },
        ));
    }
    for k in 0..N_CODES {
        let domain = CODE_DOMAINS[k % CODE_DOMAINS.len()];
        patterns.push(ColumnPattern::new(
            format!("code_{k:02}"),
            PatternKind::OneOf(domain.iter().map(|s| s.to_string()).collect()),
        ));
    }
    for k in 0..N_DATES {
        patterns.push(ColumnPattern::new(format!("date_{k}"), PatternKind::IsoDate));
    }
    for k in 0..N_TIMES {
        patterns.push(ColumnPattern::new(format!("slot_{k}"), PatternKind::Time12H));
    }

    let metadata = DatasetMetadata {
        fds: vec![FunctionalDependency::new("city", "state")],
        patterns,
        kb: vec![
            KnowledgeBaseEntry::domain(
                "state",
                vocab::STATES_FOR_CITIES.iter().map(|s| s.to_string()),
            ),
            KnowledgeBaseEntry::domain("city", vocab::CITIES.iter().map(|s| s.to_string())),
        ],
        numeric_columns: (0..N_METRICS).map(|k| format!("metric_{k:02}")).collect(),
        text_columns: vec![],
    };
    (table, metadata)
}

/// Generates the **HighDistinct** workload: 8 attributes, most of them
/// (nearly) unique per row.
pub fn high_distinct(n_rows: usize, rng: &mut ChaCha8Rng) -> (Table, DatasetMetadata) {
    const COLUMNS: [&str; 8] = [
        "uid", "handle", "session", "created", "amount", "note", "city", "state",
    ];
    let mut rows = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let city_idx = skewed_index(rng, vocab::CITIES.len());
        let first = vocab::pick(vocab::FIRST_NAMES, rng.gen_range(0..vocab::FIRST_NAMES.len()));
        // Row-indexed composition keeps uid/handle/session unique without a
        // uniqueness bookkeeping pass.
        rows.push(vec![
            format!("U-{i:06}"),
            format!("{}.{i}@example.org", first.to_lowercase()),
            format!("{:08x}", (i as u64).wrapping_mul(0x9e37_79b9) ^ rng.gen_range(0..0x1_0000)),
            super::format_iso_date(
                2015 + (i as u32 % 10),
                1 + rng.gen_range(0..12),
                1 + rng.gen_range(0..28),
            ),
            format!("{:.2}", rng.gen_range(0..10_000_000) as f64 * 0.01),
            format!(
                "{} {} #{i}",
                vocab::pick(vocab::TOPIC_WORDS, rng.gen_range(0..vocab::TOPIC_WORDS.len())),
                vocab::pick(vocab::TOPIC_WORDS, rng.gen_range(0..vocab::TOPIC_WORDS.len())),
            ),
            vocab::CITIES[city_idx].to_string(),
            vocab::STATES_FOR_CITIES[city_idx].to_string(),
        ]);
    }
    let table = Table::new(
        "HighDistinct",
        COLUMNS.iter().map(|s| s.to_string()).collect(),
        rows,
    )
    .expect("generated rows match the schema");

    let metadata = DatasetMetadata {
        fds: vec![FunctionalDependency::new("city", "state")],
        patterns: vec![
            ColumnPattern::new("uid", PatternKind::NonEmpty),
            ColumnPattern::new("handle", PatternKind::NonEmpty),
            ColumnPattern::new("session", PatternKind::NonEmpty),
            ColumnPattern::new("created", PatternKind::IsoDate),
            ColumnPattern::new("amount", PatternKind::FloatRange { min: 0.0, max: 100_000.0 }),
            ColumnPattern::new("note", PatternKind::NonEmpty),
        ],
        kb: vec![KnowledgeBaseEntry::domain(
            "state",
            vocab::STATES_FOR_CITIES.iter().map(|s| s.to_string()),
        )],
        numeric_columns: vec!["amount".into()],
        text_columns: vec!["note".into(), "handle".into()],
    };
    (table, metadata)
}

/// Record kinds of the MixedSchema workload and the tags each kind uses.
const KINDS: [(&str, &[&str]); 3] = [
    ("measurement", &["m:raw", "m:calibrated", "m:derived"]),
    ("event", &["e:start", "e:stop", "e:checkpoint"]),
    ("note", &["n:misc", "n:review", "n:followup"]),
];

/// Generates the **MixedSchema** workload: 7 attributes where `payload` and
/// `tag` formats depend on the row's `kind`.
pub fn mixed_schema(n_rows: usize, rng: &mut ChaCha8Rng) -> (Table, DatasetMetadata) {
    const COLUMNS: [&str; 7] = ["seq", "kind", "entity", "payload", "tag", "country", "region"];
    let mut rows = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let (kind, tags) = KINDS[skewed_index(rng, KINDS.len())];
        let payload = match kind {
            "measurement" => format!("{:.3}", rng.gen_range(0..100_000) as f64 * 0.001),
            "event" => super::format_time_12h(rng.gen_range(0..24 * 60)),
            _ => format!(
                "{} {}",
                vocab::pick(vocab::TOPIC_WORDS, rng.gen_range(0..vocab::TOPIC_WORDS.len())),
                vocab::pick(vocab::TOPIC_WORDS, rng.gen_range(0..vocab::TOPIC_WORDS.len())),
            ),
        };
        let country_idx = skewed_index(rng, vocab::COUNTRIES.len());
        rows.push(vec![
            format!("{}", 1 + i),
            kind.to_string(),
            vocab::CITIES[skewed_index(rng, vocab::CITIES.len())].to_string(),
            payload,
            tags[rng.gen_range(0..tags.len())].to_string(),
            vocab::COUNTRIES[country_idx].to_string(),
            vocab::REGIONS_FOR_COUNTRIES[country_idx].to_string(),
        ]);
    }
    let table = Table::new(
        "MixedSchema",
        COLUMNS.iter().map(|s| s.to_string()).collect(),
        rows,
    )
    .expect("generated rows match the schema");

    let all_tags: Vec<String> = KINDS
        .iter()
        .flat_map(|(_, tags)| tags.iter().map(|t| t.to_string()))
        .collect();
    let metadata = DatasetMetadata {
        fds: vec![FunctionalDependency::new("country", "region")],
        patterns: vec![
            ColumnPattern::new("seq", PatternKind::IntRange { min: 0, max: 10_000_000 }),
            ColumnPattern::new(
                "kind",
                PatternKind::OneOf(KINDS.iter().map(|(k, _)| k.to_string()).collect()),
            ),
            // The payload column deliberately has *no* single format: it is
            // only required to be present.
            ColumnPattern::new("payload", PatternKind::NonEmpty),
            ColumnPattern::new("tag", PatternKind::OneOf(all_tags.clone())),
        ],
        kb: vec![
            KnowledgeBaseEntry::domain(
                "region",
                vocab::REGIONS_FOR_COUNTRIES.iter().map(|s| s.to_string()),
            ),
            KnowledgeBaseEntry::domain("tag", all_tags),
        ],
        numeric_columns: vec![],
        text_columns: vec!["payload".into(), "entity".into()],
    };
    (table, metadata)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::testutil::assert_fd_holds;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn wide_is_wide_and_clean() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (table, meta) = wide(300, &mut rng);
        assert_eq!(table.n_rows(), 300);
        assert_eq!(table.n_cols(), 30, "the point of this shape is width");
        for fd in &meta.fds {
            assert_fd_holds(&table, &fd.determinant, &fd.dependent);
        }
        for pat in &meta.patterns {
            let col = table.column_index(&pat.column).unwrap();
            for row in table.rows() {
                assert!(pat.kind.matches(&row[col]), "{}: {:?}", pat.column, row[col]);
            }
        }
    }

    #[test]
    fn high_distinct_columns_are_nearly_unique() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (table, meta) = high_distinct(500, &mut rng);
        assert_eq!(table.n_rows(), 500);
        for col_name in ["uid", "handle", "session"] {
            let col = table.column_index(col_name).unwrap();
            let distinct: HashSet<&str> =
                table.rows().iter().map(|r| r[col].as_str()).collect();
            assert_eq!(distinct.len(), 500, "{col_name} must be unique per row");
        }
        // The anchor stays low-distinct: clustering has *something* to group.
        let state = table.column_index("state").unwrap();
        let states: HashSet<&str> = table.rows().iter().map(|r| r[state].as_str()).collect();
        assert!(
            states.len() <= vocab::STATES_FOR_CITIES.len(),
            "bounded by the vocabulary, not by the row count"
        );
        for fd in &meta.fds {
            assert_fd_holds(&table, &fd.determinant, &fd.dependent);
        }
    }

    #[test]
    fn mixed_schema_payload_formats_follow_kind() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (table, meta) = mixed_schema(400, &mut rng);
        let kind = table.column_index("kind").unwrap();
        let payload = table.column_index("payload").unwrap();
        let tag = table.column_index("tag").unwrap();
        let mut kinds_seen = HashSet::new();
        for row in table.rows() {
            kinds_seen.insert(row[kind].clone());
            match row[kind].as_str() {
                "measurement" => {
                    assert!(row[payload].parse::<f64>().is_ok(), "{:?}", row[payload]);
                    assert!(row[tag].starts_with("m:"));
                }
                "event" => {
                    assert!(
                        row[payload].contains("am") || row[payload].contains("pm"),
                        "{:?}",
                        row[payload]
                    );
                    assert!(row[tag].starts_with("e:"));
                }
                other => {
                    assert_eq!(other, "note");
                    assert!(row[tag].starts_with("n:"));
                }
            }
        }
        assert_eq!(kinds_seen.len(), 3, "all record kinds must appear");
        for fd in &meta.fds {
            assert_fd_holds(&table, &fd.determinant, &fd.dependent);
        }
    }
}
