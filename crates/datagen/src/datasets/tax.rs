//! The Tax benchmark: the large synthetic tax dataset from the BART
//! repository, used by the paper for scalability experiments (up to 200,000
//! tuples).
//!
//! Schema (22 attributes): person identity, contact information, address
//! (city/state/zip), marital and dependent status, salary and the tax fields
//! whose consistency rules BART uses (rate, exemptions). Functional
//! dependencies: `zip → city, state`, `area_code → state`, and
//! `state, has_child → child_exemption`-style rules approximated as
//! `state → single_exemption`.

use super::skewed_index;
use crate::metadata::{
    ColumnPattern, DatasetMetadata, FunctionalDependency, KnowledgeBaseEntry, PatternKind,
};
use crate::vocab;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use zeroed_table::Table;

/// Column names of the generated Tax table.
pub const COLUMNS: [&str; 22] = [
    "f_name",
    "l_name",
    "gender",
    "area_code",
    "phone",
    "city",
    "state",
    "zip",
    "marital_status",
    "has_child",
    "salary",
    "rate",
    "single_exemp",
    "married_exemp",
    "child_exemp",
    "email",
    "ssn_last4",
    "employer",
    "occupation",
    "years_employed",
    "filing_year",
    "account_type",
];

struct Location {
    city: String,
    state: String,
    zip: String,
    area_code: String,
    rate: f64,
    single_exemp: u32,
    married_exemp: u32,
    child_exemp: u32,
}

/// Generates a clean Tax table with `n_rows` tuples.
pub fn clean(n_rows: usize, rng: &mut ChaCha8Rng) -> (Table, DatasetMetadata) {
    let locations: Vec<Location> = vocab::CITIES
        .iter()
        .enumerate()
        .map(|(i, city)| {
            let state = vocab::STATES_FOR_CITIES[i];
            Location {
                city: city.to_string(),
                state: state.to_string(),
                zip: format!("{:05}", 10000 + i * 211),
                area_code: format!("{}", 201 + i * 3),
                rate: 2.0 + (i % 8) as f64,
                single_exemp: 1000 + (i as u32 % 6) * 250,
                married_exemp: 2000 + (i as u32 % 6) * 500,
                child_exemp: 500 + (i as u32 % 4) * 100,
            }
        })
        .collect();
    let occupations = [
        "engineer", "teacher", "nurse", "manager", "analyst", "clerk", "driver", "consultant",
        "technician", "accountant",
    ];

    let mut rows = Vec::with_capacity(n_rows);
    for i in 0..n_rows {
        let loc = &locations[skewed_index(rng, locations.len())];
        let first = vocab::pick(vocab::FIRST_NAMES, rng.gen_range(0..vocab::FIRST_NAMES.len()));
        let last = vocab::pick(vocab::LAST_NAMES, rng.gen_range(0..vocab::LAST_NAMES.len()));
        let gender = if rng.gen_bool(0.5) { "M" } else { "F" };
        let marital = vocab::MARITAL_STATUSES[rng.gen_range(0..2)];
        let has_child = if rng.gen_bool(0.4) { "Y" } else { "N" };
        let salary = 20_000 + rng.gen_range(0..180_000);
        rows.push(vec![
            first.to_string(),
            last.to_string(),
            gender.to_string(),
            loc.area_code.clone(),
            format!(
                "({}) {:03}-{:04}",
                loc.area_code,
                200 + rng.gen_range(0..700),
                1000 + rng.gen_range(0..9000)
            ),
            loc.city.clone(),
            loc.state.clone(),
            loc.zip.clone(),
            marital.to_string(),
            has_child.to_string(),
            format!("{salary}"),
            format!("{:.1}", loc.rate),
            format!("{}", loc.single_exemp),
            format!("{}", loc.married_exemp),
            format!("{}", loc.child_exemp),
            format!("{}.{}@example.com", first.to_lowercase(), last.to_lowercase()),
            format!("{:04}", rng.gen_range(0..10_000)),
            format!(
                "{} {} inc",
                vocab::pick(vocab::BREWERY_WORDS, rng.gen_range(0..vocab::BREWERY_WORDS.len())),
                vocab::pick(vocab::MOVIE_NOUNS, rng.gen_range(0..vocab::MOVIE_NOUNS.len()))
            )
            .to_lowercase(),
            occupations[rng.gen_range(0..occupations.len())].to_string(),
            format!("{}", rng.gen_range(0..40)),
            format!("{}", 2010 + (i % 10)),
            if rng.gen_bool(0.7) { "individual" } else { "joint" }.to_string(),
        ]);
    }

    let table = Table::new(
        "Tax",
        COLUMNS.iter().map(|s| s.to_string()).collect(),
        rows,
    )
    .expect("generated rows match the schema");

    let metadata = DatasetMetadata {
        fds: vec![
            FunctionalDependency::new("zip", "city"),
            FunctionalDependency::new("zip", "state"),
            FunctionalDependency::new("area_code", "state"),
            FunctionalDependency::new("city", "state"),
            FunctionalDependency::new("state", "rate"),
            FunctionalDependency::new("state", "single_exemp"),
            FunctionalDependency::new("state", "married_exemp"),
            FunctionalDependency::new("state", "child_exemp"),
        ],
        patterns: vec![
            ColumnPattern::new("zip", PatternKind::ZipCode),
            ColumnPattern::new("gender", PatternKind::OneOf(vec!["M".into(), "F".into()])),
            ColumnPattern::new(
                "marital_status",
                PatternKind::OneOf(vec!["S".into(), "M".into()]),
            ),
            ColumnPattern::new("has_child", PatternKind::OneOf(vec!["Y".into(), "N".into()])),
            ColumnPattern::new("salary", PatternKind::IntRange { min: 0, max: 1_000_000 }),
            ColumnPattern::new("rate", PatternKind::FloatRange { min: 0.0, max: 15.0 }),
            ColumnPattern::new("years_employed", PatternKind::IntRange { min: 0, max: 60 }),
            ColumnPattern::new("filing_year", PatternKind::IntRange { min: 2000, max: 2030 }),
        ],
        kb: vec![
            KnowledgeBaseEntry::domain(
                "state",
                vocab::STATES_FOR_CITIES.iter().map(|s| s.to_string()),
            ),
            KnowledgeBaseEntry::domain("city", vocab::CITIES.iter().map(|s| s.to_string())),
        ],
        numeric_columns: vec![
            "salary".into(),
            "rate".into(),
            "single_exemp".into(),
            "married_exemp".into(),
            "child_exemp".into(),
            "years_employed".into(),
        ],
        text_columns: vec!["f_name".into(), "l_name".into(), "employer".into(), "email".into()],
    };
    (table, metadata)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::testutil::assert_fd_holds;
    use rand::SeedableRng;

    #[test]
    fn shape_and_fds() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let (table, meta) = clean(800, &mut rng);
        assert_eq!(table.n_rows(), 800);
        assert_eq!(table.n_cols(), 22);
        for fd in &meta.fds {
            assert_fd_holds(&table, &fd.determinant, &fd.dependent);
        }
    }

    #[test]
    fn patterns_hold() {
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let (table, meta) = clean(300, &mut rng);
        for pat in &meta.patterns {
            let col = table.column_index(&pat.column).unwrap();
            for row in table.rows() {
                assert!(pat.kind.matches(&row[col]), "{}: {:?}", pat.column, row[col]);
            }
        }
    }

    #[test]
    fn scales_to_larger_sizes() {
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let (table, _) = clean(5_000, &mut rng);
        assert_eq!(table.n_rows(), 5_000);
    }
}
