//! The Rayyan benchmark: bibliographic records from the Rayyan systematic
//! review screening tool.
//!
//! Schema (11 attributes): article title, journal title, ISSN, volume, pages,
//! creation date, authors, language, journal abbreviation, publication year,
//! article type. Functional dependencies: `journal_title → issn,
//! journal_abbreviation, language`.

use super::{format_iso_date, skewed_index};
use crate::metadata::{
    ColumnPattern, DatasetMetadata, FunctionalDependency, KnowledgeBaseEntry, PatternKind,
};
use crate::vocab;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use zeroed_table::Table;

/// Column names of the generated Rayyan table.
pub const COLUMNS: [&str; 11] = [
    "article_title",
    "journal_title",
    "journal_issn",
    "article_jvolumn",
    "article_pagination",
    "jcreated_at",
    "article_authors",
    "article_language",
    "journal_abbreviation",
    "article_jyear",
    "article_type",
];

struct Journal {
    title: String,
    issn: String,
    abbreviation: String,
    language: String,
}

fn abbreviate(title: &str) -> String {
    title
        .split_whitespace()
        .filter(|w| w.len() > 2 && !w.eq_ignore_ascii_case("the") && !w.eq_ignore_ascii_case("and"))
        .map(|w| &w[..w.len().min(4)])
        .collect::<Vec<_>>()
        .join(". ")
}

/// Generates a clean Rayyan table with `n_rows` tuples.
pub fn clean(n_rows: usize, rng: &mut ChaCha8Rng) -> (Table, DatasetMetadata) {
    let journals: Vec<Journal> = vocab::JOURNALS
        .iter()
        .enumerate()
        .map(|(i, title)| Journal {
            title: title.to_string(),
            issn: format!("{:04}-{:03}{}", 1000 + i * 37, 100 + i * 7, if i % 5 == 0 { "X".to_string() } else { (i % 10).to_string() }),
            abbreviation: abbreviate(title),
            language: vocab::LANGUAGES[i % 3].to_string(),
        })
        .collect();

    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let j = &journals[skewed_index(rng, journals.len())];
        let n_title_words = 5 + rng.gen_range(0..6);
        let title: Vec<&str> = (0..n_title_words)
            .map(|_| vocab::TOPIC_WORDS[rng.gen_range(0..vocab::TOPIC_WORDS.len())])
            .collect();
        let n_authors = 1 + rng.gen_range(0..4);
        let authors: Vec<String> = (0..n_authors)
            .map(|_| {
                format!(
                    "{} {}",
                    vocab::pick(vocab::LAST_NAMES, rng.gen_range(0..vocab::LAST_NAMES.len())),
                    vocab::pick(vocab::FIRST_NAMES, rng.gen_range(0..vocab::FIRST_NAMES.len()))
                        .chars()
                        .next()
                        .unwrap_or('A')
                )
            })
            .collect();
        let year = 1995 + rng.gen_range(0..28);
        let start_page = 1 + rng.gen_range(0..800);
        rows.push(vec![
            title.join(" "),
            j.title.clone(),
            j.issn.clone(),
            format!("{}", 1 + rng.gen_range(0..90)),
            format!("{}-{}", start_page, start_page + rng.gen_range(3..25)),
            format_iso_date(year, 1 + rng.gen_range(0..12), 1 + rng.gen_range(0..28)),
            authors.join("; "),
            j.language.clone(),
            j.abbreviation.clone(),
            format!("{year}"),
            if rng.gen_bool(0.7) { "journal article" } else { "review" }.to_string(),
        ]);
    }

    let table = Table::new(
        "Rayyan",
        COLUMNS.iter().map(|s| s.to_string()).collect(),
        rows,
    )
    .expect("generated rows match the schema");

    let metadata = DatasetMetadata {
        fds: vec![
            FunctionalDependency::new("journal_title", "journal_issn"),
            FunctionalDependency::new("journal_title", "journal_abbreviation"),
            FunctionalDependency::new("journal_title", "article_language"),
            FunctionalDependency::new("journal_issn", "journal_title"),
        ],
        patterns: vec![
            ColumnPattern::new("journal_issn", PatternKind::Issn),
            ColumnPattern::new("jcreated_at", PatternKind::IsoDate),
            ColumnPattern::new("article_jyear", PatternKind::IntRange { min: 1900, max: 2030 }),
            ColumnPattern::new("article_jvolumn", PatternKind::IntRange { min: 1, max: 500 }),
            ColumnPattern::new(
                "article_language",
                PatternKind::OneOf(vocab::LANGUAGES.iter().map(|s| s.to_string()).collect()),
            ),
            ColumnPattern::new(
                "article_type",
                PatternKind::OneOf(vec!["journal article".into(), "review".into()]),
            ),
        ],
        kb: vec![
            KnowledgeBaseEntry::domain(
                "journal_title",
                vocab::JOURNALS.iter().map(|s| s.to_string()),
            ),
            KnowledgeBaseEntry::domain(
                "article_language",
                vocab::LANGUAGES.iter().map(|s| s.to_string()),
            ),
        ],
        numeric_columns: vec!["article_jyear".into(), "article_jvolumn".into()],
        text_columns: vec!["article_title".into(), "article_authors".into()],
    };
    (table, metadata)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::testutil::assert_fd_holds;
    use rand::SeedableRng;

    #[test]
    fn shape_fds_patterns() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let (table, meta) = clean(400, &mut rng);
        assert_eq!(table.n_rows(), 400);
        assert_eq!(table.n_cols(), 11);
        for fd in &meta.fds {
            assert_fd_holds(&table, &fd.determinant, &fd.dependent);
        }
        for pat in &meta.patterns {
            let col = table.column_index(&pat.column).unwrap();
            for row in table.rows() {
                assert!(pat.kind.matches(&row[col]), "{}: {:?}", pat.column, row[col]);
            }
        }
    }

    #[test]
    fn abbreviation_skips_stop_words() {
        assert_eq!(abbreviate("The Lancet"), "Lanc");
        assert!(abbreviate("Journal of Clinical Epidemiology").starts_with("Jour"));
    }
}
