//! Clean-data generators for the seven benchmark datasets of the paper.
//!
//! Each submodule exposes `clean(n_rows, rng) -> (Table, DatasetMetadata)`.
//! The generated tables are *clean*: functional dependencies hold exactly,
//! every value matches its column pattern, and numeric columns stay inside
//! their declared ranges. Errors are injected afterwards by
//! [`crate::inject::Injector`].

pub mod beers;
pub mod billionaire;
pub mod flights;
pub mod hospital;
pub mod movies;
pub mod rayyan;
pub mod tax;
pub mod workloads;

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Draws an index with a skewed (roughly Zipfian) distribution so that some
/// entities occur much more frequently than others, which is what gives the
/// value/vicinity frequency features of ZeroED their signal.
pub(crate) fn skewed_index(rng: &mut ChaCha8Rng, n: usize) -> usize {
    debug_assert!(n > 0);
    // Square a uniform draw: small indices become much more likely.
    let u: f64 = rng.gen::<f64>();
    let idx = (u * u * n as f64) as usize;
    idx.min(n - 1)
}

/// Formats a 12-hour clock time from minutes-past-midnight.
pub(crate) fn format_time_12h(total_minutes: u32) -> String {
    let minutes = total_minutes % (24 * 60);
    let hour24 = minutes / 60;
    let minute = minutes % 60;
    let (hour12, ampm) = match hour24 {
        0 => (12, "am"),
        1..=11 => (hour24, "am"),
        12 => (12, "pm"),
        _ => (hour24 - 12, "pm"),
    };
    format!("{hour12}:{minute:02} {ampm}")
}

/// Formats an ISO date from a year and day-of-year-ish pair.
pub(crate) fn format_iso_date(year: u32, month: u32, day: u32) -> String {
    format!("{year:04}-{month:02}-{day:02}")
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::collections::HashMap;
    use zeroed_table::Table;

    /// Asserts that the functional dependency `det → dep` holds on the table.
    pub fn assert_fd_holds(table: &Table, det: &str, dep: &str) {
        let di = table.column_index(det).unwrap_or_else(|| panic!("no col {det}"));
        let pi = table.column_index(dep).unwrap_or_else(|| panic!("no col {dep}"));
        let mut seen: HashMap<&str, &str> = HashMap::new();
        for row in table.rows() {
            let d = row[di].as_str();
            let p = row[pi].as_str();
            if let Some(prev) = seen.get(d) {
                assert_eq!(
                    *prev, p,
                    "FD {det} -> {dep} violated for determinant {d:?}: {prev:?} vs {p:?}"
                );
            } else {
                seen.insert(d, p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn skewed_index_stays_in_bounds_and_skews_low() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let n = 50;
        let mut counts = vec![0usize; n];
        for _ in 0..5000 {
            let i = skewed_index(&mut rng, n);
            assert!(i < n);
            counts[i] += 1;
        }
        let low: usize = counts[..10].iter().sum();
        let high: usize = counts[40..].iter().sum();
        assert!(low > high * 2, "low {low} vs high {high}");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time_12h(0), "12:00 am");
        assert_eq!(format_time_12h(7 * 60 + 45), "7:45 am");
        assert_eq!(format_time_12h(12 * 60 + 5), "12:05 pm");
        assert_eq!(format_time_12h(23 * 60 + 59), "11:59 pm");
    }

    #[test]
    fn date_formatting() {
        assert_eq!(format_iso_date(2015, 4, 3), "2015-04-03");
    }
}
