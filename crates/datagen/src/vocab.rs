//! Shared vocabulary pools used by the dataset generators.
//!
//! The lists are intentionally modest in size: the goal is realistic *value
//! distributions* (repeated categorical values, functional dependencies,
//! formatted strings), not realistic content.

/// Common first names.
pub const FIRST_NAMES: &[&str] = &[
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda", "David",
    "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas", "Sarah",
    "Charles", "Karen", "Christopher", "Lisa", "Daniel", "Nancy", "Matthew", "Betty", "Anthony",
    "Margaret", "Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly", "Paul", "Emily",
    "Andrew", "Donna", "Joshua", "Michelle", "Wei", "Ling", "Carlos", "Sofia", "Ahmed", "Fatima",
    "Yuki", "Hana", "Olga", "Ivan",
];

/// Common last names.
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez",
    "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor",
    "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
    "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King", "Wright",
    "Scott", "Torres", "Nguyen", "Hill", "Flores",
];

/// US city names (paired index-wise with [`STATES_FOR_CITIES`]).
pub const CITIES: &[&str] = &[
    "Birmingham", "Phoenix", "Little Rock", "Los Angeles", "Denver", "Hartford", "Dover",
    "Jacksonville", "Atlanta", "Honolulu", "Boise", "Chicago", "Indianapolis", "Des Moines",
    "Wichita", "Louisville", "New Orleans", "Portland", "Baltimore", "Boston", "Detroit",
    "Minneapolis", "Jackson", "Kansas City", "Billings", "Omaha", "Las Vegas", "Manchester",
    "Newark", "Albuquerque", "New York", "Charlotte", "Fargo", "Columbus", "Oklahoma City",
    "Salem", "Philadelphia", "Providence", "Charleston", "Sioux Falls",
];

/// State codes for [`CITIES`] (same order).
pub const STATES_FOR_CITIES: &[&str] = &[
    "AL", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN", "IA", "KS",
    "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM",
    "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD",
];

/// Countries (paired index-wise with [`REGIONS_FOR_COUNTRIES`] and
/// [`CAPITALS_FOR_COUNTRIES`]).
pub const COUNTRIES: &[&str] = &[
    "United States", "China", "Germany", "India", "Russia", "Brazil", "United Kingdom", "France",
    "Italy", "Canada", "Japan", "Australia", "Mexico", "South Korea", "Spain", "Indonesia",
    "Turkey", "Saudi Arabia", "Switzerland", "Nigeria", "Sweden", "Argentina", "Egypt",
    "South Africa",
];

/// World region per country (same order as [`COUNTRIES`]).
pub const REGIONS_FOR_COUNTRIES: &[&str] = &[
    "North America", "East Asia", "Europe", "South Asia", "Europe", "South America", "Europe",
    "Europe", "Europe", "North America", "East Asia", "Oceania", "North America", "East Asia",
    "Europe", "Southeast Asia", "Middle East", "Middle East", "Europe", "Africa", "Europe",
    "South America", "Africa", "Africa",
];

/// Capital city per country (same order as [`COUNTRIES`]).
pub const CAPITALS_FOR_COUNTRIES: &[&str] = &[
    "Washington", "Beijing", "Berlin", "New Delhi", "Moscow", "Brasilia", "London", "Paris",
    "Rome", "Ottawa", "Tokyo", "Canberra", "Mexico City", "Seoul", "Madrid", "Jakarta", "Ankara",
    "Riyadh", "Bern", "Abuja", "Stockholm", "Buenos Aires", "Cairo", "Pretoria",
];

/// Industry sectors (Billionaire).
pub const INDUSTRIES: &[&str] = &[
    "Technology", "Finance", "Retail", "Energy", "Healthcare", "Real Estate", "Manufacturing",
    "Media", "Telecom", "Fashion", "Logistics", "Food and Beverage", "Mining", "Automotive",
    "Pharmaceuticals", "Entertainment",
];

/// Hospital-quality conditions and their measure-code prefixes, mirroring the
/// Hospital benchmark (SCIP = surgical infection prevention, AMI = heart
/// attack, PN = pneumonia, HF = heart failure).
pub const CONDITIONS: &[(&str, &str)] = &[
    ("surgical infection prevention", "SCIP"),
    ("heart attack", "AMI"),
    ("pneumonia", "PN"),
    ("heart failure", "HF"),
];

/// Hospital measure name templates per condition prefix.
pub const MEASURE_NAMES: &[(&str, &str)] = &[
    ("SCIP", "prophylactic antibiotic received within one hour prior to surgical incision"),
    ("SCIP", "surgery patients with recommended venous thromboembolism prophylaxis ordered"),
    ("AMI", "heart attack patients given aspirin at arrival"),
    ("AMI", "heart attack patients given pci within 90 minutes of arrival"),
    ("PN", "pneumonia patients given initial antibiotic within 6 hours after arrival"),
    ("PN", "pneumonia patients assessed and given pneumococcal vaccination"),
    ("HF", "heart failure patients given discharge instructions"),
    ("HF", "heart failure patients given an evaluation of left ventricular systolic function"),
];

/// Hospital types and owners.
pub const HOSPITAL_TYPES: &[&str] = &[
    "acute care hospitals",
    "critical access hospitals",
    "childrens hospitals",
];

/// Hospital owner categories.
pub const HOSPITAL_OWNERS: &[&str] = &[
    "government - federal",
    "government - state",
    "government - local",
    "voluntary non-profit - private",
    "voluntary non-profit - church",
    "proprietary",
];

/// Airline codes used to build flight numbers.
pub const AIRLINES: &[&str] = &[
    "AA", "UA", "DL", "WN", "B6", "AS", "NK", "F9", "HA", "G4",
];

/// Flight data sources (the Flights benchmark aggregates several websites).
pub const FLIGHT_SOURCES: &[&str] = &[
    "aa", "flightview", "flightaware", "orbitz", "weather", "mytripandmore", "helloflight",
    "flightexplorer", "travelocity", "gofox",
];

/// Craft beer styles.
pub const BEER_STYLES: &[&str] = &[
    "American IPA", "American Pale Ale", "American Amber Ale", "American Blonde Ale",
    "American Double IPA", "American Porter", "American Stout", "Witbier", "Hefeweizen",
    "Saison", "Fruit Beer", "Kolsch", "Pilsner", "Oatmeal Stout", "Scotch Ale", "Cream Ale",
    "Brown Ale", "Belgian Tripel", "Märzen", "Vienna Lager",
];

/// Brewery name fragments (combined to form brewery names).
pub const BREWERY_WORDS: &[&str] = &[
    "Anchor", "Summit", "Cedar", "River", "Stone", "Iron", "Copper", "Golden", "Lakefront",
    "Highland", "Pioneer", "Prairie", "Canyon", "Harbor", "Timber", "Granite", "Redwood",
    "Bluegrass", "Falcon", "Juniper",
];

/// Words for composing beer names.
pub const BEER_WORDS: &[&str] = &[
    "Hazy", "Hoppy", "Golden", "Midnight", "Velvet", "Wild", "Lazy", "Roaring", "Silent",
    "Electric", "Rustic", "Smoky", "Frosty", "Blazing", "Mellow", "Crooked", "Noble", "Lucky",
    "Drifting", "Thunder",
];

/// Second words for beer names.
pub const BEER_NOUNS: &[&str] = &[
    "Trail", "Badger", "Sunset", "Harvest", "Otter", "Summit", "Lantern", "Anvil", "Compass",
    "Meadow", "Falcon", "Canyon", "Ember", "Harbor", "Willow", "Breaker", "Pines", "Raven",
    "Current", "Hollow",
];

/// Academic journal names (Rayyan).
pub const JOURNALS: &[&str] = &[
    "Journal of Clinical Epidemiology", "The Lancet", "BMJ Open", "PLOS ONE",
    "Annals of Internal Medicine", "Cochrane Database of Systematic Reviews",
    "Journal of the American Medical Association", "New England Journal of Medicine",
    "Systematic Reviews", "Journal of Epidemiology and Community Health",
    "International Journal of Epidemiology", "Trials", "BMC Public Health",
    "American Journal of Public Health", "Health Technology Assessment",
];

/// Languages used in bibliographic records.
pub const LANGUAGES: &[&str] = &["eng", "fre", "ger", "spa", "chi", "por", "ita", "rus"];

/// Research topic words for composing article titles.
pub const TOPIC_WORDS: &[&str] = &[
    "randomized", "controlled", "trial", "cohort", "systematic", "review", "meta-analysis",
    "intervention", "outcomes", "screening", "prevalence", "risk", "factors", "treatment",
    "effectiveness", "hypertension", "diabetes", "cancer", "vaccination", "rehabilitation",
    "mortality", "quality", "of", "life", "adolescents", "elderly", "primary", "care",
];

/// Movie genres.
pub const GENRES: &[&str] = &[
    "Drama", "Comedy", "Action", "Thriller", "Horror", "Romance", "Documentary", "Animation",
    "Crime", "Adventure", "Science Fiction", "Fantasy", "Mystery", "Western", "Musical",
];

/// Movie title words.
pub const MOVIE_WORDS: &[&str] = &[
    "Midnight", "Shadow", "Return", "Last", "Silent", "Broken", "Golden", "Lost", "Crimson",
    "Winter", "Forgotten", "Distant", "Burning", "Paper", "Iron", "Endless", "Savage", "Gentle",
    "Stolen", "Electric",
];

/// Movie title nouns.
pub const MOVIE_NOUNS: &[&str] = &[
    "Horizon", "Garden", "Empire", "Promise", "Echo", "River", "Letters", "Kingdom", "Voyage",
    "Symphony", "Harvest", "Mirror", "Station", "Parade", "Fortress", "Lullaby", "Detour",
    "Carnival", "Outpost", "Reunion",
];

/// MPAA-style content ratings.
pub const RATINGS: &[&str] = &["G", "PG", "PG-13", "R", "NC-17", "NOT RATED"];

/// Street name fragments for addresses.
pub const STREETS: &[&str] = &[
    "Main St", "Oak Ave", "Maple Dr", "Cedar Ln", "Park Blvd", "Washington St", "Lake Rd",
    "Hill St", "River Rd", "Sunset Blvd", "2nd Ave", "3rd St", "Highland Ave", "Church St",
    "Elm St", "Walnut St",
];

/// Marital statuses (Tax).
pub const MARITAL_STATUSES: &[&str] = &["S", "M"];

/// Deterministically picks an element of `pool` using an index.
pub fn pick<'a>(pool: &'a [&'a str], idx: usize) -> &'a str {
    pool[idx % pool.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paired_vocab_lists_have_matching_lengths() {
        assert_eq!(CITIES.len(), STATES_FOR_CITIES.len());
        assert_eq!(COUNTRIES.len(), REGIONS_FOR_COUNTRIES.len());
        assert_eq!(COUNTRIES.len(), CAPITALS_FOR_COUNTRIES.len());
    }

    #[test]
    fn pools_are_non_trivial() {
        assert!(FIRST_NAMES.len() >= 40);
        assert!(LAST_NAMES.len() >= 30);
        assert!(JOURNALS.len() >= 10);
        assert!(MEASURE_NAMES.len() >= 8);
    }

    #[test]
    fn pick_wraps_around() {
        assert_eq!(pick(&["a", "b", "c"], 0), "a");
        assert_eq!(pick(&["a", "b", "c"], 4), "b");
    }
}
