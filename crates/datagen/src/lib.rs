//! # zeroed-datagen
//!
//! Synthetic benchmark datasets and BART-style error injection for the ZeroED
//! reproduction.
//!
//! The ZeroED paper evaluates on seven tabular datasets (Hospital, Flights,
//! Beers, Rayyan, Billionaire, Movies and Tax — Table II). The original dirty
//! files are not redistributable, so this crate generates *clean* tables with
//! the same schemas, sizes, functional dependencies and value patterns, and
//! then injects the five paper error types (missing values, typos, pattern
//! violations, outliers and rule violations) at per-dataset rates matching
//! Table II using the same operator set as the BART error generator the paper
//! used for its synthetic datasets.
//!
//! The crate also exports per-dataset [`metadata::DatasetMetadata`] — the
//! functional dependencies, column patterns, value domains and knowledge-base
//! relations that the manual-criteria baselines (NADEEF, KATARA, dBoost)
//! consume, mirroring how the paper takes those artefacts "from existing
//! public code".
//!
//! ## How generation works
//!
//! Each dataset module under [`datasets`] describes its schema as column
//! generators over shared vocabularies ([`vocab`]): FD-consistent lookups
//! (city → state, measure code → condition), formatted fields (times, zip
//! codes, phone numbers) and numeric distributions. [`generate`] samples
//! `n_rows` clean rows from an explicit seed, then hands the table to the
//! [`inject`] module, which applies the BART operator set — value removal,
//! character-level typos (substitution, deletion, adjacent transposition),
//! format mangling, numeric outlier scaling, FD-breaking substitutions — at
//! the per-dataset, per-type rates of
//! Table II, recording every injected cell in the returned
//! [`GeneratedDataset`]'s ground-truth [`ErrorMask`].
//!
//! ## Contracts
//!
//! * **Determinism.** Same [`DatasetSpec`], `n_rows` and seed → the same
//!   table, the same injected errors, the same mask, on every platform
//!   (counter-based RNG throughout). Every benchmark ledger and equivalence
//!   suite in the workspace keys off this.
//! * **Scale-invariant shape.** `n_rows` scales the tables from unit-test
//!   sizes (a few hundred rows) to the 50k-row perf ledgers while keeping
//!   the same schemas, error rates and duplicate-heavy value distributions —
//!   the property the interning fast paths (`zeroed-features`,
//!   `zeroed-baselines`) are benchmarked against.
//! * **Detectors never see the ground truth.** The mask travels alongside
//!   the dirty table for *scoring* and for the simulated LLM's oracle; the
//!   pipeline itself only receives the dirty table.
//!
//! Entry point: [`generate`] with a [`DatasetSpec`].
//!
//! ```
//! use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
//!
//! let ds = generate(DatasetSpec::Hospital, &GenerateOptions { n_rows: 200, seed: 7, ..Default::default() });
//! assert_eq!(ds.dirty.n_rows(), 200);
//! assert!(ds.mask.error_count() > 0);
//! ```

pub mod datasets;
pub mod inject;
pub mod metadata;
pub mod vocab;

pub use inject::{ErrorSpec, InjectedError, Injector};
pub use metadata::{
    ColumnPattern, DatasetMetadata, FunctionalDependency, KnowledgeBaseEntry, PatternKind,
};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use zeroed_table::errors::{profile_errors, ErrorProfile};
use zeroed_table::{ErrorMask, Table};

/// The seven benchmark datasets of the paper's Table II, plus three
/// synthetic *workload shapes* ([`datasets::workloads`]) that stress
/// specific pipeline dimensions (width, distinctness, schema heterogeneity).
/// The workload shapes are named scenarios for the benchmark binaries; they
/// are deliberately **not** part of [`DatasetSpec::ALL`] or
/// [`DatasetSpec::COMPARISON`], which stay faithful to the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetSpec {
    /// US hospital quality measures (1,000 × 20 in the paper).
    Hospital,
    /// Flight departure/arrival times (2,376 × 7).
    Flights,
    /// Craft beers and breweries (2,410 × 11).
    Beers,
    /// Bibliographic records from the Rayyan screening tool (1,000 × 11).
    Rayyan,
    /// Billionaires list (2,615 × 22, synthetic errors in the paper).
    Billionaire,
    /// Movie metadata from the Magellan repository (7,390 × 17).
    Movies,
    /// Large synthetic tax dataset from the BART repository (200,000 × 22).
    Tax,
    /// Workload shape: a very wide table (30 attributes) stressing
    /// per-attribute fan-out.
    Wide,
    /// Workload shape: (nearly) unique values per row in most columns,
    /// stressing the frequency/interning fast paths and clustering.
    HighDistinct,
    /// Workload shape: heterogeneous record kinds in one table, with
    /// per-kind payload formats, stressing pattern features and guidelines.
    MixedSchema,
}

impl DatasetSpec {
    /// All seven datasets in the paper's order.
    pub const ALL: [DatasetSpec; 7] = [
        DatasetSpec::Hospital,
        DatasetSpec::Flights,
        DatasetSpec::Beers,
        DatasetSpec::Rayyan,
        DatasetSpec::Billionaire,
        DatasetSpec::Movies,
        DatasetSpec::Tax,
    ];

    /// The six datasets used in the main comparison tables (Tax is reserved
    /// for scalability experiments).
    pub const COMPARISON: [DatasetSpec; 6] = [
        DatasetSpec::Hospital,
        DatasetSpec::Flights,
        DatasetSpec::Beers,
        DatasetSpec::Rayyan,
        DatasetSpec::Billionaire,
        DatasetSpec::Movies,
    ];

    /// Dataset name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetSpec::Hospital => "Hospital",
            DatasetSpec::Flights => "Flights",
            DatasetSpec::Beers => "Beers",
            DatasetSpec::Rayyan => "Rayyan",
            DatasetSpec::Billionaire => "Billionaire",
            DatasetSpec::Movies => "Movies",
            DatasetSpec::Tax => "Tax",
            DatasetSpec::Wide => "Wide",
            DatasetSpec::HighDistinct => "HighDistinct",
            DatasetSpec::MixedSchema => "MixedSchema",
        }
    }

    /// Number of tuples used in the paper's Table II (default sizes for the
    /// synthetic workload shapes, which have no paper counterpart).
    pub fn paper_rows(&self) -> usize {
        match self {
            DatasetSpec::Hospital => 1_000,
            DatasetSpec::Flights => 2_376,
            DatasetSpec::Beers => 2_410,
            DatasetSpec::Rayyan => 1_000,
            DatasetSpec::Billionaire => 2_615,
            DatasetSpec::Movies => 7_390,
            DatasetSpec::Tax => 200_000,
            DatasetSpec::Wide => 2_000,
            DatasetSpec::HighDistinct => 5_000,
            DatasetSpec::MixedSchema => 3_000,
        }
    }

    /// Default error-injection profile roughly matching Table II.
    pub fn default_error_spec(&self) -> ErrorSpec {
        match self {
            DatasetSpec::Hospital => ErrorSpec::new(0.010, 0.012, 0.012, 0.008, 0.008),
            DatasetSpec::Flights => ErrorSpec::new(0.060, 0.080, 0.055, 0.050, 0.090),
            DatasetSpec::Beers => ErrorSpec::new(0.009, 0.055, 0.024, 0.011, 0.011),
            DatasetSpec::Rayyan => ErrorSpec::new(0.060, 0.055, 0.032, 0.050, 0.055),
            DatasetSpec::Billionaire => ErrorSpec::new(0.024, 0.031, 0.014, 0.018, 0.012),
            DatasetSpec::Movies => ErrorSpec::new(0.022, 0.023, 0.010, 0.010, 0.000),
            DatasetSpec::Tax => ErrorSpec::new(0.008, 0.012, 0.008, 0.006, 0.006),
            DatasetSpec::Wide => ErrorSpec::new(0.015, 0.020, 0.015, 0.010, 0.010),
            DatasetSpec::HighDistinct => ErrorSpec::new(0.020, 0.025, 0.020, 0.015, 0.010),
            DatasetSpec::MixedSchema => ErrorSpec::new(0.020, 0.025, 0.020, 0.010, 0.012),
        }
    }

    /// Parses the paper's dataset name (case-insensitive).
    pub fn parse(name: &str) -> Option<DatasetSpec> {
        match name.to_ascii_lowercase().as_str() {
            "hospital" => Some(DatasetSpec::Hospital),
            "flights" => Some(DatasetSpec::Flights),
            "beers" => Some(DatasetSpec::Beers),
            "rayyan" => Some(DatasetSpec::Rayyan),
            "billionaire" | "billion." => Some(DatasetSpec::Billionaire),
            "movies" => Some(DatasetSpec::Movies),
            "tax" => Some(DatasetSpec::Tax),
            "wide" | "widetable" => Some(DatasetSpec::Wide),
            "highdistinct" | "high-distinct" => Some(DatasetSpec::HighDistinct),
            "mixedschema" | "mixed-schema" | "mixed" => Some(DatasetSpec::MixedSchema),
            _ => None,
        }
    }

    /// The three synthetic workload shapes ([`datasets::workloads`]).
    pub const WORKLOADS: [DatasetSpec; 3] = [
        DatasetSpec::Wide,
        DatasetSpec::HighDistinct,
        DatasetSpec::MixedSchema,
    ];
}

/// Options controlling dataset generation.
#[derive(Debug, Clone)]
pub struct GenerateOptions {
    /// Number of tuples to generate. `0` means "use the paper's size".
    pub n_rows: usize,
    /// PRNG seed; generation is fully deterministic given the seed.
    pub seed: u64,
    /// Error-injection profile. `None` means "use the dataset default".
    pub error_spec: Option<ErrorSpec>,
}

impl Default for GenerateOptions {
    fn default() -> Self {
        Self {
            n_rows: 0,
            seed: 42,
            error_spec: None,
        }
    }
}

/// A generated benchmark dataset: the dirty table presented to detectors, its
/// clean ground truth, the error mask, injection bookkeeping and the metadata
/// consumed by criteria-based baselines.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// Which benchmark this is.
    pub spec: DatasetSpec,
    /// The dirty table (input to error detection).
    pub dirty: Table,
    /// The clean ground-truth table.
    pub clean: Table,
    /// Ground-truth error mask (`dirty[i,j] != clean[i,j]`).
    pub mask: ErrorMask,
    /// Per-cell bookkeeping of which error type was injected.
    pub injected: Vec<InjectedError>,
    /// Functional dependencies, patterns, domains and KB for the baselines.
    pub metadata: DatasetMetadata,
}

impl GeneratedDataset {
    /// Classifies every erroneous cell and summarises per-type rates (the
    /// numbers reported in Table II).
    pub fn error_profile(&self) -> ErrorProfile {
        let rule_cells: HashSet<(usize, usize)> = self
            .injected
            .iter()
            .filter(|e| e.error_type == zeroed_table::ErrorType::RuleViolation)
            .map(|e| (e.row, e.col))
            .collect();
        profile_errors(&self.dirty, &self.clean, &rule_cells)
            .expect("dirty and clean tables are congruent by construction")
    }
}

/// Generates a benchmark dataset deterministically.
pub fn generate(spec: DatasetSpec, options: &GenerateOptions) -> GeneratedDataset {
    let n_rows = if options.n_rows == 0 {
        spec.paper_rows()
    } else {
        options.n_rows
    };
    let mut rng = ChaCha8Rng::seed_from_u64(options.seed ^ spec_seed(spec));
    let (clean, metadata) = match spec {
        DatasetSpec::Hospital => datasets::hospital::clean(n_rows, &mut rng),
        DatasetSpec::Flights => datasets::flights::clean(n_rows, &mut rng),
        DatasetSpec::Beers => datasets::beers::clean(n_rows, &mut rng),
        DatasetSpec::Rayyan => datasets::rayyan::clean(n_rows, &mut rng),
        DatasetSpec::Billionaire => datasets::billionaire::clean(n_rows, &mut rng),
        DatasetSpec::Movies => datasets::movies::clean(n_rows, &mut rng),
        DatasetSpec::Tax => datasets::tax::clean(n_rows, &mut rng),
        DatasetSpec::Wide => datasets::workloads::wide(n_rows, &mut rng),
        DatasetSpec::HighDistinct => datasets::workloads::high_distinct(n_rows, &mut rng),
        DatasetSpec::MixedSchema => datasets::workloads::mixed_schema(n_rows, &mut rng),
    };
    let spec_err = options
        .error_spec
        .clone()
        .unwrap_or_else(|| spec.default_error_spec());
    let injector = Injector::new(spec_err, options.seed.wrapping_add(0x5eed));
    let outcome = injector.inject(&clean, &metadata);
    GeneratedDataset {
        spec,
        dirty: outcome.dirty,
        clean,
        mask: outcome.mask,
        injected: outcome.injected,
        metadata,
    }
}

fn spec_seed(spec: DatasetSpec) -> u64 {
    match spec {
        DatasetSpec::Hospital => 0x01,
        DatasetSpec::Flights => 0x02,
        DatasetSpec::Beers => 0x03,
        DatasetSpec::Rayyan => 0x04,
        DatasetSpec::Billionaire => 0x05,
        DatasetSpec::Movies => 0x06,
        DatasetSpec::Tax => 0x07,
        DatasetSpec::Wide => 0x08,
        DatasetSpec::HighDistinct => 0x09,
        DatasetSpec::MixedSchema => 0x0a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let opts = GenerateOptions {
            n_rows: 120,
            seed: 9,
            error_spec: None,
        };
        let a = generate(DatasetSpec::Beers, &opts);
        let b = generate(DatasetSpec::Beers, &opts);
        assert_eq!(a.dirty, b.dirty);
        assert_eq!(a.clean, b.clean);
        assert_eq!(a.mask, b.mask);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(
            DatasetSpec::Beers,
            &GenerateOptions {
                n_rows: 200,
                seed: 1,
                error_spec: None,
            },
        );
        let b = generate(
            DatasetSpec::Beers,
            &GenerateOptions {
                n_rows: 200,
                seed: 2,
                error_spec: None,
            },
        );
        assert_ne!(a.dirty, b.dirty);
    }

    #[test]
    fn all_specs_generate_small_tables() {
        for spec in DatasetSpec::ALL {
            let ds = generate(
                spec,
                &GenerateOptions {
                    n_rows: 80,
                    seed: 3,
                    error_spec: None,
                },
            );
            assert_eq!(ds.dirty.n_rows(), 80, "{}", spec.name());
            assert!(ds.dirty.n_cols() >= 7, "{}", spec.name());
            assert!(ds.mask.error_count() > 0, "{}", spec.name());
            assert!(
                ds.mask.error_rate() < 0.6,
                "{} error rate {}",
                spec.name(),
                ds.mask.error_rate()
            );
            // Mask agrees with the dirty/clean diff by construction.
            let diff = ErrorMask::diff(&ds.dirty, &ds.clean).unwrap();
            assert_eq!(diff, ds.mask, "{}", spec.name());
        }
    }

    #[test]
    fn parse_and_names() {
        assert_eq!(DatasetSpec::parse("hospital"), Some(DatasetSpec::Hospital));
        assert_eq!(DatasetSpec::parse("TAX"), Some(DatasetSpec::Tax));
        assert_eq!(DatasetSpec::parse("bogus"), None);
        assert_eq!(DatasetSpec::Movies.name(), "Movies");
        assert_eq!(DatasetSpec::ALL.len(), 7);
        assert_eq!(DatasetSpec::COMPARISON.len(), 6);
    }

    #[test]
    fn workload_shapes_generate_and_stay_out_of_the_paper_sets() {
        assert_eq!(DatasetSpec::WORKLOADS.len(), 3);
        for spec in DatasetSpec::WORKLOADS {
            // The paper-faithful spec lists must not grow.
            assert!(!DatasetSpec::ALL.contains(&spec), "{}", spec.name());
            assert!(!DatasetSpec::COMPARISON.contains(&spec), "{}", spec.name());
            // Names round-trip through the CLI parser.
            assert_eq!(DatasetSpec::parse(spec.name()), Some(spec), "{}", spec.name());
            let ds = generate(
                spec,
                &GenerateOptions {
                    n_rows: 120,
                    seed: 3,
                    error_spec: None,
                },
            );
            assert_eq!(ds.dirty.n_rows(), 120, "{}", spec.name());
            assert!(ds.mask.error_count() > 0, "{}", spec.name());
            let diff = ErrorMask::diff(&ds.dirty, &ds.clean).unwrap();
            assert_eq!(diff, ds.mask, "{}", spec.name());
        }
        assert_eq!(DatasetSpec::Wide.paper_rows(), 2_000);
        assert_eq!(DatasetSpec::parse("mixed"), Some(DatasetSpec::MixedSchema));
    }

    #[test]
    fn error_profile_reports_types() {
        let ds = generate(
            DatasetSpec::Hospital,
            &GenerateOptions {
                n_rows: 300,
                seed: 11,
                error_spec: None,
            },
        );
        let profile = ds.error_profile();
        assert!(profile.error_count > 0);
        assert!(!profile.by_type.is_empty());
    }
}
