//! BART-style error injection.
//!
//! The paper's synthetic datasets (Billionaire, Tax) were dirtied with the
//! BigDaMa error generator / BART; the real-world datasets contain organic
//! errors of the same five types. This module reproduces the operator set of
//! those tools: placeholder substitution (missing values), character edits
//! (typos), format corruption (pattern violations), numeric distortion
//! (outliers) and functional-dependency breaking (rule violations).
//!
//! Injection is deterministic given the seed and never corrupts the same cell
//! twice, so the resulting [`InjectionOutcome::mask`] is exactly the cell-wise
//! diff between the dirty and clean tables.

use crate::metadata::{DatasetMetadata, PatternKind};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use zeroed_table::{ErrorMask, ErrorType, Table};

/// Per-type cell corruption rates (fractions of all cells).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorSpec {
    /// Fraction of cells turned into missing values.
    pub missing: f64,
    /// Fraction of cells receiving typos.
    pub typo: f64,
    /// Fraction of cells receiving pattern violations.
    pub pattern: f64,
    /// Fraction of cells receiving outliers.
    pub outlier: f64,
    /// Fraction of cells receiving rule (FD) violations.
    pub rule: f64,
}

impl ErrorSpec {
    /// Creates a spec from the five per-type rates.
    pub fn new(missing: f64, pattern: f64, typo: f64, outlier: f64, rule: f64) -> Self {
        Self {
            missing,
            typo,
            pattern,
            outlier,
            rule,
        }
    }

    /// A spec with no errors at all.
    pub fn none() -> Self {
        Self::new(0.0, 0.0, 0.0, 0.0, 0.0)
    }

    /// A spec containing only a single error type at the given rate; used by
    /// the per-error-type experiment (paper Fig. 11).
    pub fn only(ty: ErrorType, rate: f64) -> Self {
        let mut spec = Self::none();
        match ty {
            ErrorType::MissingValue => spec.missing = rate,
            ErrorType::Typo => spec.typo = rate,
            ErrorType::PatternViolation => spec.pattern = rate,
            ErrorType::Outlier => spec.outlier = rate,
            ErrorType::RuleViolation => spec.rule = rate,
        }
        spec
    }

    /// Sum of the per-type rates (approximately the overall error rate).
    pub fn total_rate(&self) -> f64 {
        self.missing + self.typo + self.pattern + self.outlier + self.rule
    }

    /// Scales every rate by a factor.
    pub fn scaled(&self, factor: f64) -> Self {
        Self::new(
            self.missing * factor,
            self.pattern * factor,
            self.typo * factor,
            self.outlier * factor,
            self.rule * factor,
        )
    }
}

/// Bookkeeping for one injected error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedError {
    /// Row of the corrupted cell.
    pub row: usize,
    /// Column of the corrupted cell.
    pub col: usize,
    /// Which error type was injected.
    pub error_type: ErrorType,
}

/// Result of injecting errors into a clean table.
#[derive(Debug, Clone)]
pub struct InjectionOutcome {
    /// The dirty table.
    pub dirty: Table,
    /// Ground-truth mask (equal to the dirty/clean diff).
    pub mask: ErrorMask,
    /// One record per corrupted cell.
    pub injected: Vec<InjectedError>,
}

/// Deterministic error injector.
#[derive(Debug, Clone)]
pub struct Injector {
    spec: ErrorSpec,
    seed: u64,
}

/// Placeholders used when injecting missing values (a mix of explicit and
/// implicit placeholders, as in the benchmarks).
const MISSING_SUBSTITUTES: &[&str] = &["", "", "NULL", "N/A", "-", "nan"];

impl Injector {
    /// Creates an injector with the given per-type rates and seed.
    pub fn new(spec: ErrorSpec, seed: u64) -> Self {
        Self { spec, seed }
    }

    /// Injects errors into `clean`, returning the dirty table, mask and
    /// per-cell bookkeeping.
    pub fn inject(&self, clean: &Table, metadata: &DatasetMetadata) -> InjectionOutcome {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut dirty = clean.clone();
        let n_rows = clean.n_rows();
        let n_cols = clean.n_cols();
        let n_cells = n_rows * n_cols;
        let mut corrupted: HashSet<(usize, usize)> = HashSet::new();
        let mut injected = Vec::new();

        if n_rows < 2 || n_cols == 0 {
            let mask = ErrorMask::for_table(&dirty);
            return InjectionOutcome {
                dirty,
                mask,
                injected,
            };
        }

        // Column groups used to pick suitable targets per error type.
        let fd_dependent_cols: Vec<usize> = clean
            .columns()
            .iter()
            .enumerate()
            .filter(|(_, name)| !metadata.fds_determining(name).is_empty())
            .map(|(j, _)| j)
            .collect();
        let numeric_cols: Vec<usize> = clean
            .columns()
            .iter()
            .enumerate()
            .filter(|(_, name)| metadata.numeric_columns.contains(*name))
            .map(|(j, _)| j)
            .collect();
        let all_cols: Vec<usize> = (0..n_cols).collect();

        let plan: [(ErrorType, f64); 5] = [
            (ErrorType::RuleViolation, self.spec.rule),
            (ErrorType::PatternViolation, self.spec.pattern),
            (ErrorType::Outlier, self.spec.outlier),
            (ErrorType::Typo, self.spec.typo),
            (ErrorType::MissingValue, self.spec.missing),
        ];

        for (ty, rate) in plan {
            let target = (rate * n_cells as f64).round() as usize;
            if target == 0 {
                continue;
            }
            let candidate_cols: &[usize] = match ty {
                ErrorType::RuleViolation if !fd_dependent_cols.is_empty() => &fd_dependent_cols,
                ErrorType::Outlier if !numeric_cols.is_empty() => &numeric_cols,
                _ => &all_cols,
            };
            let mut placed = 0usize;
            let mut attempts = 0usize;
            let max_attempts = target * 30 + 200;
            while placed < target && attempts < max_attempts {
                attempts += 1;
                let row = rng.gen_range(0..n_rows);
                let col = candidate_cols[rng.gen_range(0..candidate_cols.len())];
                if corrupted.contains(&(row, col)) {
                    continue;
                }
                let original = clean.cell(row, col).to_string();
                let Some(new_value) =
                    self.corrupt(ty, &original, clean, metadata, row, col, &mut rng)
                else {
                    continue;
                };
                if new_value == original {
                    continue;
                }
                dirty
                    .set(row, col, new_value)
                    .expect("cell indices are in range");
                corrupted.insert((row, col));
                injected.push(InjectedError {
                    row,
                    col,
                    error_type: ty,
                });
                placed += 1;
            }
        }

        let mask = ErrorMask::diff(&dirty, clean).expect("dirty keeps the clean shape");
        InjectionOutcome {
            dirty,
            mask,
            injected,
        }
    }

    /// Produces a corrupted value of the requested error type, or `None` if
    /// the cell is unsuitable (e.g. already empty for a typo).
    #[allow(clippy::too_many_arguments)]
    fn corrupt(
        &self,
        ty: ErrorType,
        original: &str,
        clean: &Table,
        metadata: &DatasetMetadata,
        row: usize,
        col: usize,
        rng: &mut ChaCha8Rng,
    ) -> Option<String> {
        match ty {
            ErrorType::MissingValue => {
                let sub = MISSING_SUBSTITUTES[rng.gen_range(0..MISSING_SUBSTITUTES.len())];
                Some(sub.to_string())
            }
            ErrorType::Typo => inject_typo(original, rng),
            ErrorType::PatternViolation => {
                let pattern = metadata.pattern_for(&clean.columns()[col]);
                inject_pattern_violation(original, pattern, rng)
            }
            ErrorType::Outlier => inject_outlier(original, rng),
            ErrorType::RuleViolation => inject_rule_violation(original, clean, row, col, rng),
        }
    }
}

/// Applies 1–2 random character edits (substitution, deletion, insertion,
/// adjacent transposition) to a non-empty value.
fn inject_typo(original: &str, rng: &mut ChaCha8Rng) -> Option<String> {
    let chars: Vec<char> = original.chars().collect();
    if chars.is_empty() {
        return None;
    }
    let mut out = chars;
    let n_edits = 1 + usize::from(rng.gen_bool(0.4));
    for _ in 0..n_edits {
        if out.is_empty() {
            break;
        }
        let pos = rng.gen_range(0..out.len());
        match rng.gen_range(0..4u8) {
            0 => {
                // substitution with a nearby letter/digit
                let c = out[pos];
                out[pos] = substitute_char(c, rng);
            }
            1 => {
                out.remove(pos);
            }
            2 => {
                let c = random_char(rng);
                out.insert(pos, c);
            }
            _ => {
                if pos + 1 < out.len() {
                    out.swap(pos, pos + 1);
                }
            }
        }
    }
    Some(out.into_iter().collect())
}

fn substitute_char(c: char, rng: &mut ChaCha8Rng) -> char {
    if c.is_ascii_digit() {
        char::from(b'0' + rng.gen_range(0..10u8))
    } else if c.is_ascii_lowercase() {
        char::from(b'a' + rng.gen_range(0..26u8))
    } else if c.is_ascii_uppercase() {
        char::from(b'A' + rng.gen_range(0..26u8))
    } else {
        random_char(rng)
    }
}

fn random_char(rng: &mut ChaCha8Rng) -> char {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    ALPHABET[rng.gen_range(0..ALPHABET.len())] as char
}

/// Corrupts a value's *format*. When the column has a known [`PatternKind`], a
/// format-specific transformation that is guaranteed to break the pattern is
/// applied; otherwise a generic separator/case scramble is used.
fn inject_pattern_violation(
    original: &str,
    pattern: Option<&PatternKind>,
    rng: &mut ChaCha8Rng,
) -> Option<String> {
    if original.trim().is_empty() {
        return None;
    }
    let generic = |rng: &mut ChaCha8Rng, value: &str| -> String {
        match rng.gen_range(0..3u8) {
            0 => value
                .chars()
                .filter(|c| c.is_alphanumeric())
                .collect::<String>()
                .to_uppercase(),
            1 => format!("{value}##"),
            _ => value.replace([' ', ':', '-', '/'], "").to_lowercase(),
        }
    };
    let corrupted = match pattern {
        Some(PatternKind::Time12H) => {
            // Convert "7:45 am" → "0745" or "7.45am" (no longer a valid time).
            match rng.gen_range(0..2u8) {
                0 => original.replace([':', ' '], ""),
                _ => original.replace(':', ".").replace(' ', ""),
            }
        }
        Some(PatternKind::IsoDate) => {
            // "2015-04-30" → "30/04/2015" or "20150430"
            let parts: Vec<&str> = original.split('-').collect();
            if parts.len() == 3 {
                if rng.gen_bool(0.5) {
                    format!("{}/{}/{}", parts[2], parts[1], parts[0])
                } else {
                    parts.concat()
                }
            } else {
                generic(rng, original)
            }
        }
        Some(PatternKind::ZipCode) => {
            if rng.gen_bool(0.5) {
                original.chars().take(4).collect()
            } else {
                format!("{original}-0000x")
            }
        }
        Some(PatternKind::Phone) => original.replace(['(', ')', ' ', '-'], ""),
        Some(PatternKind::Issn) => original.replace('-', ""),
        Some(PatternKind::FlightNumber) => original.replace('-', "/"),
        _ => generic(rng, original),
    };
    if corrupted == original {
        Some(format!("{original}##"))
    } else {
        Some(corrupted)
    }
}

/// Distorts a numeric value far outside its usual range; for non-numeric cells
/// a rare random token is substituted.
fn inject_outlier(original: &str, rng: &mut ChaCha8Rng) -> Option<String> {
    if let Some(x) = zeroed_table::value::parse_numeric(original) {
        let factor = match rng.gen_range(0..4u8) {
            0 => 10.0,
            1 => 100.0,
            2 => 0.01,
            _ => -1.0,
        };
        let distorted = if x == 0.0 { 9999.0 } else { x * factor };
        // Preserve integer formatting for integer inputs.
        if original.chars().all(|c| c.is_ascii_digit() || c == '-') {
            Some(format!("{}", distorted.round() as i64))
        } else {
            Some(format!("{distorted:.2}"))
        }
    } else {
        // Rare random token, unlikely to repeat → low frequency.
        let token: String = (0..6).map(|_| random_char(rng)).collect();
        Some(format!("zq{token}"))
    }
}

/// Breaks a functional dependency by replacing the dependent value with a
/// value drawn from a *different* tuple of the same column (so the value stays
/// in-domain and well-formatted, but is inconsistent with its determinant).
fn inject_rule_violation(
    original: &str,
    clean: &Table,
    _row: usize,
    col: usize,
    rng: &mut ChaCha8Rng,
) -> Option<String> {
    let mut candidates: Vec<&str> = clean
        .rows()
        .iter()
        .map(|r| r[col].as_str())
        .filter(|v| *v != original && !v.trim().is_empty())
        .collect();
    if candidates.is_empty() {
        return None;
    }
    candidates.shuffle(rng);
    Some(candidates[0].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::{ColumnPattern, FunctionalDependency};

    fn clean_table(n: usize) -> (Table, DatasetMetadata) {
        let cities = ["Birmingham", "Phoenix", "Denver", "Boston"];
        let states = ["AL", "AZ", "CO", "MA"];
        let rows = (0..n)
            .map(|i| {
                let k = i % cities.len();
                vec![
                    format!("{:05}", 10000 + k),
                    cities[k].to_string(),
                    states[k].to_string(),
                    format!("{}", 1000 + (i % 17) * 10),
                ]
            })
            .collect();
        let table = Table::new(
            "mini",
            vec!["zip".into(), "city".into(), "state".into(), "salary".into()],
            rows,
        )
        .unwrap();
        let metadata = DatasetMetadata {
            fds: vec![
                FunctionalDependency::new("zip", "city"),
                FunctionalDependency::new("zip", "state"),
            ],
            patterns: vec![ColumnPattern::new("zip", PatternKind::ZipCode)],
            kb: vec![],
            numeric_columns: vec!["salary".into()],
            text_columns: vec!["city".into()],
        };
        (table, metadata)
    }

    #[test]
    fn injects_requested_amount_roughly() {
        let (clean, meta) = clean_table(500);
        let spec = ErrorSpec::new(0.02, 0.02, 0.02, 0.02, 0.02);
        let out = Injector::new(spec.clone(), 7).inject(&clean, &meta);
        let expected = (spec.total_rate() * clean.n_cells() as f64) as usize;
        let got = out.mask.error_count();
        assert!(
            got as f64 > expected as f64 * 0.7 && got <= expected,
            "expected about {expected}, got {got}"
        );
        assert_eq!(out.injected.len(), got);
    }

    #[test]
    fn injection_is_deterministic() {
        let (clean, meta) = clean_table(200);
        let spec = ErrorSpec::new(0.03, 0.02, 0.02, 0.01, 0.02);
        let a = Injector::new(spec.clone(), 99).inject(&clean, &meta);
        let b = Injector::new(spec, 99).inject(&clean, &meta);
        assert_eq!(a.dirty, b.dirty);
    }

    #[test]
    fn mask_matches_diff_and_types_recorded() {
        let (clean, meta) = clean_table(300);
        let out = Injector::new(ErrorSpec::new(0.02, 0.02, 0.02, 0.02, 0.03), 3)
            .inject(&clean, &meta);
        for err in &out.injected {
            assert!(out.mask.get(err.row, err.col));
            assert_ne!(out.dirty.cell(err.row, err.col), clean.cell(err.row, err.col));
        }
        let types: HashSet<ErrorType> = out.injected.iter().map(|e| e.error_type).collect();
        assert!(types.len() >= 4, "expected most error types, got {types:?}");
    }

    #[test]
    fn rule_violations_target_fd_columns() {
        let (clean, meta) = clean_table(300);
        let out = Injector::new(ErrorSpec::only(ErrorType::RuleViolation, 0.05), 5)
            .inject(&clean, &meta);
        assert!(out.mask.error_count() > 0);
        for err in &out.injected {
            let col_name = &clean.columns()[err.col];
            assert!(
                col_name == "city" || col_name == "state",
                "rule violation should land on an FD-dependent column, got {col_name}"
            );
        }
    }

    #[test]
    fn outliers_target_numeric_columns() {
        let (clean, meta) = clean_table(300);
        let out =
            Injector::new(ErrorSpec::only(ErrorType::Outlier, 0.05), 5).inject(&clean, &meta);
        assert!(out.mask.error_count() > 0);
        for err in &out.injected {
            assert_eq!(clean.columns()[err.col], "salary");
        }
    }

    #[test]
    fn pattern_violations_break_the_pattern() {
        let (clean, meta) = clean_table(300);
        let out = Injector::new(ErrorSpec::only(ErrorType::PatternViolation, 0.05), 5)
            .inject(&clean, &meta);
        assert!(out.mask.error_count() > 0);
        for err in &out.injected {
            if clean.columns()[err.col] == "zip" {
                assert!(!PatternKind::ZipCode.matches(out.dirty.cell(err.row, err.col)));
            }
        }
    }

    #[test]
    fn no_errors_spec_produces_clean_copy() {
        let (clean, meta) = clean_table(50);
        let out = Injector::new(ErrorSpec::none(), 1).inject(&clean, &meta);
        assert_eq!(out.mask.error_count(), 0);
        assert_eq!(out.dirty, clean);
    }

    #[test]
    fn typo_helpers_behave() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(inject_typo("", &mut rng).is_none());
        let t = inject_typo("Birmingham", &mut rng).unwrap();
        assert_ne!(t, "");
        let o = inject_outlier("100", &mut rng).unwrap();
        assert!(zeroed_table::value::parse_numeric(&o).is_some());
        let p = inject_pattern_violation("7:45 am", Some(&PatternKind::Time12H), &mut rng).unwrap();
        assert!(!PatternKind::Time12H.matches(&p));
    }

    #[test]
    fn spec_helpers() {
        let spec = ErrorSpec::new(0.01, 0.02, 0.03, 0.04, 0.05);
        assert!((spec.total_rate() - 0.15).abs() < 1e-12);
        let scaled = spec.scaled(2.0);
        assert!((scaled.total_rate() - 0.30).abs() < 1e-12);
        let only = ErrorSpec::only(ErrorType::Typo, 0.1);
        assert_eq!(only.typo, 0.1);
        assert_eq!(only.missing, 0.0);
    }
}
