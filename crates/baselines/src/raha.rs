//! Raha: the configuration-free, manual-label error detection system.
//!
//! Raha runs a large library of cheap detection strategies (outlier detectors,
//! pattern checks, rule checks, knowledge-base checks under many
//! configurations), uses their outputs as a feature vector per cell, clusters
//! the cells of each column, asks the user to label a handful of tuples,
//! propagates those labels through the clusters and trains a per-column
//! classifier. This implementation follows that architecture with a strategy
//! library drawn from the same families; the labelled tuples come from
//! [`crate::LabeledTuple`] (2 tuples by default in the paper's comparison,
//! swept in Fig. 6).
//!
//! The hot path consumes the shared distinct-value machinery
//! ([`zeroed_table::TableDict`]): every per-cell strategy verdict depends
//! only on the cell's *distinct value* (missing/empty checks, frequency and
//! format-rarity thresholds, Gaussian z-scores) or on the row's *code pair*
//! (rule strategies against per-determinant majorities), so the strategy
//! block is computed once per distinct code and scattered to rows, and the
//! majority tables are built over `(determinant code, value code)` pairs
//! instead of owned strings. [`Raha::detect_reference`] keeps the seed
//! per-cell path as the correctness oracle (same discipline as
//! `zeroed_features::reference`), with the majority tie-break pinned to the
//! same deterministic `(count, value)` order NADEEF's port established —
//! both paths must produce bit-identical masks (asserted by
//! `tests/interning_equivalence.rs`).

use crate::{Baseline, BaselineInput};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use zeroed_cluster::{cluster, SamplingMethod};
use zeroed_features::pattern::{generalize, Level};
use zeroed_ml::{LogisticRegression, LogisticRegressionConfig};
use zeroed_table::value::{is_missing, parse_numeric};
use zeroed_table::{ErrorMask, Table};

/// Configuration of the Raha baseline.
#[derive(Debug, Clone)]
pub struct Raha {
    /// Number of cell clusters per column (Raha's label-propagation
    /// granularity). The effective number also grows with the labelling
    /// budget.
    pub clusters_per_column: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Raha {
    fn default() -> Self {
        Self {
            clusters_per_column: 20,
            seed: 13,
        }
    }
}

/// Number of per-distinct strategy features (missing ×2, frequency ×2,
/// format ×2, outlier ×2); rule strategies add one more per other column.
const BASE_STRATEGIES: usize = 8;

/// Multiply-xor hasher for the packed `(determinant code, value code)` pair
/// keys of the rule strategies. The pair maps see `n_rows` inserts per
/// (column, determinant) combination — the hot loop of the interned path on
/// near-unique columns — where SipHash overhead dominates; a single
/// multiply-mix is plenty for u64 keys that are already near-uniform codes.
#[derive(Default)]
struct PairHasher(u64);

impl Hasher for PairHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn finish(&self) -> u64 {
        let h = self.0;
        (h ^ (h >> 31)).wrapping_mul(0x94d0_49bb_1331_11eb)
    }
}

type PairMap = HashMap<u64, u32, BuildHasherDefault<PairHasher>>;

/// Packs a `(determinant code, value code)` pair into one map key.
fn pair_key(det_code: u32, value_code: u32) -> u64 {
    ((det_code as u64) << 32) | value_code as u64
}

impl Raha {
    /// Strategy-output feature vector for one cell: each entry is the verdict
    /// of one cheap detection strategy (1.0 = that strategy flags the cell).
    /// The seed per-cell path, kept for [`Raha::detect_reference`].
    fn strategy_features(
        table: &Table,
        col: usize,
        row: usize,
        value_counts: &HashMap<&str, usize>,
        pattern_counts: &HashMap<String, usize>,
        numeric_stats: Option<(f64, f64)>,
        fd_majorities: &[(usize, HashMap<&str, &str>)],
    ) -> Vec<f32> {
        let n_rows = table.n_rows() as f64;
        let v = table.cell(row, col);
        let mut feats = Vec::with_capacity(BASE_STRATEGIES + fd_majorities.len());
        // Missing-value strategies.
        feats.push(if is_missing(v) { 1.0 } else { 0.0 });
        feats.push(if v.trim().is_empty() { 1.0 } else { 0.0 });
        // Frequency strategies at two thresholds.
        let freq = *value_counts.get(v).unwrap_or(&0) as f64 / n_rows;
        feats.push(if freq < 0.01 { 1.0 } else { 0.0 });
        feats.push(if freq < 0.05 { 1.0 } else { 0.0 });
        // Pattern strategies at two thresholds.
        let pat_freq = *pattern_counts
            .get(&generalize(v, Level::L2))
            .unwrap_or(&0) as f64
            / n_rows;
        feats.push(if pat_freq < 0.01 { 1.0 } else { 0.0 });
        feats.push(if pat_freq < 0.05 { 1.0 } else { 0.0 });
        // Outlier strategies (Gaussian at 2 and 3 sigma).
        match (numeric_stats, parse_numeric(v)) {
            (Some((mean, std)), Some(x)) => {
                let z = ((x - mean) / std).abs();
                feats.push(if z > 3.0 { 1.0 } else { 0.0 });
                feats.push(if z > 2.0 { 1.0 } else { 0.0 });
            }
            _ => {
                feats.push(0.0);
                feats.push(0.0);
            }
        }
        // Rule strategies: disagreement with the majority value per determinant
        // for each other column.
        for (det, majority) in fd_majorities {
            let d = table.cell(row, *det);
            let flagged = majority
                .get(d)
                .map(|&expected| expected != v)
                .unwrap_or(false);
            feats.push(if flagged { 1.0 } else { 0.0 });
        }
        feats
    }

    /// Clusters the column's strategy vectors, propagates the labelled
    /// tuples' flags through the clusters and trains the per-column
    /// classifier — the half of Raha downstream of featurisation, shared by
    /// the interned and reference paths (both feed it bit-identical inputs).
    fn classify_column(
        &self,
        col: usize,
        feats: &[Vec<f32>],
        labeled: &HashMap<usize, &Vec<bool>>,
        k: usize,
        mask: &mut ErrorMask,
    ) {
        let n_rows = feats.len();
        let rows: Vec<&[f32]> = feats.iter().map(|f| f.as_slice()).collect();
        let clustering = cluster(SamplingMethod::KMeans, &rows, k, self.seed + col as u64);

        // Propagate the labels of the labelled tuples through their clusters.
        let mut cluster_votes: HashMap<usize, (usize, usize)> = HashMap::new();
        for (&row, flags) in labeled {
            if row >= n_rows {
                continue;
            }
            let c = clustering.assignments[row];
            let entry = cluster_votes.entry(c).or_insert((0, 0));
            if flags[col] {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
        }
        let mut train_rows: Vec<&[f32]> = Vec::new();
        let mut train_labels: Vec<f32> = Vec::new();
        for (row, feat) in feats.iter().enumerate() {
            let c = clustering.assignments[row];
            if let Some(&(err, clean)) = cluster_votes.get(&c) {
                let label = if err > clean { 1.0 } else { 0.0 };
                train_rows.push(feat.as_slice());
                train_labels.push(label);
            }
        }
        let has_both = train_labels.iter().any(|&l| l > 0.5)
            && train_labels.iter().any(|&l| l < 0.5);
        if !has_both {
            // Without both classes, fall back to propagated labels only.
            for row in 0..n_rows {
                let c = clustering.assignments[row];
                if let Some(&(err, clean)) = cluster_votes.get(&c) {
                    if err > clean {
                        mask.set(row, col, true);
                    }
                }
            }
            return;
        }
        let model = LogisticRegression::fit(
            &train_rows,
            &train_labels,
            &LogisticRegressionConfig::default(),
        );
        for (row, feat) in feats.iter().enumerate() {
            if model.predict(feat) {
                mask.set(row, col, true);
            }
        }
    }

    /// The seed per-cell implementation: recomputes value lookups, format
    /// generalisations and majority lookups for every cell over string-keyed
    /// maps. Kept as the correctness oracle for the interned fast path and
    /// as the slow side of the `bench_features` baselines ledger. (Majority
    /// ties are broken deterministically by `(count, value)` — pinned, so
    /// the oracle itself is reproducible across hasher instances.)
    pub fn detect_reference(&self, input: &BaselineInput<'_>) -> ErrorMask {
        let table = input.dirty;
        let n_rows = table.n_rows();
        let n_cols = table.n_cols();
        let mut mask = ErrorMask::for_table(table);
        if n_rows == 0 || input.labeled.is_empty() {
            return mask;
        }
        let labeled: HashMap<usize, &Vec<bool>> =
            input.labeled.iter().map(|l| (l.row, &l.flags)).collect();
        let k = (self.clusters_per_column + input.labeled.len()).min(n_rows);

        for col in 0..n_cols {
            // Pre-compute per-column statistics shared by the strategies.
            let mut value_counts: HashMap<&str, usize> = HashMap::new();
            let mut pattern_counts: HashMap<String, usize> = HashMap::new();
            let mut numerics: Vec<f64> = Vec::new();
            for row in table.rows() {
                let v = row[col].as_str();
                *value_counts.entry(v).or_insert(0) += 1;
                *pattern_counts.entry(generalize(v, Level::L2)).or_insert(0) += 1;
                if let Some(x) = parse_numeric(v) {
                    numerics.push(x);
                }
            }
            let numeric_stats = if numerics.len() as f64 >= 0.9 * n_rows as f64 {
                let mean = numerics.iter().sum::<f64>() / numerics.len() as f64;
                let std = (numerics.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
                    / numerics.len() as f64)
                    .sqrt()
                    .max(1e-9);
                Some((mean, std))
            } else {
                None
            };
            // Majority mapping from every other column (cheap rule strategies).
            let mut fd_majorities: Vec<(usize, HashMap<&str, &str>)> = Vec::new();
            for det in 0..n_cols {
                if det == col {
                    continue;
                }
                let mut groups: HashMap<&str, HashMap<&str, usize>> = HashMap::new();
                for row in table.rows() {
                    *groups
                        .entry(row[det].as_str())
                        .or_default()
                        .entry(row[col].as_str())
                        .or_insert(0) += 1;
                }
                let majority: HashMap<&str, &str> = groups
                    .into_iter()
                    .map(|(d, dist)| {
                        let best = dist
                            .into_iter()
                            .max_by_key(|(v, c)| (*c, *v))
                            .map(|(v, _)| v)
                            .unwrap_or_default();
                        (d, best)
                    })
                    .collect();
                fd_majorities.push((det, majority));
            }

            // Strategy feature vectors for every cell of the column.
            let feats: Vec<Vec<f32>> = (0..n_rows)
                .map(|row| {
                    Self::strategy_features(
                        table,
                        col,
                        row,
                        &value_counts,
                        &pattern_counts,
                        numeric_stats,
                        &fd_majorities,
                    )
                })
                .collect();
            self.classify_column(col, &feats, &labeled, k, &mut mask);
        }
        mask
    }
}

impl Baseline for Raha {
    fn name(&self) -> &'static str {
        "Raha"
    }

    fn detect(&self, input: &BaselineInput<'_>) -> ErrorMask {
        let table = input.dirty;
        let n_rows = table.n_rows();
        let n_cols = table.n_cols();
        let mut mask = ErrorMask::for_table(table);
        if n_rows == 0 || input.labeled.is_empty() {
            return mask;
        }
        let labeled: HashMap<usize, &Vec<bool>> =
            input.labeled.iter().map(|l| (l.row, &l.flags)).collect();
        let k = (self.clusters_per_column + input.labeled.len()).min(n_rows);

        // One interning pass shared by every column's strategies.
        let dict = table.intern();

        for col in 0..n_cols {
            let col_dict = dict.column(col);
            let n_distinct = col_dict.n_distinct();
            let values = col_dict.values();
            let codes = col_dict.codes();

            // Numeric parse once per distinct value; the moments accumulate
            // in *row order* (scattered by code) so the floating-point sums
            // are bit-identical to the seed's per-row accumulation.
            let parsed: Vec<Option<f64>> =
                values.iter().map(|v| parse_numeric(v)).collect();
            let mut numerics: Vec<f64> = Vec::new();
            for &code in codes {
                if let Some(x) = parsed[code as usize] {
                    numerics.push(x);
                }
            }
            let numeric_stats = if numerics.len() as f64 >= 0.9 * n_rows as f64 {
                let mean = numerics.iter().sum::<f64>() / numerics.len() as f64;
                let std = (numerics.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
                    / numerics.len() as f64)
                    .sqrt()
                    .max(1e-9);
                Some((mean, std))
            } else {
                None
            };

            // Format generalisation once per distinct value; the histogram
            // sums occurrence counts per pattern (integers — order-free).
            let patterns: Vec<String> = values
                .iter()
                .map(|v| generalize(v, Level::L2))
                .collect();
            let mut pattern_counts: HashMap<&str, usize> = HashMap::new();
            for (code, pattern) in patterns.iter().enumerate() {
                *pattern_counts.entry(pattern.as_str()).or_insert(0) +=
                    col_dict.count(code as u32) as usize;
            }

            // The per-distinct strategy block: eight verdicts per code.
            let base: Vec<[f32; BASE_STRATEGIES]> = (0..n_distinct)
                .map(|code| {
                    let v: &str = &values[code];
                    let freq = col_dict.count(code as u32) as f64 / n_rows as f64;
                    let pat_freq =
                        pattern_counts[patterns[code].as_str()] as f64 / n_rows as f64;
                    let (z3, z2) = match (numeric_stats, parsed[code]) {
                        (Some((mean, std)), Some(x)) => {
                            let z = ((x - mean) / std).abs();
                            (z > 3.0, z > 2.0)
                        }
                        _ => (false, false),
                    };
                    [
                        if is_missing(v) { 1.0 } else { 0.0 },
                        if v.trim().is_empty() { 1.0 } else { 0.0 },
                        if freq < 0.01 { 1.0 } else { 0.0 },
                        if freq < 0.05 { 1.0 } else { 0.0 },
                        if pat_freq < 0.01 { 1.0 } else { 0.0 },
                        if pat_freq < 0.05 { 1.0 } else { 0.0 },
                        if z3 { 1.0 } else { 0.0 },
                        if z2 { 1.0 } else { 0.0 },
                    ]
                })
                .collect();

            // Rule strategies: majority value code per determinant code for
            // every other column, over interned pair counts. Ties break on
            // (count, value string) — the pinned order the reference uses.
            let mut fd_majorities: Vec<(&[u32], Vec<u32>)> = Vec::new();
            for det in 0..n_cols {
                if det == col {
                    continue;
                }
                let det_dict = dict.column(det);
                let det_codes = det_dict.codes();
                let mut pair_counts = PairMap::default();
                for row in 0..n_rows {
                    *pair_counts
                        .entry(pair_key(det_codes[row], codes[row]))
                        .or_insert(0) += 1;
                }
                // (count, majority value code) per determinant code; every
                // determinant code occurs in some row, so a majority always
                // exists by the time rows are scattered.
                let mut majority: Vec<(u32, u32)> = vec![(0, 0); det_dict.n_distinct()];
                for (&key, &count) in &pair_counts {
                    let (d, v) = ((key >> 32) as u32, key as u32);
                    let entry = &mut majority[d as usize];
                    let better = count > entry.0
                        || (count == entry.0 && *values[v as usize] > *values[entry.1 as usize]);
                    if entry.0 == 0 || better {
                        *entry = (count, v);
                    }
                }
                fd_majorities
                    .push((det_codes, majority.into_iter().map(|(_, v)| v).collect()));
            }

            // Assemble per-row vectors: scatter the per-distinct block by
            // code, then one rule verdict per determinant column.
            let feats: Vec<Vec<f32>> = (0..n_rows)
                .map(|row| {
                    let code = codes[row];
                    let mut f = Vec::with_capacity(BASE_STRATEGIES + fd_majorities.len());
                    f.extend_from_slice(&base[code as usize]);
                    for (det_codes, majority) in &fd_majorities {
                        let d = det_codes[row];
                        f.push(if majority[d as usize] != code { 1.0 } else { 0.0 });
                    }
                    f
                })
                .collect();
            self.classify_column(col, &feats, &labeled, k, &mut mask);
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabeledTuple;
    use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};

    fn dataset() -> zeroed_datagen::GeneratedDataset {
        generate(
            DatasetSpec::Beers,
            &GenerateOptions {
                n_rows: 200,
                seed: 21,
                error_spec: None,
            },
        )
    }

    fn labels_from(ds: &zeroed_datagen::GeneratedDataset, n: usize) -> Vec<LabeledTuple> {
        LabeledTuple::mixed_from_mask(&ds.mask, n)
    }

    #[test]
    fn more_labels_do_not_hurt_and_usually_help() {
        let ds = dataset();
        // Label tuples that actually contain errors plus a few clean ones so
        // both classes are represented.
        let few = labels_from(&ds, 2);
        let many = labels_from(&ds, 15);
        let input_few = BaselineInput {
            dirty: &ds.dirty,
            metadata: &ds.metadata,
            labeled: &few,
        };
        let input_many = BaselineInput {
            dirty: &ds.dirty,
            metadata: &ds.metadata,
            labeled: &many,
        };
        let raha = Raha::default();
        let f1_few = raha.detect(&input_few).score_against(&ds.mask).unwrap().f1;
        let f1_many = raha.detect(&input_many).score_against(&ds.mask).unwrap().f1;
        assert!(f1_many >= f1_few * 0.8, "few {f1_few} vs many {f1_many}");
        assert!(f1_many > 0.1, "Raha with many labels should detect something");
    }

    #[test]
    fn interned_path_matches_the_reference() {
        let ds = dataset();
        let labels = labels_from(&ds, 8);
        let input = BaselineInput {
            dirty: &ds.dirty,
            metadata: &ds.metadata,
            labeled: &labels,
        };
        let raha = Raha::default();
        assert_eq!(raha.detect(&input), raha.detect_reference(&input));
    }

    #[test]
    fn no_labels_mean_no_detection() {
        let ds = dataset();
        let input = BaselineInput {
            dirty: &ds.dirty,
            metadata: &ds.metadata,
            labeled: &[],
        };
        assert_eq!(Raha::default().detect(&input).error_count(), 0);
        assert_eq!(Raha::default().detect_reference(&input).error_count(), 0);
        assert_eq!(Raha::default().name(), "Raha");
    }
}
