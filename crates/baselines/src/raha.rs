//! Raha: the configuration-free, manual-label error detection system.
//!
//! Raha runs a large library of cheap detection strategies (outlier detectors,
//! pattern checks, rule checks, knowledge-base checks under many
//! configurations), uses their outputs as a feature vector per cell, clusters
//! the cells of each column, asks the user to label a handful of tuples,
//! propagates those labels through the clusters and trains a per-column
//! classifier. This implementation follows that architecture with a strategy
//! library drawn from the same families; the labelled tuples come from
//! [`crate::LabeledTuple`] (2 tuples by default in the paper's comparison,
//! swept in Fig. 6).

use crate::{Baseline, BaselineInput};
use std::collections::HashMap;
use zeroed_cluster::{cluster, SamplingMethod};
use zeroed_features::pattern::{generalize, Level};
use zeroed_ml::{LogisticRegression, LogisticRegressionConfig};
use zeroed_table::value::{is_missing, parse_numeric};
use zeroed_table::{ErrorMask, Table};

/// Configuration of the Raha baseline.
#[derive(Debug, Clone)]
pub struct Raha {
    /// Number of cell clusters per column (Raha's label-propagation
    /// granularity). The effective number also grows with the labelling
    /// budget.
    pub clusters_per_column: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for Raha {
    fn default() -> Self {
        Self {
            clusters_per_column: 20,
            seed: 13,
        }
    }
}

impl Raha {
    /// Strategy-output feature vector for one cell: each entry is the verdict
    /// of one cheap detection strategy (1.0 = that strategy flags the cell).
    fn strategy_features(
        table: &Table,
        col: usize,
        row: usize,
        value_counts: &HashMap<&str, usize>,
        pattern_counts: &HashMap<String, usize>,
        numeric_stats: Option<(f64, f64)>,
        fd_majorities: &[(usize, HashMap<&str, &str>)],
    ) -> Vec<f32> {
        let n_rows = table.n_rows() as f64;
        let v = table.cell(row, col);
        let mut feats = Vec::with_capacity(8 + fd_majorities.len());
        // Missing-value strategies.
        feats.push(if is_missing(v) { 1.0 } else { 0.0 });
        feats.push(if v.trim().is_empty() { 1.0 } else { 0.0 });
        // Frequency strategies at two thresholds.
        let freq = *value_counts.get(v).unwrap_or(&0) as f64 / n_rows;
        feats.push(if freq < 0.01 { 1.0 } else { 0.0 });
        feats.push(if freq < 0.05 { 1.0 } else { 0.0 });
        // Pattern strategies at two thresholds.
        let pat_freq = *pattern_counts
            .get(&generalize(v, Level::L2))
            .unwrap_or(&0) as f64
            / n_rows;
        feats.push(if pat_freq < 0.01 { 1.0 } else { 0.0 });
        feats.push(if pat_freq < 0.05 { 1.0 } else { 0.0 });
        // Outlier strategies (Gaussian at 2 and 3 sigma).
        match (numeric_stats, parse_numeric(v)) {
            (Some((mean, std)), Some(x)) => {
                let z = ((x - mean) / std).abs();
                feats.push(if z > 3.0 { 1.0 } else { 0.0 });
                feats.push(if z > 2.0 { 1.0 } else { 0.0 });
            }
            _ => {
                feats.push(0.0);
                feats.push(0.0);
            }
        }
        // Rule strategies: disagreement with the majority value per determinant
        // for each other column.
        for (det, majority) in fd_majorities {
            let d = table.cell(row, *det);
            let flagged = majority
                .get(d)
                .map(|&expected| expected != v)
                .unwrap_or(false);
            feats.push(if flagged { 1.0 } else { 0.0 });
        }
        feats
    }
}

impl Baseline for Raha {
    fn name(&self) -> &'static str {
        "Raha"
    }

    fn detect(&self, input: &BaselineInput<'_>) -> ErrorMask {
        let table = input.dirty;
        let n_rows = table.n_rows();
        let n_cols = table.n_cols();
        let mut mask = ErrorMask::for_table(table);
        if n_rows == 0 || input.labeled.is_empty() {
            return mask;
        }
        let labeled: HashMap<usize, &Vec<bool>> =
            input.labeled.iter().map(|l| (l.row, &l.flags)).collect();
        let k = (self.clusters_per_column + input.labeled.len()).min(n_rows);

        for col in 0..n_cols {
            // Pre-compute per-column statistics shared by the strategies.
            let mut value_counts: HashMap<&str, usize> = HashMap::new();
            let mut pattern_counts: HashMap<String, usize> = HashMap::new();
            let mut numerics: Vec<f64> = Vec::new();
            for row in table.rows() {
                let v = row[col].as_str();
                *value_counts.entry(v).or_insert(0) += 1;
                *pattern_counts.entry(generalize(v, Level::L2)).or_insert(0) += 1;
                if let Some(x) = parse_numeric(v) {
                    numerics.push(x);
                }
            }
            let numeric_stats = if numerics.len() as f64 >= 0.9 * n_rows as f64 {
                let mean = numerics.iter().sum::<f64>() / numerics.len() as f64;
                let std = (numerics.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
                    / numerics.len() as f64)
                    .sqrt()
                    .max(1e-9);
                Some((mean, std))
            } else {
                None
            };
            // Majority mapping from every other column (cheap rule strategies).
            let mut fd_majorities: Vec<(usize, HashMap<&str, &str>)> = Vec::new();
            for det in 0..n_cols {
                if det == col {
                    continue;
                }
                let mut groups: HashMap<&str, HashMap<&str, usize>> = HashMap::new();
                for row in table.rows() {
                    *groups
                        .entry(row[det].as_str())
                        .or_default()
                        .entry(row[col].as_str())
                        .or_insert(0) += 1;
                }
                let majority: HashMap<&str, &str> = groups
                    .into_iter()
                    .map(|(d, dist)| {
                        let best = dist
                            .into_iter()
                            .max_by_key(|(_, c)| *c)
                            .map(|(v, _)| v)
                            .unwrap_or_default();
                        (d, best)
                    })
                    .collect();
                fd_majorities.push((det, majority));
            }

            // Strategy feature vectors for every cell of the column.
            let feats: Vec<Vec<f32>> = (0..n_rows)
                .map(|row| {
                    Self::strategy_features(
                        table,
                        col,
                        row,
                        &value_counts,
                        &pattern_counts,
                        numeric_stats,
                        &fd_majorities,
                    )
                })
                .collect();
            let rows: Vec<&[f32]> = feats.iter().map(|f| f.as_slice()).collect();
            let clustering = cluster(SamplingMethod::KMeans, &rows, k, self.seed + col as u64);

            // Propagate the labels of the labelled tuples through their clusters.
            let mut cluster_votes: HashMap<usize, (usize, usize)> = HashMap::new();
            for (&row, flags) in &labeled {
                if row >= n_rows {
                    continue;
                }
                let c = clustering.assignments[row];
                let entry = cluster_votes.entry(c).or_insert((0, 0));
                if flags[col] {
                    entry.0 += 1;
                } else {
                    entry.1 += 1;
                }
            }
            let mut train_rows: Vec<&[f32]> = Vec::new();
            let mut train_labels: Vec<f32> = Vec::new();
            for (row, feat) in feats.iter().enumerate() {
                let c = clustering.assignments[row];
                if let Some(&(err, clean)) = cluster_votes.get(&c) {
                    let label = if err > clean { 1.0 } else { 0.0 };
                    train_rows.push(feat.as_slice());
                    train_labels.push(label);
                }
            }
            let has_both = train_labels.iter().any(|&l| l > 0.5)
                && train_labels.iter().any(|&l| l < 0.5);
            if !has_both {
                // Without both classes, fall back to propagated labels only.
                for (row, _) in feats.iter().enumerate() {
                    let c = clustering.assignments[row];
                    if let Some(&(err, clean)) = cluster_votes.get(&c) {
                        if err > clean {
                            mask.set(row, col, true);
                        }
                    }
                }
                continue;
            }
            let model = LogisticRegression::fit(
                &train_rows,
                &train_labels,
                &LogisticRegressionConfig::default(),
            );
            for (row, feat) in feats.iter().enumerate() {
                if model.predict(feat) {
                    mask.set(row, col, true);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabeledTuple;
    use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};

    fn dataset() -> zeroed_datagen::GeneratedDataset {
        generate(
            DatasetSpec::Beers,
            &GenerateOptions {
                n_rows: 200,
                seed: 21,
                error_spec: None,
            },
        )
    }

    #[test]
    fn more_labels_do_not_hurt_and_usually_help() {
        let ds = dataset();
        // Label tuples that actually contain errors plus a few clean ones so
        // both classes are represented.
        let mut error_rows: Vec<usize> = ds
            .injected
            .iter()
            .map(|e| e.row)
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        error_rows.sort_unstable();
        let few_rows: Vec<usize> = error_rows.iter().copied().take(2).chain(0..2).collect();
        let many_rows: Vec<usize> = error_rows.iter().copied().take(15).chain(0..15).collect();
        let few = LabeledTuple::from_mask(&ds.mask, &few_rows);
        let many = LabeledTuple::from_mask(&ds.mask, &many_rows);
        let input_few = BaselineInput {
            dirty: &ds.dirty,
            metadata: &ds.metadata,
            labeled: &few,
        };
        let input_many = BaselineInput {
            dirty: &ds.dirty,
            metadata: &ds.metadata,
            labeled: &many,
        };
        let raha = Raha::default();
        let f1_few = raha.detect(&input_few).score_against(&ds.mask).unwrap().f1;
        let f1_many = raha.detect(&input_many).score_against(&ds.mask).unwrap().f1;
        assert!(f1_many >= f1_few * 0.8, "few {f1_few} vs many {f1_many}");
        assert!(f1_many > 0.1, "Raha with many labels should detect something");
    }

    #[test]
    fn no_labels_mean_no_detection() {
        let ds = dataset();
        let input = BaselineInput {
            dirty: &ds.dirty,
            metadata: &ds.metadata,
            labeled: &[],
        };
        assert_eq!(Raha::default().detect(&input).error_count(), 0);
        assert_eq!(Raha::default().name(), "Raha");
    }
}
