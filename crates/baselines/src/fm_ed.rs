//! FM_ED: LLM prompt-based per-tuple error detection.
//!
//! The "can foundation models wrangle your data?" approach asks the LLM, for
//! each tuple in isolation, whether its values are erroneous. It needs neither
//! criteria nor labels, but it lacks dataset-level context (so rule violations
//! and distribution outliers are largely invisible to it) and it spends input
//! tokens on every single tuple — the behaviour the paper contrasts with
//! ZeroED in Table III and Fig. 8.

use crate::{Baseline, BaselineInput};
use zeroed_llm::LlmClient;
use zeroed_table::ErrorMask;

/// The FM_ED baseline; wraps an [`LlmClient`] used for per-tuple prompts.
pub struct FmEd<'a> {
    llm: &'a dyn LlmClient,
}

impl<'a> FmEd<'a> {
    /// Creates the baseline around an LLM client.
    pub fn new(llm: &'a dyn LlmClient) -> Self {
        Self { llm }
    }
}

impl Baseline for FmEd<'_> {
    fn name(&self) -> &'static str {
        "FM_ED"
    }

    fn detect(&self, input: &BaselineInput<'_>) -> ErrorMask {
        let table = input.dirty;
        let mut mask = ErrorMask::for_table(table);
        for row in 0..table.n_rows() {
            let flags = self.llm.detect_tuple(table, row);
            for (col, &flag) in flags.iter().enumerate().take(table.n_cols()) {
                if flag {
                    mask.set(row, col, true);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};
    use zeroed_llm::SimLlm;
    use zeroed_table::ErrorType;

    #[test]
    fn queries_every_tuple_and_spends_input_tokens() {
        let ds = generate(
            DatasetSpec::Hospital,
            &GenerateOptions {
                n_rows: 80,
                seed: 4,
                error_spec: None,
            },
        );
        let types: Vec<_> = ds
            .injected
            .iter()
            .map(|e| ((e.row, e.col), e.error_type))
            .collect();
        let llm = SimLlm::default_model(6)
            .with_oracle(ds.mask.clone())
            .with_error_types(types);
        let fm = FmEd::new(&llm);
        let input = BaselineInput {
            dirty: &ds.dirty,
            metadata: &ds.metadata,
            labeled: &[],
        };
        let mask = fm.detect(&input);
        let usage = llm.ledger().usage();
        assert_eq!(usage.requests, 80, "one request per tuple");
        assert!(usage.input_tokens > usage.output_tokens, "input-heavy");
        let report = mask.score_against(&ds.mask).unwrap();
        assert!(report.f1 > 0.2, "FM_ED should find the easy errors: {report}");
        assert_eq!(fm.name(), "FM_ED");
    }

    #[test]
    fn misses_most_rule_violations() {
        let ds = generate(
            DatasetSpec::Beers,
            &GenerateOptions {
                n_rows: 200,
                seed: 8,
                error_spec: Some(zeroed_datagen::ErrorSpec::only(
                    ErrorType::RuleViolation,
                    0.05,
                )),
            },
        );
        let types: Vec<_> = ds
            .injected
            .iter()
            .map(|e| ((e.row, e.col), e.error_type))
            .collect();
        let llm = SimLlm::default_model(6)
            .with_oracle(ds.mask.clone())
            .with_error_types(types);
        let fm = FmEd::new(&llm);
        let input = BaselineInput {
            dirty: &ds.dirty,
            metadata: &ds.metadata,
            labeled: &[],
        };
        let report = fm.detect(&input).score_against(&ds.mask).unwrap();
        assert!(
            report.recall < 0.6,
            "per-tuple prompting should miss most rule violations: {report}"
        );
    }
}
