//! NADEEF: rule-based detection from manually supplied constraints.
//!
//! NADEEF evaluates user-provided quality rules. Here the rules are the
//! functional dependencies and column format patterns exported by the dataset
//! generators (the paper likewise plugs in constraints from the datasets'
//! public repositories). A cell is flagged when it participates in a
//! functional-dependency violation (its dependent value disagrees with the
//! majority value for the same determinant) or fails its column's format
//! pattern.
//!
//! FD lookups run over the shared [`zeroed_table::TableDict`]: determinant /
//! dependent pairs are counted as `(u32, u32)` code pairs and format patterns
//! are evaluated once per *distinct* value, instead of the seed's per-row
//! string-keyed nested hash maps. [`Nadeef::detect_reference`] keeps the seed
//! per-cell path as the correctness oracle. Majority ties are broken
//! deterministically (highest count, then greatest value string) on both
//! paths — the seed picked whichever entry its hash map yielded first, which
//! was not stable across processes.

use crate::{Baseline, BaselineInput};
use std::collections::HashMap;
use zeroed_table::ErrorMask;

/// Configuration of the NADEEF baseline.
///
/// The paper's NADEEF runs with the *limited* rule sets available in the
/// datasets' public repositories (which is why its recall is low in Table
/// III), so the default here likewise restricts the number of rules it is
/// given; [`Nadeef::with_all_rules`] lifts the restriction.
#[derive(Debug, Clone)]
pub struct Nadeef {
    /// When true, only FD rules are evaluated (no format patterns).
    pub fds_only: bool,
    /// Maximum number of functional dependencies taken from the metadata.
    pub max_fds: usize,
    /// Maximum number of format patterns taken from the metadata.
    pub max_patterns: usize,
}

impl Default for Nadeef {
    fn default() -> Self {
        Self {
            fds_only: false,
            max_fds: 2,
            max_patterns: 1,
        }
    }
}

impl Nadeef {
    /// A NADEEF instance that is handed every rule the generator knows about
    /// (an upper bound on what a carefully curated rule set could achieve).
    pub fn with_all_rules() -> Self {
        Self {
            fds_only: false,
            max_fds: usize::MAX,
            max_patterns: usize::MAX,
        }
    }

    /// The seed per-cell implementation over string-keyed maps, kept as the
    /// correctness oracle for the interned fast path (with the majority
    /// tie-break pinned to the same deterministic order).
    pub fn detect_reference(&self, input: &BaselineInput<'_>) -> ErrorMask {
        let table = input.dirty;
        let metadata = input.metadata;
        let mut mask = ErrorMask::for_table(table);
        if table.n_rows() == 0 {
            return mask;
        }

        // Functional-dependency violations.
        for fd in metadata.fds.iter().take(self.max_fds) {
            let (Some(det), Some(dep)) = (
                table.column_index(&fd.determinant),
                table.column_index(&fd.dependent),
            ) else {
                continue;
            };
            // Majority dependent value per determinant value.
            let mut groups: HashMap<&str, HashMap<&str, usize>> = HashMap::new();
            for row in table.rows() {
                *groups
                    .entry(row[det].as_str())
                    .or_default()
                    .entry(row[dep].as_str())
                    .or_insert(0) += 1;
            }
            let majority: HashMap<&str, &str> = groups
                .iter()
                .filter(|(_, dist)| dist.len() > 1)
                .map(|(d, dist)| {
                    let best = dist
                        .iter()
                        .max_by_key(|(v, &c)| (c, **v))
                        .map(|(v, _)| *v)
                        .unwrap_or_default();
                    (*d, best)
                })
                .collect();
            for (row_idx, row) in table.rows().iter().enumerate() {
                if let Some(&expected) = majority.get(row[det].as_str()) {
                    if row[dep] != expected {
                        mask.set(row_idx, dep, true);
                    }
                }
            }
        }

        // Format pattern violations.
        if !self.fds_only {
            for pattern in metadata.patterns.iter().take(self.max_patterns) {
                let Some(col) = table.column_index(&pattern.column) else {
                    continue;
                };
                for (row_idx, row) in table.rows().iter().enumerate() {
                    if !pattern.kind.matches(&row[col]) {
                        mask.set(row_idx, col, true);
                    }
                }
            }
        }
        mask
    }
}

impl Baseline for Nadeef {
    fn name(&self) -> &'static str {
        "NADEEF"
    }

    fn detect(&self, input: &BaselineInput<'_>) -> ErrorMask {
        let table = input.dirty;
        let metadata = input.metadata;
        let mut mask = ErrorMask::for_table(table);
        if table.n_rows() == 0 {
            return mask;
        }
        let dict = table.intern();

        // Functional-dependency violations over interned code pairs.
        for fd in metadata.fds.iter().take(self.max_fds) {
            let (Some(det), Some(dep)) = (
                table.column_index(&fd.determinant),
                table.column_index(&fd.dependent),
            ) else {
                continue;
            };
            let det_dict = dict.column(det);
            let dep_dict = dict.column(dep);
            // Count (determinant code, dependent code) co-occurrences.
            let mut pair_counts: HashMap<(u32, u32), u32> = HashMap::new();
            for row in 0..table.n_rows() {
                *pair_counts
                    .entry((det_dict.code(row), dep_dict.code(row)))
                    .or_insert(0) += 1;
            }
            // Majority dependent code per determinant code, counting variants
            // so single-valued groups are skipped like the reference does.
            // Ties break on (count, value string), matching the oracle path.
            let mut majority: HashMap<u32, (u32, u32, u32)> = HashMap::new(); // det → (count, dep, variants)
            for (&(d, p), &count) in &pair_counts {
                let entry = majority.entry(d).or_insert((0, p, 0));
                entry.2 += 1;
                let better = count > entry.0
                    || (count == entry.0 && dep_dict.value(p) > dep_dict.value(entry.1));
                if entry.0 == 0 || better {
                    entry.0 = count;
                    entry.1 = p;
                }
            }
            for row in 0..table.n_rows() {
                if let Some(&(_, best, variants)) = majority.get(&det_dict.code(row)) {
                    if variants > 1 && dep_dict.code(row) != best {
                        mask.set(row, dep, true);
                    }
                }
            }
        }

        // Format pattern violations, evaluated once per distinct value.
        if !self.fds_only {
            for pattern in metadata.patterns.iter().take(self.max_patterns) {
                let Some(col) = table.column_index(&pattern.column) else {
                    continue;
                };
                let col_dict = dict.column(col);
                let violating: Vec<bool> = col_dict
                    .values()
                    .iter()
                    .map(|v| !pattern.kind.matches(v))
                    .collect();
                for (row, &code) in col_dict.codes().iter().enumerate() {
                    if violating[code as usize] {
                        mask.set(row, col, true);
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_datagen::{ColumnPattern, DatasetMetadata, FunctionalDependency, PatternKind};
    use zeroed_table::Table;

    fn fixture() -> (Table, DatasetMetadata) {
        let mut rows: Vec<Vec<String>> = (0..60)
            .map(|i| {
                let city = ["Boston", "Denver"][i % 2];
                let state = ["MA", "CO"][i % 2];
                vec![city.to_string(), state.to_string(), format!("{:05}", 10000 + i % 2)]
            })
            .collect();
        rows[4][1] = "CO".into(); // FD violation: Boston → CO
        rows[9][2] = "123".into(); // zip format violation
        let table = Table::new(
            "t",
            vec!["city".into(), "state".into(), "zip".into()],
            rows,
        )
        .unwrap();
        let metadata = DatasetMetadata {
            fds: vec![FunctionalDependency::new("city", "state")],
            patterns: vec![ColumnPattern::new("zip", PatternKind::ZipCode)],
            ..DatasetMetadata::default()
        };
        (table, metadata)
    }

    #[test]
    fn flags_fd_and_pattern_violations() {
        let (table, metadata) = fixture();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        let mask = Nadeef::default().detect(&input);
        assert!(mask.get(4, 1), "FD violation flagged");
        assert!(mask.get(9, 2), "pattern violation flagged");
        assert!(!mask.get(0, 1));
        assert_eq!(mask.error_count(), 2);
    }

    #[test]
    fn interned_path_matches_the_reference() {
        let (table, metadata) = fixture();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        for detector in [Nadeef::default(), Nadeef::with_all_rules()] {
            assert_eq!(
                detector.detect(&input),
                detector.detect_reference(&input),
                "{:?}",
                detector
            );
        }
    }

    #[test]
    fn fds_only_mode_ignores_patterns() {
        let (table, metadata) = fixture();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        let mask = Nadeef {
            fds_only: true,
            ..Nadeef::with_all_rules()
        }
        .detect(&input);
        assert!(mask.get(4, 1));
        assert!(!mask.get(9, 2));
        assert_eq!(Nadeef::default().name(), "NADEEF");
    }

    #[test]
    fn rule_budget_limits_detection() {
        let (table, metadata) = fixture();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        let limited = Nadeef {
            max_fds: 0,
            max_patterns: 0,
            fds_only: false,
        }
        .detect(&input);
        assert_eq!(limited.error_count(), 0);
        let full = Nadeef::with_all_rules().detect(&input);
        assert!(full.error_count() >= limited.error_count());
    }

    #[test]
    fn missing_rule_columns_are_ignored() {
        let (table, _) = fixture();
        let metadata = DatasetMetadata {
            fds: vec![FunctionalDependency::new("nope", "state")],
            patterns: vec![ColumnPattern::new("unknown", PatternKind::ZipCode)],
            ..DatasetMetadata::default()
        };
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        assert_eq!(Nadeef::default().detect(&input).error_count(), 0);
        assert_eq!(Nadeef::default().detect_reference(&input).error_count(), 0);
    }
}
