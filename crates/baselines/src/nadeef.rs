//! NADEEF: rule-based detection from manually supplied constraints.
//!
//! NADEEF evaluates user-provided quality rules. Here the rules are the
//! functional dependencies and column format patterns exported by the dataset
//! generators (the paper likewise plugs in constraints from the datasets'
//! public repositories). A cell is flagged when it participates in a
//! functional-dependency violation (its dependent value disagrees with the
//! majority value for the same determinant) or fails its column's format
//! pattern.

use crate::{Baseline, BaselineInput};
use std::collections::HashMap;
use zeroed_table::ErrorMask;

/// Configuration of the NADEEF baseline.
///
/// The paper's NADEEF runs with the *limited* rule sets available in the
/// datasets' public repositories (which is why its recall is low in Table
/// III), so the default here likewise restricts the number of rules it is
/// given; [`Nadeef::with_all_rules`] lifts the restriction.
#[derive(Debug, Clone)]
pub struct Nadeef {
    /// When true, only FD rules are evaluated (no format patterns).
    pub fds_only: bool,
    /// Maximum number of functional dependencies taken from the metadata.
    pub max_fds: usize,
    /// Maximum number of format patterns taken from the metadata.
    pub max_patterns: usize,
}

impl Default for Nadeef {
    fn default() -> Self {
        Self {
            fds_only: false,
            max_fds: 2,
            max_patterns: 1,
        }
    }
}

impl Nadeef {
    /// A NADEEF instance that is handed every rule the generator knows about
    /// (an upper bound on what a carefully curated rule set could achieve).
    pub fn with_all_rules() -> Self {
        Self {
            fds_only: false,
            max_fds: usize::MAX,
            max_patterns: usize::MAX,
        }
    }
}

impl Baseline for Nadeef {
    fn name(&self) -> &'static str {
        "NADEEF"
    }

    fn detect(&self, input: &BaselineInput<'_>) -> ErrorMask {
        let table = input.dirty;
        let metadata = input.metadata;
        let mut mask = ErrorMask::for_table(table);
        if table.n_rows() == 0 {
            return mask;
        }

        // Functional-dependency violations.
        for fd in metadata.fds.iter().take(self.max_fds) {
            let (Some(det), Some(dep)) = (
                table.column_index(&fd.determinant),
                table.column_index(&fd.dependent),
            ) else {
                continue;
            };
            // Majority dependent value per determinant value.
            let mut groups: HashMap<&str, HashMap<&str, usize>> = HashMap::new();
            for row in table.rows() {
                *groups
                    .entry(row[det].as_str())
                    .or_default()
                    .entry(row[dep].as_str())
                    .or_insert(0) += 1;
            }
            let majority: HashMap<&str, &str> = groups
                .iter()
                .filter(|(_, dist)| dist.len() > 1)
                .map(|(d, dist)| {
                    let best = dist
                        .iter()
                        .max_by_key(|(_, &c)| c)
                        .map(|(v, _)| *v)
                        .unwrap_or_default();
                    (*d, best)
                })
                .collect();
            for (row_idx, row) in table.rows().iter().enumerate() {
                if let Some(&expected) = majority.get(row[det].as_str()) {
                    if row[dep] != expected {
                        mask.set(row_idx, dep, true);
                    }
                }
            }
        }

        // Format pattern violations.
        if !self.fds_only {
            for pattern in metadata.patterns.iter().take(self.max_patterns) {
                let Some(col) = table.column_index(&pattern.column) else {
                    continue;
                };
                for (row_idx, row) in table.rows().iter().enumerate() {
                    if !pattern.kind.matches(&row[col]) {
                        mask.set(row_idx, col, true);
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroed_datagen::{ColumnPattern, DatasetMetadata, FunctionalDependency, PatternKind};
    use zeroed_table::Table;

    fn fixture() -> (Table, DatasetMetadata) {
        let mut rows: Vec<Vec<String>> = (0..60)
            .map(|i| {
                let city = ["Boston", "Denver"][i % 2];
                let state = ["MA", "CO"][i % 2];
                vec![city.to_string(), state.to_string(), format!("{:05}", 10000 + i % 2)]
            })
            .collect();
        rows[4][1] = "CO".into(); // FD violation: Boston → CO
        rows[9][2] = "123".into(); // zip format violation
        let table = Table::new(
            "t",
            vec!["city".into(), "state".into(), "zip".into()],
            rows,
        )
        .unwrap();
        let metadata = DatasetMetadata {
            fds: vec![FunctionalDependency::new("city", "state")],
            patterns: vec![ColumnPattern::new("zip", PatternKind::ZipCode)],
            ..DatasetMetadata::default()
        };
        (table, metadata)
    }

    #[test]
    fn flags_fd_and_pattern_violations() {
        let (table, metadata) = fixture();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        let mask = Nadeef::default().detect(&input);
        assert!(mask.get(4, 1), "FD violation flagged");
        assert!(mask.get(9, 2), "pattern violation flagged");
        assert!(!mask.get(0, 1));
        assert_eq!(mask.error_count(), 2);
    }

    #[test]
    fn fds_only_mode_ignores_patterns() {
        let (table, metadata) = fixture();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        let mask = Nadeef {
            fds_only: true,
            ..Nadeef::with_all_rules()
        }
        .detect(&input);
        assert!(mask.get(4, 1));
        assert!(!mask.get(9, 2));
        assert_eq!(Nadeef::default().name(), "NADEEF");
    }

    #[test]
    fn rule_budget_limits_detection() {
        let (table, metadata) = fixture();
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        let limited = Nadeef {
            max_fds: 0,
            max_patterns: 0,
            fds_only: false,
        }
        .detect(&input);
        assert_eq!(limited.error_count(), 0);
        let full = Nadeef::with_all_rules().detect(&input);
        assert!(full.error_count() >= limited.error_count());
    }

    #[test]
    fn missing_rule_columns_are_ignored() {
        let (table, _) = fixture();
        let metadata = DatasetMetadata {
            fds: vec![FunctionalDependency::new("nope", "state")],
            patterns: vec![ColumnPattern::new("unknown", PatternKind::ZipCode)],
            ..DatasetMetadata::default()
        };
        let input = BaselineInput {
            dirty: &table,
            metadata: &metadata,
            labeled: &[],
        };
        assert_eq!(Nadeef::default().detect(&input).error_count(), 0);
    }
}
