//! ActiveClean: record-level dirty-data detection with a convex model.
//!
//! ActiveClean interleaves cleaning with training of a downstream convex model
//! and prioritises records whose gradients suggest they are dirty. As an error
//! *detector* (the role it plays in the paper's comparison) it reduces to:
//! featurise each record with simple aggregate statistics, train a logistic
//! model on the few labelled records (dirty = any cell dirty), and flag every
//! cell of the records predicted dirty. Because whole records are flagged, its
//! precision is low on datasets where errors are sparse within a tuple —
//! exactly the behaviour reported in the paper.

use crate::{Baseline, BaselineInput};
use std::collections::HashMap;
use zeroed_ml::{LogisticRegression, LogisticRegressionConfig};
use zeroed_table::value::{is_missing, parse_numeric};
use zeroed_table::{ErrorMask, Table};

/// Configuration of the ActiveClean baseline.
#[derive(Debug, Clone)]
pub struct ActiveClean {
    /// Probability threshold above which a record is considered dirty.
    pub threshold: f32,
}

impl Default for ActiveClean {
    fn default() -> Self {
        Self { threshold: 0.5 }
    }
}

impl ActiveClean {
    /// Simple record-level features: per-record missing fraction, mean value
    /// rarity, mean length and numeric fraction.
    fn record_features(table: &Table, value_counts: &[HashMap<&str, usize>]) -> Vec<Vec<f32>> {
        let n_rows = table.n_rows().max(1) as f64;
        table
            .rows()
            .iter()
            .map(|row| {
                let n_cols = row.len().max(1) as f32;
                let missing =
                    row.iter().filter(|v| is_missing(v)).count() as f32 / n_cols;
                let rarity: f32 = row
                    .iter()
                    .enumerate()
                    .map(|(j, v)| {
                        let c = *value_counts[j].get(v.as_str()).unwrap_or(&0) as f64;
                        (1.0 - c / n_rows) as f32
                    })
                    .sum::<f32>()
                    / n_cols;
                let mean_len = row
                    .iter()
                    .map(|v| v.chars().count() as f32)
                    .sum::<f32>()
                    / n_cols
                    / 32.0;
                let numeric =
                    row.iter().filter(|v| parse_numeric(v).is_some()).count() as f32 / n_cols;
                vec![missing, rarity, mean_len.min(1.0), numeric]
            })
            .collect()
    }
}

impl Baseline for ActiveClean {
    fn name(&self) -> &'static str {
        "ActiveClean"
    }

    fn detect(&self, input: &BaselineInput<'_>) -> ErrorMask {
        let table = input.dirty;
        let mut mask = ErrorMask::for_table(table);
        if table.n_rows() == 0 || input.labeled.is_empty() {
            return mask;
        }
        let value_counts: Vec<HashMap<&str, usize>> = (0..table.n_cols())
            .map(|j| {
                let mut counts: HashMap<&str, usize> = HashMap::new();
                for row in table.rows() {
                    *counts.entry(row[j].as_str()).or_insert(0) += 1;
                }
                counts
            })
            .collect();
        let features = Self::record_features(table, &value_counts);

        // Train on the labelled records.
        let mut train_rows: Vec<&[f32]> = Vec::new();
        let mut train_labels: Vec<f32> = Vec::new();
        for labeled in input.labeled {
            if labeled.row >= table.n_rows() {
                continue;
            }
            train_rows.push(features[labeled.row].as_slice());
            train_labels.push(if labeled.flags.iter().any(|&f| f) {
                1.0
            } else {
                0.0
            });
        }
        let has_dirty = train_labels.iter().any(|&l| l > 0.5);
        let has_clean = train_labels.iter().any(|&l| l < 0.5);
        if train_rows.is_empty() {
            return mask;
        }
        if !has_dirty || !has_clean {
            // With a single observed class ActiveClean cannot separate records;
            // it conservatively follows the observed class for every record.
            let flag_all = has_dirty;
            if flag_all {
                for row in 0..table.n_rows() {
                    for col in 0..table.n_cols() {
                        mask.set(row, col, true);
                    }
                }
            }
            return mask;
        }
        let model = LogisticRegression::fit(
            &train_rows,
            &train_labels,
            &LogisticRegressionConfig::default(),
        );
        for (row, feat) in features.iter().enumerate() {
            if model.predict_proba(feat) >= self.threshold {
                for col in 0..table.n_cols() {
                    mask.set(row, col, true);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LabeledTuple;
    use zeroed_datagen::{generate, DatasetSpec, GenerateOptions};

    #[test]
    fn flags_whole_records_and_needs_both_classes() {
        let ds = generate(
            DatasetSpec::Rayyan,
            &GenerateOptions {
                n_rows: 150,
                seed: 2,
                error_spec: None,
            },
        );
        // Pick some dirty and some clean rows to label.
        let dirty_rows: Vec<usize> = ds.injected.iter().map(|e| e.row).take(10).collect();
        let clean_rows: Vec<usize> = (0..ds.dirty.n_rows())
            .filter(|&r| (0..ds.dirty.n_cols()).all(|c| !ds.mask.get(r, c)))
            .take(10)
            .collect();
        let mut rows = dirty_rows.clone();
        rows.extend(&clean_rows);
        let labeled = LabeledTuple::from_mask(&ds.mask, &rows);
        let input = BaselineInput {
            dirty: &ds.dirty,
            metadata: &ds.metadata,
            labeled: &labeled,
        };
        let mask = ActiveClean::default().detect(&input);
        // Record-level flagging: any flagged row has every cell flagged.
        for row in 0..ds.dirty.n_rows() {
            let flagged: Vec<bool> = (0..ds.dirty.n_cols()).map(|c| mask.get(row, c)).collect();
            assert!(
                flagged.iter().all(|&f| f) || flagged.iter().all(|&f| !f),
                "row {row} should be flagged entirely or not at all"
            );
        }
        assert_eq!(ActiveClean::default().name(), "ActiveClean");
    }

    #[test]
    fn no_labels_no_output() {
        let ds = generate(
            DatasetSpec::Beers,
            &GenerateOptions {
                n_rows: 60,
                seed: 3,
                error_spec: None,
            },
        );
        let input = BaselineInput {
            dirty: &ds.dirty,
            metadata: &ds.metadata,
            labeled: &[],
        };
        assert_eq!(ActiveClean::default().detect(&input).error_count(), 0);
    }
}
